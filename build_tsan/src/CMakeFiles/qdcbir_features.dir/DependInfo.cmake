
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/features/color_moments.cc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/color_moments.cc.o" "gcc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/color_moments.cc.o.d"
  "/root/repo/src/qdcbir/features/edge_structure.cc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/edge_structure.cc.o" "gcc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/edge_structure.cc.o.d"
  "/root/repo/src/qdcbir/features/extractor.cc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/extractor.cc.o" "gcc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/extractor.cc.o.d"
  "/root/repo/src/qdcbir/features/normalizer.cc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/normalizer.cc.o" "gcc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/normalizer.cc.o.d"
  "/root/repo/src/qdcbir/features/wavelet_texture.cc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/wavelet_texture.cc.o" "gcc" "src/CMakeFiles/qdcbir_features.dir/qdcbir/features/wavelet_texture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_image.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
