
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/eval/ground_truth.cc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/ground_truth.cc.o" "gcc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/ground_truth.cc.o.d"
  "/root/repo/src/qdcbir/eval/metrics.cc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/metrics.cc.o.d"
  "/root/repo/src/qdcbir/eval/oracle.cc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/oracle.cc.o" "gcc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/oracle.cc.o.d"
  "/root/repo/src/qdcbir/eval/session_runner.cc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/session_runner.cc.o" "gcc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/session_runner.cc.o.d"
  "/root/repo/src/qdcbir/eval/table_printer.cc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/table_printer.cc.o" "gcc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/table_printer.cc.o.d"
  "/root/repo/src/qdcbir/eval/timer.cc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/timer.cc.o" "gcc" "src/CMakeFiles/qdcbir_eval.dir/qdcbir/eval/timer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_query.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_dataset.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_features.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_image.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_rfs.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_index.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
