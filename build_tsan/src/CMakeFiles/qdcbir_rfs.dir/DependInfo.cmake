
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/rfs/clustered_bulk_load.cc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/clustered_bulk_load.cc.o" "gcc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/clustered_bulk_load.cc.o.d"
  "/root/repo/src/qdcbir/rfs/representative_selector.cc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/representative_selector.cc.o" "gcc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/representative_selector.cc.o.d"
  "/root/repo/src/qdcbir/rfs/rfs_builder.cc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_builder.cc.o" "gcc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_builder.cc.o.d"
  "/root/repo/src/qdcbir/rfs/rfs_serialization.cc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_serialization.cc.o" "gcc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_serialization.cc.o.d"
  "/root/repo/src/qdcbir/rfs/rfs_tree.cc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_tree.cc.o" "gcc" "src/CMakeFiles/qdcbir_rfs.dir/qdcbir/rfs/rfs_tree.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_index.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_cluster.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
