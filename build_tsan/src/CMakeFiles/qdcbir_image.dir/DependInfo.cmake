
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qdcbir/image/color.cc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/color.cc.o" "gcc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/color.cc.o.d"
  "/root/repo/src/qdcbir/image/draw.cc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/draw.cc.o" "gcc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/draw.cc.o.d"
  "/root/repo/src/qdcbir/image/image.cc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/image.cc.o" "gcc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/image.cc.o.d"
  "/root/repo/src/qdcbir/image/ppm_io.cc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/ppm_io.cc.o" "gcc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/ppm_io.cc.o.d"
  "/root/repo/src/qdcbir/image/texture.cc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/texture.cc.o" "gcc" "src/CMakeFiles/qdcbir_image.dir/qdcbir/image/texture.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
