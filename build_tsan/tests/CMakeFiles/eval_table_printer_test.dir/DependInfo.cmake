
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/eval/table_printer_test.cc" "tests/CMakeFiles/eval_table_printer_test.dir/eval/table_printer_test.cc.o" "gcc" "tests/CMakeFiles/eval_table_printer_test.dir/eval/table_printer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_eval.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_query.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_rfs.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_dataset.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_index.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_cluster.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_features.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_image.dir/DependInfo.cmake"
  "/root/repo/build_tsan/src/CMakeFiles/qdcbir_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
