#ifndef QDCBIR_CACHE_CACHE_MANAGER_H_
#define QDCBIR_CACHE_CACHE_MANAGER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qdcbir {
namespace cache {

/// What a cached value is. The kind is part of the key, so the payload type
/// behind a key is fixed by the inserting call site's convention and
/// `CacheManager::LookupAs<T>` casts are safe by construction.
enum class CacheKind : std::uint8_t {
  kLeafScan = 0,         ///< per-leaf localized-scan rankings
  kRepresentatives = 1,  ///< rendered representative payloads (PPM bytes)
  kTopK = 2,             ///< finalized top-k results for session replays
};

inline constexpr std::size_t kNumCacheKinds = 3;

const char* CacheKindName(CacheKind kind);

/// A cache identity: the entry kind plus three caller-chosen 64-bit words.
/// Callers put structural ids (node/leaf id, engine tag) in the open words
/// and fold everything else that determines the value — query bytes, weight
/// bytes, k, SIMD level — through `HashBytes`/`HashCombine`. Two keys equal
/// ⇒ the cached value is byte-identical to recomputation, which is the
/// whole determinism contract (docs/caching.md).
struct CacheKey {
  CacheKind kind = CacheKind::kLeafScan;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;

  bool operator==(const CacheKey& other) const {
    return kind == other.kind && a == other.a && b == other.b && c == other.c;
  }
};

/// FNV-1a over raw bytes; the building block for key words. Deterministic
/// across runs and platforms (no pointer values, no ASLR).
std::uint64_t HashBytes(const void* data, std::size_t size,
                        std::uint64_t seed = 0xcbf29ce484222325ull);

/// Folds one more word into an FNV-1a state.
inline std::uint64_t HashCombine(std::uint64_t state, std::uint64_t value) {
  return HashBytes(&value, sizeof(value), state);
}

/// Aggregate counters of one cache (or one kind within it). Monotonic
/// except `bytes_used`/`entries`, which track the live footprint.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;       ///< budget-pressure removals
  std::uint64_t rejected = 0;        ///< inserts refused (budget/stale epoch)
  std::uint64_t flushes = 0;         ///< BeginEpoch invalidation sweeps
  std::uint64_t bytes_used = 0;      ///< live charged bytes
  std::uint64_t bytes_highwater = 0; ///< max of bytes_used, never > budget
  std::uint64_t entries = 0;         ///< live entry count
};

/// A process-level cache with one global byte budget and N lock-striped
/// shards. Values are immutable (`shared_ptr<const void>`), so a reader's
/// copy of the pointer stays valid while a concurrent insert evicts the
/// entry. Eviction is frequency-based: each hit bumps a 16-bit counter
/// (wrapping naturally at 65535→0, which doubles as aging), and the victim
/// is the entry with the lowest (frequency, insertion sequence).
///
/// Byte accounting is exact: every entry charges its payload bytes plus
/// `kEntryOverheadBytes`, reserved against the budget with a CAS loop
/// *before* the entry becomes visible — `bytes_highwater()` therefore never
/// exceeds the configured budget, which the TSan stress test asserts.
///
/// Invalidation is epoch-tokened. `Lookup` on a miss hands back the current
/// epoch; `Insert` requires it and refuses stale tokens. `BeginEpoch`
/// advances the epoch *first* and then clears the shards, so a value
/// computed against the old snapshot can never be inserted — and thus never
/// returned — after invalidation, even when the compute raced the flush.
///
/// One epoch maps to exactly one immutable corpus: the owner (the serve
/// reload hook, the CLI, tests) calls `BeginEpoch(snapshot_identity)`
/// whenever the underlying snapshot changes, so keys never need to encode
/// corpus identity themselves.
class CacheManager {
 public:
  /// Bytes charged per entry on top of the payload: the key, the control
  /// block, the hash-map node. A round constant so tests can assert exact
  /// accounting.
  static constexpr std::size_t kEntryOverheadBytes = 64;

  struct Options {
    std::size_t budget_bytes = 64ull << 20;
    std::size_t shard_count = 16;  ///< clamped to [1, 256]
  };

  explicit CacheManager(const Options& options);
  CacheManager(const CacheManager&) = delete;
  CacheManager& operator=(const CacheManager&) = delete;

  struct LookupResult {
    /// The cached payload, or null on miss.
    std::shared_ptr<const void> value;
    /// On miss: the epoch token to pass to `Insert` once the value is
    /// computed. Unset on hit.
    std::uint64_t epoch = 0;
  };

  LookupResult Lookup(const CacheKey& key);

  /// Typed lookup: casts the payload to the call site's per-kind type. On
  /// miss, stores the insert token into `*epoch`.
  template <typename T>
  std::shared_ptr<const T> LookupAs(const CacheKey& key,
                                    std::uint64_t* epoch) {
    LookupResult result = Lookup(key);
    if (result.value == nullptr) {
      *epoch = result.epoch;
      return nullptr;
    }
    return std::static_pointer_cast<const T>(std::move(result.value));
  }

  /// Publishes `value` (costing `value_bytes` + overhead) under `key`.
  /// Returns false without caching when `epoch` is stale (an invalidation
  /// happened since the Lookup), when the entry cannot fit even after
  /// eviction, or when the payload alone exceeds the whole budget. A racing
  /// duplicate insert (same key) is treated as success.
  bool Insert(const CacheKey& key, std::shared_ptr<const void> value,
              std::size_t value_bytes, std::uint64_t epoch);

  template <typename T>
  bool InsertAs(const CacheKey& key, std::shared_ptr<const T> value,
                std::size_t value_bytes, std::uint64_t epoch) {
    return Insert(key, std::static_pointer_cast<const void>(std::move(value)),
                  value_bytes, epoch);
  }

  /// Invalidates everything: advances the epoch (so in-flight computes
  /// against the old snapshot cannot insert), then drops every entry.
  /// `snapshot_identity` names the corpus generation now being served; it
  /// is exposed for diagnostics only.
  void BeginEpoch(std::uint64_t snapshot_identity);

  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  std::uint64_t snapshot_identity() const {
    return snapshot_identity_.load(std::memory_order_relaxed);
  }

  std::size_t budget_bytes() const { return budget_bytes_; }
  std::size_t shard_count() const { return shards_.size(); }
  std::uint64_t bytes_used() const {
    return used_.load(std::memory_order_relaxed);
  }
  /// Precise maximum of `bytes_used()` over the cache's lifetime,
  /// maintained with a CAS-max at reservation time. Never exceeds
  /// `budget_bytes()` — reservation happens before the bytes are counted.
  std::uint64_t bytes_highwater() const {
    return highwater_.load(std::memory_order_relaxed);
  }

  CacheStats TotalStats() const;
  CacheStats KindStats(CacheKind kind) const;

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& key) const;
  };

  struct Entry {
    std::shared_ptr<const void> value;
    std::size_t charged_bytes = 0;
    std::uint64_t insert_seq = 0;  ///< eviction tie-break: oldest first
    std::uint16_t frequency = 0;   ///< hit count, wraps 65535→0 (aging)
    CacheKind kind = CacheKind::kLeafScan;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<CacheKey, Entry, KeyHash> map;
  };

  Shard& ShardFor(const CacheKey& key);
  /// Removes the lowest-(frequency, insert_seq) entry of `shard` (whose
  /// lock the caller holds) and releases its bytes. False when empty.
  bool EvictOneLocked(Shard& shard);
  /// Tries to reserve `bytes` against the budget, evicting (own shard
  /// first, then try-locked siblings) until it fits. False = reject.
  bool ReserveBytes(std::size_t bytes, Shard& own_shard);
  void ReleaseBytes(std::size_t bytes);
  void CountEviction(CacheKind kind, std::size_t charged_bytes);

  const std::size_t budget_bytes_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> used_{0};
  std::atomic<std::uint64_t> highwater_{0};
  std::atomic<std::uint64_t> epoch_{1};
  std::atomic<std::uint64_t> snapshot_identity_{0};
  std::atomic<std::uint64_t> insert_seq_{0};
  std::atomic<std::uint64_t> live_entries_{0};

  struct KindCounters {
    std::atomic<std::uint64_t> hits{0};
    std::atomic<std::uint64_t> misses{0};
    std::atomic<std::uint64_t> insertions{0};
    std::atomic<std::uint64_t> evictions{0};
    std::atomic<std::uint64_t> rejected{0};
    std::atomic<std::uint64_t> bytes_used{0};
    std::atomic<std::uint64_t> entries{0};
  };
  KindCounters kind_counters_[kNumCacheKinds];
  std::atomic<std::uint64_t> flushes_{0};
};

}  // namespace cache
}  // namespace qdcbir

#endif  // QDCBIR_CACHE_CACHE_MANAGER_H_
