#include "qdcbir/cache/cache_manager.h"

#include <algorithm>
#include <utility>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/resource_stats.h"

namespace qdcbir {
namespace cache {

namespace {

/// Process-wide cache observability. Totals plus per-kind hit/miss
/// families, exactly as listed in docs/observability.md; every CacheManager
/// instance in the process reports into the same registry families.
struct CacheMetrics {
  obs::Counter& hit;
  obs::Counter& miss;
  obs::Counter& evictions;
  obs::Counter& insertions;
  obs::Counter& rejected;
  obs::Counter& flushes;
  obs::Gauge& bytes;
  obs::Gauge& entries;
  obs::Counter* kind_hit[kNumCacheKinds];
  obs::Counter* kind_miss[kNumCacheKinds];

  static CacheMetrics& Get() {
    static CacheMetrics* metrics = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      auto* m = new CacheMetrics{
          registry.GetCounter("cache.hit", "Cache lookups served from memory"),
          registry.GetCounter("cache.miss", "Cache lookups that missed"),
          registry.GetCounter("cache.evictions",
                              "Entries evicted under budget pressure"),
          registry.GetCounter("cache.insertions", "Entries inserted"),
          registry.GetCounter(
              "cache.insert.rejected",
              "Inserts refused (stale epoch or budget exhausted)"),
          registry.GetCounter("cache.invalidation.flushes",
                              "Epoch flushes (snapshot re-loads)"),
          registry.GetGauge("cache.bytes", "Live charged cache bytes"),
          registry.GetGauge("cache.entries", "Live cache entries"),
          {},
          {},
      };
      for (std::size_t k = 0; k < kNumCacheKinds; ++k) {
        const std::string name = CacheKindName(static_cast<CacheKind>(k));
        m->kind_hit[k] = &registry.GetCounter("cache." + name + ".hit",
                                              "Cache hits of this kind");
        m->kind_miss[k] = &registry.GetCounter("cache." + name + ".miss",
                                               "Cache misses of this kind");
      }
      return m;
    }();
    return *metrics;
  }
};

}  // namespace

const char* CacheKindName(CacheKind kind) {
  switch (kind) {
    case CacheKind::kLeafScan: return "leaf_scan";
    case CacheKind::kRepresentatives: return "representatives";
    case CacheKind::kTopK: return "topk";
  }
  return "unknown";
}

std::uint64_t HashBytes(const void* data, std::size_t size,
                        std::uint64_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ull;  // FNV-1a prime
  }
  return hash;
}

std::size_t CacheManager::KeyHash::operator()(const CacheKey& key) const {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  hash = HashCombine(hash, static_cast<std::uint64_t>(key.kind));
  hash = HashCombine(hash, key.a);
  hash = HashCombine(hash, key.b);
  hash = HashCombine(hash, key.c);
  return static_cast<std::size_t>(hash);
}

CacheManager::CacheManager(const Options& options)
    : budget_bytes_(options.budget_bytes) {
  const std::size_t shards =
      std::min<std::size_t>(256, std::max<std::size_t>(1, options.shard_count));
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

CacheManager::Shard& CacheManager::ShardFor(const CacheKey& key) {
  return *shards_[KeyHash{}(key) % shards_.size()];
}

CacheManager::LookupResult CacheManager::Lookup(const CacheKey& key) {
  CacheMetrics& metrics = CacheMetrics::Get();
  const std::size_t kind_index = static_cast<std::size_t>(key.kind);
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      // Natural uint16 wrap: a saturated entry ages back to zero, so
      // long-lived once-hot entries eventually become evictable again.
      it->second.frequency = static_cast<std::uint16_t>(
          it->second.frequency + 1);
      kind_counters_[kind_index].hits.fetch_add(1, std::memory_order_relaxed);
      metrics.hit.Add(1);
      metrics.kind_hit[kind_index]->Add(1);
      obs::CountCacheHit();
      return LookupResult{it->second.value, 0};
    }
  }
  kind_counters_[kind_index].misses.fetch_add(1, std::memory_order_relaxed);
  metrics.miss.Add(1);
  metrics.kind_miss[kind_index]->Add(1);
  obs::CountCacheMiss();
  return LookupResult{nullptr, epoch_.load(std::memory_order_acquire)};
}

void CacheManager::CountEviction(CacheKind kind, std::size_t charged_bytes) {
  CacheMetrics& metrics = CacheMetrics::Get();
  const std::size_t kind_index = static_cast<std::size_t>(kind);
  kind_counters_[kind_index].evictions.fetch_add(1, std::memory_order_relaxed);
  kind_counters_[kind_index].bytes_used.fetch_sub(charged_bytes,
                                                  std::memory_order_relaxed);
  kind_counters_[kind_index].entries.fetch_sub(1, std::memory_order_relaxed);
  live_entries_.fetch_sub(1, std::memory_order_relaxed);
  metrics.evictions.Add(1);
  metrics.entries.Add(-1);
  metrics.bytes.Add(-static_cast<std::int64_t>(charged_bytes));
}

bool CacheManager::EvictOneLocked(Shard& shard) {
  if (shard.map.empty()) return false;
  auto victim = shard.map.begin();
  for (auto it = shard.map.begin(); it != shard.map.end(); ++it) {
    const Entry& e = it->second;
    const Entry& v = victim->second;
    if (e.frequency < v.frequency ||
        (e.frequency == v.frequency && e.insert_seq < v.insert_seq)) {
      victim = it;
    }
  }
  const std::size_t freed = victim->second.charged_bytes;
  const CacheKind kind = victim->second.kind;
  shard.map.erase(victim);
  ReleaseBytes(freed);
  CountEviction(kind, freed);
  return true;
}

void CacheManager::ReleaseBytes(std::size_t bytes) {
  used_.fetch_sub(bytes, std::memory_order_relaxed);
}

bool CacheManager::ReserveBytes(std::size_t bytes, Shard& own_shard) {
  if (bytes > budget_bytes_) return false;
  for (;;) {
    std::uint64_t current = used_.load(std::memory_order_relaxed);
    while (current + bytes <= budget_bytes_) {
      if (used_.compare_exchange_weak(current, current + bytes,
                                      std::memory_order_relaxed)) {
        // The reservation is what bounds the footprint, so the high-water
        // mark derived from it can never exceed the budget.
        const std::uint64_t now = current + bytes;
        std::uint64_t seen = highwater_.load(std::memory_order_relaxed);
        while (now > seen &&
               !highwater_.compare_exchange_weak(seen, now,
                                                 std::memory_order_relaxed)) {
        }
        return true;
      }
    }
    // Over budget: free something. Own shard first (its lock is held), then
    // siblings via try_lock only — lock order stays acyclic.
    if (EvictOneLocked(own_shard)) continue;
    bool freed = false;
    for (const std::unique_ptr<Shard>& other : shards_) {
      if (other.get() == &own_shard) continue;
      std::unique_lock<std::mutex> lock(other->mu, std::try_to_lock);
      if (!lock.owns_lock()) continue;
      if (EvictOneLocked(*other)) {
        freed = true;
        break;
      }
    }
    if (!freed) return false;  // nothing evictable (contended or all empty)
  }
}

bool CacheManager::Insert(const CacheKey& key,
                          std::shared_ptr<const void> value,
                          std::size_t value_bytes, std::uint64_t epoch) {
  CacheMetrics& metrics = CacheMetrics::Get();
  const std::size_t kind_index = static_cast<std::size_t>(key.kind);
  const std::size_t charged = value_bytes + kEntryOverheadBytes;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  // Stale token: an invalidation ran between the Lookup and this Insert,
  // so the value was computed against a snapshot no longer being served.
  if (epoch != epoch_.load(std::memory_order_acquire)) {
    kind_counters_[kind_index].rejected.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected.Add(1);
    return false;
  }
  if (shard.map.find(key) != shard.map.end()) {
    // A concurrent compute already published this key. By the determinism
    // contract its value is byte-identical to ours.
    return true;
  }
  if (!ReserveBytes(charged, shard)) {
    kind_counters_[kind_index].rejected.fetch_add(1, std::memory_order_relaxed);
    metrics.rejected.Add(1);
    return false;
  }
  Entry entry;
  entry.value = std::move(value);
  entry.charged_bytes = charged;
  entry.insert_seq = insert_seq_.fetch_add(1, std::memory_order_relaxed);
  entry.kind = key.kind;
  shard.map.emplace(key, std::move(entry));
  kind_counters_[kind_index].insertions.fetch_add(1,
                                                  std::memory_order_relaxed);
  kind_counters_[kind_index].bytes_used.fetch_add(charged,
                                                  std::memory_order_relaxed);
  kind_counters_[kind_index].entries.fetch_add(1, std::memory_order_relaxed);
  live_entries_.fetch_add(1, std::memory_order_relaxed);
  metrics.insertions.Add(1);
  metrics.entries.Add(1);
  metrics.bytes.Add(static_cast<std::int64_t>(charged));
  return true;
}

void CacheManager::BeginEpoch(std::uint64_t snapshot_identity) {
  // Epoch first: any in-flight compute holding the old token is refused at
  // Insert, so no value derived from the stale snapshot can surface later.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  snapshot_identity_.store(snapshot_identity, std::memory_order_relaxed);
  CacheMetrics& metrics = CacheMetrics::Get();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->map) {
      const std::size_t kind_index = static_cast<std::size_t>(entry.kind);
      kind_counters_[kind_index].bytes_used.fetch_sub(
          entry.charged_bytes, std::memory_order_relaxed);
      kind_counters_[kind_index].entries.fetch_sub(1,
                                                   std::memory_order_relaxed);
      live_entries_.fetch_sub(1, std::memory_order_relaxed);
      ReleaseBytes(entry.charged_bytes);
      metrics.entries.Add(-1);
      metrics.bytes.Add(-static_cast<std::int64_t>(entry.charged_bytes));
    }
    shard->map.clear();
  }
  flushes_.fetch_add(1, std::memory_order_relaxed);
  metrics.flushes.Add(1);
}

CacheStats CacheManager::TotalStats() const {
  CacheStats stats;
  for (std::size_t k = 0; k < kNumCacheKinds; ++k) {
    const KindCounters& c = kind_counters_[k];
    stats.hits += c.hits.load(std::memory_order_relaxed);
    stats.misses += c.misses.load(std::memory_order_relaxed);
    stats.insertions += c.insertions.load(std::memory_order_relaxed);
    stats.evictions += c.evictions.load(std::memory_order_relaxed);
    stats.rejected += c.rejected.load(std::memory_order_relaxed);
  }
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.bytes_used = bytes_used();
  stats.bytes_highwater = bytes_highwater();
  stats.entries = live_entries_.load(std::memory_order_relaxed);
  return stats;
}

CacheStats CacheManager::KindStats(CacheKind kind) const {
  const KindCounters& c = kind_counters_[static_cast<std::size_t>(kind)];
  CacheStats stats;
  stats.hits = c.hits.load(std::memory_order_relaxed);
  stats.misses = c.misses.load(std::memory_order_relaxed);
  stats.insertions = c.insertions.load(std::memory_order_relaxed);
  stats.evictions = c.evictions.load(std::memory_order_relaxed);
  stats.rejected = c.rejected.load(std::memory_order_relaxed);
  stats.flushes = flushes_.load(std::memory_order_relaxed);
  stats.bytes_used = c.bytes_used.load(std::memory_order_relaxed);
  stats.bytes_highwater = bytes_highwater();
  stats.entries = c.entries.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cache
}  // namespace qdcbir
