#include "qdcbir/features/color_moments.h"

#include "qdcbir/core/stats.h"
#include "qdcbir/image/color.h"

namespace qdcbir {

std::array<double, kColorMomentDim> ComputeColorMoments(const Image& image) {
  MomentAccumulator h_acc, s_acc, v_acc;
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const Hsv hsv = RgbToHsv(image.At(x, y));
      h_acc.Add(hsv.h / 360.0);
      s_acc.Add(hsv.s);
      v_acc.Add(hsv.v);
    }
  }
  return {h_acc.mean(), h_acc.stddev(), h_acc.skewness_cuberoot(),
          s_acc.mean(), s_acc.stddev(), s_acc.skewness_cuberoot(),
          v_acc.mean(), v_acc.stddev(), v_acc.skewness_cuberoot()};
}

}  // namespace qdcbir
