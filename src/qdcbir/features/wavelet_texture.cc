#include "qdcbir/features/wavelet_texture.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "qdcbir/image/color.h"

namespace qdcbir {

namespace {

double LogEnergy(const std::vector<double>& band) {
  if (band.empty()) return 0.0;
  double sum = 0.0;
  for (double v : band) sum += v * v;
  return std::log1p(sum / static_cast<double>(band.size()));
}

/// Pads `input` to even dimensions by edge replication.
std::vector<double> PadToEven(const std::vector<double>& input, int& width,
                              int& height) {
  const int w2 = width + (width % 2);
  const int h2 = height + (height % 2);
  if (w2 == width && h2 == height) return input;
  std::vector<double> out(static_cast<std::size_t>(w2) * h2);
  for (int y = 0; y < h2; ++y) {
    const int sy = y < height ? y : height - 1;
    for (int x = 0; x < w2; ++x) {
      const int sx = x < width ? x : width - 1;
      out[static_cast<std::size_t>(y) * w2 + x] =
          input[static_cast<std::size_t>(sy) * width + sx];
    }
  }
  width = w2;
  height = h2;
  return out;
}

}  // namespace

HaarSubbands HaarTransform2D(const std::vector<double>& input, int width,
                             int height) {
  assert(width % 2 == 0 && height % 2 == 0);
  assert(static_cast<std::size_t>(width) * height == input.size());
  HaarSubbands out;
  out.width = width / 2;
  out.height = height / 2;
  const std::size_t n =
      static_cast<std::size_t>(out.width) * static_cast<std::size_t>(out.height);
  out.ll.resize(n);
  out.lh.resize(n);
  out.hl.resize(n);
  out.hh.resize(n);

  auto in = [&](int x, int y) {
    return input[static_cast<std::size_t>(y) * width + x];
  };
  for (int y = 0; y < out.height; ++y) {
    for (int x = 0; x < out.width; ++x) {
      const double a = in(2 * x, 2 * y);
      const double b = in(2 * x + 1, 2 * y);
      const double c = in(2 * x, 2 * y + 1);
      const double d = in(2 * x + 1, 2 * y + 1);
      const std::size_t i = static_cast<std::size_t>(y) * out.width + x;
      out.ll[i] = (a + b + c + d) / 2.0;   // orthonormal Haar: scale by 1/2
      out.hl[i] = (a - b + c - d) / 2.0;   // horizontal detail
      out.lh[i] = (a + b - c - d) / 2.0;   // vertical detail
      out.hh[i] = (a - b - c + d) / 2.0;   // diagonal detail
    }
  }
  return out;
}

std::array<double, kWaveletTextureDim> ComputeWaveletTexture(
    const Image& image) {
  std::array<double, kWaveletTextureDim> features{};
  if (image.empty()) return features;

  int w = image.width();
  int h = image.height();
  std::vector<double> gray(static_cast<std::size_t>(w) * h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      gray[static_cast<std::size_t>(y) * w + x] = Luma(image.At(x, y)) / 255.0;
    }
  }

  // Light 3x3 box prefilter. Haar subband energies are sensitive to the
  // dyadic alignment of sharp edges (a one-pixel shift flips coefficient
  // parity); the blur spreads edge energy so the descriptor varies smoothly
  // under sub-pixel object motion.
  {
    std::vector<double> blurred(gray.size());
    auto at = [&](int x, int y) {
      x = std::clamp(x, 0, w - 1);
      y = std::clamp(y, 0, h - 1);
      return gray[static_cast<std::size_t>(y) * w + x];
    };
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        double sum = 0.0;
        for (int dy = -1; dy <= 1; ++dy) {
          for (int dx = -1; dx <= 1; ++dx) sum += at(x + dx, y + dy);
        }
        blurred[static_cast<std::size_t>(y) * w + x] = sum / 9.0;
      }
    }
    gray = std::move(blurred);
  }

  std::size_t fi = 1;  // features[0] reserved for the deepest LL band
  for (int level = 0; level < kWaveletLevels; ++level) {
    if (w < 2 || h < 2) break;  // too small to decompose further
    gray = PadToEven(gray, w, h);
    HaarSubbands bands = HaarTransform2D(gray, w, h);
    features[fi++] = LogEnergy(bands.lh);
    features[fi++] = LogEnergy(bands.hl);
    features[fi++] = LogEnergy(bands.hh);
    gray = std::move(bands.ll);
    w = bands.width;
    h = bands.height;
    if (level == kWaveletLevels - 1) features[0] = LogEnergy(gray);
  }
  return features;
}

}  // namespace qdcbir
