#ifndef QDCBIR_FEATURES_COLOR_MOMENTS_H_
#define QDCBIR_FEATURES_COLOR_MOMENTS_H_

#include <array>

#include "qdcbir/image/image.h"

namespace qdcbir {

/// Number of color-moment features: 3 moments x 3 HSV channels.
inline constexpr std::size_t kColorMomentDim = 9;

/// Computes the 9 color-moment features of Stricker & Orengo (SPIE'95):
/// for each HSV channel, the mean, the standard deviation, and the signed
/// cube root of the third central moment ("skewness").
///
/// Channel scaling: h is normalized to [0, 1] (dividing by 360) so all nine
/// features live on comparable scales before database-level normalization.
///
/// Layout: [h_mean, h_std, h_skew, s_mean, s_std, s_skew, v_mean, v_std,
/// v_skew].
std::array<double, kColorMomentDim> ComputeColorMoments(const Image& image);

}  // namespace qdcbir

#endif  // QDCBIR_FEATURES_COLOR_MOMENTS_H_
