#ifndef QDCBIR_FEATURES_WAVELET_TEXTURE_H_
#define QDCBIR_FEATURES_WAVELET_TEXTURE_H_

#include <array>
#include <vector>

#include "qdcbir/image/image.h"

namespace qdcbir {

/// Number of wavelet-texture features: LL of the deepest level plus
/// LH/HL/HH of 3 decomposition levels = 1 + 3*3 = 10.
inline constexpr std::size_t kWaveletTextureDim = 10;
inline constexpr int kWaveletLevels = 3;

/// One level of the 2-D Haar wavelet transform of `input` (row-major,
/// `width` x `height`, both even; callers pad first). Outputs four half-size
/// subbands.
struct HaarSubbands {
  int width = 0;   ///< subband width  (input width / 2)
  int height = 0;  ///< subband height (input height / 2)
  std::vector<double> ll, lh, hl, hh;
};
HaarSubbands HaarTransform2D(const std::vector<double>& input, int width,
                             int height);

/// Computes the 10 wavelet-based texture features (Smith & Chang, ICIP'94
/// style): a 3-level Haar decomposition of the grayscale image; the feature
/// is the log-energy (log(1 + mean squared coefficient)) of each of the nine
/// detail subbands plus the deepest approximation subband.
///
/// Layout: [LL3, LH1, HL1, HH1, LH2, HL2, HH2, LH3, HL3, HH3].
std::array<double, kWaveletTextureDim> ComputeWaveletTexture(
    const Image& image);

}  // namespace qdcbir

#endif  // QDCBIR_FEATURES_WAVELET_TEXTURE_H_
