#ifndef QDCBIR_FEATURES_EDGE_STRUCTURE_H_
#define QDCBIR_FEATURES_EDGE_STRUCTURE_H_

#include <array>
#include <vector>

#include "qdcbir/image/image.h"

namespace qdcbir {

/// Number of edge-based structural features: 12 orientation-histogram bins +
/// 1 global edge density + 4 quadrant edge densities + 1 mean edge strength.
inline constexpr std::size_t kEdgeStructureDim = 18;

/// Per-pixel gradient field (Sobel operator over the grayscale image).
struct GradientField {
  int width = 0;
  int height = 0;
  std::vector<double> magnitude;    ///< gradient magnitude per pixel
  std::vector<double> orientation;  ///< gradient orientation in [0, pi)
};

/// Computes Sobel gradients of `image` (border pixels use replicated edges).
GradientField ComputeGradients(const Image& image);

/// Computes the 18 edge-based structural features in the spirit of
/// Zhou & Huang's edge-based structural descriptor (PRL 2000): a 12-bin
/// magnitude-weighted edge-orientation histogram (normalized to sum 1 when
/// any edge mass exists), the fraction of pixels whose gradient magnitude
/// exceeds `edge_threshold`, the same fraction per image quadrant, and the
/// mean gradient magnitude (scaled to [0, ~1]).
///
/// Layout: [hist0..hist11, density, q0, q1, q2, q3, mean_strength].
std::array<double, kEdgeStructureDim> ComputeEdgeStructure(
    const Image& image, double edge_threshold = 0.25);

}  // namespace qdcbir

#endif  // QDCBIR_FEATURES_EDGE_STRUCTURE_H_
