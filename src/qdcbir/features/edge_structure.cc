#include "qdcbir/features/edge_structure.h"

#include <algorithm>
#include <cmath>

#include "qdcbir/image/color.h"

namespace qdcbir {

GradientField ComputeGradients(const Image& image) {
  GradientField field;
  field.width = image.width();
  field.height = image.height();
  const std::size_t n = image.pixel_count();
  field.magnitude.assign(n, 0.0);
  field.orientation.assign(n, 0.0);
  if (image.empty()) return field;

  const int w = image.width();
  const int h = image.height();
  auto gray = [&](int x, int y) {
    x = std::clamp(x, 0, w - 1);
    y = std::clamp(y, 0, h - 1);
    return Luma(image.At(x, y)) / 255.0;
  };

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const double gx = gray(x + 1, y - 1) + 2.0 * gray(x + 1, y) +
                        gray(x + 1, y + 1) - gray(x - 1, y - 1) -
                        2.0 * gray(x - 1, y) - gray(x - 1, y + 1);
      const double gy = gray(x - 1, y + 1) + 2.0 * gray(x, y + 1) +
                        gray(x + 1, y + 1) - gray(x - 1, y - 1) -
                        2.0 * gray(x, y - 1) - gray(x + 1, y - 1);
      const std::size_t i = static_cast<std::size_t>(y) * w + x;
      field.magnitude[i] = std::sqrt(gx * gx + gy * gy);
      double theta = std::atan2(gy, gx);  // (-pi, pi]
      if (theta < 0.0) theta += M_PI;     // fold to [0, pi)
      if (theta >= M_PI) theta -= M_PI;
      field.orientation[i] = theta;
    }
  }
  return field;
}

std::array<double, kEdgeStructureDim> ComputeEdgeStructure(
    const Image& image, double edge_threshold) {
  std::array<double, kEdgeStructureDim> features{};
  if (image.empty()) return features;

  constexpr int kBins = 12;
  const GradientField field = ComputeGradients(image);
  const int w = field.width;
  const int h = field.height;

  double hist[kBins] = {0.0};
  double hist_mass = 0.0;
  double mag_sum = 0.0;
  std::size_t edge_count = 0;
  std::size_t quadrant_edges[4] = {0, 0, 0, 0};
  std::size_t quadrant_pixels[4] = {0, 0, 0, 0};

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::size_t i = static_cast<std::size_t>(y) * w + x;
      const double mag = field.magnitude[i];
      mag_sum += mag;
      const int quadrant = (y >= h / 2 ? 2 : 0) + (x >= w / 2 ? 1 : 0);
      quadrant_pixels[quadrant] += 1;
      if (mag > edge_threshold) {
        edge_count += 1;
        quadrant_edges[quadrant] += 1;
        // Soft assignment across the two nearest bins (circular), so small
        // rotations shift the histogram smoothly instead of flickering
        // whole pixels between bins.
        const double pos = field.orientation[i] / M_PI * kBins - 0.5;
        const double base = std::floor(pos);
        const double frac = pos - base;
        const int lo_bin = (static_cast<int>(base) % kBins + kBins) % kBins;
        const int hi_bin = (lo_bin + 1) % kBins;
        hist[lo_bin] += mag * (1.0 - frac);
        hist[hi_bin] += mag * frac;
        hist_mass += mag;
      }
    }
  }

  for (int b = 0; b < kBins; ++b) {
    features[b] = hist_mass > 0.0 ? hist[b] / hist_mass : 0.0;
  }
  const double npix = static_cast<double>(image.pixel_count());
  features[12] = static_cast<double>(edge_count) / npix;
  for (int q = 0; q < 4; ++q) {
    features[13 + q] =
        quadrant_pixels[q] > 0
            ? static_cast<double>(quadrant_edges[q]) / quadrant_pixels[q]
            : 0.0;
  }
  // Sobel magnitude on unit-scaled gray maxes out near 4*sqrt(2); scale to
  // keep the feature in the same ballpark as the others.
  features[17] = mag_sum / npix / (4.0 * std::sqrt(2.0));
  return features;
}

}  // namespace qdcbir
