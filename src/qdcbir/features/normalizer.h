#ifndef QDCBIR_FEATURES_NORMALIZER_H_
#define QDCBIR_FEATURES_NORMALIZER_H_

#include <string>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"

namespace qdcbir {

/// Per-dimension z-score normalizer fit on a database of feature vectors.
///
/// Raw feature groups (color moments, wavelet energies, edge statistics)
/// have very different numeric ranges; without normalization a Euclidean
/// metric would be dominated by one group. `Fit` learns per-dimension mean
/// and standard deviation; `Transform` maps x_i -> (x_i - mu_i) / sigma_i
/// (dimensions with sigma == 0 are mapped to 0).
class FeatureNormalizer {
 public:
  FeatureNormalizer() = default;

  /// Learns the statistics of `vectors`. All vectors must share one
  /// dimensionality and the set must be non-empty.
  Status Fit(const std::vector<FeatureVector>& vectors);

  /// Whether `Fit` (or deserialization) has provided statistics.
  bool fitted() const { return !mean_.empty(); }
  std::size_t dim() const { return mean_.size(); }

  /// Normalizes one vector (dimensions must match the fitted statistics).
  StatusOr<FeatureVector> Transform(const FeatureVector& v) const;

  /// Normalizes a batch in place.
  Status TransformInPlace(std::vector<FeatureVector>& vectors) const;

  /// Maps a normalized vector back to raw feature space.
  StatusOr<FeatureVector> InverseTransform(const FeatureVector& v) const;

  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return stddev_; }

  /// Serialization (little binary header + doubles), for persisting built
  /// databases alongside the RFS tree.
  std::string Serialize() const;
  static StatusOr<FeatureNormalizer> Deserialize(const std::string& bytes);

 private:
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace qdcbir

#endif  // QDCBIR_FEATURES_NORMALIZER_H_
