#include "qdcbir/features/normalizer.h"

#include <cmath>
#include <cstring>

#include "qdcbir/core/stats.h"

namespace qdcbir {

Status FeatureNormalizer::Fit(const std::vector<FeatureVector>& vectors) {
  if (vectors.empty()) {
    return Status::InvalidArgument("cannot fit normalizer on empty set");
  }
  const std::size_t dim = vectors.front().dim();
  for (const FeatureVector& v : vectors) {
    if (v.dim() != dim) {
      return Status::InvalidArgument("inconsistent feature dimensionality");
    }
  }
  std::vector<MomentAccumulator> acc(dim);
  for (const FeatureVector& v : vectors) {
    for (std::size_t i = 0; i < dim; ++i) acc[i].Add(v[i]);
  }
  mean_.resize(dim);
  stddev_.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) {
    mean_[i] = acc[i].mean();
    stddev_[i] = acc[i].stddev();
  }
  return Status::Ok();
}

StatusOr<FeatureVector> FeatureNormalizer::Transform(
    const FeatureVector& v) const {
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (v.dim() != dim()) {
    return Status::InvalidArgument("dimension mismatch in Transform");
  }
  FeatureVector out(v.dim());
  for (std::size_t i = 0; i < v.dim(); ++i) {
    out[i] = stddev_[i] > 0.0 ? (v[i] - mean_[i]) / stddev_[i] : 0.0;
  }
  return out;
}

Status FeatureNormalizer::TransformInPlace(
    std::vector<FeatureVector>& vectors) const {
  for (FeatureVector& v : vectors) {
    StatusOr<FeatureVector> t = Transform(v);
    if (!t.ok()) return t.status();
    v = std::move(t).value();
  }
  return Status::Ok();
}

StatusOr<FeatureVector> FeatureNormalizer::InverseTransform(
    const FeatureVector& v) const {
  if (!fitted()) return Status::FailedPrecondition("normalizer not fitted");
  if (v.dim() != dim()) {
    return Status::InvalidArgument("dimension mismatch in InverseTransform");
  }
  FeatureVector out(v.dim());
  for (std::size_t i = 0; i < v.dim(); ++i) {
    out[i] = v[i] * stddev_[i] + mean_[i];
  }
  return out;
}

std::string FeatureNormalizer::Serialize() const {
  const std::uint64_t dim = mean_.size();
  std::string out;
  out.reserve(8 + dim * 16);
  out.append(reinterpret_cast<const char*>(&dim), sizeof(dim));
  auto append_doubles = [&out](const std::vector<double>& v) {
    out.append(reinterpret_cast<const char*>(v.data()),
               v.size() * sizeof(double));
  };
  append_doubles(mean_);
  append_doubles(stddev_);
  return out;
}

StatusOr<FeatureNormalizer> FeatureNormalizer::Deserialize(
    const std::string& bytes) {
  if (bytes.size() < sizeof(std::uint64_t)) {
    return Status::IoError("normalizer blob too short");
  }
  std::uint64_t dim = 0;
  std::memcpy(&dim, bytes.data(), sizeof(dim));
  const std::size_t expected = sizeof(dim) + 2 * dim * sizeof(double);
  if (bytes.size() != expected) {
    return Status::IoError("normalizer blob size mismatch");
  }
  FeatureNormalizer n;
  n.mean_.resize(dim);
  n.stddev_.resize(dim);
  const char* p = bytes.data() + sizeof(dim);
  std::memcpy(n.mean_.data(), p, dim * sizeof(double));
  std::memcpy(n.stddev_.data(), p + dim * sizeof(double),
              dim * sizeof(double));
  return n;
}

}  // namespace qdcbir
