#include "qdcbir/features/extractor.h"

#include "qdcbir/features/color_moments.h"
#include "qdcbir/features/edge_structure.h"
#include "qdcbir/features/wavelet_texture.h"
#include "qdcbir/image/color.h"

namespace qdcbir {

std::vector<double> MakeGroupWeights(double color_weight,
                                     double texture_weight,
                                     double edge_weight) {
  std::vector<double> weights(kPaperFeatureDim, 0.0);
  for (std::size_t i = kPaperLayout.color_begin; i < kPaperLayout.color_end;
       ++i) {
    weights[i] = color_weight;
  }
  for (std::size_t i = kPaperLayout.texture_begin;
       i < kPaperLayout.texture_end; ++i) {
    weights[i] = texture_weight;
  }
  for (std::size_t i = kPaperLayout.edge_begin; i < kPaperLayout.edge_end;
       ++i) {
    weights[i] = edge_weight;
  }
  return weights;
}

const char* ViewpointChannelName(ViewpointChannel channel) {
  switch (channel) {
    case ViewpointChannel::kOriginal:
      return "original";
    case ViewpointChannel::kNegative:
      return "negative";
    case ViewpointChannel::kGray:
      return "gray";
    case ViewpointChannel::kGrayNegative:
      return "gray_negative";
  }
  return "unknown";
}

Image ApplyViewpointChannel(const Image& image, ViewpointChannel channel) {
  switch (channel) {
    case ViewpointChannel::kOriginal:
      return image;
    case ViewpointChannel::kNegative:
      return ToNegative(image);
    case ViewpointChannel::kGray:
      return ToGrayscale(image);
    case ViewpointChannel::kGrayNegative:
      return ToGrayNegative(image);
  }
  return image;
}

StatusOr<FeatureVector> FeatureExtractor::Extract(const Image& image) const {
  if (image.empty()) {
    return Status::InvalidArgument("cannot extract features from empty image");
  }
  FeatureVector out(kPaperFeatureDim);
  const auto color = ComputeColorMoments(image);
  const auto texture = ComputeWaveletTexture(image);
  const auto edge = ComputeEdgeStructure(image);

  std::size_t i = 0;
  for (double v : color) out[i++] = v;
  for (double v : texture) out[i++] = v;
  for (double v : edge) out[i++] = v;
  return out;
}

StatusOr<FeatureVector> FeatureExtractor::ExtractChannel(
    const Image& image, ViewpointChannel channel) const {
  if (channel == ViewpointChannel::kOriginal) return Extract(image);
  return Extract(ApplyViewpointChannel(image, channel));
}

}  // namespace qdcbir
