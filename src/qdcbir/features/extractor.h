#ifndef QDCBIR_FEATURES_EXTRACTOR_H_
#define QDCBIR_FEATURES_EXTRACTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/image/image.h"

namespace qdcbir {

/// Index ranges of the three feature groups inside the 37-D vector.
struct FeatureLayout {
  std::size_t color_begin = 0;
  std::size_t color_end = 9;
  std::size_t texture_begin = 9;
  std::size_t texture_end = 19;
  std::size_t edge_begin = 19;
  std::size_t edge_end = 37;
};

/// The paper's feature layout: [color moments | wavelet texture | edge].
inline constexpr FeatureLayout kPaperLayout{};

/// The four "viewpoint channels" the paper's Multiple Viewpoints baseline
/// extracts features from: the original image, its color negative, its
/// grayscale (black-white) version, and the black-white negative.
enum class ViewpointChannel {
  kOriginal = 0,
  kNegative = 1,
  kGray = 2,
  kGrayNegative = 3,
};
inline constexpr int kNumViewpointChannels = 4;
const char* ViewpointChannelName(ViewpointChannel channel);

/// Applies a viewpoint channel transform to an image.
Image ApplyViewpointChannel(const Image& image, ViewpointChannel channel);

/// Builds a 37-dimensional weight vector assigning one importance weight to
/// each feature *group* — the paper's §6 future-work extension where "the
/// user may define color as the most important feature". Weights must be
/// non-negative; e.g. `MakeGroupWeights(3.0, 1.0, 1.0)` triples the
/// influence of the color moments.
std::vector<double> MakeGroupWeights(double color_weight,
                                     double texture_weight,
                                     double edge_weight);

/// Extracts the paper's 37-dimensional feature vector from raster images.
///
/// Thread-compatible: `Extract` is const and reentrant.
class FeatureExtractor {
 public:
  FeatureExtractor() = default;

  /// Extracts the 37-D vector: 9 color moments, 10 wavelet-texture features,
  /// 18 edge-structure features. Fails on empty images.
  StatusOr<FeatureVector> Extract(const Image& image) const;

  /// Extracts the 37-D vector from the image as seen through `channel`.
  StatusOr<FeatureVector> ExtractChannel(const Image& image,
                                         ViewpointChannel channel) const;

  std::size_t dim() const { return kPaperFeatureDim; }
};

}  // namespace qdcbir

#endif  // QDCBIR_FEATURES_EXTRACTOR_H_
