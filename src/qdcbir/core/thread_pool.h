#ifndef QDCBIR_CORE_THREAD_POOL_H_
#define QDCBIR_CORE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/obs/span_stack.h"
#include "qdcbir/obs/trace_context.h"

namespace qdcbir {

/// A fixed-size worker pool for the engine's embarrassingly parallel stages:
/// localized subqueries, baseline distance scans, per-node representative
/// selection, and batched evaluation sessions.
///
/// Design properties:
///  - **Caller participation.** `Run` / `ParallelFor` execute tasks on the
///    calling thread too, so `ThreadPool(1)` spawns no threads and runs
///    strictly sequentially — the reference path for determinism tests.
///  - **Nesting safety.** A task may itself call `Run`/`ParallelFor` on the
///    same pool (batched sessions run parallel subqueries). While waiting
///    for its own batch, a caller drains queued tasks instead of blocking,
///    so a saturated pool cannot deadlock on nested waits.
///  - **Exception propagation.** The first exception thrown by a task of a
///    batch is captured and rethrown on the thread that submitted the batch
///    once every task of the batch has finished.
///
/// Determinism contract: the pool itself makes no ordering promises between
/// tasks of a batch; callers must write results into per-task slots (or
/// merge associatively) so that outputs are independent of scheduling. All
/// in-tree call sites follow this, which is what keeps rankings
/// byte-identical across thread counts.
class ThreadPool {
 public:
  /// Creates a pool of `threads` total execution lanes (the caller counts
  /// as one, so `threads - 1` workers are spawned). `threads == 0` picks
  /// `DefaultThreadCount()`.
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Total execution lanes (configured size, not spawned workers).
  std::size_t size() const { return threads_; }

  /// Runs every task to completion; the calling thread helps. Rethrows the
  /// first exception raised by a task after the whole batch has finished.
  void Run(std::vector<std::function<void()>> tasks);

  /// Fire-and-forget dispatch: enqueues `task` and returns immediately
  /// (runs inline on a sequential pool). The destructor drains the queue,
  /// so every posted task finishes before the pool is destroyed. Posted
  /// work has no submitter to rethrow on; an exception from a posted task
  /// is discarded, so tasks should handle their own failures.
  void Post(std::function<void()> task);

  /// Calls `body(i)` for every `i` in `[begin, end)`, partitioned into
  /// chunks across the pool. `body` must be safe to invoke concurrently
  /// for distinct indices.
  template <typename Body>
  void ParallelFor(std::size_t begin, std::size_t end, const Body& body) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0) return;
    if (threads_ <= 1 || n == 1) {
      for (std::size_t i = begin; i < end; ++i) body(i);
      return;
    }
    ParallelForChunks(begin, end, /*num_chunks=*/threads_ * 4,
                      [&body](std::size_t, std::size_t lo, std::size_t hi) {
                        for (std::size_t i = lo; i < hi; ++i) body(i);
                      });
  }

  /// Chunked variant for per-thread accumulators (e.g. partial top-k
  /// heaps): calls `fn(chunk_index, lo, hi)` for `num_chunks` contiguous
  /// partitions of `[begin, end)`. Chunk count is clamped to the range
  /// size. Results gathered per chunk index are scheduling-independent.
  template <typename Fn>
  void ParallelForChunks(std::size_t begin, std::size_t end,
                         std::size_t num_chunks, const Fn& fn) {
    const std::size_t n = end > begin ? end - begin : 0;
    if (n == 0 || num_chunks == 0) return;
    num_chunks = num_chunks < n ? num_chunks : n;
    if (threads_ <= 1 || num_chunks == 1) {
      fn(0, begin, end);
      return;
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(num_chunks);
    for (std::size_t c = 0; c < num_chunks; ++c) {
      const std::size_t lo = begin + n * c / num_chunks;
      const std::size_t hi = begin + n * (c + 1) / num_chunks;
      tasks.push_back([&fn, c, lo, hi] { fn(c, lo, hi); });
    }
    Run(std::move(tasks));
  }

  /// The `QDCBIR_THREADS` environment override when set to a positive
  /// integer; otherwise `std::thread::hardware_concurrency()` (at least 1).
  static std::size_t DefaultThreadCount();

  /// The process-wide pool, sized by `DefaultThreadCount()` at first use.
  /// Engines use it whenever no explicit pool is configured.
  static ThreadPool& Global();

 private:
  /// Completion state shared by the tasks of one `Run` call.
  struct Batch {
    std::size_t pending = 0;
    std::exception_ptr error;
    /// True for `Post` batches: no submitter waits, so an exception has
    /// nowhere to rethrow and is logged instead of silently dropped.
    bool detached = false;
  };

  struct Task {
    std::function<void()> fn;
    std::shared_ptr<Batch> batch;
    std::uint64_t enqueue_ns = 0;  ///< queue-wait measurement origin
    /// The submitter's trace context, captured at enqueue and restored
    /// around execution, so spans opened inside pool tasks keep their
    /// parent links (nested ParallelFor included). Inline paths skip the
    /// capture — the submitter's context is already current.
    obs::TraceContext trace;
    /// The submitter's innermost span name at enqueue, re-opened on the
    /// worker's signal-safe span stack: profiler samples taken inside the
    /// task attribute to the span that scheduled it (nullptr = none).
    const char* enqueue_span = nullptr;
    /// The submitter's active resource sink, installed for the task's
    /// duration so engine taps on workers count toward the right session.
    obs::ResourceAccumulator* resources = nullptr;
    /// The submitter's active per-leaf access sink, propagated the same
    /// way so index-access taps on workers land in the right session.
    obs::AccessAccumulator* access = nullptr;
  };

  void WorkerLoop();

  /// Pops and executes one queued task. `lock` must hold `mu_`; it is
  /// released while the task runs. Returns false if the queue was empty.
  bool RunOneTask(std::unique_lock<std::mutex>& lock);

  std::size_t threads_;

  /// Shared pool telemetry (see docs/observability.md): queue depth gauge,
  /// task wait/run latency histograms, executed-task and busy-time
  /// counters. All pools record into the same named metrics; the counters
  /// are per-thread sharded, so recording never contends on the hot path.
  obs::Gauge& queue_depth_;
  obs::Histogram& task_wait_ns_;
  obs::Histogram& task_run_ns_;
  obs::Counter& tasks_executed_;
  obs::Counter& busy_ns_;

  std::vector<std::thread> workers_;
  std::deque<Task> queue_;
  std::mutex mu_;
  std::condition_variable work_cv_;  ///< wakes idle workers
  std::condition_variable done_cv_;  ///< wakes batch submitters
  bool stop_ = false;
};

}  // namespace qdcbir

#endif  // QDCBIR_CORE_THREAD_POOL_H_
