#ifndef QDCBIR_CORE_BYTE_SOURCE_H_
#define QDCBIR_CORE_BYTE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "qdcbir/core/status.h"

namespace qdcbir {

/// Random-access byte stream abstraction behind the snapshot loaders.
///
/// `ReadAt` must be safe to call concurrently from multiple threads on the
/// same source — the async loader issues one read per chunk across the
/// thread pool. Implementations are positionless (no shared cursor).
///
/// The contract is all-or-nothing: `ReadAt` either fills the whole `[offset,
/// offset + n)` window or returns a non-OK status (`kTruncated` when the
/// window extends past `Size()`, `kIoError` for operational failures). This
/// is what makes fault injection precise: the test shim
/// (`tests/support/fault_stream.h`) wraps any source and turns byte-exact
/// truncations, bit flips and failing operations into the same typed errors
/// production would see.
class ByteSource {
 public:
  virtual ~ByteSource() = default;

  /// Total length of the stream in bytes.
  virtual std::uint64_t Size() const = 0;

  /// Copies `[offset, offset + n)` into `out` (which must hold `n` bytes).
  virtual Status ReadAt(std::uint64_t offset, std::size_t n,
                        char* out) const = 0;
};

/// A `ByteSource` over an in-memory byte string. Does not own the bytes;
/// the string must outlive the source.
class MemoryByteSource : public ByteSource {
 public:
  explicit MemoryByteSource(const std::string& bytes) : bytes_(bytes) {}

  std::uint64_t Size() const override { return bytes_.size(); }
  Status ReadAt(std::uint64_t offset, std::size_t n,
                char* out) const override;

 private:
  const std::string& bytes_;
};

/// A `ByteSource` over a file, reading with positioned I/O (`pread`), so
/// concurrent chunk reads need no locking and no shared file position.
class FileByteSource : public ByteSource {
 public:
  /// Opens `path`; fails with `kIoError` when it cannot be opened or is not
  /// a regular seekable file.
  static StatusOr<std::unique_ptr<FileByteSource>> Open(
      const std::string& path);

  ~FileByteSource() override;

  FileByteSource(const FileByteSource&) = delete;
  FileByteSource& operator=(const FileByteSource&) = delete;

  std::uint64_t Size() const override { return size_; }
  Status ReadAt(std::uint64_t offset, std::size_t n,
                char* out) const override;

 private:
  FileByteSource(int fd, std::uint64_t size, std::string path)
      : fd_(fd), size_(size), path_(std::move(path)) {}

  int fd_;
  std::uint64_t size_;
  std::string path_;
};

}  // namespace qdcbir

#endif  // QDCBIR_CORE_BYTE_SOURCE_H_
