#include "qdcbir/core/byte_source.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qdcbir {

Status MemoryByteSource::ReadAt(std::uint64_t offset, std::size_t n,
                                char* out) const {
  if (offset > bytes_.size() || n > bytes_.size() - offset) {
    return Status::Truncated("read past end of memory source");
  }
  std::memcpy(out, bytes_.data() + offset, n);
  return Status::Ok();
}

StatusOr<std::unique_ptr<FileByteSource>> FileByteSource::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open for reading: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("not a regular file: " + path);
  }
  return std::unique_ptr<FileByteSource>(new FileByteSource(
      fd, static_cast<std::uint64_t>(st.st_size), path));
}

FileByteSource::~FileByteSource() {
  if (fd_ >= 0) ::close(fd_);
}

Status FileByteSource::ReadAt(std::uint64_t offset, std::size_t n,
                              char* out) const {
  if (offset > size_ || n > size_ - offset) {
    return Status::Truncated("read past end of file: " + path_);
  }
  std::size_t done = 0;
  while (done < n) {
    const ssize_t got =
        ::pread(fd_, out + done, n - done,
                static_cast<off_t>(offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IoError("pread failed: " + path_ + " (" +
                             std::strerror(errno) + ")");
    }
    if (got == 0) {
      // The file shrank under us (concurrent truncation).
      return Status::Truncated("unexpected EOF: " + path_);
    }
    done += static_cast<std::size_t>(got);
  }
  return Status::Ok();
}

}  // namespace qdcbir
