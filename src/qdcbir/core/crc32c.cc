#include "qdcbir/core/crc32c.h"

#include <array>
#include <cstring>

namespace qdcbir {

namespace {

/// Reflected Castagnoli polynomial.
constexpr std::uint32_t kPoly = 0x82f63b78u;

/// Eight 256-entry tables: table[0] is the classic byte-at-a-time table,
/// table[k] advances a byte seen k positions earlier, enabling the
/// slicing-by-8 inner loop (one table lookup per input byte, 8 bytes per
/// iteration).
struct Tables {
  std::uint32_t t[8][256];
};

const Tables& GetTables() {
  static const Tables tables = [] {
    Tables out;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      out.t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = out.t[0][i];
      for (int k = 1; k < 8; ++k) {
        crc = out.t[0][crc & 0xffu] ^ (crc >> 8);
        out.t[k][i] = crc;
      }
    }
    return out;
  }();
  return tables;
}

}  // namespace

std::uint32_t Crc32c::Extend(std::uint32_t crc, const void* data,
                             std::size_t n) {
  const Tables& tb = GetTables();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  // Byte-wise until 8-byte alignment, then slicing-by-8.
  while (n > 0 && (reinterpret_cast<std::uintptr_t>(p) & 7u) != 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    // The format is little-endian on disk and the build targets
    // little-endian hosts; fold the low word through the CRC, the high
    // word through the lookahead tables.
    crc ^= static_cast<std::uint32_t>(word);
    const std::uint32_t hi = static_cast<std::uint32_t>(word >> 32);
    crc = tb.t[7][crc & 0xffu] ^ tb.t[6][(crc >> 8) & 0xffu] ^
          tb.t[5][(crc >> 16) & 0xffu] ^ tb.t[4][(crc >> 24) & 0xffu] ^
          tb.t[3][hi & 0xffu] ^ tb.t[2][(hi >> 8) & 0xffu] ^
          tb.t[1][(hi >> 16) & 0xffu] ^ tb.t[0][(hi >> 24) & 0xffu];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xffu] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace qdcbir
