#ifndef QDCBIR_CORE_DISTANCE_H_
#define QDCBIR_CORE_DISTANCE_H_

#include <memory>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"

namespace qdcbir {

/// Abstract distance metric over feature vectors.
///
/// Implementations must be symmetric and non-negative with d(x, x) == 0.
/// `Distance` is the actual metric; `Compare` may be any monotone transform
/// of it (e.g. squared L2) and is what ranking code should call.
class DistanceMetric {
 public:
  virtual ~DistanceMetric() = default;

  /// The metric value d(a, b).
  virtual double Distance(const FeatureVector& a,
                          const FeatureVector& b) const = 0;

  /// A value monotone in `Distance`, potentially cheaper (default: same).
  virtual double Compare(const FeatureVector& a,
                         const FeatureVector& b) const {
    return Distance(a, b);
  }

  /// Short name for logs ("l2", "l1", "weighted_l2").
  virtual const char* Name() const = 0;
};

/// Euclidean distance; `Compare` returns the squared distance.
class L2Distance final : public DistanceMetric {
 public:
  double Distance(const FeatureVector& a,
                  const FeatureVector& b) const override;
  double Compare(const FeatureVector& a,
                 const FeatureVector& b) const override;
  const char* Name() const override { return "l2"; }
};

/// Manhattan (city-block) distance.
class L1Distance final : public DistanceMetric {
 public:
  double Distance(const FeatureVector& a,
                  const FeatureVector& b) const override;
  const char* Name() const override { return "l1"; }
};

/// Per-dimension weighted Euclidean distance, as used by query-point-movement
/// style relevance feedback (MindReader): d(a,b)^2 = sum_i w_i (a_i - b_i)^2.
/// Weights must be non-negative and sized to the vectors being compared:
/// the constructor aborts on a negative weight and `Compare`/`Distance`
/// abort (in every build type, not just with assertions on) when
/// `weights().size()` does not match the operand dimensionality — an
/// undersized weight vector would otherwise read out of bounds. Callers
/// with untrusted sizes should go through `Create`, which reports the
/// mismatch as a Status instead.
class WeightedL2Distance final : public DistanceMetric {
 public:
  explicit WeightedL2Distance(std::vector<double> weights);

  /// Validating factory: InvalidArgument when `weights.size() != dim` or
  /// any weight is negative / non-finite.
  static StatusOr<WeightedL2Distance> Create(std::vector<double> weights,
                                             std::size_t dim);

  double Distance(const FeatureVector& a,
                  const FeatureVector& b) const override;
  double Compare(const FeatureVector& a,
                 const FeatureVector& b) const override;
  const char* Name() const override { return "weighted_l2"; }

  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;
};

/// Squared Euclidean distance between raw double arrays of length `dim`.
/// Hot-path helper used by the index and clustering code.
double SquaredL2(const double* a, const double* b, std::size_t dim);

/// Squared Euclidean distance between two feature vectors (dims must match).
double SquaredL2(const FeatureVector& a, const FeatureVector& b);

}  // namespace qdcbir

#endif  // QDCBIR_CORE_DISTANCE_H_
