#include "qdcbir/core/distance_kernels.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {

namespace {

// Portable kernels. One accumulator per lane, dimensions in ascending
// order, no FMA (this TU is compiled without -mfma, and the multiply order
// matches core/distance.cc exactly) — see the bit-exactness contract in
// the header.

void ScalarSquaredL2(const double* tile, const double* query, std::size_t dim,
                     double* out) {
  double acc[kBlockWidth] = {0.0};
  for (std::size_t d = 0; d < dim; ++d) {
    const double* row = tile + d * kBlockWidth;
    const double q = query[d];
    for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
      const double diff = row[lane] - q;
      acc[lane] += diff * diff;
    }
  }
  std::memcpy(out, acc, sizeof(acc));
}

void ScalarWeightedL2(const double* tile, const double* query,
                      const double* weights, std::size_t dim, double* out) {
  double acc[kBlockWidth] = {0.0};
  for (std::size_t d = 0; d < dim; ++d) {
    const double* row = tile + d * kBlockWidth;
    const double q = query[d];
    const double w = weights[d];
    for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
      const double diff = row[lane] - q;
      acc[lane] += (w * diff) * diff;
    }
  }
  std::memcpy(out, acc, sizeof(acc));
}

const DistanceKernels kScalarKernels = {
    &ScalarSquaredL2,
    &ScalarWeightedL2,
    SimdLevel::kScalar,
    "scalar",
};

}  // namespace

#if defined(__x86_64__) || defined(_M_X64)
// Implemented in distance_kernels_avx2.cc (compiled with -mavx2 -mfma).
namespace internal {
void Avx2SquaredL2(const double* tile, const double* query, std::size_t dim,
                   double* out);
void Avx2WeightedL2(const double* tile, const double* query,
                    const double* weights, std::size_t dim, double* out);
}  // namespace internal

namespace {
const DistanceKernels kAvx2Kernels = {
    &internal::Avx2SquaredL2,
    &internal::Avx2WeightedL2,
    SimdLevel::kAvx2,
    "avx2",
};
}  // namespace

bool Avx2Supported() {
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
}
#else
bool Avx2Supported() { return false; }
#endif

const DistanceKernels& KernelsFor(SimdLevel level) {
#if defined(__x86_64__) || defined(_M_X64)
  if (level == SimdLevel::kAvx2 && Avx2Supported()) return kAvx2Kernels;
#else
  (void)level;
#endif
  return kScalarKernels;
}

const DistanceKernels& ActiveKernels() {
  static const DistanceKernels* const active = [] {
    SimdLevel level = Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar;
    if (const char* env = std::getenv("QDCBIR_SIMD")) {
      if (std::strcmp(env, "scalar") == 0) {
        level = SimdLevel::kScalar;
      } else if (std::strcmp(env, "avx2") == 0) {
        if (Avx2Supported()) {
          level = SimdLevel::kAvx2;
        } else {
          std::fprintf(stderr,
                       "[qdcbir] QDCBIR_SIMD=avx2 requested but this CPU "
                       "lacks avx2+fma; using scalar kernels\n");
          level = SimdLevel::kScalar;
        }
      } else if (*env != '\0') {
        std::fprintf(stderr,
                     "[qdcbir] unknown QDCBIR_SIMD=%s (want scalar|avx2); "
                     "using auto dispatch\n",
                     env);
      }
    }
    return &KernelsFor(level);
  }();
  return *active;
}

const char* ActiveSimdName() { return ActiveKernels().name; }

void AddBlockBatches(std::size_t batches) {
  static obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "dist.block.batch",
      "Batched distance-kernel tiles computed by blocked scans");
  counter.Add(batches);
}

}  // namespace qdcbir
