#ifndef QDCBIR_CORE_STATS_H_
#define QDCBIR_CORE_STATS_H_

#include <cstddef>
#include <vector>

namespace qdcbir {

/// Streaming accumulator for mean / variance / skewness (Welford-style).
///
/// Used by the feature extractors (color moments) and by the per-dimension
/// feature normalizer.
class MomentAccumulator {
 public:
  /// Adds one observation.
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance (divides by N). Zero when count() < 1.
  double variance() const;

  /// Population standard deviation.
  double stddev() const;

  /// Cube root of the third central moment, i.e. the paper's "skewness"
  /// color moment (Stricker & Orengo use E[(x-mu)^3]^(1/3), preserving sign).
  double skewness_cuberoot() const;

  /// Standardized skewness: E[(x-mu)^3] / sigma^3; zero when sigma == 0.
  double skewness_standardized() const;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations
  double m3_ = 0.0;  // sum of cubed deviations
};

/// Mean of `values` (0 for empty input).
double Mean(const std::vector<double>& values);

/// Population standard deviation of `values` (0 for inputs of size < 1).
double StdDev(const std::vector<double>& values);

/// Median of `values` (0 for empty input). Takes a copy internally.
double Median(std::vector<double> values);

/// Minimum / maximum (0 for empty input).
double Min(const std::vector<double>& values);
double Max(const std::vector<double>& values);

/// Signed cube root (std::cbrt wrapper kept for call-site clarity).
double SignedCubeRoot(double x);

}  // namespace qdcbir

#endif  // QDCBIR_CORE_STATS_H_
