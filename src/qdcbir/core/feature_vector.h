#ifndef QDCBIR_CORE_FEATURE_VECTOR_H_
#define QDCBIR_CORE_FEATURE_VECTOR_H_

#include <cassert>
#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace qdcbir {

/// Dense real-valued feature vector of an image.
///
/// The paper uses a fixed 37-dimensional vector (`kPaperFeatureDim`), but the
/// library keeps the dimensionality dynamic so that viewpoints (feature
/// subsets), PCA projections and tests can use other sizes.
class FeatureVector {
 public:
  FeatureVector() = default;

  /// Creates a zero vector of the given dimensionality.
  explicit FeatureVector(std::size_t dim) : values_(dim, 0.0) {}

  /// Creates a vector holding `values`.
  explicit FeatureVector(std::vector<double> values)
      : values_(std::move(values)) {}

  FeatureVector(std::initializer_list<double> values) : values_(values) {}

  std::size_t dim() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t i) const {
    assert(i < values_.size());
    return values_[i];
  }
  double& operator[](std::size_t i) {
    assert(i < values_.size());
    return values_[i];
  }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& values() { return values_; }

  const double* data() const { return values_.data(); }
  double* data() { return values_.data(); }

  /// Element-wise addition. Dimensions must match.
  FeatureVector& operator+=(const FeatureVector& other);
  /// Element-wise subtraction. Dimensions must match.
  FeatureVector& operator-=(const FeatureVector& other);
  /// Scalar multiplication.
  FeatureVector& operator*=(double s);

  friend FeatureVector operator+(FeatureVector a, const FeatureVector& b) {
    a += b;
    return a;
  }
  friend FeatureVector operator-(FeatureVector a, const FeatureVector& b) {
    a -= b;
    return a;
  }
  friend FeatureVector operator*(FeatureVector a, double s) {
    a *= s;
    return a;
  }
  friend FeatureVector operator*(double s, FeatureVector a) {
    a *= s;
    return a;
  }

  friend bool operator==(const FeatureVector& a, const FeatureVector& b) {
    return a.values_ == b.values_;
  }

  /// Dot product with `other`. Dimensions must match.
  double Dot(const FeatureVector& other) const;

  /// Euclidean (L2) norm.
  double Norm() const;

  /// Renders as "[v0, v1, ...]" with limited precision, for logs and tests.
  std::string ToString() const;

  /// Returns the centroid (arithmetic mean) of `points`. All points must have
  /// equal dimensionality and `points` must be non-empty.
  static FeatureVector Centroid(const std::vector<FeatureVector>& points);

 private:
  std::vector<double> values_;
};

}  // namespace qdcbir

#endif  // QDCBIR_CORE_FEATURE_VECTOR_H_
