#include "qdcbir/core/feature_vector.h"

#include <cmath>
#include <cstdio>

namespace qdcbir {

FeatureVector& FeatureVector::operator+=(const FeatureVector& other) {
  assert(dim() == other.dim());
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += other[i];
  return *this;
}

FeatureVector& FeatureVector::operator-=(const FeatureVector& other) {
  assert(dim() == other.dim());
  for (std::size_t i = 0; i < values_.size(); ++i) values_[i] -= other[i];
  return *this;
}

FeatureVector& FeatureVector::operator*=(double s) {
  for (double& v : values_) v *= s;
  return *this;
}

double FeatureVector::Dot(const FeatureVector& other) const {
  assert(dim() == other.dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < values_.size(); ++i) sum += values_[i] * other[i];
  return sum;
}

double FeatureVector::Norm() const { return std::sqrt(Dot(*this)); }

std::string FeatureVector::ToString() const {
  std::string out = "[";
  char buf[32];
  for (std::size_t i = 0; i < values_.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.4g", values_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += "]";
  return out;
}

FeatureVector FeatureVector::Centroid(
    const std::vector<FeatureVector>& points) {
  assert(!points.empty());
  FeatureVector sum(points.front().dim());
  for (const FeatureVector& p : points) sum += p;
  sum *= 1.0 / static_cast<double>(points.size());
  return sum;
}

}  // namespace qdcbir
