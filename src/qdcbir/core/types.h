#ifndef QDCBIR_CORE_TYPES_H_
#define QDCBIR_CORE_TYPES_H_

#include <cstdint>
#include <limits>

namespace qdcbir {

/// Identifier of an image in the database. Dense, 0-based.
using ImageId = std::uint32_t;

/// Identifier of a semantic category (e.g. "car") in the ground truth.
using CategoryId = std::uint32_t;

/// Identifier of a sub-concept within a category (e.g. "sedan, side view").
/// Sub-concept ids are globally unique across categories.
using SubConceptId = std::uint32_t;

/// Identifier of a node in the RFS tree / R*-tree. Dense, 0-based.
using NodeId = std::uint32_t;

inline constexpr ImageId kInvalidImageId =
    std::numeric_limits<ImageId>::max();
inline constexpr NodeId kInvalidNodeId = std::numeric_limits<NodeId>::max();
inline constexpr CategoryId kInvalidCategoryId =
    std::numeric_limits<CategoryId>::max();
inline constexpr SubConceptId kInvalidSubConceptId =
    std::numeric_limits<SubConceptId>::max();

/// Dimensionality of the paper's feature vector: 9 color-moment features +
/// 10 wavelet-texture features + 18 edge-structure features.
inline constexpr std::size_t kPaperFeatureDim = 37;

}  // namespace qdcbir

#endif  // QDCBIR_CORE_TYPES_H_
