#ifndef QDCBIR_CORE_CRC32C_H_
#define QDCBIR_CORE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace qdcbir {

/// CRC-32C (Castagnoli, polynomial 0x1EDC6F41, reflected) — the checksum
/// guarding every chunk of the snapshot format (docs/snapshot_format.md).
/// Chosen over CRC-32 (IEEE) for its better error-detection properties on
/// long messages; this is the same polynomial used by iSCSI, ext4 and
/// leveldb table files. Software implementation (slicing-by-8), no CPU
/// feature requirements.
class Crc32c {
 public:
  /// CRC of `n` bytes starting at `data`.
  static std::uint32_t Compute(const void* data, std::size_t n) {
    return Extend(0, data, n);
  }
  static std::uint32_t Compute(const std::string& bytes) {
    return Compute(bytes.data(), bytes.size());
  }

  /// Extends `crc` (the CRC of a previous prefix) over `n` more bytes, so
  /// large payloads can be checksummed incrementally:
  /// `Extend(Extend(0, a, na), b, nb) == Compute(concat(a, b))`.
  static std::uint32_t Extend(std::uint32_t crc, const void* data,
                              std::size_t n);
};

}  // namespace qdcbir

#endif  // QDCBIR_CORE_CRC32C_H_
