#ifndef QDCBIR_CORE_RNG_H_
#define QDCBIR_CORE_RNG_H_

#include <cstdint>
#include <vector>

namespace qdcbir {

/// Deterministic pseudo-random number generator (xoshiro256**, seeded via
/// SplitMix64).
///
/// The standard library's engines are portable but its *distributions* are
/// not; this class provides its own uniform/normal sampling so that
/// experiment outputs are bit-reproducible across platforms and compilers.
class Rng {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformDouble(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t UniformInt(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Standard normal sample (Box-Muller).
  double Gaussian();

  /// Normal sample with the given mean and standard deviation.
  double Gaussian(double mean, double stddev);

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(UniformInt(i));
      std::swap(items[i - 1], items[j]);
    }
  }

  /// Samples `count` distinct indices from [0, n) (count is clamped to n).
  /// The returned indices are in random order.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n,
                                                    std::size_t count);

  /// Derives an independent generator; useful for giving each experiment
  /// repetition its own deterministic stream.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace qdcbir

#endif  // QDCBIR_CORE_RNG_H_
