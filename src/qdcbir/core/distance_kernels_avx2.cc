// AVX2 variants of the batched distance kernels. This translation unit is
// the only one compiled with -mavx2 -mfma (plus -ffp-contract=off); it must
// not be entered on hosts without AVX2 — dispatch in distance_kernels.cc
// checks cpuid first.
//
// The accumulation deliberately uses explicit mul/add intrinsics instead of
// _mm256_fmadd_pd: a fused multiply-add rounds once where the scalar
// reference rounds twice, which would break the byte-identical
// scalar-vs-avx2 parity contract (see docs/simd.md). The win here is the
// 4-wide data parallelism and the cache-line tile loads, not contraction.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstddef>

#include "qdcbir/core/feature_block.h"

namespace qdcbir {
namespace internal {

__attribute__((target("avx2,fma"))) void Avx2SquaredL2(const double* tile,
                                                       const double* query,
                                                       std::size_t dim,
                                                       double* out) {
  static_assert(kBlockWidth == 8, "kernel assumes two 4-lane registers");
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  for (std::size_t d = 0; d < dim; ++d) {
    const double* row = tile + d * kBlockWidth;
    const __m256d q = _mm256_set1_pd(query[d]);
    const __m256d diff_lo = _mm256_sub_pd(_mm256_loadu_pd(row), q);
    const __m256d diff_hi = _mm256_sub_pd(_mm256_loadu_pd(row + 4), q);
    acc_lo = _mm256_add_pd(acc_lo, _mm256_mul_pd(diff_lo, diff_lo));
    acc_hi = _mm256_add_pd(acc_hi, _mm256_mul_pd(diff_hi, diff_hi));
  }
  _mm256_storeu_pd(out, acc_lo);
  _mm256_storeu_pd(out + 4, acc_hi);
}

__attribute__((target("avx2,fma"))) void Avx2WeightedL2(
    const double* tile, const double* query, const double* weights,
    std::size_t dim, double* out) {
  __m256d acc_lo = _mm256_setzero_pd();
  __m256d acc_hi = _mm256_setzero_pd();
  for (std::size_t d = 0; d < dim; ++d) {
    const double* row = tile + d * kBlockWidth;
    const __m256d q = _mm256_set1_pd(query[d]);
    const __m256d w = _mm256_set1_pd(weights[d]);
    const __m256d diff_lo = _mm256_sub_pd(_mm256_loadu_pd(row), q);
    const __m256d diff_hi = _mm256_sub_pd(_mm256_loadu_pd(row + 4), q);
    // (w * diff) * diff — same multiply order as the scalar reference.
    acc_lo = _mm256_add_pd(
        acc_lo, _mm256_mul_pd(_mm256_mul_pd(w, diff_lo), diff_lo));
    acc_hi = _mm256_add_pd(
        acc_hi, _mm256_mul_pd(_mm256_mul_pd(w, diff_hi), diff_hi));
  }
  _mm256_storeu_pd(out, acc_lo);
  _mm256_storeu_pd(out + 4, acc_hi);
}

}  // namespace internal
}  // namespace qdcbir

#endif  // x86-64
