#include "qdcbir/core/thread_pool.h"

#include <cstdlib>
#include <string>
#include <utility>

#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/log.h"
#include "qdcbir/obs/profiler.h"

namespace qdcbir {

namespace {

/// Single source of truth behind the `pool.queue_depth` gauge, shared by
/// every pool. The gauge is published with `Set()` (an absolute
/// single-shard store) instead of sharded `Add()` deltas: with deltas, a
/// scrape can sum a worker's decrement shard before the submitter's
/// increment shard and report a negative depth. Each increment happens
/// before its task is visible to workers, so this counter never goes
/// below zero.
std::atomic<std::int64_t> g_queued_tasks{0};

}  // namespace

std::size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("QDCBIR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads > 0 ? threads : DefaultThreadCount()),
      queue_depth_(obs::MetricsRegistry::Global().GetGauge(
          "pool.queue_depth",
          "Tasks enqueued on any thread pool but not yet started")),
      task_wait_ns_(obs::MetricsRegistry::Global().GetHistogram(
          "pool.task.wait_ns",
          "Queue wait of a pool task from enqueue to first run")),
      task_run_ns_(obs::MetricsRegistry::Global().GetHistogram(
          "pool.task.run_ns", "Execution wall time of one pool task")),
      tasks_executed_(obs::MetricsRegistry::Global().GetCounter(
          "pool.tasks.executed", "Pool tasks run to completion")),
      busy_ns_(obs::MetricsRegistry::Global().GetCounter(
          "pool.worker.busy_ns",
          "Total wall time pool lanes spent executing tasks")) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  // Every pool lane is sampleable: when the profiler is (or becomes)
  // active, this worker gets a CPU-time timer; the RAII guard disarms it
  // before the thread exits.
  const obs::ScopedThreadProfiling profiling;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to run
    RunOneTask(lock);
  }
}

bool ThreadPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  // LIFO: nested batches enqueue last and complete first, which bounds the
  // queue depth under recursive ParallelFor use.
  Task task = std::move(queue_.back());
  queue_.pop_back();
  // Published under mu_ so this pool's depth history is exact.
  queue_depth_.Set(g_queued_tasks.fetch_sub(1, std::memory_order_relaxed) -
                   1);
  lock.unlock();

  const std::uint64_t start_ns = obs::MonotonicNanos();
  task_wait_ns_.Record(start_ns - task.enqueue_ns);

  std::exception_ptr error;
  {
    // Adopt the submitter's trace context for the task's duration, then
    // restore this lane's own: a worker interleaving tasks of different
    // requests must never cross their span trees. The span tag and
    // resource sink hop the pool the same way, so profiler samples and
    // resource taps inside the task attribute to the enqueuing request.
    const obs::ScopedTraceContext scoped_trace(std::move(task.trace));
    const obs::ScopedSpanTag scoped_span(task.enqueue_span);
    const obs::ScopedResourceAccounting scoped_resources(task.resources);
    const obs::ScopedAccessAccounting scoped_access(task.access);
    try {
      task.fn();
    } catch (...) {
      error = std::current_exception();
    }
  }

  const std::uint64_t run_ns = obs::MonotonicNanos() - start_ns;
  task_run_ns_.Record(run_ns);
  busy_ns_.Add(run_ns);
  tasks_executed_.Add(1);

  if (error && task.batch->detached) {
    try {
      std::rethrow_exception(error);
    } catch (const std::exception& e) {
      QDCBIR_LOG(obs::LogLevel::kError,
                 std::string("posted task threw: ") + e.what());
    } catch (...) {
      QDCBIR_LOG(obs::LogLevel::kError,
                 "posted task threw a non-std exception");
    }
  }

  lock.lock();
  if (error && !task.batch->error) task.batch->error = error;
  if (--task.batch->pending == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::Post(std::function<void()> task) {
  if (threads_ <= 1) {
    const std::uint64_t start_ns = obs::MonotonicNanos();
    try {
      task();
    } catch (const std::exception& e) {
      // Same contract as the queued path: posted tasks own their failures;
      // the swallow is logged so it is at least diagnosable.
      QDCBIR_LOG(obs::LogLevel::kError,
                 std::string("posted task threw: ") + e.what());
    } catch (...) {
      QDCBIR_LOG(obs::LogLevel::kError,
                 "posted task threw a non-std exception");
    }
    const std::uint64_t run_ns = obs::MonotonicNanos() - start_ns;
    task_run_ns_.Record(run_ns);
    busy_ns_.Add(run_ns);
    tasks_executed_.Add(1);
    return;
  }
  auto batch = std::make_shared<Batch>();
  batch->pending = 1;
  batch->detached = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_depth_.Set(g_queued_tasks.fetch_add(1, std::memory_order_relaxed) +
                     1);
    queue_.push_back(Task{std::move(task), std::move(batch),
                          obs::MonotonicNanos(), obs::CurrentTraceContext(),
                          obs::CurrentSpanName(),
                          obs::CurrentResourceAccumulator(),
                          obs::CurrentAccessAccumulator()});
  }
  work_cv_.notify_one();
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_ <= 1 || tasks.size() == 1) {
    // Inline path: no queue, but the run-time telemetry stays comparable
    // with the queued path so thread-count sweeps line up.
    for (std::function<void()>& task : tasks) {
      const std::uint64_t start_ns = obs::MonotonicNanos();
      task();
      const std::uint64_t run_ns = obs::MonotonicNanos() - start_ns;
      task_run_ns_.Record(run_ns);
      busy_ns_.Add(run_ns);
      tasks_executed_.Add(1);
    }
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->pending = tasks.size();
  const std::uint64_t enqueue_ns = obs::MonotonicNanos();
  const obs::TraceContext& trace = obs::CurrentTraceContext();
  const char* enqueue_span = obs::CurrentSpanName();
  obs::ResourceAccumulator* resources = obs::CurrentResourceAccumulator();
  obs::AccessAccumulator* access = obs::CurrentAccessAccumulator();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // The gauge goes up before any worker can pop a task (the pop needs
    // this same lock): a concurrent scrape must never observe more
    // decrements than increments (a transiently negative queue depth).
    queue_depth_.Set(
        g_queued_tasks.fetch_add(static_cast<std::int64_t>(tasks.size()),
                                 std::memory_order_relaxed) +
        static_cast<std::int64_t>(tasks.size()));
    for (std::function<void()>& task : tasks) {
      queue_.push_back(Task{std::move(task), batch, enqueue_ns, trace,
                            enqueue_span, resources, access});
    }
  }
  work_cv_.notify_all();
  // New tasks may be stolen by waiting submitters of outer batches.
  done_cv_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  while (batch->pending > 0) {
    if (RunOneTask(lock)) continue;  // help: run any queued task
    done_cv_.wait(lock,
                  [&] { return batch->pending == 0 || !queue_.empty(); });
  }
  const std::exception_ptr error = batch->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace qdcbir
