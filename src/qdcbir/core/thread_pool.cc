#include "qdcbir/core/thread_pool.h"

#include <cstdlib>
#include <string>

namespace qdcbir {

std::size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("QDCBIR_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<std::size_t>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool pool(DefaultThreadCount());
  return pool;
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads > 0 ? threads : DefaultThreadCount()) {
  workers_.reserve(threads_ - 1);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ set and nothing left to run
    RunOneTask(lock);
  }
}

bool ThreadPool::RunOneTask(std::unique_lock<std::mutex>& lock) {
  if (queue_.empty()) return false;
  // LIFO: nested batches enqueue last and complete first, which bounds the
  // queue depth under recursive ParallelFor use.
  Task task = std::move(queue_.back());
  queue_.pop_back();
  lock.unlock();

  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }

  lock.lock();
  if (error && !task.batch->error) task.batch->error = error;
  if (--task.batch->pending == 0) done_cv_.notify_all();
  return true;
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (threads_ <= 1 || tasks.size() == 1) {
    for (std::function<void()>& task : tasks) task();
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->pending = tasks.size();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::function<void()>& task : tasks) {
      queue_.push_back(Task{std::move(task), batch});
    }
  }
  work_cv_.notify_all();
  // New tasks may be stolen by waiting submitters of outer batches.
  done_cv_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  while (batch->pending > 0) {
    if (RunOneTask(lock)) continue;  // help: run any queued task
    done_cv_.wait(lock,
                  [&] { return batch->pending == 0 || !queue_.empty(); });
  }
  const std::exception_ptr error = batch->error;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

}  // namespace qdcbir
