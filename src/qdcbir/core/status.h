#ifndef QDCBIR_CORE_STATUS_H_
#define QDCBIR_CORE_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace qdcbir {

/// Canonical error codes used throughout the library.
///
/// The library does not throw exceptions from hot paths; fallible operations
/// return a `Status` (or `StatusOr<T>` when they produce a value).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kAlreadyExists = 4,
  kFailedPrecondition = 5,
  kInternal = 6,
  kUnimplemented = 7,
  kIoError = 8,
  /// Stored bytes are structurally invalid or fail an integrity check
  /// (bad magic, checksum mismatch, impossible embedded length).
  kCorrupt = 9,
  /// Stored bytes end before the declared extent (partial write, cut file).
  kTruncated = 10,
  /// The format is recognized but its version is not supported.
  kVersionMismatch = 11,
};

/// Returns a short human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail.
///
/// A `Status` is either OK (carries no message) or an error carrying a
/// `StatusCode` and a descriptive message. The class is cheap to copy for the
/// OK case and small for the error case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. `code` must not be
  /// `kOk`; use the default constructor for success.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk);
  }

  /// Named constructors, mirroring the canonical codes.
  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corrupt(std::string msg) {
    return Status(StatusCode::kCorrupt, std::move(msg));
  }
  static Status Truncated(std::string msg) {
    return Status(StatusCode::kTruncated, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders the status as "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type `T` or an error `Status`.
///
/// Access to `value()` requires `ok()`; violating this is a programming error
/// and asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a value (implicit to allow `return value;`).
  StatusOr(T value) : status_(), value_(std::move(value)) {}

  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` on error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates an error status from an expression to the caller.
#define QDCBIR_RETURN_IF_ERROR(expr)              \
  do {                                            \
    ::qdcbir::Status _qdcbir_st = (expr);         \
    if (!_qdcbir_st.ok()) return _qdcbir_st;      \
  } while (0)

}  // namespace qdcbir

#endif  // QDCBIR_CORE_STATUS_H_
