#include "qdcbir/core/status.h"

namespace qdcbir {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kCorrupt:
      return "Corrupt";
    case StatusCode::kTruncated:
      return "Truncated";
    case StatusCode::kVersionMismatch:
      return "VersionMismatch";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeToString(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace qdcbir
