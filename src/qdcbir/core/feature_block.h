#ifndef QDCBIR_CORE_FEATURE_BLOCK_H_
#define QDCBIR_CORE_FEATURE_BLOCK_H_

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/types.h"

namespace qdcbir {

/// Lanes per tile of the blocked feature layout. Eight doubles span two
/// 256-bit AVX2 registers; the tile row (8 doubles = 64 bytes) is exactly
/// one cache line, so a dimension-major walk streams whole lines.
inline constexpr std::size_t kBlockWidth = 8;

/// Blocked structure-of-arrays copy of a feature table, the layout consumed
/// by the batched distance kernels (`core/distance_kernels.h`).
///
/// Vectors are grouped into blocks of `kBlockWidth` consecutive ids; inside
/// a block the storage is dimension-major:
///
///   block(b)[d * kBlockWidth + lane] == feature(b * kBlockWidth + lane)[d]
///
/// so one kernel pass over a block computes `kBlockWidth` distances with
/// unit-stride, 64-byte-aligned loads. The last block is zero-padded in the
/// lanes past `size()`; callers must ignore those lanes' outputs.
///
/// The table is an immutable snapshot: it is built once (at snapshot load /
/// RFS construction) from the row-major `FeatureVector` table, which stays
/// authoritative for per-vector access.
class FeatureBlockTable {
 public:
  FeatureBlockTable() = default;

  /// Builds the blocked copy of `features`. All vectors must share one
  /// dimensionality (enforced by the feature pipeline upstream).
  explicit FeatureBlockTable(const std::vector<FeatureVector>& features);

  FeatureBlockTable(const FeatureBlockTable& other);
  FeatureBlockTable& operator=(const FeatureBlockTable& other);
  // Moves leave the source genuinely empty — a defaulted move would null
  // the storage but keep the counts, and block() on the husk would crash.
  FeatureBlockTable(FeatureBlockTable&& other) noexcept
      : size_(std::exchange(other.size_, 0)),
        dim_(std::exchange(other.dim_, 0)),
        num_blocks_(std::exchange(other.num_blocks_, 0)),
        data_(std::move(other.data_)) {}
  FeatureBlockTable& operator=(FeatureBlockTable&& other) noexcept {
    size_ = std::exchange(other.size_, 0);
    dim_ = std::exchange(other.dim_, 0);
    num_blocks_ = std::exchange(other.num_blocks_, 0);
    data_ = std::move(other.data_);
    return *this;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }         ///< vectors stored
  std::size_t dim() const { return dim_; }
  std::size_t num_blocks() const { return num_blocks_; }

  /// Number of lanes of block `b` that hold real vectors (kBlockWidth for
  /// every block but possibly the last).
  std::size_t lanes(std::size_t b) const {
    const std::size_t begin = b * kBlockWidth;
    const std::size_t remain = size_ - begin;
    return remain < kBlockWidth ? remain : kBlockWidth;
  }

  /// Dimension-major tile of block `b`; 64-byte aligned, `dim * kBlockWidth`
  /// doubles.
  const double* block(std::size_t b) const {
    return data_.get() + b * dim_ * kBlockWidth;
  }

  /// Strided single-element accessor (tests / spot checks).
  double at(std::size_t i, std::size_t d) const {
    return block(i / kBlockWidth)[d * kBlockWidth + i % kBlockWidth];
  }

  /// Packs the vectors named by `ids` into `tile` (dim-major, kBlockWidth
  /// lanes, zero-padded past `count`). `tile` must hold `dim * kBlockWidth`
  /// doubles and `count` must be at most kBlockWidth. This is the batching
  /// path for scans over arbitrary id sets (localized subtree scans).
  void GatherTile(const ImageId* ids, std::size_t count, double* tile) const;

  /// Bytes of the blocked storage (capacity accounting).
  std::size_t MemoryBytes() const {
    return num_blocks_ * dim_ * kBlockWidth * sizeof(double);
  }

 private:
  struct AlignedFree {
    void operator()(double* p) const { std::free(p); }
  };

  void Allocate();

  std::size_t size_ = 0;
  std::size_t dim_ = 0;
  std::size_t num_blocks_ = 0;
  std::unique_ptr<double[], AlignedFree> data_;
};

}  // namespace qdcbir

#endif  // QDCBIR_CORE_FEATURE_BLOCK_H_
