#include "qdcbir/core/rng.h"

#include <cassert>
#include <cmath>

namespace qdcbir {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
}

std::uint64_t Rng::NextUint64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * UniformDouble();
}

std::uint64_t Rng::UniformInt(std::uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span =
      static_cast<std::uint64_t>(hi - lo) + 1ULL;
  return lo + static_cast<std::int64_t>(UniformInt(span));
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = UniformDouble();
  double u2 = UniformDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * Gaussian();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n,
                                                       std::size_t count) {
  if (count > n) count = n;
  // Partial Fisher-Yates over an index array.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + static_cast<std::size_t>(UniformInt(static_cast<std::uint64_t>(n - i)));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(count);
  return idx;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace qdcbir
