#ifndef QDCBIR_CORE_DISTANCE_KERNELS_H_
#define QDCBIR_CORE_DISTANCE_KERNELS_H_

#include <cstddef>

#include "qdcbir/core/feature_block.h"

namespace qdcbir {

/// ISA level of a batched distance kernel set.
enum class SimdLevel {
  kScalar,  ///< portable C++, any x86-64 / non-x86 host
  kAvx2,    ///< AVX2 (+FMA-class hardware); requires cpuid avx2 && fma
};

/// Batched distance kernels over one dimension-major tile of the blocked
/// feature layout (`FeatureBlockTable`): each call produces `kBlockWidth`
/// distances at once.
///
/// Bit-exactness contract: every variant — scalar and AVX2 — performs the
/// *same IEEE-754 operation sequence per lane* as the legacy per-vector
/// loops in `core/distance.cc`:
///
///   squared_l2  : acc_d+1 = acc_d + (x_d - q_d) * (x_d - q_d)
///   weighted_l2 : acc_d+1 = acc_d + (w_d * (x_d - q_d)) * (x_d - q_d)
///
/// with dimensions accumulated in ascending order and one independent
/// accumulator per lane. No FMA contraction is used in the accumulation
/// (the AVX2 translation units are compiled with -ffp-contract=off and use
/// explicit mul/add intrinsics), so ranked results are byte-identical
/// across `QDCBIR_SIMD=scalar` and `QDCBIR_SIMD=avx2` and identical to the
/// pre-blocking scalar code. See docs/simd.md.
struct DistanceKernels {
  /// out[lane] = sum_d (tile[d*kBlockWidth+lane] - query[d])^2
  /// `tile` is a dim-major kBlockWidth-lane tile: a FeatureBlockTable block
  /// (64-byte aligned, possibly offset by a whole dimension count for
  /// subspace scans) or a GatherTile destination (any alignment — the
  /// kernels use unaligned loads, which cost nothing on aligned data).
  void (*squared_l2)(const double* tile, const double* query,
                     std::size_t dim, double* out);

  /// out[lane] = sum_d weights[d] * (tile[d*kBlockWidth+lane] - query[d])^2
  /// with the legacy (w*diff)*diff multiply order.
  void (*weighted_l2)(const double* tile, const double* query,
                      const double* weights, std::size_t dim, double* out);

  SimdLevel level;
  const char* name;  ///< "scalar" or "avx2", for logs and /varz
};

/// True when the running CPU supports the AVX2 kernel set (avx2 && fma).
bool Avx2Supported();

/// Kernel set for an explicit level. Requesting kAvx2 on a host without
/// support returns the scalar set (callers that must know should check
/// `Avx2Supported()` first — tests do).
const DistanceKernels& KernelsFor(SimdLevel level);

/// The process-wide dispatched kernel set: chosen once, on first use, from
/// cpuid — overridable with QDCBIR_SIMD=scalar|avx2 (an unsupported or
/// unknown value falls back to the auto choice with a stderr notice).
const DistanceKernels& ActiveKernels();

/// Name of the dispatched set ("scalar"/"avx2"), for --version and /varz.
const char* ActiveSimdName();

/// Bumps the `dist.block.batch` counter: `batches` kernel tiles were
/// computed by a scan. Call once per scan, not per tile — the counter is
/// the CI hot-path proof (`trace_check --require-metric=dist.block.batch`),
/// not a per-tile tax.
void AddBlockBatches(std::size_t batches);

}  // namespace qdcbir

#endif  // QDCBIR_CORE_DISTANCE_KERNELS_H_
