#include "qdcbir/core/feature_block.h"

#include <cassert>
#include <cstring>

#include "qdcbir/obs/resource_stats.h"

namespace qdcbir {

namespace {

std::size_t RoundUp(std::size_t value, std::size_t multiple) {
  return (value + multiple - 1) / multiple * multiple;
}

}  // namespace

void FeatureBlockTable::Allocate() {
  const std::size_t doubles = num_blocks_ * dim_ * kBlockWidth;
  if (doubles == 0) {
    data_.reset();
    return;
  }
  // aligned_alloc requires the size to be a multiple of the alignment;
  // a tile row is already 64 bytes, so this only matters for dim == 0.
  const std::size_t bytes = RoundUp(doubles * sizeof(double), 64);
  obs::CountContainerAlloc(bytes);
  data_.reset(static_cast<double*>(std::aligned_alloc(64, bytes)));
  std::memset(data_.get(), 0, bytes);
}

FeatureBlockTable::FeatureBlockTable(
    const std::vector<FeatureVector>& features) {
  size_ = features.size();
  dim_ = features.empty() ? 0 : features.front().dim();
  num_blocks_ = (size_ + kBlockWidth - 1) / kBlockWidth;
  Allocate();
  for (std::size_t i = 0; i < size_; ++i) {
    assert(features[i].dim() == dim_);
    double* tile = data_.get() + (i / kBlockWidth) * dim_ * kBlockWidth;
    const std::size_t lane = i % kBlockWidth;
    const double* src = features[i].data();
    for (std::size_t d = 0; d < dim_; ++d) {
      tile[d * kBlockWidth + lane] = src[d];
    }
  }
}

FeatureBlockTable::FeatureBlockTable(const FeatureBlockTable& other)
    : size_(other.size_), dim_(other.dim_), num_blocks_(other.num_blocks_) {
  Allocate();
  if (data_ != nullptr) {
    std::memcpy(data_.get(), other.data_.get(),
                num_blocks_ * dim_ * kBlockWidth * sizeof(double));
  }
}

FeatureBlockTable& FeatureBlockTable::operator=(
    const FeatureBlockTable& other) {
  if (this == &other) return *this;
  size_ = other.size_;
  dim_ = other.dim_;
  num_blocks_ = other.num_blocks_;
  Allocate();
  if (data_ != nullptr) {
    std::memcpy(data_.get(), other.data_.get(),
                num_blocks_ * dim_ * kBlockWidth * sizeof(double));
  }
  return *this;
}

void FeatureBlockTable::GatherTile(const ImageId* ids, std::size_t count,
                                   double* tile) const {
  assert(count <= kBlockWidth);
  obs::CountTileGathers(1);
  std::memset(tile, 0, dim_ * kBlockWidth * sizeof(double));
  for (std::size_t lane = 0; lane < count; ++lane) {
    const std::size_t i = ids[lane];
    assert(i < size_);
    const double* src = block(i / kBlockWidth);
    const std::size_t src_lane = i % kBlockWidth;
    for (std::size_t d = 0; d < dim_; ++d) {
      tile[d * kBlockWidth + lane] = src[d * kBlockWidth + src_lane];
    }
  }
}

}  // namespace qdcbir
