#include "qdcbir/core/distance.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace qdcbir {

namespace {

/// Hard size check, active in every build type: a weighted comparison with
/// mismatched sizes would index weights_ out of bounds.
void CheckWeightedDims(std::size_t a_dim, std::size_t b_dim,
                       std::size_t weight_dim) {
  if (a_dim == b_dim && a_dim == weight_dim) return;
  std::fprintf(stderr,
               "[qdcbir] WeightedL2Distance dimension mismatch: operands "
               "%zu/%zu, weights %zu\n",
               a_dim, b_dim, weight_dim);
  std::abort();
}

}  // namespace

double SquaredL2(const double* a, const double* b, std::size_t dim) {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double SquaredL2(const FeatureVector& a, const FeatureVector& b) {
  assert(a.dim() == b.dim());
  return SquaredL2(a.data(), b.data(), a.dim());
}

double L2Distance::Distance(const FeatureVector& a,
                            const FeatureVector& b) const {
  return std::sqrt(SquaredL2(a, b));
}

double L2Distance::Compare(const FeatureVector& a,
                           const FeatureVector& b) const {
  return SquaredL2(a, b);
}

double L1Distance::Distance(const FeatureVector& a,
                            const FeatureVector& b) const {
  assert(a.dim() == b.dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

WeightedL2Distance::WeightedL2Distance(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (double w : weights_) {
    if (!(w >= 0.0)) {
      std::fprintf(stderr,
                   "[qdcbir] WeightedL2Distance weight %g is negative or "
                   "NaN\n",
                   w);
      std::abort();
    }
  }
}

StatusOr<WeightedL2Distance> WeightedL2Distance::Create(
    std::vector<double> weights, std::size_t dim) {
  if (weights.size() != dim) {
    return Status::InvalidArgument(
        "weight count " + std::to_string(weights.size()) +
        " does not match feature dimensionality " + std::to_string(dim));
  }
  for (double w : weights) {
    if (!(w >= 0.0) || std::isinf(w)) {
      return Status::InvalidArgument("weights must be finite and >= 0, got " +
                                     std::to_string(w));
    }
  }
  return WeightedL2Distance(std::move(weights));
}

double WeightedL2Distance::Distance(const FeatureVector& a,
                                    const FeatureVector& b) const {
  return std::sqrt(Compare(a, b));
}

double WeightedL2Distance::Compare(const FeatureVector& a,
                                   const FeatureVector& b) const {
  CheckWeightedDims(a.dim(), b.dim(), weights_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    const double d = a[i] - b[i];
    sum += weights_[i] * d * d;
  }
  return sum;
}

}  // namespace qdcbir
