#include "qdcbir/core/distance.h"

#include <cassert>
#include <cmath>

namespace qdcbir {

double SquaredL2(const double* a, const double* b, std::size_t dim) {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double SquaredL2(const FeatureVector& a, const FeatureVector& b) {
  assert(a.dim() == b.dim());
  return SquaredL2(a.data(), b.data(), a.dim());
}

double L2Distance::Distance(const FeatureVector& a,
                            const FeatureVector& b) const {
  return std::sqrt(SquaredL2(a, b));
}

double L2Distance::Compare(const FeatureVector& a,
                           const FeatureVector& b) const {
  return SquaredL2(a, b);
}

double L1Distance::Distance(const FeatureVector& a,
                            const FeatureVector& b) const {
  assert(a.dim() == b.dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) sum += std::fabs(a[i] - b[i]);
  return sum;
}

WeightedL2Distance::WeightedL2Distance(std::vector<double> weights)
    : weights_(std::move(weights)) {
  for (double w : weights_) {
    assert(w >= 0.0);
    (void)w;
  }
}

double WeightedL2Distance::Distance(const FeatureVector& a,
                                    const FeatureVector& b) const {
  return std::sqrt(Compare(a, b));
}

double WeightedL2Distance::Compare(const FeatureVector& a,
                                   const FeatureVector& b) const {
  assert(a.dim() == b.dim());
  assert(a.dim() == weights_.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < a.dim(); ++i) {
    const double d = a[i] - b[i];
    sum += weights_[i] * d * d;
  }
  return sum;
}

}  // namespace qdcbir
