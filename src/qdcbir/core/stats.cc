#include "qdcbir/core/stats.h"

#include <algorithm>
#include <cmath>

namespace qdcbir {

void MomentAccumulator::Add(double x) {
  // Incremental central-moment update (Welford / Pébay).
  const std::size_t n1 = count_;
  count_ += 1;
  const double delta = x - mean_;
  const double delta_n = delta / static_cast<double>(count_);
  const double term1 = delta * delta_n * static_cast<double>(n1);
  mean_ += delta_n;
  m3_ += term1 * delta_n * static_cast<double>(count_ - 2) -
         3.0 * delta_n * m2_;
  m2_ += term1;
}

double MomentAccumulator::variance() const {
  if (count_ < 1) return 0.0;
  return m2_ / static_cast<double>(count_);
}

double MomentAccumulator::stddev() const { return std::sqrt(variance()); }

double MomentAccumulator::skewness_cuberoot() const {
  if (count_ < 1) return 0.0;
  return SignedCubeRoot(m3_ / static_cast<double>(count_));
}

double MomentAccumulator::skewness_standardized() const {
  const double sd = stddev();
  if (sd <= 0.0 || count_ < 1) return 0.0;
  const double third = m3_ / static_cast<double>(count_);
  return third / (sd * sd * sd);
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double StdDev(const std::vector<double>& values) {
  if (values.size() < 1) return 0.0;
  const double mu = Mean(values);
  double sum = 0.0;
  for (double v : values) sum += (v - mu) * (v - mu);
  return std::sqrt(sum / static_cast<double>(values.size()));
}

double Median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    const double lower =
        *std::max_element(values.begin(), values.begin() + mid);
    m = (m + lower) / 2.0;
  }
  return m;
}

double Min(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::min_element(values.begin(), values.end());
}

double Max(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  return *std::max_element(values.begin(), values.end());
}

double SignedCubeRoot(double x) { return std::cbrt(x); }

}  // namespace qdcbir
