#include "qdcbir/query/qcluster_engine.h"

#include <algorithm>
#include <limits>
#include <memory>

#include "qdcbir/cache/cache_manager.h"
#include "qdcbir/cluster/kmeans.h"
#include "qdcbir/core/distance_kernels.h"
#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/query/multipoint.h"

#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/obs/span.h"

namespace qdcbir {

QclusterEngine::QclusterEngine(const ImageDatabase* db,
                               const QclusterOptions& options)
    : GlobalFeedbackEngineBase(db, options.display_size, options.seed),
      options_(options) {}

StatusOr<Ranking> QclusterEngine::ComputeRanking(std::size_t k) {
  QDCBIR_SPAN("engine.qcluster.rank");
  if (relevant().empty()) {
    return Status::FailedPrecondition("Qcluster has no relevant feedback yet");
  }
  const std::vector<FeatureVector>& table = db_->features();

  // Finalized-ranking cache: the relevant set plus the clustering and scan
  // configuration fully determine the ranking (the chunked scan's
  // (distance, id) order is total), so identical replays skip the k-means
  // elbow and the whole-table scan. The stat deltas below are replayed on
  // a hit to keep the logical cost model identical.
  cache::CacheManager* cache_mgr = options_.cache;
  cache::CacheKey cache_key;
  std::uint64_t cache_token = 0;
  if (cache_mgr != nullptr) {
    cache_key.kind = cache::CacheKind::kTopK;
    cache_key.a = cache::HashBytes(relevant().data(),
                                   relevant().size() * sizeof(ImageId));
    std::uint64_t config_hash = cache::HashCombine(0xcbf29ce484222325ull, k);
    config_hash = cache::HashCombine(config_hash, options_.kmeans_seed);
    config_hash = cache::HashCombine(
        config_hash, static_cast<std::uint64_t>(options_.max_clusters));
    cache_key.b = config_hash;
    // Low byte tags the engine family (2 = qcluster) so qd finalize keys
    // can never alias these.
    cache_key.c =
        (static_cast<std::uint64_t>(ActiveKernels().level) << 8) | 2;
    std::shared_ptr<const Ranking> hit =
        cache_mgr->LookupAs<Ranking>(cache_key, &cache_token);
    if (hit != nullptr) {
      stats_.global_knn_computations += 1;
      stats_.candidates_scanned += table.size();
      obs::CountLeafCacheHit(obs::kTableScanLeaf);
      return *hit;
    }
    obs::CountLeafCacheMiss(obs::kTableScanLeaf);
  }

  std::vector<FeatureVector> relevant_points;
  relevant_points.reserve(relevant().size());
  for (const ImageId id : relevant()) relevant_points.push_back(table[id]);

  // Adaptive cluster count: run k-means for k = 1..max and keep the k with
  // the largest relative inertia improvement (elbow heuristic). The runs
  // are independent (per-c seeds), so they fan out across the pool.
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool
                                              : ThreadPool::Global();
  const int upper = std::min<int>(options_.max_clusters,
                                  static_cast<int>(relevant_points.size()));
  std::vector<double> inertia(static_cast<std::size_t>(upper) + 1, 0.0);
  std::vector<KMeansResult> runs(static_cast<std::size_t>(upper) + 1);
  std::vector<Status> run_status(static_cast<std::size_t>(upper) + 1,
                                 Status::Ok());
  pool.ParallelFor(1, static_cast<std::size_t>(upper) + 1, [&](std::size_t c) {
    KMeansOptions km;
    km.k = static_cast<int>(c);
    km.seed = options_.kmeans_seed + static_cast<std::uint64_t>(c);
    StatusOr<KMeansResult> r = RunKMeans(relevant_points, km);
    if (!r.ok()) {
      run_status[c] = r.status();
      return;
    }
    inertia[c] = r->inertia;
    runs[c] = std::move(r).value();
  });
  for (int c = 1; c <= upper; ++c) {
    if (!run_status[static_cast<std::size_t>(c)].ok()) {
      return run_status[static_cast<std::size_t>(c)];
    }
  }
  int best_c = 1;
  double best_gain = 0.0;
  for (int c = 2; c <= upper; ++c) {
    const double denom = inertia[1] > 0.0 ? inertia[1] : 1.0;
    const double gain = (inertia[c - 1] - inertia[c]) / denom;
    if (gain > best_gain + 0.05) {  // require a material drop to add contours
      best_gain = gain;
      best_c = c;
    }
  }

  // Disjunctive scan: each chunk keeps its own top-k heap; the partial
  // top-k lists merge at the end. The (distance, id) comparator is a total
  // order, so the global top k is unique regardless of partitioning.
  const MultipointQuery query(runs[best_c].centroids);
  auto better = [](const KnnMatch& a, const KnnMatch& b) {
    if (a.distance_squared != b.distance_squared) {
      return a.distance_squared < b.distance_squared;
    }
    return a.id < b.id;
  };
  const std::size_t chunks =
      std::min(table.size(), pool.size() * 4 > 0 ? pool.size() * 4 : 1);
  std::vector<Ranking> partial(chunks);
  // Each chunk scans block-at-a-time through the kernels where it covers
  // whole tiles and falls back to the per-vector scorer at unaligned chunk
  // edges. Both paths produce bit-identical distances (the kernels follow
  // the legacy accumulation order, and (a-b)^2 == (b-a)^2 exactly), and
  // candidates are offered in ascending id either way, so the merged
  // ranking matches the per-vector scan byte for byte.
  const std::vector<FeatureVector>& centroids = runs[best_c].centroids;
  const FeatureBlockTable& blocks = db_->feature_blocks();
  const DistanceKernels& kernels = ActiveKernels();
  std::vector<std::size_t> chunk_batches(chunks, 0);
  pool.ParallelForChunks(
      0, table.size(), chunks,
      [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        Ranking& top = partial[chunk];
        const auto offer = [&](std::size_t i, double dist) {
          KnnMatch m{static_cast<ImageId>(i), dist};
          if (top.size() >= k && !better(m, top.front())) return;
          top.push_back(m);
          std::push_heap(top.begin(), top.end(), better);
          if (top.size() > k) {
            std::pop_heap(top.begin(), top.end(), better);
            top.pop_back();
          }
        };
        std::size_t i = lo;
        const std::size_t head_end = std::min(
            hi, (lo + kBlockWidth - 1) / kBlockWidth * kBlockWidth);
        for (; i < head_end; ++i) offer(i, query.DisjunctiveScore(table[i]));
        double out[kBlockWidth];
        double best[kBlockWidth];
        while (i + kBlockWidth <= hi) {
          std::fill(best, best + kBlockWidth,
                    std::numeric_limits<double>::infinity());
          for (const FeatureVector& p : centroids) {
            kernels.squared_l2(blocks.block(i / kBlockWidth), p.data(),
                               blocks.dim(), out);
            for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
              best[lane] = std::min(best[lane], out[lane]);
            }
          }
          for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
            offer(i + lane, best[lane]);
          }
          chunk_batches[chunk] += 1;
          i += kBlockWidth;
        }
        for (; i < hi; ++i) offer(i, query.DisjunctiveScore(table[i]));
      });
  std::size_t total_batches = 0;
  for (const std::size_t n : chunk_batches) total_batches += n;
  AddBlockBatches(total_batches);
  obs::CountDistanceEvals(table.size() * centroids.size());
  obs::CountFeatureBytes(table.size() * blocks.dim() * sizeof(double));
  obs::CountLeafScan(obs::kTableScanLeaf, table.size() * centroids.size(),
                     table.size() * blocks.dim() * sizeof(double));
  stats_.global_knn_computations += 1;
  stats_.candidates_scanned += table.size();
  Ranking ranking;
  for (Ranking& top : partial) {
    ranking.insert(ranking.end(), top.begin(), top.end());
  }
  std::sort(ranking.begin(), ranking.end(), better);
  if (ranking.size() > k) ranking.resize(k);
  if (cache_mgr != nullptr) {
    cache_mgr->InsertAs<Ranking>(
        cache_key, std::make_shared<const Ranking>(ranking),
        sizeof(Ranking) + ranking.size() * sizeof(KnnMatch), cache_token);
  }
  return ranking;
}

StatusOr<Ranking> QclusterEngine::Finalize(std::size_t k) {
  return ComputeRanking(k);
}

}  // namespace qdcbir
