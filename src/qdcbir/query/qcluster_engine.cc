#include "qdcbir/query/qcluster_engine.h"

#include <algorithm>

#include "qdcbir/cluster/kmeans.h"
#include "qdcbir/query/multipoint.h"

namespace qdcbir {

QclusterEngine::QclusterEngine(const ImageDatabase* db,
                               const QclusterOptions& options)
    : GlobalFeedbackEngineBase(db, options.display_size, options.seed),
      options_(options) {}

StatusOr<Ranking> QclusterEngine::ComputeRanking(std::size_t k) {
  if (relevant().empty()) {
    return Status::FailedPrecondition("Qcluster has no relevant feedback yet");
  }
  const std::vector<FeatureVector>& table = db_->features();

  std::vector<FeatureVector> relevant_points;
  relevant_points.reserve(relevant().size());
  for (const ImageId id : relevant()) relevant_points.push_back(table[id]);

  // Adaptive cluster count: run k-means for k = 1..max and keep the k with
  // the largest relative inertia improvement (elbow heuristic).
  const int upper = std::min<int>(options_.max_clusters,
                                  static_cast<int>(relevant_points.size()));
  std::vector<double> inertia(static_cast<std::size_t>(upper) + 1, 0.0);
  std::vector<KMeansResult> runs(static_cast<std::size_t>(upper) + 1);
  for (int c = 1; c <= upper; ++c) {
    KMeansOptions km;
    km.k = c;
    km.seed = options_.kmeans_seed + static_cast<std::uint64_t>(c);
    StatusOr<KMeansResult> r = RunKMeans(relevant_points, km);
    if (!r.ok()) return r.status();
    inertia[c] = r->inertia;
    runs[c] = std::move(r).value();
  }
  int best_c = 1;
  double best_gain = 0.0;
  for (int c = 2; c <= upper; ++c) {
    const double denom = inertia[1] > 0.0 ? inertia[1] : 1.0;
    const double gain = (inertia[c - 1] - inertia[c]) / denom;
    if (gain > best_gain + 0.05) {  // require a material drop to add contours
      best_gain = gain;
      best_c = c;
    }
  }

  const MultipointQuery query(runs[best_c].centroids);
  Ranking ranking;
  ranking.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    ranking.push_back(
        KnnMatch{static_cast<ImageId>(i), query.DisjunctiveScore(table[i])});
  }
  stats_.global_knn_computations += 1;
  stats_.candidates_scanned += table.size();
  std::sort(ranking.begin(), ranking.end(),
            [](const KnnMatch& a, const KnnMatch& b) {
              if (a.distance_squared != b.distance_squared) {
                return a.distance_squared < b.distance_squared;
              }
              return a.id < b.id;
            });
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

StatusOr<Ranking> QclusterEngine::Finalize(std::size_t k) {
  return ComputeRanking(k);
}

}  // namespace qdcbir
