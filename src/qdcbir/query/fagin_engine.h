#ifndef QDCBIR_QUERY_FAGIN_ENGINE_H_
#define QDCBIR_QUERY_FAGIN_ENGINE_H_

#include "qdcbir/features/extractor.h"
#include "qdcbir/query/feedback_engine.h"

namespace qdcbir {

class ThreadPool;

/// Options of the Fagin-style merge engine.
struct FaginOptions {
  std::size_t display_size = 21;
  std::uint64_t seed = 113;
  /// Worker pool for the subsystem distance scans and sorts; nullptr means
  /// `ThreadPool::Global()`. Rankings are identical across pool sizes.
  ThreadPool* pool = nullptr;
};

/// A top-k "merge information from multiple systems" baseline (Fagin,
/// PODS'96/'98; the paper's §2). Each feature group — color moments,
/// wavelet texture, edge structure — acts as an independent subsystem that
/// ranks the database by distance to the query point *in its subspace*; the
/// Threshold Algorithm merges the subsystem rankings into the global top k
/// under the monotone aggregate score(x) = sum of subsystem distances.
///
/// Like every top-k technique the paper surveys, the aggregate still
/// describes a single query region per subsystem, so relevant images
/// scattered into distant clusters cannot all rank highly at once.
///
/// `stats().candidates_scanned` counts sorted + random accesses — the cost
/// unit of Fagin's model — rather than full scans.
class FaginEngine final : public GlobalFeedbackEngineBase {
 public:
  FaginEngine(const ImageDatabase* db,
              const FaginOptions& options = FaginOptions());

  const char* Name() const override { return "fagin"; }
  StatusOr<Ranking> Finalize(std::size_t k) override;

  /// Accesses performed by the last Threshold Algorithm run (sorted
  /// accesses across subsystems plus random accesses for aggregation).
  std::size_t last_ta_accesses() const { return last_ta_accesses_; }

 protected:
  StatusOr<Ranking> ComputeRanking(std::size_t k) override;

 private:
  /// One subsystem: a feature-subspace projection of the database.
  struct Subsystem {
    std::size_t begin = 0;
    std::size_t end = 0;
  };

  /// Distance between `a` and `b` restricted to a subsystem's dimensions.
  static double SubspaceDistance(const FeatureVector& a,
                                 const FeatureVector& b,
                                 const Subsystem& subsystem);

  FaginOptions options_;
  std::vector<Subsystem> subsystems_;
  std::size_t last_ta_accesses_ = 0;
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_FAGIN_ENGINE_H_
