#include "qdcbir/query/qd_engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <unordered_set>

#include "qdcbir/cache/cache_manager.h"
#include "qdcbir/core/distance.h"
#include "qdcbir/core/distance_kernels.h"
#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/obs/span.h"
#include "qdcbir/query/multipoint.h"

namespace qdcbir {

namespace {

/// The session cost model (`QdSessionStats`) routed through the metrics
/// registry: the struct keeps its per-session semantics for the paper's
/// efficiency experiments, while these process-wide counters aggregate the
/// same events across every session for profiling and regression tracking.
struct QdCounters {
  obs::Counter& feedback_rounds;
  obs::Counter& nodes_touched;
  obs::Counter& boundary_expansions;
  obs::Counter& expanded_subqueries;
  obs::Counter& localized_subqueries;
  obs::Counter& knn_candidates;
  obs::Counter& knn_nodes_visited;

  static QdCounters& Get() {
    static QdCounters* counters = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
      return new QdCounters{
          registry.GetCounter("qd.feedback.rounds",
                              "Relevance-feedback rounds processed"),
          registry.GetCounter("qd.display.nodes_touched",
                              "Frontier nodes sampled for displays"),
          registry.GetCounter("qd.finalize.boundary_expansions",
                              "Parent expansions during finalize (paper 3.3)"),
          registry.GetCounter(
              "qd.finalize.expanded_subqueries",
              "Subqueries whose search node expanded past their leaf"),
          registry.GetCounter("qd.finalize.subqueries",
                              "Localized k-NN subqueries run by finalize"),
          registry.GetCounter("qd.finalize.knn_candidates",
                              "Images inside subtrees searched by finalize"),
          registry.GetCounter("qd.finalize.knn_nodes_visited",
                              "Tree nodes opened by localized k-NN searches"),
      };
    }();
    return *counters;
  }
};

/// Payload of a kLeafScan cache entry: the localized ranking plus the
/// logical node-access count the scan adds to the session cost model — a
/// hit replays the delta so `QdSessionStats` stays byte-identical with the
/// cache on or off.
struct LeafScanValue {
  Ranking ranking;
  std::size_t nodes_visited = 0;
};

/// Payload of a kTopK cache entry: a whole finalized result plus every
/// stat delta `Finalize` adds on a cold run.
struct QdFinalizeValue {
  QdResult result;
  std::size_t boundary_expansions = 0;
  std::size_t expanded_subqueries = 0;
  std::size_t knn_nodes_visited = 0;
  std::size_t localized_subqueries = 0;
  std::size_t knn_candidates = 0;
};

std::size_t RankingBytes(const Ranking& ranking) {
  return ranking.size() * sizeof(KnnMatch);
}

std::uint64_t HashDoubles(const std::vector<double>& values,
                          std::uint64_t state) {
  return cache::HashBytes(values.data(), values.size() * sizeof(double),
                          state);
}

}  // namespace

std::vector<ImageId> QdResult::Flatten() const {
  std::vector<ImageId> out;
  for (const ResultGroup& g : groups) {
    for (const KnnMatch& m : g.images) out.push_back(m.id);
  }
  return out;
}

std::vector<ImageId> QdResult::FlattenBySimilarity() const {
  std::vector<KnnMatch> all;
  for (const ResultGroup& g : groups) {
    all.insert(all.end(), g.images.begin(), g.images.end());
  }
  std::sort(all.begin(), all.end(), [](const KnnMatch& a, const KnnMatch& b) {
    if (a.distance_squared != b.distance_squared) {
      return a.distance_squared < b.distance_squared;
    }
    return a.id < b.id;
  });
  std::vector<ImageId> out;
  out.reserve(all.size());
  for (const KnnMatch& m : all) out.push_back(m.id);
  return out;
}

std::size_t QdResult::TotalImages() const {
  std::size_t n = 0;
  for (const ResultGroup& g : groups) n += g.images.size();
  return n;
}

QdSession::QdSession(const RfsTree* rfs, const QdOptions& options)
    : rfs_(rfs), options_(options), rng_(options.seed) {}

std::vector<DisplayGroup> QdSession::Start() {
  started_ = true;
  round_ = 0;
  frontier_ = {rfs_->root()};
  relevant_by_leaf_.clear();
  display_origin_.clear();
  sampled_nodes_.clear();
  stats_ = QdSessionStats{};
  current_display_ = MakeDisplay();
  return current_display_;
}

std::vector<DisplayGroup> QdSession::Resample() {
  current_display_ = MakeDisplay();
  return current_display_;
}

std::vector<DisplayGroup> QdSession::MakeDisplay() {
  QDCBIR_SPAN("qd.round.sampling");
  std::vector<DisplayGroup> display;
  if (frontier_.empty()) return display;
  stats_.nodes_touched += frontier_.size();
  QdCounters::Get().nodes_touched.Add(frontier_.size());
  for (const NodeId node : frontier_) sampled_nodes_.insert(node);
  stats_.distinct_nodes_sampled = sampled_nodes_.size();

  // Allocate display slots proportionally to subtree size, at least one per
  // active subquery.
  std::vector<std::size_t> sizes;
  std::size_t total = 0;
  for (const NodeId node : frontier_) {
    sizes.push_back(rfs_->info(node).subtree_size);
    total += sizes.back();
  }
  std::vector<std::size_t> alloc(frontier_.size(), 1);
  std::size_t used = frontier_.size();
  if (options_.display_size > used && total > 0) {
    const std::size_t spare = options_.display_size - used;
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      alloc[i] += spare * sizes[i] / total;
    }
  }
  for (std::size_t i = 0; i < frontier_.size(); ++i) {
    DisplayGroup group;
    group.node = frontier_[i];
    group.images =
        rfs_->SampleRepresentatives(frontier_[i], alloc[i], rng_);
    for (const ImageId image : group.images) {
      display_origin_.emplace(image, group.node);
    }
    if (!group.images.empty()) display.push_back(std::move(group));
  }
  (void)used;
  return display;
}

StatusOr<std::vector<DisplayGroup>> QdSession::Feedback(
    const std::vector<ImageId>& relevant) {
  if (!started_) {
    return Status::FailedPrecondition("call Start() before Feedback()");
  }
  QDCBIR_SPAN("qd.round.descent");

  // Locate each pick among the images displayed since the last feedback.
  std::set<NodeId> next_frontier;
  for (const ImageId image : relevant) {
    const auto it = display_origin_.find(image);
    if (it == display_origin_.end()) {
      return Status::InvalidArgument(
          "relevant image was not in any display this round");
    }
    const NodeId display_node = it->second;

    // Record the relevant image with its subcluster (leaf).
    const NodeId leaf = rfs_->LeafOf(image);
    std::vector<ImageId>& bucket = relevant_by_leaf_[leaf];
    if (std::find(bucket.begin(), bucket.end(), image) == bucket.end()) {
      bucket.push_back(image);
    }

    // The subquery split: descend into the subtree this representative
    // came from.
    StatusOr<NodeId> origin =
        rfs_->OriginOfRepresentative(display_node, image);
    if (!origin.ok()) return origin.status();
    next_frontier.insert(*origin);
  }

  if (!next_frontier.empty()) {
    frontier_.assign(next_frontier.begin(), next_frontier.end());
  }
  display_origin_.clear();
  ++round_;
  stats_.feedback_rounds = static_cast<std::size_t>(round_);
  QdCounters::Get().feedback_rounds.Add(1);
  current_display_ = MakeDisplay();
  return current_display_;
}

Ranking QdSession::LocalizedSearch(NodeId node,
                                   const FeatureVector& query_point,
                                   std::size_t fetch,
                                   QdSessionStats* stats) const {
  cache::CacheManager* cache_mgr = options_.cache;
  if (cache_mgr == nullptr) {
    return LocalizedSearchUncached(node, query_point, fetch, stats);
  }
  // The cached ranking is a pure function of the key: the search node, the
  // query-point and weight bytes, the fetch size, and the SIMD level (the
  // kernels' bit-identical contract makes distances a function of the level
  // alone). Safe across concurrent subquery tasks — the payload is
  // immutable and hits only add a precomputed delta to the task-local
  // stats.
  cache::CacheKey key;
  key.kind = cache::CacheKind::kLeafScan;
  key.a = static_cast<std::uint64_t>(node);
  std::uint64_t hash = cache::HashBytes(
      query_point.data(), query_point.dim() * sizeof(double));
  hash = HashDoubles(options_.feature_weights, hash);
  hash = cache::HashCombine(hash, fetch);
  key.b = hash;
  key.c = static_cast<std::uint64_t>(ActiveKernels().level);

  std::uint64_t token = 0;
  if (std::shared_ptr<const LeafScanValue> hit =
          cache_mgr->LookupAs<LeafScanValue>(key, &token)) {
    stats->knn_nodes_visited += hit->nodes_visited;
    obs::CountLeafCacheHit(static_cast<obs::AccessLeafId>(node));
    return hit->ranking;
  }
  obs::CountLeafCacheMiss(static_cast<obs::AccessLeafId>(node));
  const std::size_t nodes_before = stats->knn_nodes_visited;
  Ranking ranking = LocalizedSearchUncached(node, query_point, fetch, stats);
  auto value = std::make_shared<LeafScanValue>();
  value->ranking = ranking;
  value->nodes_visited = stats->knn_nodes_visited - nodes_before;
  cache_mgr->InsertAs<LeafScanValue>(
      key, std::move(value), sizeof(LeafScanValue) + RankingBytes(ranking),
      token);
  return ranking;
}

Ranking QdSession::LocalizedSearchUncached(NodeId node,
                                           const FeatureVector& query_point,
                                           std::size_t fetch,
                                           QdSessionStats* stats) const {
  if (options_.feature_weights.empty()) {
    SearchStats search_stats;
    Ranking ranking = rfs_->index().KnnSearchInSubtree(node, query_point,
                                                       fetch, &search_stats);
    stats->knn_nodes_visited += search_stats.nodes_visited;
    obs::CountLeafVisits(search_stats.nodes_visited);
    obs::CountDistanceEvals(search_stats.entries_scanned);
    obs::CountFeatureBytes(search_stats.entries_scanned *
                           rfs_->feature_blocks().dim() * sizeof(double));
    obs::CountLeafScan(static_cast<obs::AccessLeafId>(node),
                       search_stats.entries_scanned,
                       search_stats.entries_scanned *
                           rfs_->feature_blocks().dim() * sizeof(double));
    return ranking;
  }
  // Weighted ranking: scan the (small) localized subtree under the
  // user-supplied importance weights. The scan reads every node of the
  // subtree once.
  {
    std::vector<NodeId> stack = {node};
    while (!stack.empty()) {
      const NodeId nid = stack.back();
      stack.pop_back();
      stats->knn_nodes_visited += 1;
      obs::CountLeafVisits(1);
      const RStarTree::Node& n = rfs_->index().node(nid);
      if (!n.IsLeaf()) {
        for (const RStarTree::Entry& e : n.entries) stack.push_back(e.child);
      }
    }
  }
  const std::vector<ImageId> members = rfs_->index().CollectSubtree(node);
  const FeatureBlockTable& blocks = rfs_->feature_blocks();
  const DistanceKernels& kernels = ActiveKernels();
  Ranking ranking(members.size());
  obs::CountContainerAlloc(members.size() * sizeof(KnnMatch));
  std::vector<double> tile(blocks.dim() * kBlockWidth);
  obs::CountContainerAlloc(tile.size() * sizeof(double));
  double out[kBlockWidth];
  std::size_t batches = 0;
  for (std::size_t base = 0; base < members.size(); base += kBlockWidth) {
    const std::size_t count = std::min(kBlockWidth, members.size() - base);
    blocks.GatherTile(members.data() + base, count, tile.data());
    kernels.weighted_l2(tile.data(), query_point.data(),
                        options_.feature_weights.data(), blocks.dim(),
                        out);
    for (std::size_t lane = 0; lane < count; ++lane) {
      ranking[base + lane] = KnnMatch{members[base + lane], out[lane]};
    }
    ++batches;
  }
  AddBlockBatches(batches);
  obs::CountDistanceEvals(members.size());
  obs::CountFeatureBytes(members.size() * blocks.dim() * sizeof(double));
  obs::CountLeafScan(static_cast<obs::AccessLeafId>(node), members.size(),
                     members.size() * blocks.dim() * sizeof(double));
  std::sort(ranking.begin(), ranking.end(),
            [](const KnnMatch& a, const KnnMatch& b) {
              if (a.distance_squared != b.distance_squared) {
                return a.distance_squared < b.distance_squared;
              }
              return a.id < b.id;
            });
  if (ranking.size() > fetch) ranking.resize(fetch);
  return ranking;
}

NodeId QdSession::ExpandSearchNode(NodeId leaf,
                                   const std::vector<ImageId>& query_images,
                                   QdSessionStats* stats) const {
  NodeId node = leaf;
  for (;;) {
    const RfsTree::NodeInfo& info = rfs_->info(node);
    bool near_boundary = false;
    for (const ImageId image : query_images) {
      const double dist =
          std::sqrt(SquaredL2(rfs_->feature(image), info.center));
      if (dist > options_.boundary_threshold * info.diagonal) {
        near_boundary = true;
        break;
      }
    }
    if (!near_boundary || info.parent == kInvalidNodeId) return node;
    node = info.parent;
    ++stats->boundary_expansions;
  }
}

StatusOr<QdResult> QdSession::Finalize(std::size_t k) {
  if (relevant_by_leaf_.empty()) {
    return Status::FailedPrecondition(
        "no relevant feedback was provided; nothing to decompose");
  }
  if (k == 0) return Status::InvalidArgument("k must be positive");
  if (!options_.feature_weights.empty()) {
    // Validate up front (size and value range) instead of letting the
    // weighted scans abort mid-finalize on a malformed weight vector.
    const StatusOr<WeightedL2Distance> checked = WeightedL2Distance::Create(
        options_.feature_weights, rfs_->feature_dim());
    if (!checked.ok()) return checked.status();
  }
  QDCBIR_SPAN("qd.finalize");

  // Finalized top-k cache: identical feedback state (the per-leaf relevant
  // sets), k, weights, threshold, and SIMD level fully determine the result
  // and the stat deltas below, so a session replay serves the finished
  // QdResult without re-running the subqueries.
  cache::CacheManager* cache_mgr = options_.cache;
  cache::CacheKey topk_key;
  std::uint64_t topk_token = 0;
  if (cache_mgr != nullptr) {
    std::uint64_t feedback_hash = 0xcbf29ce484222325ull;
    for (const auto& [leaf, images] : relevant_by_leaf_) {
      feedback_hash = cache::HashCombine(feedback_hash, leaf);
      feedback_hash = cache::HashCombine(feedback_hash, images.size());
      feedback_hash = cache::HashBytes(
          images.data(), images.size() * sizeof(ImageId), feedback_hash);
    }
    std::uint64_t config_hash = cache::HashCombine(0xcbf29ce484222325ull, k);
    config_hash = HashDoubles(options_.feature_weights, config_hash);
    config_hash = cache::HashBytes(&options_.boundary_threshold,
                                   sizeof(double), config_hash);
    topk_key.kind = cache::CacheKind::kTopK;
    topk_key.a = feedback_hash;
    topk_key.b = config_hash;
    // Low byte tags the engine family so qd and qcluster top-k keys never
    // collide even with equal hashes.
    topk_key.c = (static_cast<std::uint64_t>(ActiveKernels().level) << 8) | 1;
    if (std::shared_ptr<const QdFinalizeValue> hit =
            cache_mgr->LookupAs<QdFinalizeValue>(topk_key, &topk_token)) {
      stats_.boundary_expansions += hit->boundary_expansions;
      stats_.expanded_subqueries += hit->expanded_subqueries;
      stats_.knn_nodes_visited += hit->knn_nodes_visited;
      stats_.localized_subqueries += hit->localized_subqueries;
      stats_.knn_candidates += hit->knn_candidates;
      // The process-wide counters mirror the logical cost model, so a hit
      // replays the same deltas there too.
      QdCounters& counters = QdCounters::Get();
      counters.boundary_expansions.Add(hit->boundary_expansions);
      counters.expanded_subqueries.Add(hit->expanded_subqueries);
      counters.knn_nodes_visited.Add(hit->knn_nodes_visited);
      counters.localized_subqueries.Add(hit->localized_subqueries);
      counters.knn_candidates.Add(hit->knn_candidates);
      return hit->result;
    }
  }
  const QdSessionStats stats_before = stats_;

  std::size_t total_relevant = 0;
  for (const auto& [leaf, images] : relevant_by_leaf_) {
    total_relevant += images.size();
  }

  // Result allocation proportional to each subcluster's relevant count
  // (largest-remainder rounding, each subquery gets at least 1).
  struct Local {
    NodeId leaf;
    const std::vector<ImageId>* relevant;
    std::size_t quota = 0;
    double remainder = 0.0;
  };
  std::vector<Local> locals;
  std::size_t assigned = 0;
  for (const auto& [leaf, images] : relevant_by_leaf_) {
    Local local;
    local.leaf = leaf;
    local.relevant = &images;
    const double ideal = static_cast<double>(k) *
                         static_cast<double>(images.size()) /
                         static_cast<double>(total_relevant);
    local.quota = std::max<std::size_t>(1, static_cast<std::size_t>(ideal));
    local.remainder = ideal - std::floor(ideal);
    assigned += local.quota;
    locals.push_back(local);
  }
  std::sort(locals.begin(), locals.end(), [](const Local& a, const Local& b) {
    return a.remainder > b.remainder;
  });
  std::size_t li = 0;
  while (assigned < k && !locals.empty()) {
    locals[li % locals.size()].quota += 1;
    ++assigned;
    ++li;
  }
  while (assigned > k) {
    Local& largest = *std::max_element(
        locals.begin(), locals.end(),
        [](const Local& a, const Local& b) { return a.quota < b.quota; });
    if (largest.quota <= 1) break;  // cannot shrink below 1 per subquery
    largest.quota -= 1;
    --assigned;
  }
  if (assigned > k) {
    // Fewer result slots than relevant subclusters: keep the subqueries
    // with the most relevant feedback (each at quota 1).
    std::sort(locals.begin(), locals.end(),
              [](const Local& a, const Local& b) {
                if (a.relevant->size() != b.relevant->size()) {
                  return a.relevant->size() > b.relevant->size();
                }
                return a.leaf < b.leaf;
              });
    locals.resize(k);
    assigned = k;
  }

  // Run one localized multipoint k-NN per relevant subcluster. Subqueries
  // with more relevant feedback get dedup priority.
  std::sort(locals.begin(), locals.end(), [](const Local& a, const Local& b) {
    if (a.relevant->size() != b.relevant->size()) {
      return a.relevant->size() > b.relevant->size();
    }
    return a.leaf < b.leaf;
  });

  // Phase 1 (parallel): one task per relevant subcluster runs the boundary
  // expansion and the localized multipoint k-NN. Tasks only read the RFS
  // tree and write into their own slot, so the outcome is identical for
  // every pool size; cost counters accumulate task-locally and merge below
  // (sums are order-independent).
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool
                                              : ThreadPool::Global();
  std::vector<ResultGroup> groups(locals.size());
  std::vector<Ranking> local_candidates(locals.size());
  std::vector<QdSessionStats> task_stats(locals.size());
  pool.ParallelFor(0, locals.size(), [&](std::size_t li2) {
    QDCBIR_SPAN("qd.finalize.subquery");
    const Local& local = locals[li2];
    ResultGroup& group = groups[li2];
    group.leaf = local.leaf;
    group.relevant_count = local.relevant->size();
    group.search_node =
        ExpandSearchNode(local.leaf, *local.relevant, &task_stats[li2]);

    std::vector<FeatureVector> points;
    points.reserve(local.relevant->size());
    for (const ImageId image : *local.relevant) {
      points.push_back(rfs_->feature(image));
    }
    const MultipointQuery query(std::move(points));

    // Over-fetch to survive cross-group dedup and to provide spare
    // candidates if another subquery's subtree runs dry.
    const std::size_t fetch = 2 * local.quota + locals.size() + 8;
    local_candidates[li2] = LocalizedSearch(group.search_node,
                                            query.Centroid(), fetch,
                                            &task_stats[li2]);
    // Per-subquery attribution for /tracez: which subcluster this span
    // searched and whether (and how far) 3.3 widened it.
    QDCBIR_SPAN_ANNOTATE("leaf", group.leaf);
    QDCBIR_SPAN_ANNOTATE("search_node", group.search_node);
    QDCBIR_SPAN_ANNOTATE("relevant_count", group.relevant_count);
    QDCBIR_SPAN_ANNOTATE("boundary_expansions",
                         task_stats[li2].boundary_expansions);
  });
  std::size_t expansions = 0;
  std::size_t expanded = 0;
  std::size_t nodes_visited = 0;
  for (const QdSessionStats& ts : task_stats) {
    expansions += ts.boundary_expansions;
    if (ts.boundary_expansions > 0) ++expanded;
    nodes_visited += ts.knn_nodes_visited;
  }
  stats_.boundary_expansions += expansions;
  stats_.expanded_subqueries += expanded;
  stats_.knn_nodes_visited += nodes_visited;
  QdCounters& counters = QdCounters::Get();
  counters.boundary_expansions.Add(expansions);
  counters.expanded_subqueries.Add(expanded);
  counters.knn_nodes_visited.Add(nodes_visited);
  counters.localized_subqueries.Add(locals.size());

  // Phase 2 (sequential): cross-group dedup and quota consumption, in the
  // same subquery order as before — the determinism-critical merge.
  QDCBIR_SPAN("qd.finalize.merge");
  QdResult result;
  std::unordered_set<ImageId> taken;
  std::vector<Ranking> spare_candidates(locals.size());
  for (std::size_t li2 = 0; li2 < locals.size(); ++li2) {
    const Local& local = locals[li2];
    ResultGroup group = std::move(groups[li2]);
    Ranking candidates = std::move(local_candidates[li2]);
    stats_.localized_subqueries += 1;
    stats_.knn_candidates += rfs_->info(group.search_node).subtree_size;
    counters.knn_candidates.Add(rfs_->info(group.search_node).subtree_size);

    std::size_t consumed = 0;
    for (const KnnMatch& m : candidates) {
      ++consumed;
      if (group.images.size() >= local.quota) {
        --consumed;
        break;
      }
      if (!taken.insert(m.id).second) continue;
      group.images.push_back(m);
      group.ranking_score += std::sqrt(m.distance_squared);
    }
    candidates.erase(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(consumed));
    spare_candidates[li2] = std::move(candidates);
    result.groups.push_back(std::move(group));
  }

  // Quota deficit (a subquery's subtree was smaller than its share): refill
  // from the remaining candidates of the other subqueries, best-first by
  // similarity. This keeps the result size at exactly k whenever the
  // searched subtrees jointly hold k images.
  std::size_t produced = result.TotalImages();
  while (produced < k) {
    std::size_t best_group = locals.size();
    double best_distance = std::numeric_limits<double>::infinity();
    for (std::size_t g = 0; g < spare_candidates.size(); ++g) {
      // Skip already-taken ids at the front of each spare list.
      Ranking& spare = spare_candidates[g];
      std::size_t front = 0;
      while (front < spare.size() && taken.count(spare[front].id) > 0) {
        ++front;
      }
      spare.erase(spare.begin(), spare.begin() + static_cast<std::ptrdiff_t>(front));
      if (!spare.empty() && spare.front().distance_squared < best_distance) {
        best_distance = spare.front().distance_squared;
        best_group = g;
      }
    }
    if (best_group == locals.size()) break;  // every subtree is exhausted
    Ranking& spare = spare_candidates[best_group];
    const KnnMatch m = spare.front();
    spare.erase(spare.begin());
    taken.insert(m.id);
    result.groups[best_group].images.push_back(m);
    result.groups[best_group].ranking_score += std::sqrt(m.distance_squared);
    ++produced;
  }

  // §3.4 presentation: groups ordered by their ranking scores.
  std::sort(result.groups.begin(), result.groups.end(),
            [](const ResultGroup& a, const ResultGroup& b) {
              if (a.ranking_score != b.ranking_score) {
                return a.ranking_score < b.ranking_score;
              }
              return a.leaf < b.leaf;
            });

  if (cache_mgr != nullptr) {
    auto value = std::make_shared<QdFinalizeValue>();
    value->result = result;
    value->boundary_expansions =
        stats_.boundary_expansions - stats_before.boundary_expansions;
    value->expanded_subqueries =
        stats_.expanded_subqueries - stats_before.expanded_subqueries;
    value->knn_nodes_visited =
        stats_.knn_nodes_visited - stats_before.knn_nodes_visited;
    value->localized_subqueries =
        stats_.localized_subqueries - stats_before.localized_subqueries;
    value->knn_candidates =
        stats_.knn_candidates - stats_before.knn_candidates;
    std::size_t bytes = sizeof(QdFinalizeValue);
    for (const ResultGroup& group : result.groups) {
      bytes += sizeof(ResultGroup) + RankingBytes(group.images);
    }
    cache_mgr->InsertAs<QdFinalizeValue>(topk_key, std::move(value), bytes,
                                         topk_token);
  }
  return result;
}

}  // namespace qdcbir
