#ifndef QDCBIR_QUERY_FEEDBACK_ENGINE_H_
#define QDCBIR_QUERY_FEEDBACK_ENGINE_H_

#include <vector>

#include "qdcbir/core/rng.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/dataset/database.h"
#include "qdcbir/query/knn.h"

namespace qdcbir {

/// Cost counters for the traditional (global k-NN) feedback engines.
struct GlobalEngineStats {
  std::size_t feedback_rounds = 0;
  std::size_t global_knn_computations = 0;  ///< whole-database scans
  std::size_t candidates_scanned = 0;       ///< images visited by scans
};

/// Interface of a traditional relevance-feedback retrieval engine: the user
/// browses a flat display, marks relevant images, and each feedback round
/// refines a global query. Implementations: Multiple Viewpoints (MV), Query
/// Point Movement (QPM / MindReader), MARS multipoint refinement, and a
/// Qcluster-style disjunctive engine.
///
/// Unlike `QdSession`, these engines search a single (possibly reshaped)
/// neighborhood of the full feature space, and pay a global k-NN computation
/// every round — the two properties the paper's QD model addresses.
class FeedbackEngine {
 public:
  virtual ~FeedbackEngine() = default;

  virtual const char* Name() const = 0;

  /// Begins a session; returns the initial (random) display.
  virtual std::vector<ImageId> Start() = 0;

  /// Re-rolls the current display without consuming a feedback round.
  /// Before any feedback this is a fresh random sample; afterwards it pages
  /// deeper into the current ranking.
  virtual std::vector<ImageId> Resample() = 0;

  /// Records relevant picks and refines the query; returns the next display.
  virtual StatusOr<std::vector<ImageId>> Feedback(
      const std::vector<ImageId>& relevant) = 0;

  /// Final retrieval of `k` images under the refined query.
  virtual StatusOr<Ranking> Finalize(std::size_t k) = 0;

  virtual const GlobalEngineStats& stats() const = 0;
};

/// Shared machinery of the global-scan engines: random browsing, relevant
/// set accumulation, display paging, statistics.
class GlobalFeedbackEngineBase : public FeedbackEngine {
 public:
  GlobalFeedbackEngineBase(const ImageDatabase* db, std::size_t display_size,
                           std::uint64_t seed);

  std::vector<ImageId> Start() override;
  std::vector<ImageId> Resample() override;
  StatusOr<std::vector<ImageId>> Feedback(
      const std::vector<ImageId>& relevant) override;
  const GlobalEngineStats& stats() const override { return stats_; }

 protected:
  /// Computes the engine's current global ranking from `relevant_`.
  /// Called after every feedback round and by Finalize.
  virtual StatusOr<Ranking> ComputeRanking(std::size_t k) = 0;

  std::vector<ImageId> RandomDisplay();
  const std::vector<ImageId>& relevant() const { return relevant_; }

  const ImageDatabase* db_;
  std::size_t display_size_;
  Rng rng_;
  GlobalEngineStats stats_;

 private:
  std::vector<ImageId> relevant_;
  Ranking current_ranking_;
  std::size_t page_ = 0;  ///< display paging offset into the ranking
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_FEEDBACK_ENGINE_H_
