#include "qdcbir/query/feedback_engine.h"

#include <algorithm>

#include "qdcbir/obs/span.h"

namespace qdcbir {

GlobalFeedbackEngineBase::GlobalFeedbackEngineBase(const ImageDatabase* db,
                                                   std::size_t display_size,
                                                   std::uint64_t seed)
    : db_(db), display_size_(display_size), rng_(seed) {}

std::vector<ImageId> GlobalFeedbackEngineBase::RandomDisplay() {
  const std::vector<std::size_t> picks =
      rng_.SampleWithoutReplacement(db_->size(), display_size_);
  std::vector<ImageId> out;
  out.reserve(picks.size());
  for (const std::size_t i : picks) out.push_back(static_cast<ImageId>(i));
  return out;
}

std::vector<ImageId> GlobalFeedbackEngineBase::Start() {
  relevant_.clear();
  current_ranking_.clear();
  page_ = 0;
  stats_ = GlobalEngineStats{};
  return RandomDisplay();
}

std::vector<ImageId> GlobalFeedbackEngineBase::Resample() {
  if (current_ranking_.empty()) return RandomDisplay();
  // Page deeper into the current ranking.
  page_ += display_size_;
  if (page_ >= current_ranking_.size()) page_ = 0;
  std::vector<ImageId> out;
  for (std::size_t i = page_;
       i < current_ranking_.size() && out.size() < display_size_; ++i) {
    out.push_back(current_ranking_[i].id);
  }
  return out;
}

StatusOr<std::vector<ImageId>> GlobalFeedbackEngineBase::Feedback(
    const std::vector<ImageId>& relevant) {
  QDCBIR_SPAN("engine.feedback");
  for (const ImageId id : relevant) {
    if (id >= db_->size()) {
      return Status::InvalidArgument("relevant image id out of range");
    }
    if (std::find(relevant_.begin(), relevant_.end(), id) == relevant_.end()) {
      relevant_.push_back(id);
    }
  }
  stats_.feedback_rounds += 1;
  if (relevant_.empty()) return RandomDisplay();

  // Refine and show the top of the new ranking (over-fetch one page so the
  // user can browse past the first screen).
  StatusOr<Ranking> ranking = ComputeRanking(display_size_ * 4);
  if (!ranking.ok()) return ranking.status();
  current_ranking_ = std::move(ranking).value();
  page_ = 0;
  std::vector<ImageId> out;
  for (const KnnMatch& m : current_ranking_) {
    if (out.size() >= display_size_) break;
    out.push_back(m.id);
  }
  return out;
}

}  // namespace qdcbir
