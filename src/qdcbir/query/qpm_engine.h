#ifndef QDCBIR_QUERY_QPM_ENGINE_H_
#define QDCBIR_QUERY_QPM_ENGINE_H_

#include "qdcbir/query/feedback_engine.h"

namespace qdcbir {

/// Options of the Query Point Movement engine.
struct QpmOptions {
  std::size_t display_size = 21;
  std::uint64_t seed = 103;
  /// Floor added to per-dimension standard deviations before inverting, so
  /// a dimension on which all relevant images agree exactly does not blow
  /// up the metric.
  double sigma_floor = 1e-3;
};

/// The Query Point Movement baseline (MindReader; Ishikawa et al., VLDB'98;
/// the paper's §2 "Query Point Movement"). Each feedback round moves the
/// query point to the centroid of all relevant images and reweights the
/// Euclidean metric per dimension by the inverse standard deviation of the
/// relevant set — shrinking the query contour along dimensions the relevant
/// images agree on.
class QpmEngine final : public GlobalFeedbackEngineBase {
 public:
  QpmEngine(const ImageDatabase* db, const QpmOptions& options = QpmOptions());

  const char* Name() const override { return "qpm"; }
  StatusOr<Ranking> Finalize(std::size_t k) override;

 protected:
  StatusOr<Ranking> ComputeRanking(std::size_t k) override;

 private:
  QpmOptions options_;
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_QPM_ENGINE_H_
