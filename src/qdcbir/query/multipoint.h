#ifndef QDCBIR_QUERY_MULTIPOINT_H_
#define QDCBIR_QUERY_MULTIPOINT_H_

#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"

namespace qdcbir {

/// A multipoint query: several query points with non-negative weights
/// (Porkaew et al., MARS). The paper's QD prototype scores a candidate by
/// its Euclidean distance to the *centroid* of the local query points
/// (§3.4); the MARS-style weighted aggregate is also provided.
class MultipointQuery {
 public:
  MultipointQuery() = default;

  /// Equal-weight query points; `points` must be non-empty for scoring.
  explicit MultipointQuery(std::vector<FeatureVector> points);

  MultipointQuery(std::vector<FeatureVector> points,
                  std::vector<double> weights);

  bool empty() const { return points_.empty(); }
  std::size_t size() const { return points_.size(); }
  const std::vector<FeatureVector>& points() const { return points_; }
  const std::vector<double>& weights() const { return weights_; }

  /// Weighted centroid of the query points.
  const FeatureVector& Centroid() const;

  /// Paper §3.4 scoring: squared Euclidean distance from `x` to the
  /// centroid (monotone in the Euclidean distance the paper uses).
  double CentroidScore(const FeatureVector& x) const;

  /// MARS-style scoring: weighted sum of the distances from `x` to each
  /// query point (weights normalized to sum 1).
  double AggregateScore(const FeatureVector& x) const;

  /// Qcluster-style disjunctive scoring: distance to the *nearest* query
  /// point, so multiple separate contours are honored.
  double DisjunctiveScore(const FeatureVector& x) const;

 private:
  std::vector<FeatureVector> points_;
  std::vector<double> weights_;
  mutable FeatureVector centroid_;
  mutable bool centroid_valid_ = false;
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_MULTIPOINT_H_
