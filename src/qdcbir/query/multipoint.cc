#include "qdcbir/query/multipoint.h"

#include <cassert>
#include <cmath>
#include <limits>

#include "qdcbir/core/distance.h"

namespace qdcbir {

MultipointQuery::MultipointQuery(std::vector<FeatureVector> points)
    : points_(std::move(points)), weights_(points_.size(), 1.0) {}

MultipointQuery::MultipointQuery(std::vector<FeatureVector> points,
                                 std::vector<double> weights)
    : points_(std::move(points)), weights_(std::move(weights)) {
  assert(points_.size() == weights_.size());
}

const FeatureVector& MultipointQuery::Centroid() const {
  assert(!points_.empty());
  if (!centroid_valid_) {
    FeatureVector sum(points_.front().dim());
    double total = 0.0;
    for (std::size_t i = 0; i < points_.size(); ++i) {
      sum += points_[i] * weights_[i];
      total += weights_[i];
    }
    if (total > 0.0) sum *= 1.0 / total;
    centroid_ = std::move(sum);
    centroid_valid_ = true;
  }
  return centroid_;
}

double MultipointQuery::CentroidScore(const FeatureVector& x) const {
  return SquaredL2(Centroid(), x);
}

double MultipointQuery::AggregateScore(const FeatureVector& x) const {
  assert(!points_.empty());
  double total_weight = 0.0;
  for (double w : weights_) total_weight += w;
  double score = 0.0;
  for (std::size_t i = 0; i < points_.size(); ++i) {
    score += weights_[i] * std::sqrt(SquaredL2(points_[i], x));
  }
  return total_weight > 0.0 ? score / total_weight : score;
}

double MultipointQuery::DisjunctiveScore(const FeatureVector& x) const {
  assert(!points_.empty());
  double best = std::numeric_limits<double>::infinity();
  for (const FeatureVector& p : points_) {
    best = std::min(best, SquaredL2(p, x));
  }
  return best;
}

}  // namespace qdcbir
