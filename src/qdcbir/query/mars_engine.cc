#include "qdcbir/query/mars_engine.h"

#include <algorithm>

#include "qdcbir/cluster/kmeans.h"
#include "qdcbir/query/multipoint.h"

#include "qdcbir/obs/span.h"

namespace qdcbir {

MarsEngine::MarsEngine(const ImageDatabase* db, const MarsOptions& options)
    : GlobalFeedbackEngineBase(db, options.display_size, options.seed),
      options_(options) {}

StatusOr<Ranking> MarsEngine::ComputeRanking(std::size_t k) {
  QDCBIR_SPAN("engine.mars.rank");
  if (relevant().empty()) {
    return Status::FailedPrecondition("MARS has no relevant feedback yet");
  }
  const std::vector<FeatureVector>& table = db_->features();

  std::vector<FeatureVector> relevant_points;
  relevant_points.reserve(relevant().size());
  for (const ImageId id : relevant()) relevant_points.push_back(table[id]);

  KMeansOptions km;
  km.k = std::min<int>(options_.max_clusters,
                       static_cast<int>(relevant_points.size()));
  km.seed = options_.kmeans_seed;
  StatusOr<KMeansResult> clusters = RunKMeans(relevant_points, km);
  if (!clusters.ok()) return clusters.status();

  // Representatives: the relevant image nearest each cluster centroid;
  // weight proportional to cluster population.
  std::vector<FeatureVector> representatives;
  std::vector<double> weights;
  for (std::size_t c = 0; c < clusters->centroids.size(); ++c) {
    if (clusters->cluster_sizes[c] == 0) continue;
    std::vector<FeatureVector> members;
    for (std::size_t i = 0; i < relevant_points.size(); ++i) {
      if (clusters->assignments[i] == static_cast<int>(c)) {
        members.push_back(relevant_points[i]);
      }
    }
    const std::size_t nearest =
        NearestPointIndex(members, clusters->centroids[c]);
    representatives.push_back(members[nearest]);
    weights.push_back(static_cast<double>(clusters->cluster_sizes[c]));
  }
  const MultipointQuery query(std::move(representatives), std::move(weights));

  Ranking ranking;
  ranking.reserve(table.size());
  for (std::size_t i = 0; i < table.size(); ++i) {
    ranking.push_back(
        KnnMatch{static_cast<ImageId>(i), query.AggregateScore(table[i])});
  }
  stats_.global_knn_computations += 1;
  stats_.candidates_scanned += table.size();
  std::sort(ranking.begin(), ranking.end(),
            [](const KnnMatch& a, const KnnMatch& b) {
              if (a.distance_squared != b.distance_squared) {
                return a.distance_squared < b.distance_squared;
              }
              return a.id < b.id;
            });
  if (ranking.size() > k) ranking.resize(k);
  return ranking;
}

StatusOr<Ranking> MarsEngine::Finalize(std::size_t k) {
  return ComputeRanking(k);
}

}  // namespace qdcbir
