#include "qdcbir/query/knn.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "qdcbir/core/distance_kernels.h"
#include "qdcbir/obs/resource_stats.h"

namespace qdcbir {

namespace {

/// Keeps the k best (id, distance) pairs seen so far.
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  void Offer(ImageId id, double d) {
    if (k_ == 0) return;
    if (matches_.size() < k_) {
      matches_.push_back(KnnMatch{id, d});
      std::push_heap(matches_.begin(), matches_.end(), Worse);
    } else if (d < matches_.front().distance_squared) {
      std::pop_heap(matches_.begin(), matches_.end(), Worse);
      matches_.back() = KnnMatch{id, d};
      std::push_heap(matches_.begin(), matches_.end(), Worse);
    }
  }

  Ranking Take() {
    std::sort_heap(matches_.begin(), matches_.end(), Worse);
    return std::move(matches_);
  }

 private:
  static bool Worse(const KnnMatch& a, const KnnMatch& b) {
    if (a.distance_squared != b.distance_squared) {
      return a.distance_squared < b.distance_squared;
    }
    return a.id < b.id;
  }

  std::size_t k_;
  Ranking matches_;
};

}  // namespace

Ranking BruteForceKnn(const std::vector<FeatureVector>& table,
                      const FeatureVector& query, std::size_t k) {
  TopK top(k);
  for (std::size_t i = 0; i < table.size(); ++i) {
    top.Offer(static_cast<ImageId>(i), SquaredL2(table[i], query));
  }
  return top.Take();
}

Ranking BruteForceKnnSubset(const std::vector<FeatureVector>& table,
                            const std::vector<ImageId>& candidates,
                            const FeatureVector& query, std::size_t k) {
  TopK top(k);
  for (const ImageId id : candidates) {
    top.Offer(id, SquaredL2(table[id], query));
  }
  return top.Take();
}

Ranking BruteForceKnnWithMetric(const std::vector<FeatureVector>& table,
                                const FeatureVector& query, std::size_t k,
                                const DistanceMetric& metric) {
  TopK top(k);
  for (std::size_t i = 0; i < table.size(); ++i) {
    top.Offer(static_cast<ImageId>(i), metric.Compare(table[i], query));
  }
  return top.Take();
}

Ranking BruteForceKnnBlocked(const FeatureBlockTable& blocks,
                             const FeatureVector& query, std::size_t k) {
  assert(blocks.empty() || query.dim() == blocks.dim());
  const DistanceKernels& kernels = ActiveKernels();
  TopK top(k);
  double out[kBlockWidth];
  for (std::size_t b = 0; b < blocks.num_blocks(); ++b) {
    kernels.squared_l2(blocks.block(b), query.data(), blocks.dim(), out);
    const std::size_t lanes = blocks.lanes(b);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      top.Offer(static_cast<ImageId>(b * kBlockWidth + lane), out[lane]);
    }
  }
  AddBlockBatches(blocks.num_blocks());
  obs::CountDistanceEvals(blocks.size());
  obs::CountFeatureBytes(blocks.size() * blocks.dim() * sizeof(double));
  return top.Take();
}

Ranking BruteForceWeightedKnnBlocked(const FeatureBlockTable& blocks,
                                     const FeatureVector& query,
                                     const std::vector<double>& weights,
                                     std::size_t k) {
  assert(blocks.empty() ||
         (query.dim() == blocks.dim() && weights.size() == blocks.dim()));
  const DistanceKernels& kernels = ActiveKernels();
  TopK top(k);
  double out[kBlockWidth];
  for (std::size_t b = 0; b < blocks.num_blocks(); ++b) {
    kernels.weighted_l2(blocks.block(b), query.data(), weights.data(),
                        blocks.dim(), out);
    const std::size_t lanes = blocks.lanes(b);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
      top.Offer(static_cast<ImageId>(b * kBlockWidth + lane), out[lane]);
    }
  }
  AddBlockBatches(blocks.num_blocks());
  obs::CountDistanceEvals(blocks.size());
  obs::CountFeatureBytes(blocks.size() * blocks.dim() * sizeof(double));
  return top.Take();
}

Ranking MergeRankings(const std::vector<Ranking>& rankings, std::size_t k) {
  std::unordered_map<ImageId, double> best;
  for (const Ranking& r : rankings) {
    for (const KnnMatch& m : r) {
      auto [it, inserted] = best.emplace(m.id, m.distance_squared);
      if (!inserted && m.distance_squared < it->second) {
        it->second = m.distance_squared;
      }
    }
  }
  Ranking merged;
  merged.reserve(best.size());
  for (const auto& [id, d] : best) merged.push_back(KnnMatch{id, d});
  std::sort(merged.begin(), merged.end(),
            [](const KnnMatch& a, const KnnMatch& b) {
              if (a.distance_squared != b.distance_squared) {
                return a.distance_squared < b.distance_squared;
              }
              return a.id < b.id;
            });
  if (merged.size() > k) merged.resize(k);
  return merged;
}

}  // namespace qdcbir
