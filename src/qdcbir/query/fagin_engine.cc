#include "qdcbir/query/fagin_engine.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>

#include "qdcbir/core/distance_kernels.h"
#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/thread_pool.h"

#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/obs/span.h"

namespace qdcbir {

FaginEngine::FaginEngine(const ImageDatabase* db, const FaginOptions& options)
    : GlobalFeedbackEngineBase(db, options.display_size, options.seed),
      options_(options) {
  subsystems_ = {
      {kPaperLayout.color_begin, kPaperLayout.color_end},
      {kPaperLayout.texture_begin, kPaperLayout.texture_end},
      {kPaperLayout.edge_begin, kPaperLayout.edge_end},
  };
  // Databases with non-paper feature layouts fall back to one subsystem
  // covering all dimensions (plain k-NN).
  if (db->feature_dim() != kPaperFeatureDim) {
    subsystems_ = {{0, db->feature_dim()}};
  }
}

double FaginEngine::SubspaceDistance(const FeatureVector& a,
                                     const FeatureVector& b,
                                     const Subsystem& subsystem) {
  double sum = 0.0;
  for (std::size_t d = subsystem.begin; d < subsystem.end; ++d) {
    const double diff = a[d] - b[d];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

StatusOr<Ranking> FaginEngine::ComputeRanking(std::size_t k) {
  QDCBIR_SPAN("engine.fagin.rank");
  if (relevant().empty()) {
    return Status::FailedPrecondition("Fagin has no relevant feedback yet");
  }
  const std::vector<FeatureVector>& table = db_->features();

  // Query point: centroid of the relevant images.
  FeatureVector centroid(table.front().dim());
  for (const ImageId id : relevant()) centroid += table[id];
  centroid *= 1.0 / static_cast<double>(relevant().size());

  // Each subsystem produces a ranking by its subspace distance (sorted
  // access lists of the Threshold Algorithm). The distance scans partition
  // the flattened (subsystem, image) index space across the pool — every
  // slot is written exactly once, so the lists are identical at any thread
  // count — and the per-subsystem sorts then run as one pool task each.
  struct Scored {
    ImageId id;
    double score;
  };
  ThreadPool& pool = options_.pool != nullptr ? *options_.pool
                                              : ThreadPool::Global();
  std::vector<std::vector<Scored>> lists(subsystems_.size());
  for (std::size_t s = 0; s < subsystems_.size(); ++s) {
    lists[s].resize(table.size());
  }
  // Block-at-a-time subspace scans: a subsystem's dimensions are a
  // contiguous [begin, end) range, so its distances over one tile are a
  // squared-L2 kernel call on the tile offset by `begin` whole dimensions.
  // Per-lane sqrt afterwards reproduces SubspaceDistance bit for bit.
  const FeatureBlockTable& blocks = db_->feature_blocks();
  const DistanceKernels& kernels = ActiveKernels();
  pool.ParallelFor(
      0, subsystems_.size() * blocks.num_blocks(), [&](std::size_t f) {
        const std::size_t s = f / blocks.num_blocks();
        const std::size_t b = f % blocks.num_blocks();
        const Subsystem& sub = subsystems_[s];
        double out[kBlockWidth];
        kernels.squared_l2(blocks.block(b) + sub.begin * kBlockWidth,
                           centroid.data() + sub.begin, sub.end - sub.begin,
                           out);
        for (std::size_t lane = 0; lane < blocks.lanes(b); ++lane) {
          const std::size_t i = b * kBlockWidth + lane;
          lists[s][i] =
              Scored{static_cast<ImageId>(i), std::sqrt(out[lane])};
        }
      });
  AddBlockBatches(subsystems_.size() * blocks.num_blocks());
  obs::CountDistanceEvals(subsystems_.size() * blocks.size());
  obs::CountFeatureBytes(blocks.size() * blocks.dim() * sizeof(double));
  obs::CountLeafScan(obs::kTableScanLeaf, subsystems_.size() * blocks.size(),
                     blocks.size() * blocks.dim() * sizeof(double));
  {
    std::vector<std::function<void()>> sort_tasks;
    sort_tasks.reserve(subsystems_.size());
    for (std::size_t s = 0; s < subsystems_.size(); ++s) {
      sort_tasks.push_back([&lists, s] {
        std::sort(lists[s].begin(), lists[s].end(),
                  [](const Scored& a, const Scored& b) {
                    if (a.score != b.score) return a.score < b.score;
                    return a.id < b.id;
                  });
      });
    }
    pool.Run(std::move(sort_tasks));
  }

  // Threshold Algorithm: advance all lists in lock-step; random-access the
  // other subsystems for each newly seen id; stop once the k-th best
  // aggregate is at most the threshold (sum of the current sorted-access
  // scores — a lower bound on every unseen object's aggregate).
  last_ta_accesses_ = 0;
  std::unordered_map<ImageId, double> aggregate;
  Ranking top;
  auto worse = [](const KnnMatch& a, const KnnMatch& b) {
    if (a.distance_squared != b.distance_squared) {
      return a.distance_squared < b.distance_squared;
    }
    return a.id < b.id;
  };

  for (std::size_t depth = 0; depth < table.size(); ++depth) {
    double threshold = 0.0;
    for (std::size_t s = 0; s < subsystems_.size(); ++s) {
      const Scored& seen = lists[s][depth];
      threshold += seen.score;
      ++last_ta_accesses_;  // sorted access
      if (aggregate.count(seen.id) > 0) continue;
      // Random accesses to the remaining subsystems.
      double total = 0.0;
      for (std::size_t t = 0; t < subsystems_.size(); ++t) {
        if (t == s) {
          total += seen.score;
        } else {
          total +=
              SubspaceDistance(table[seen.id], centroid, subsystems_[t]);
          ++last_ta_accesses_;
        }
      }
      aggregate.emplace(seen.id, total);
      top.push_back(KnnMatch{seen.id, total});
      std::push_heap(top.begin(), top.end(), worse);
      if (top.size() > k) {
        std::pop_heap(top.begin(), top.end(), worse);
        top.pop_back();
      }
    }
    if (top.size() >= k && top.front().distance_squared <= threshold) {
      break;  // no unseen object can beat the current top k
    }
  }
  stats_.global_knn_computations += 1;
  stats_.candidates_scanned += last_ta_accesses_;

  std::sort_heap(top.begin(), top.end(), worse);
  return top;
}

StatusOr<Ranking> FaginEngine::Finalize(std::size_t k) {
  return ComputeRanking(k);
}

}  // namespace qdcbir
