#ifndef QDCBIR_QUERY_QCLUSTER_ENGINE_H_
#define QDCBIR_QUERY_QCLUSTER_ENGINE_H_

#include "qdcbir/query/feedback_engine.h"

namespace qdcbir {

class ThreadPool;

namespace cache {
class CacheManager;
}  // namespace cache

/// Options of the Qcluster-style engine.
struct QclusterOptions {
  std::size_t display_size = 21;
  std::uint64_t seed = 109;
  /// Maximum number of adaptive clusters.
  int max_clusters = 4;
  std::uint64_t kmeans_seed = 17;
  /// Worker pool for the elbow k-means runs and the disjunctive distance
  /// scan (partitioned with per-thread top-k heaps merged at the end);
  /// nullptr means `ThreadPool::Global()`. Rankings are identical across
  /// pool sizes: the (distance, id) order is total, so the global top k is
  /// unique however the scan is partitioned.
  ThreadPool* pool = nullptr;
  /// Optional finalized-ranking cache (kTopK; nullptr = uncached). The key
  /// covers the relevant set, k-means configuration, k, and SIMD level, so
  /// a replayed session skips both the elbow k-means and the chunked scan
  /// while producing byte-identical rankings and engine stats.
  cache::CacheManager* cache = nullptr;
};

/// A Qcluster-style baseline (Kim & Chung, SIGMOD'03; the paper's §2
/// "Qcluster"). Relevant images are adaptively clustered (the cluster count
/// is chosen by the largest drop in k-means inertia); candidates are scored
/// *disjunctively* — by the distance to the nearest cluster centroid — so
/// each cluster keeps a separate query contour instead of one merged
/// contour. This handles moderately separated relevant clusters, but still
/// ranks globally over one feature space and cannot give distant clusters
/// independent result quotas the way query decomposition does.
class QclusterEngine final : public GlobalFeedbackEngineBase {
 public:
  QclusterEngine(const ImageDatabase* db,
                 const QclusterOptions& options = QclusterOptions());

  const char* Name() const override { return "qcluster"; }
  StatusOr<Ranking> Finalize(std::size_t k) override;

 protected:
  StatusOr<Ranking> ComputeRanking(std::size_t k) override;

 private:
  QclusterOptions options_;
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_QCLUSTER_ENGINE_H_
