#include "qdcbir/query/qpm_engine.h"

#include <cmath>

#include "qdcbir/core/stats.h"

#include "qdcbir/obs/span.h"

namespace qdcbir {

QpmEngine::QpmEngine(const ImageDatabase* db, const QpmOptions& options)
    : GlobalFeedbackEngineBase(db, options.display_size, options.seed),
      options_(options) {}

StatusOr<Ranking> QpmEngine::ComputeRanking(std::size_t k) {
  QDCBIR_SPAN("engine.qpm.rank");
  if (relevant().empty()) {
    return Status::FailedPrecondition("QPM has no relevant feedback yet");
  }
  const std::vector<FeatureVector>& table = db_->features();
  const std::size_t dim = table.front().dim();

  // Query point: centroid of the relevant images. Weights: inverse standard
  // deviation per dimension (MindReader's diagonal metric).
  std::vector<MomentAccumulator> acc(dim);
  for (const ImageId id : relevant()) {
    for (std::size_t d = 0; d < dim; ++d) acc[d].Add(table[id][d]);
  }
  FeatureVector centroid(dim);
  std::vector<double> weights(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    centroid[d] = acc[d].mean();
    weights[d] = 1.0 / (acc[d].stddev() + options_.sigma_floor);
  }

  stats_.global_knn_computations += 1;
  stats_.candidates_scanned += table.size();
  return BruteForceWeightedKnnBlocked(db_->feature_blocks(), centroid,
                                      weights, k);
}

StatusOr<Ranking> QpmEngine::Finalize(std::size_t k) {
  return ComputeRanking(k);
}

}  // namespace qdcbir
