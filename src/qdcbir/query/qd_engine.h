#ifndef QDCBIR_QUERY_QD_ENGINE_H_
#define QDCBIR_QUERY_QD_ENGINE_H_

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "qdcbir/core/rng.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/query/knn.h"
#include "qdcbir/rfs/rfs_tree.h"

namespace qdcbir {

class ThreadPool;

namespace cache {
class CacheManager;
}  // namespace cache

/// Options of a Query Decomposition session.
struct QdOptions {
  /// Representative images shown per feedback round (the prototype's result
  /// panel shows 21 at a time).
  std::size_t display_size = 21;
  /// Boundary-expansion threshold of §3.3: when a final query image's
  /// distance from its leaf's center exceeds `threshold * leaf diagonal`,
  /// the localized search expands to the parent node. The paper uses 0.4
  /// for its 15,000-image database.
  double boundary_threshold = 0.4;
  /// Seed for display sampling.
  std::uint64_t seed = 99;
  /// Optional per-dimension feature weights (the paper's §6 future-work
  /// extension: "the user may define color as the most important
  /// feature"). Empty means unweighted Euclidean ranking; otherwise the
  /// localized subqueries rank candidates by weighted Euclidean distance.
  /// Must be empty or match the tree's feature dimensionality.
  std::vector<double> feature_weights;
  /// Worker pool for the final-round localized subqueries (one task per
  /// frontier leaf). nullptr means `ThreadPool::Global()`. Results are
  /// byte-identical across pool sizes: subqueries write per-task slots and
  /// the cross-group merge runs sequentially in deterministic order.
  ThreadPool* pool = nullptr;
  /// Optional result cache for the finalize hot paths (nullptr = uncached).
  /// Two kinds are used: per-subquery localized-scan rankings (kLeafScan)
  /// and whole finalized results (kTopK). Cached values are pure functions
  /// of their keys — search node, query-point/weight bytes, fetch size, k,
  /// SIMD level — and each entry carries the logical cost-stat deltas it
  /// replaces, so rankings *and* `QdSessionStats` are byte-identical with
  /// the cache on or off (docs/caching.md). The caller owns the manager and
  /// must flush it (`BeginEpoch`) whenever the RFS snapshot changes.
  cache::CacheManager* cache = nullptr;
};

/// A group of images displayed for feedback, tagged with the subquery
/// (frontier node) they represent.
struct DisplayGroup {
  NodeId node = kInvalidNodeId;
  std::vector<ImageId> images;
};

/// One localized subquery's results (§3.4's presentation groups).
struct ResultGroup {
  NodeId leaf = kInvalidNodeId;     ///< the subcluster searched
  NodeId search_node = kInvalidNodeId;  ///< after boundary expansion
  std::size_t relevant_count = 0;   ///< feedback images behind this subquery
  double ranking_score = 0.0;       ///< sum of member similarity scores
  Ranking images;                   ///< ranked by similarity score
};

/// The merged result of a decomposed query.
struct QdResult {
  std::vector<ResultGroup> groups;  ///< ordered by ranking score

  /// All result ids in group order (groups by rank, images by similarity).
  std::vector<ImageId> Flatten() const;
  /// All result ids in one global similarity order, ignoring grouping —
  /// the "more transparent" presentation §3.4 mentions.
  std::vector<ImageId> FlattenBySimilarity() const;
  std::size_t TotalImages() const;
};

/// Cost counters, for the efficiency experiments (Figures 10-11).
struct QdSessionStats {
  std::size_t feedback_rounds = 0;
  std::size_t nodes_touched = 0;          ///< frontier nodes sampled
  /// Distinct tree nodes whose representative lists were read during the
  /// session. In the paper's disk model this is the feedback-phase I/O:
  /// one access per node, re-displays ("Random" presses) hit the cache.
  std::size_t distinct_nodes_sampled = 0;
  std::size_t boundary_expansions = 0;    ///< §3.3 parent expansions
  /// Subqueries whose search node expanded past their leaf (distinct from
  /// `boundary_expansions`, which counts levels climbed): correlates which
  /// part of a session's latency came from §3.3 widening the searches.
  std::size_t expanded_subqueries = 0;
  std::size_t localized_subqueries = 0;   ///< final-round k-NN count
  std::size_t knn_candidates = 0;         ///< images inside searched subtrees
  /// Tree nodes opened by the localized k-NN searches. In the paper's
  /// disk-based cost model (§5.2.2) each opened node is one disk access;
  /// a localized search usually opens about one leaf.
  std::size_t knn_nodes_visited = 0;
};

/// An interactive Query Decomposition session (§3.2).
///
/// Protocol:
///   1. `Start()` displays random representatives of the root.
///   2. The user marks relevant images; `Feedback()` records them, maps each
///      marked representative to the child subtree it came from, and splits
///      the query: the new frontier is exactly those subtrees. The next
///      display shows their representatives.
///   3. `Resample()` re-rolls the current display (the GUI's "Random"
///      button) without consuming a feedback round.
///   4. `Finalize(k)` runs one localized multipoint k-NN per relevant leaf
///      subcluster (with boundary expansion), merges the local results with
///      allocation proportional to each subcluster's relevant-image count,
///      and orders the groups by ranking score.
///
/// No k-NN computation happens before `Finalize` — the property behind the
/// paper's efficiency results.
class QdSession {
 public:
  QdSession(const RfsTree* rfs, const QdOptions& options);

  /// Begins the session; returns the initial display (root representatives).
  std::vector<DisplayGroup> Start();

  /// Re-rolls the current display without advancing the round.
  std::vector<DisplayGroup> Resample();

  /// Records the user's relevant picks (must come from the current display)
  /// and advances the decomposition. Returns the next round's display.
  /// Picks not present in the current display are rejected.
  StatusOr<std::vector<DisplayGroup>> Feedback(
      const std::vector<ImageId>& relevant);

  /// Ends the session with localized k-NN and merging. `k` is the total
  /// result size. Requires at least one relevant image marked.
  StatusOr<QdResult> Finalize(std::size_t k);

  int round() const { return round_; }
  const std::vector<NodeId>& frontier() const { return frontier_; }
  const QdSessionStats& stats() const { return stats_; }

 private:
  std::vector<DisplayGroup> MakeDisplay();

  /// Ranks the `fetch` best candidates of the subtree under `node` against
  /// `query_point`: best-first tree search when unweighted, a weighted scan
  /// of the subtree under the user's feature weights otherwise. Accumulates
  /// node-access counts into `stats` (task-local when subqueries run on the
  /// pool; merged into `stats_` afterwards).
  Ranking LocalizedSearch(NodeId node, const FeatureVector& query_point,
                          std::size_t fetch, QdSessionStats* stats) const;

  /// The scan behind `LocalizedSearch`, always computed. `LocalizedSearch`
  /// consults `options_.cache` first and inserts this result on a miss.
  Ranking LocalizedSearchUncached(NodeId node,
                                  const FeatureVector& query_point,
                                  std::size_t fetch,
                                  QdSessionStats* stats) const;

  /// §3.3: expands `leaf` upward while any of `query_images` lies too close
  /// to the boundary of the current node.
  NodeId ExpandSearchNode(NodeId leaf,
                          const std::vector<ImageId>& query_images,
                          QdSessionStats* stats) const;

  const RfsTree* rfs_;
  QdOptions options_;
  Rng rng_;
  int round_ = 0;
  bool started_ = false;

  std::vector<NodeId> frontier_;
  std::vector<DisplayGroup> current_display_;
  /// Which frontier node displayed each image since the last feedback call
  /// (resampling accumulates here, so picks collected across several
  /// "Random" presses stay valid).
  std::map<ImageId, NodeId> display_origin_;
  /// Every relevant image marked during the session, with multiplicity
  /// collapsed (set semantics), keyed by its containing leaf subcluster.
  std::map<NodeId, std::vector<ImageId>> relevant_by_leaf_;
  std::set<NodeId> sampled_nodes_;  ///< distinct nodes displayed so far
  QdSessionStats stats_;
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_QD_ENGINE_H_
