#ifndef QDCBIR_QUERY_MV_ENGINE_H_
#define QDCBIR_QUERY_MV_ENGINE_H_

#include "qdcbir/query/feedback_engine.h"

namespace qdcbir {

/// Options of the Multiple Viewpoints engine.
struct MvOptions {
  std::size_t display_size = 21;
  std::uint64_t seed = 101;
  /// Number of viewpoint channels combined (1..4). The paper's comparison
  /// combines the four "color channels": original, color-negative,
  /// black-white, and black-white negative.
  int num_channels = 4;
};

/// The Multiple Viewpoints (MV) baseline (French & Jin, CIVR'04; the paper's
/// §5 comparison). Each viewpoint is a k-NN query over the features of one
/// image channel (original / negative / gray / gray-negative); each feedback
/// round moves every channel's query point to the centroid of the relevant
/// images in that channel's feature space; the final result combines the
/// per-channel rankings by rank interleaving.
///
/// MV can return multiple *neighboring* clusters (one per viewpoint), but
/// each viewpoint is still a single-neighborhood k-NN in its channel space —
/// when the ground truth scatters into distant clusters, the centroid
/// collapses between them and recall suffers, which is exactly the behavior
/// Table 1 of the paper documents.
class MvEngine final : public GlobalFeedbackEngineBase {
 public:
  /// `db` must outlive the engine and must carry viewpoint-channel features
  /// when `options.num_channels > 1`.
  MvEngine(const ImageDatabase* db, const MvOptions& options = MvOptions());

  const char* Name() const override { return "mv"; }
  StatusOr<Ranking> Finalize(std::size_t k) override;

 protected:
  StatusOr<Ranking> ComputeRanking(std::size_t k) override;

 private:
  /// Per-channel ranking of size `k` against the centroid of the relevant
  /// images' channel features.
  StatusOr<std::vector<Ranking>> PerChannelRankings(std::size_t k);

  /// Rank-interleaves per-channel rankings into `k` distinct ids.
  static Ranking InterleaveByRank(const std::vector<Ranking>& rankings,
                                  std::size_t k);

  MvOptions options_;
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_MV_ENGINE_H_
