#ifndef QDCBIR_QUERY_MARS_ENGINE_H_
#define QDCBIR_QUERY_MARS_ENGINE_H_

#include "qdcbir/query/feedback_engine.h"

namespace qdcbir {

/// Options of the MARS multipoint engine.
struct MarsOptions {
  std::size_t display_size = 21;
  std::uint64_t seed = 107;
  /// Upper bound on the number of query-expansion clusters.
  int max_clusters = 3;
  std::uint64_t kmeans_seed = 11;
};

/// The MARS multipoint-query baseline (Porkaew et al., ACM MM'99; the
/// paper's §2 "Multipoint Query"). Relevant images are clustered; each
/// cluster contributes the image nearest its centroid as a *representative*,
/// weighted by cluster size; candidates are ranked by the weighted sum of
/// their distances to the representatives. The query contour expands toward
/// the relevant clusters but remains one connected region — so distant
/// relevant clusters pull in the irrelevant space between them.
class MarsEngine final : public GlobalFeedbackEngineBase {
 public:
  MarsEngine(const ImageDatabase* db,
             const MarsOptions& options = MarsOptions());

  const char* Name() const override { return "mars"; }
  StatusOr<Ranking> Finalize(std::size_t k) override;

 protected:
  StatusOr<Ranking> ComputeRanking(std::size_t k) override;

 private:
  MarsOptions options_;
};

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_MARS_ENGINE_H_
