#include "qdcbir/query/mv_engine.h"

#include <algorithm>
#include <unordered_set>

#include "qdcbir/obs/span.h"

namespace qdcbir {

MvEngine::MvEngine(const ImageDatabase* db, const MvOptions& options)
    : GlobalFeedbackEngineBase(db, options.display_size, options.seed),
      options_(options) {
  if (options_.num_channels < 1) options_.num_channels = 1;
  if (options_.num_channels > kNumViewpointChannels ||
      (options_.num_channels > 1 && !db->has_channel_features())) {
    options_.num_channels = 1;
  }
}

StatusOr<std::vector<Ranking>> MvEngine::PerChannelRankings(std::size_t k) {
  if (relevant().empty()) {
    return Status::FailedPrecondition("MV has no relevant feedback yet");
  }
  std::vector<Ranking> rankings;
  for (int c = 0; c < options_.num_channels; ++c) {
    const auto channel = static_cast<ViewpointChannel>(c);
    const std::vector<FeatureVector>& table = db_->channel_features(channel);

    // Channel query point: centroid of the relevant images as seen through
    // this channel.
    FeatureVector centroid(table.front().dim());
    for (const ImageId id : relevant()) centroid += table[id];
    centroid *= 1.0 / static_cast<double>(relevant().size());

    rankings.push_back(
        BruteForceKnnBlocked(db_->channel_blocks(channel), centroid, k));
    stats_.global_knn_computations += 1;
    stats_.candidates_scanned += table.size();
  }
  return rankings;
}

Ranking MvEngine::InterleaveByRank(const std::vector<Ranking>& rankings,
                                   std::size_t k) {
  Ranking out;
  std::unordered_set<ImageId> seen;
  for (std::size_t rank = 0; out.size() < k; ++rank) {
    bool any = false;
    for (const Ranking& r : rankings) {
      if (rank >= r.size()) continue;
      any = true;
      if (out.size() >= k) break;
      if (seen.insert(r[rank].id).second) out.push_back(r[rank]);
    }
    if (!any) break;  // all channels exhausted
  }
  return out;
}

StatusOr<Ranking> MvEngine::ComputeRanking(std::size_t k) {
  QDCBIR_SPAN("engine.mv.rank");
  StatusOr<std::vector<Ranking>> rankings = PerChannelRankings(k);
  if (!rankings.ok()) return rankings.status();
  return InterleaveByRank(*rankings, k);
}

StatusOr<Ranking> MvEngine::Finalize(std::size_t k) {
  return ComputeRanking(k);
}

}  // namespace qdcbir
