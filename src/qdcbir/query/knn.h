#ifndef QDCBIR_QUERY_KNN_H_
#define QDCBIR_QUERY_KNN_H_

#include <vector>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/types.h"
#include "qdcbir/index/rstar_tree.h"

namespace qdcbir {

/// A ranked retrieval list (ascending distance).
using Ranking = std::vector<KnnMatch>;

/// Brute-force k-NN over a full feature table (image id = table index).
/// Distances are squared L2. This is what the traditional relevance-feedback
/// baselines execute against the whole database every round — the cost the
/// RFS structure avoids.
Ranking BruteForceKnn(const std::vector<FeatureVector>& table,
                      const FeatureVector& query, std::size_t k);

/// Brute-force k-NN restricted to `candidates` (ids into `table`).
Ranking BruteForceKnnSubset(const std::vector<FeatureVector>& table,
                            const std::vector<ImageId>& candidates,
                            const FeatureVector& query, std::size_t k);

/// Brute-force k-NN under an arbitrary metric (uses `Compare`).
Ranking BruteForceKnnWithMetric(const std::vector<FeatureVector>& table,
                                const FeatureVector& query, std::size_t k,
                                const DistanceMetric& metric);

/// Blocked brute-force k-NN: scans a `FeatureBlockTable` with the batched
/// distance kernels (`ActiveKernels()`), `kBlockWidth` candidates per tile.
/// Produces the same ranking, byte for byte, as the per-vector overload —
/// the kernels share the scalar path's operation order.
Ranking BruteForceKnnBlocked(const FeatureBlockTable& blocks,
                             const FeatureVector& query, std::size_t k);

/// Blocked weighted brute-force k-NN (per-dimension weighted squared L2,
/// the QPM/MindReader ranking). `weights.size()` must equal `blocks.dim()`.
Ranking BruteForceWeightedKnnBlocked(const FeatureBlockTable& blocks,
                                     const FeatureVector& query,
                                     const std::vector<double>& weights,
                                     std::size_t k);

/// Merges multiple rankings into one of size `k`: entries are interleaved in
/// score order with duplicates (same id) dropped, keeping each id's best
/// distance.
Ranking MergeRankings(const std::vector<Ranking>& rankings, std::size_t k);

}  // namespace qdcbir

#endif  // QDCBIR_QUERY_KNN_H_
