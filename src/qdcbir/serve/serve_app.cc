#include "qdcbir/serve/serve_app.h"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "qdcbir/cache/cache_manager.h"
#include "qdcbir/dataset/database_io.h"
#include "qdcbir/image/ppm_io.h"
#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/build_info.h"
#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/log.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/process_stats.h"
#include "qdcbir/obs/profiler.h"
#include "qdcbir/obs/prom_export.h"
#include "qdcbir/obs/query_log.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/obs/span.h"
#include "qdcbir/obs/timeseries.h"
#include "qdcbir/obs/trace_tree.h"
#include "qdcbir/rfs/rfs_introspect.h"
#include "qdcbir/rfs/rfs_serialization.h"
#include "qdcbir/serve/json_mini.h"

namespace qdcbir {
namespace serve {

namespace {

constexpr const char* kJsonType = "application/json; charset=utf-8";
constexpr const char* kPromType = "text/plain; version=0.0.4; charset=utf-8";

/// Rows of the `/indexz` hot-leaf and co-access tables (and of the labeled
/// `/metrics` leaf families) when the request names no `?n=`.
constexpr std::size_t kHotLeafDefault = 16;

obs::HttpResponse JsonError(int status, const std::string& message) {
  return obs::HttpResponse{status, kJsonType,
                           "{\"error\":" + JsonQuote(message) + "}\n"};
}

void AppendDisplayJson(std::string* out,
                       const std::vector<DisplayGroup>& display) {
  *out += "\"display\":[";
  bool first_group = true;
  for (const DisplayGroup& group : display) {
    if (!first_group) out->push_back(',');
    first_group = false;
    *out += "{\"node\":" + std::to_string(group.node) + ",\"images\":[";
    bool first = true;
    for (const ImageId id : group.images) {
      if (!first) out->push_back(',');
      first = false;
      *out += std::to_string(id);
    }
    *out += "]}";
  }
  out->push_back(']');
}

/// Value of `key` in a raw `a=1&b=2` query string, "" when absent. The
/// admin parameters are plain numbers/identifiers, so no percent-decoding.
std::string QueryParam(const std::string& query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::size_t eq = query.find('=', pos);
    if (eq != std::string::npos && eq < amp &&
        std::string_view(query).substr(pos, eq - pos) == key) {
      return query.substr(eq + 1, amp - eq - 1);
    }
    pos = amp + 1;
  }
  return "";
}

double QueryParamDouble(const std::string& query, std::string_view key,
                        double fallback) {
  const std::string raw = QueryParam(query, key);
  if (raw.empty()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(raw.c_str(), &end);
  return (end == raw.c_str() || *end != '\0') ? fallback : value;
}

/// Display/result ids flattened for the quality tracker (which compares
/// opaque 64-bit ids; see obs/quality_stats.h).
std::vector<std::uint64_t> DisplayIds(const std::vector<DisplayGroup>& display) {
  std::vector<std::uint64_t> ids;
  for (const DisplayGroup& group : display) {
    for (const ImageId id : group.images) ids.push_back(id);
  }
  return ids;
}

std::vector<std::uint64_t> RankedIds(const std::vector<ImageId>& ranked) {
  return std::vector<std::uint64_t>(ranked.begin(), ranked.end());
}

/// `?n=` limit of /queryz and /logz. Absent keeps `fallback`; a positive
/// decimal integer sets `*out`; anything else (garbage, zero, negative)
/// returns false so the handler can answer 400.
bool ParseCountParam(const std::string& query, std::size_t fallback,
                     std::size_t* out) {
  const std::string raw = QueryParam(query, "n");
  if (raw.empty()) {
    *out = fallback;
    return true;
  }
  for (const char c : raw) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value == 0) return false;
  *out = static_cast<std::size_t>(value);
  return true;
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) return Status::IoError("cannot read " + path);
  return std::move(buffer).str();
}

/// Stamps the session's trace identity onto a response: the `traceparent`
/// echo header plus the `"trace"` JSON field (spliced right after the
/// opening `{`, which every API response body starts with).
obs::HttpResponse WithTrace(obs::HttpResponse response,
                            const obs::TraceContext& trace) {
  if (!trace.has_trace_id()) return response;
  response.headers.emplace_back("traceparent", obs::FormatTraceparent(trace));
  if (!response.body.empty() && response.body.front() == '{') {
    response.body.insert(1, "\"trace\":" + JsonQuote(obs::TraceIdHex(trace)) +
                                ",");
  }
  return response;
}

}  // namespace

const char* ReadinessName(Readiness state) {
  switch (state) {
    case Readiness::kStarting: return "starting";
    case Readiness::kLoadingSnapshot: return "loading-snapshot";
    case Readiness::kBuildingRfs: return "building-rfs";
    case Readiness::kServing: return "serving";
    case Readiness::kFailed: return "failed";
  }
  return "unknown";
}

ServeApp::ServeApp(ServeOptions options)
    : options_(std::move(options)),
      http_pool_(options_.http_threads > 0 ? options_.http_threads : 1),
      server_([this] {
        obs::HttpServer::Options server_options;
        server_options.address = options_.address;
        server_options.port = options_.port;
        server_options.executor = [this](std::function<void()> task) {
          http_pool_.Post(std::move(task));
        };
        return server_options;
      }()) {
  server_.Handle("/healthz", [](const obs::HttpRequest&) {
    return obs::HttpResponse{200, "text/plain; charset=utf-8", "ok\n"};
  });
  server_.Handle("/readyz", [this](const obs::HttpRequest&) {
    const Readiness state = readiness();
    if (state == Readiness::kServing) {
      return obs::HttpResponse{200, "text/plain; charset=utf-8", "serving\n"};
    }
    std::string body = ReadinessName(state);
    if (state == Readiness::kFailed) body += ": " + load_error();
    body.push_back('\n');
    return obs::HttpResponse{503, "text/plain; charset=utf-8",
                             std::move(body)};
  });
  server_.Handle("/varz", [](const obs::HttpRequest&) {
    // Splice the build object in front of the registry snapshot so the
    // document stays one JSON object: {"build":{...},"counters":...}.
    std::string body = "{\"build\":" + obs::BuildInfoJson() + ",";
    body += obs::MetricsRegistry::Global().SnapshotJson().substr(1);
    body.push_back('\n');
    return obs::HttpResponse{200, kJsonType, std::move(body)};
  });
  server_.Handle("/metrics", [this](const obs::HttpRequest&) {
    // Refresh the qdcbir_slo_* gauges so every scrape carries current
    // burn-rate states, then render: registry families first, then the
    // standard process_* block (each family self-describing with its own
    // HELP/TYPE lines, so appending keeps the exposition valid).
    slo_engine_->Evaluate();
    std::string body = obs::RenderPrometheusText(obs::MetricsRegistry::Global());
    body += obs::RenderProcessMetricsText(obs::ReadProcessStats());
    // Labeled per-leaf heatmap samples (qdcbir_index_leaf_*{leaf="N"}) use
    // family names disjoint from the registry's, so appending them keeps
    // the exposition valid.
    body += obs::RenderIndexLeafPrometheusText(
        obs::AccessStatsTable::Global().Snapshot(), kHotLeafDefault);
    return obs::HttpResponse{200, kPromType, std::move(body)};
  });
  server_.Handle("/statusz", [this](const obs::HttpRequest& request) {
    return HandleStatusz(request);
  });
  server_.Handle("/profilez", [this](const obs::HttpRequest& request) {
    return HandleProfilez(request);
  });
  server_.Handle("/queryz", [](const obs::HttpRequest& request) {
    std::size_t limit = 0;
    if (!ParseCountParam(request.query, obs::QueryLog::kCapacity, &limit)) {
      return JsonError(400, "n must be a positive integer");
    }
    return obs::HttpResponse{
        200, kJsonType, obs::QueryLog::Global().RenderJson(limit) + "\n"};
  });
  server_.Handle("/tracez", [](const obs::HttpRequest&) {
    return obs::HttpResponse{200, kJsonType,
                             obs::TraceStore::Global().RenderJson() + "\n"};
  });
  server_.Handle("/logz", [](const obs::HttpRequest& request) {
    std::size_t limit = 0;
    if (!ParseCountParam(request.query, obs::LogRing::kCapacity, &limit)) {
      return JsonError(400, "n must be a positive integer");
    }
    return obs::HttpResponse{
        200, kJsonType, obs::LogRing::Global().RenderJson(limit) + "\n"};
  });
  server_.Handle("/sloz", [this](const obs::HttpRequest& request) {
    return HandleSloz(request);
  });
  server_.Handle("/indexz", [this](const obs::HttpRequest& request) {
    return HandleIndexz(request);
  });
  server_.Handle("/historyz", [this](const obs::HttpRequest& request) {
    return HandleHistoryz(request);
  });
  server_.Handle("/api/query", [this](const obs::HttpRequest& request) {
    return HandleApiQuery(request);
  });
  server_.Handle("/api/feedback", [this](const obs::HttpRequest& request) {
    return HandleApiFeedback(request);
  });
  server_.Handle("/api/rep", [this](const obs::HttpRequest& request) {
    return HandleApiRep(request);
  });
  server_.Handle("/api/reload", [this](const obs::HttpRequest& request) {
    return HandleApiReload(request);
  });
  if (options_.cache_mb > 0) {
    cache::CacheManager::Options cache_options;
    cache_options.budget_bytes = options_.cache_mb << 20;
    cache_ = std::make_unique<cache::CacheManager>(cache_options);
  }

  {
    std::vector<obs::SloDefinition> slos;
    obs::SloDefinition latency;
    latency.name = "session_latency";
    latency.kind = obs::SloKind::kLatencyQuantile;
    latency.metric = "serve.session.latency_ns";
    latency.threshold = options_.slo_latency_ms * 1e6;
    latency.objective = options_.slo_latency_objective;
    slos.push_back(std::move(latency));

    obs::SloDefinition availability;
    availability.name = "http_availability";
    availability.kind = obs::SloKind::kAvailability;
    availability.metric = "serve.http.requests";
    availability.bad_metric = "serve.http.bad_requests";
    availability.objective = 0.999;
    slos.push_back(std::move(availability));

    obs::SloDefinition cache_rate;
    cache_rate.name = "cache_hit_rate";
    cache_rate.kind = obs::SloKind::kRatioFloor;
    cache_rate.metric = "cache.hit";
    cache_rate.bad_metric = "cache.miss";
    // A cold or disabled cache is expected; only a sustained near-total
    // miss rate should burn.
    cache_rate.objective = 0.05;
    slos.push_back(std::move(cache_rate));

    obs::SloDefinition quality;
    quality.name = "quality_stability";
    quality.kind = obs::SloKind::kHistogramFloor;
    quality.metric = "quality.topk_jaccard";
    quality.threshold =
        static_cast<double>(options_.slo_jaccard_floor_permille);
    quality.objective = options_.slo_jaccard_objective;
    slos.push_back(std::move(quality));

    slo_engine_ = std::make_unique<obs::SloEngine>(std::move(slos));
  }
  {
    obs::FlightRecorder::Options recorder_options;
    recorder_options.interval_ns = options_.history_interval_ms * 1000000ull;
    recorder_ = std::make_unique<obs::FlightRecorder>(recorder_options);
  }
  if (!options_.wide_events_path.empty()) {
    obs::WideEventSinkOptions sink_options;
    sink_options.path = options_.wide_events_path;
    sink_options.max_bytes =
        static_cast<std::uint64_t>(options_.wide_events_max_mb) << 20;
    wide_events_ = std::make_unique<obs::WideEventSink>(sink_options);
  }
}

ServeApp::~ServeApp() { Stop(); }

bool ServeApp::Start(std::string* error) {
  start_epoch_seconds_ = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  start_mono_ns_ = obs::MonotonicNanos();
  if (!server_.Start(error)) {
    SetReadiness(Readiness::kFailed);
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      load_error_ = error != nullptr ? *error : "bind failed";
    }
    return false;
  }
  if (options_.profile_hz > 0) {
    obs::ProfilerOptions profiler_options;
    profiler_options.hz = options_.profile_hz;
    std::string profiler_error;
    if (obs::Profiler::Global().Start(profiler_options, &profiler_error)) {
      profiler_armed_ = true;
      QDCBIR_LOG(obs::LogLevel::kInfo,
                 "background profiler armed at " +
                     std::to_string(options_.profile_hz) + " Hz");
    } else {
      QDCBIR_LOG(obs::LogLevel::kWarn,
                 "background profiler not started: " + profiler_error);
    }
  }
  if (options_.history_interval_ms > 0) recorder_->Start();
  loader_ = std::thread([this] { LoadInBackground(); });
  return true;
}

void ServeApp::Stop() {
  recorder_->Stop();
  if (profiler_armed_) {
    obs::Profiler::Global().Stop();
    profiler_armed_ = false;
  }
  server_.Stop();
  if (loader_.joinable()) loader_.join();

  // Sessions still open after the listener drained never reached finalize:
  // classify them (abandoned, or errored when their last round failed),
  // publish their quality telemetry, and give them /queryz rows and wide
  // events so abandoned traffic is as visible as completed traffic.
  std::map<std::uint64_t, std::shared_ptr<Session>> leftovers;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    leftovers.swap(sessions_);
  }
  for (const auto& [session_id, session] : leftovers) {
    const obs::SessionQuality quality = session->quality.Summary();
    obs::QueryAuditRecord record;
    record.set_engine("qd");
    record.set_label(session->label);
    record.seed = session->seed;
    record.rounds = static_cast<std::uint64_t>(session->qd.round());
    record.picks = session->picks;
    const QdSessionStats& stats = session->qd.stats();
    record.subqueries = stats.localized_subqueries;
    record.boundary_expansions = stats.boundary_expansions;
    record.expanded_subqueries = stats.expanded_subqueries;
    record.nodes_visited = stats.knn_nodes_visited;
    record.candidates_scored = stats.knn_candidates;
    record.nodes_touched = stats.nodes_touched;
    record.distinct_nodes_sampled = stats.distinct_nodes_sampled;
    record.rounds_ns = session->rounds_ns;
    record.total_ns = session->rounds_ns;
    record.trace_hi = session->trace.trace_hi;
    record.trace_lo = session->trace.trace_lo;
    const obs::ResourceUsage usage = session->resources.Snapshot();
    record.distance_evals = usage.distance_evals;
    record.feature_bytes = usage.feature_bytes;
    record.leaves_visited = usage.leaves_visited;
    record.tiles_gathered = usage.tiles_gathered;
    record.container_allocs = usage.container_allocs;
    record.alloc_bytes = usage.alloc_bytes;
    record.cache_hits = usage.cache_hits;
    record.cache_misses = usage.cache_misses;
    record.quality_jaccard_permille = quality.last_jaccard_permille;
    record.quality_rank_churn = quality.last_rank_churn;
    record.quality_rounds_to_stability = quality.rounds_to_stability;
    record.quality_outcome = static_cast<std::uint64_t>(quality.outcome);
    obs::QueryLog::Global().Record(record);
    FinishSessionObservability(*session, session_id, quality, record);
  }
}

std::string ServeApp::load_error() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return load_error_;
}

bool ServeApp::WaitUntilReady(int timeout_ms) {
  std::unique_lock<std::mutex> lock(state_mu_);
  state_cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [this] {
    const Readiness state = readiness();
    return state == Readiness::kServing || state == Readiness::kFailed;
  });
  return readiness() == Readiness::kServing;
}

void ServeApp::SetReadiness(Readiness state) {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    readiness_.store(state, std::memory_order_release);
  }
  state_cv_.notify_all();
}

void ServeApp::LoadInBackground() {
  // The loader burns real CPU (checksum verify, RFS decode); make it
  // visible to the sampling profiler like any pool worker.
  const obs::ScopedThreadProfiling profiling;
  SetReadiness(Readiness::kLoadingSnapshot);
  const auto fail = [this](const Status& status) {
    QDCBIR_LOG(obs::LogLevel::kError,
               "serve load failed: " + status.ToString());
    {
      std::lock_guard<std::mutex> lock(state_mu_);
      load_error_ = status.ToString();
    }
    SetReadiness(Readiness::kFailed);
  };

  // The snapshot decode and the RFS byte read overlap on the query pool;
  // the snapshot loader additionally fans its chunks out on the same pool
  // (nested batches are safe).
  ThreadPool& pool = QueryPool();
  StatusOr<ImageDatabase> db = Status::Internal("snapshot load not run");
  StatusOr<std::string> rfs_blob = Status::Internal("rfs load not run");
  std::vector<std::function<void()>> tasks;
  tasks.push_back([this, &pool, &db] {
    SnapshotLoadOptions load_options;
    load_options.pool = &pool;
    load_options.verify_checksums = options_.verify_checksums;
    db = DatabaseIo::LoadDatabase(options_.db_path, load_options);
  });
  tasks.push_back([this, &rfs_blob] {
    rfs_blob = options_.rfs_path.empty()
                   ? DatabaseIo::LoadEmbeddedRfsBlob(options_.db_path)
                   : ReadFileBytes(options_.rfs_path);
  });
  pool.Run(std::move(tasks));

  if (!db.ok()) return fail(db.status());
  if (!rfs_blob.ok()) return fail(rfs_blob.status());

  SetReadiness(Readiness::kBuildingRfs);
  StatusOr<RfsTree> rfs = RfsSerializer::Deserialize(*rfs_blob);
  if (!rfs.ok()) return fail(rfs.status());

  db_.emplace(std::move(*db));
  rfs_.emplace(std::move(*rfs));
  // New corpus ⇒ new cache epoch: entries keyed against the previous
  // snapshot are flushed, and in-flight computes against it can no longer
  // insert (their epoch tokens went stale the moment the epoch advanced).
  const std::uint64_t generation =
      load_generation_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (cache_ != nullptr) {
    cache_->BeginEpoch(cache::HashCombine(
        cache::HashBytes(options_.db_path.data(), options_.db_path.size()),
        generation));
  }
  // Leaf ids are only meaningful within one loaded tree: start a fresh
  // access epoch and publish the new tree's shape as gauges so scrapes can
  // normalize heatmaps (scans per leaf vs leaves in the tree).
  obs::AccessStatsTable::Global().Reset();
  obs::CoAccessTracker::Global().Reset();
  {
    const IndexTreeSummary shape = SummarizeIndexTree(*rfs_);
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    registry.GetGauge("index.tree.leaves", "Leaves in the loaded RFS tree")
        .Set(static_cast<std::int64_t>(shape.leaf_count));
    registry.GetGauge("index.tree.nodes", "Nodes in the loaded RFS tree")
        .Set(static_cast<std::int64_t>(shape.node_count));
    registry.GetGauge("index.tree.height", "Height of the loaded RFS tree")
        .Set(static_cast<std::int64_t>(shape.height));
    registry
        .GetGauge("index.tree.images", "Images indexed by the loaded RFS tree")
        .Set(static_cast<std::int64_t>(shape.total_images));
  }
  QDCBIR_LOG(obs::LogLevel::kInfo,
             "serving " + std::to_string(db_->size()) + " images from " +
                 options_.db_path + " (load generation " +
                 std::to_string(generation) + ")");
  SetReadiness(Readiness::kServing);
}

obs::HttpResponse ServeApp::HandleApiQuery(const obs::HttpRequest& request) {
  if (request.method != "POST") {
    return JsonError(405, "POST a JSON body to open a session");
  }
  if (readiness() != Readiness::kServing) {
    return JsonError(503, std::string("not ready: ") +
                              ReadinessName(readiness()));
  }

  JsonValue body;
  if (!request.body.empty()) {
    StatusOr<JsonValue> parsed = ParseJson(request.body);
    if (!parsed.ok()) return JsonError(400, parsed.status().ToString());
    body = std::move(*parsed);
  }

  QdOptions qd_options;
  qd_options.display_size = static_cast<std::size_t>(
      body.U64Field("display_size", options_.display_size));
  qd_options.boundary_threshold = options_.boundary_threshold;
  qd_options.pool = &QueryPool();
  qd_options.cache = cache_.get();

  // The session's trace identity: the client's traceparent when one is
  // supplied and well-formed, a fresh id otherwise. A span-tree buffer is
  // attached while either retention mechanism (head sampling or the slow
  // trigger) could want the tree.
  obs::TraceContext trace;
  if (const std::string* header = request.FindHeader("traceparent")) {
    obs::ParseTraceparent(*header, &trace);
  }
  if (!trace.has_trace_id()) trace = obs::NewTraceContext();

  std::uint64_t session_id = 0;
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    // Re-checked under the lock: /api/reload flips readiness while holding
    // `sessions_mu_`, so a session is only ever registered — and the
    // corpus only ever touched past this point — against a snapshot that
    // stays loaded until the session is erased.
    if (readiness() != Readiness::kServing) {
      return JsonError(503, std::string("not ready: ") +
                                ReadinessName(readiness()));
    }
    if (sessions_.size() >= options_.max_sessions) {
      return JsonError(429, "too many open sessions");
    }
    session_id = next_session_id_++;
    const std::uint64_t opened = sessions_opened_++;
    qd_options.seed = body.U64Field("seed", session_id);
    session = std::make_shared<Session>(QdSession(&*rfs_, qd_options));
    session->seed = qd_options.seed;
    session->label = "http";
    if (const JsonValue* label = body.Find("label")) {
      if (label->kind == JsonValue::Kind::kString) {
        session->label = label->string;
      }
    }
    session->head_sampled = options_.trace_sample_every > 0 &&
                            opened % options_.trace_sample_every == 0;
    if (session->head_sampled || options_.slow_trace_ms >= 0.0) {
      trace.buffer = std::make_shared<obs::TraceBuffer>();
    }
    session->trace = trace;
    // Published busy so a racing /api/feedback on the fresh id answers 409
    // instead of interleaving with Start().
    session->busy.store(true, std::memory_order_relaxed);
    sessions_[session_id] = session;
  }

  static obs::Counter& sessions_counter =
      obs::MetricsRegistry::Global().GetCounter(
          "qd.sessions", "Interactive QD sessions opened over HTTP");
  sessions_counter.Add(1);

  const std::uint64_t start_ns = obs::MonotonicNanos();
  std::vector<DisplayGroup> display;
  {
    const obs::ScopedTraceContext scoped(session->trace);
    const obs::ScopedResourceAccounting accounting(&session->resources);
    const obs::ScopedAccessAccounting access_accounting(&session->access);
    QDCBIR_SPAN("serve.api.query");
    display = session->qd.Start();
  }
  session->rounds_ns += obs::MonotonicNanos() - start_ns;
  session->quality.ObserveRound(DisplayIds(display),
                                session->qd.stats().localized_subqueries);
  session->busy.store(false, std::memory_order_release);

  std::string out = "{\"session\":" + std::to_string(session_id) +
                    ",\"round\":" + std::to_string(session->qd.round()) + ",";
  AppendDisplayJson(&out, display);
  out += "}\n";
  return WithTrace(obs::HttpResponse{200, kJsonType, std::move(out)},
                   session->trace);
}

obs::HttpResponse ServeApp::HandleApiFeedback(
    const obs::HttpRequest& request) {
  if (request.method != "POST") {
    return JsonError(405, "POST a JSON body with session and relevant ids");
  }
  if (readiness() != Readiness::kServing) {
    return JsonError(503, std::string("not ready: ") +
                              ReadinessName(readiness()));
  }
  StatusOr<JsonValue> parsed = ParseJson(request.body);
  if (!parsed.ok()) return JsonError(400, parsed.status().ToString());
  const JsonValue& body = *parsed;

  const std::uint64_t session_id = body.U64Field("session", 0);
  if (session_id == 0) return JsonError(400, "missing \"session\"");
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return JsonError(404, "no such session");
    }
    session = it->second;
  }
  // One request drives a session at a time. The busy flag (not the map
  // lock) guards the engine: holding a lock across Finalize could let the
  // query pool adopt another connection task that waits on the same lock.
  if (session->busy.exchange(true, std::memory_order_acquire)) {
    return JsonError(409, "session busy");
  }
  struct BusyReset {
    std::atomic<bool>& flag;
    ~BusyReset() { flag.store(false, std::memory_order_release); }
  } busy_reset{session->busy};

  // The session's trace (fixed at open) is authoritative for the rest of
  // the handler: every span, log entry, and exemplar below carries it. A
  // client traceparent on this request is accepted but does not re-identify
  // the session.
  const obs::ScopedTraceContext scoped_trace(session->trace);
  // Resource accounting spans the whole handler: Feedback and Finalize
  // deltas (from this thread and every pool worker the engine fans out to)
  // merge into the session's accumulator.
  const obs::ScopedResourceAccounting accounting(&session->resources);
  // Same span for the per-leaf access sink, so every localized scan below
  // attributes its work to the RFS leaf it touched.
  const obs::ScopedAccessAccounting access_accounting(&session->access);

  std::vector<ImageId> relevant;
  if (const JsonValue* ids = body.Find("relevant")) {
    if (!ids->is_array()) return JsonError(400, "\"relevant\" must be an array");
    for (const JsonValue& id : ids->items) {
      if (!id.is_number() || id.number < 0) {
        return JsonError(400, "\"relevant\" must hold image ids");
      }
      relevant.push_back(static_cast<ImageId>(id.number));
    }
  }

  std::uint64_t start_ns = obs::MonotonicNanos();
  StatusOr<std::vector<DisplayGroup>> next = [&] {
    QDCBIR_SPAN("serve.api.feedback");
    return session->qd.Feedback(relevant);
  }();
  session->rounds_ns += obs::MonotonicNanos() - start_ns;
  if (!next.ok()) {
    session->quality.RecordError();
    QDCBIR_LOG(obs::LogLevel::kWarn,
               "feedback rejected: " + next.status().ToString());
    return WithTrace(JsonError(400, next.status().ToString()),
                     session->trace);
  }
  session->picks += relevant.size();
  session->quality.ObserveRound(DisplayIds(*next),
                                session->qd.stats().localized_subqueries);

  const JsonValue* finalize = body.Find("finalize");
  if (finalize == nullptr) {
    std::string out = "{\"session\":" + std::to_string(session_id) +
                      ",\"round\":" + std::to_string(session->qd.round()) +
                      ",";
    AppendDisplayJson(&out, *next);
    out += "}\n";
    return WithTrace(obs::HttpResponse{200, kJsonType, std::move(out)},
                     session->trace);
  }

  std::size_t k = options_.default_k;
  if (finalize->is_number() && finalize->number > 0) {
    k = static_cast<std::size_t>(finalize->number);
  }
  start_ns = obs::MonotonicNanos();
  StatusOr<QdResult> result = [&] {
    QDCBIR_SPAN("serve.api.feedback");
    StatusOr<QdResult> finalized = session->qd.Finalize(k);
    if (finalized.ok()) {
      // Quality observation of the final ranked list happens inside the
      // span so the proxies land as annotations on the session's trace.
      session->quality.ObserveRound(
          RankedIds(finalized->Flatten()),
          session->qd.stats().localized_subqueries);
      session->quality.Finalized();
      QDCBIR_SPAN_ANNOTATE(
          "quality.topk_jaccard_permille",
          static_cast<std::int64_t>(session->quality.last_jaccard_permille()));
      QDCBIR_SPAN_ANNOTATE(
          "quality.rank_churn",
          static_cast<std::int64_t>(session->quality.last_rank_churn()));
    }
    return finalized;
  }();
  const std::uint64_t finalize_ns = obs::MonotonicNanos() - start_ns;
  if (!result.ok()) {
    session->quality.RecordError();
    QDCBIR_LOG(obs::LogLevel::kWarn,
               "finalize failed: " + result.status().ToString());
    return WithTrace(JsonError(400, result.status().ToString()),
                     session->trace);
  }

  // The session is complete: publish it to the /queryz audit ring and
  // release the slot.
  const QdSessionStats& stats = session->qd.stats();
  obs::QueryAuditRecord record;
  record.set_engine("qd");
  record.set_label(session->label);
  record.seed = session->seed;
  record.rounds = static_cast<std::uint64_t>(session->qd.round());
  record.picks = session->picks;
  record.results = result->TotalImages();
  record.subqueries = stats.localized_subqueries;
  record.boundary_expansions = stats.boundary_expansions;
  record.expanded_subqueries = stats.expanded_subqueries;
  record.nodes_visited = stats.knn_nodes_visited;
  record.candidates_scored = stats.knn_candidates;
  record.nodes_touched = stats.nodes_touched;
  record.distinct_nodes_sampled = stats.distinct_nodes_sampled;
  record.rounds_ns = session->rounds_ns;
  record.finalize_ns = finalize_ns;
  record.total_ns = session->rounds_ns + finalize_ns;
  record.trace_hi = session->trace.trace_hi;
  record.trace_lo = session->trace.trace_lo;
  // This thread's pending deltas first (pool workers flushed at task end;
  // `Run` already joined them), then the cross-worker totals.
  obs::FlushResourceAccounting();
  const obs::ResourceUsage usage = session->resources.Snapshot();
  record.distance_evals = usage.distance_evals;
  record.feature_bytes = usage.feature_bytes;
  record.leaves_visited = usage.leaves_visited;
  record.tiles_gathered = usage.tiles_gathered;
  record.container_allocs = usage.container_allocs;
  record.alloc_bytes = usage.alloc_bytes;
  record.cache_hits = usage.cache_hits;
  record.cache_misses = usage.cache_misses;
  const obs::SessionQuality quality = session->quality.Summary();
  record.quality_jaccard_permille = quality.last_jaccard_permille;
  record.quality_rank_churn = quality.last_rank_churn;
  record.quality_rounds_to_stability = quality.rounds_to_stability;
  record.quality_outcome = static_cast<std::uint64_t>(quality.outcome);
  obs::QueryLog::Global().Record(record);

  // Per-session physical-work distributions, alongside the latency family.
  {
    static obs::Histogram& distance_evals =
        obs::MetricsRegistry::Global().GetHistogram(
            "serve.session.distance_evals",
            "Distance evaluations per RF session");
    static obs::Histogram& feature_bytes =
        obs::MetricsRegistry::Global().GetHistogram(
            "serve.session.feature_bytes",
            "Feature-vector bytes scanned per RF session");
    static obs::Histogram& leaves_visited =
        obs::MetricsRegistry::Global().GetHistogram(
            "serve.session.leaves_visited",
            "RFS tree nodes visited per RF session");
    static obs::Histogram& tiles_gathered =
        obs::MetricsRegistry::Global().GetHistogram(
            "serve.session.tiles_gathered",
            "Blocked-layout gather tiles built per RF session");
    static obs::Histogram& alloc_bytes =
        obs::MetricsRegistry::Global().GetHistogram(
            "serve.session.alloc_bytes",
            "Hot-container bytes allocated per RF session");
    static obs::Histogram& cache_hits =
        obs::MetricsRegistry::Global().GetHistogram(
            "serve.session.cache_hits", "Cache hits per RF session");
    cache_hits.Record(usage.cache_hits);
    distance_evals.Record(usage.distance_evals);
    feature_bytes.Record(usage.feature_bytes);
    leaves_visited.Record(usage.leaves_visited);
    tiles_gathered.Record(usage.tiles_gathered);
    alloc_bytes.Record(usage.alloc_bytes);
  }

  // Session latency distribution, with the trace id attached as an
  // OpenMetrics exemplar so a latency bucket links to its /tracez tree.
  static obs::Histogram& latency = obs::MetricsRegistry::Global().GetHistogram(
      "serve.session.latency_ns",
      "End-to-end RF session latency (rounds + finalize)");
  latency.Record(record.total_ns);
  obs::MetricsRegistry::Global().RecordExemplar(
      "serve.session.latency_ns", record.total_ns,
      obs::TraceIdHex(session->trace));

  // Retroactive retention: the tree was recorded unconditionally while the
  // buffer existed; keep it when the session was head-sampled or crossed
  // the slow threshold, drop it (with the buffer) otherwise.
  const bool slow =
      options_.slow_trace_ms >= 0.0 &&
      static_cast<double>(record.total_ns) >= options_.slow_trace_ms * 1e6;
  if (session->trace.recording() && (session->head_sampled || slow)) {
    obs::CompletedTrace completed;
    completed.trace_id = obs::TraceIdHex(session->trace);
    completed.label = session->label;
    completed.reason = session->head_sampled ? "sampled" : "slow";
    completed.total_ns = record.total_ns;
    completed.dropped_spans = session->trace.buffer->dropped();
    completed.spans = session->trace.buffer->spans();
    completed.annotations = session->trace.buffer->annotations();
    if (slow) {
      // Pin the slow session into engine history: an immediate sample
      // captures the counters around the spike, and the event mark lets
      // /historyz output join back to the /tracez tree by trace id.
      recorder_->SampleNow();
      recorder_->MarkEvent(completed.trace_id);
    }
    obs::TraceStore::Global().Publish(std::move(completed));
  }
  QDCBIR_LOG(obs::LogLevel::kInfo,
             "session " + std::to_string(session_id) + " finalized: " +
                 std::to_string(record.results) + " results, " +
                 std::to_string(record.subqueries) + " subqueries, " +
                 std::to_string(record.total_ns / 1000000) + " ms");
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    sessions_.erase(session_id);
  }
  FinishSessionObservability(*session, session_id, quality, record);

  std::string out = "{\"session\":" + std::to_string(session_id) +
                    ",\"results\":[";
  bool first = true;
  for (const ImageId id : result->Flatten()) {
    if (!first) out.push_back(',');
    first = false;
    out += std::to_string(id);
  }
  out += "],\"groups\":[";
  first = true;
  for (const ResultGroup& group : result->groups) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"leaf\":" + std::to_string(group.leaf) +
           ",\"search_node\":" + std::to_string(group.search_node) +
           ",\"relevant_count\":" + std::to_string(group.relevant_count) +
           ",\"images\":[";
    bool first_image = true;
    for (const KnnMatch& match : group.images) {
      if (!first_image) out.push_back(',');
      first_image = false;
      out += std::to_string(match.id);
    }
    out += "]}";
  }
  out += "],\"stats\":{\"subqueries\":" +
         std::to_string(stats.localized_subqueries) +
         ",\"boundary_expansions\":" +
         std::to_string(stats.boundary_expansions) +
         ",\"expanded_subqueries\":" +
         std::to_string(stats.expanded_subqueries) +
         ",\"knn_nodes_visited\":" + std::to_string(stats.knn_nodes_visited) +
         ",\"knn_candidates\":" + std::to_string(stats.knn_candidates) +
         ",\"nodes_touched\":" + std::to_string(stats.nodes_touched) +
         ",\"distinct_nodes_sampled\":" +
         std::to_string(stats.distinct_nodes_sampled) +
         "},\"rounds_ns\":" + std::to_string(record.rounds_ns) +
         ",\"finalize_ns\":" + std::to_string(record.finalize_ns) + "}\n";
  return WithTrace(obs::HttpResponse{200, kJsonType, std::move(out)},
                   session->trace);
}

obs::HttpResponse ServeApp::HandleApiRep(const obs::HttpRequest& request) {
  if (request.method != "GET") {
    return JsonError(405, "GET /api/rep?id=N");
  }
  const std::string raw_id = QueryParam(request.query, "id");
  if (raw_id.empty()) return JsonError(400, "missing \"id\" parameter");
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(raw_id.c_str(), &end, 10);
  if (end == raw_id.c_str() || *end != '\0') {
    return JsonError(400, "\"id\" must be a number");
  }
  const ImageId id = static_cast<ImageId>(parsed);

  // The whole render runs under `sessions_mu_`: readiness flips (reload)
  // happen under the same lock, so observing kServing here pins the corpus
  // for the duration. Renders are small (one image) and usually cached.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (readiness() != Readiness::kServing) {
    return JsonError(503, std::string("not ready: ") +
                              ReadinessName(readiness()));
  }
  if (parsed >= db_->size()) return JsonError(404, "no such image");

  constexpr const char* kPpmType = "image/x-portable-pixmap";
  cache::CacheKey key;
  key.kind = cache::CacheKind::kRepresentatives;
  key.a = id;
  std::uint64_t token = 0;
  if (cache_ != nullptr) {
    if (std::shared_ptr<const std::string> hit =
            cache_->LookupAs<std::string>(key, &token)) {
      return obs::HttpResponse{200, kPpmType, *hit};
    }
  }
  std::string ppm = EncodePpm(db_->Render(id));
  if (cache_ != nullptr) {
    cache_->InsertAs<std::string>(
        key, std::make_shared<const std::string>(ppm),
        sizeof(std::string) + ppm.size(), token);
  }
  return obs::HttpResponse{200, kPpmType, std::move(ppm)};
}

obs::HttpResponse ServeApp::HandleApiReload(const obs::HttpRequest& request) {
  if (request.method != "POST") {
    return JsonError(405, "POST to re-load the snapshot");
  }
  if (reload_busy_.exchange(true, std::memory_order_acquire)) {
    return JsonError(409, "reload already in progress");
  }
  struct BusyReset {
    std::atomic<bool>& flag;
    ~BusyReset() { flag.store(false, std::memory_order_release); }
  } busy_reset{reload_busy_};

  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    // Open sessions hold raw pointers into the current corpus; refusing
    // here (rather than draining) keeps reload semantics simple and safe.
    if (!sessions_.empty()) {
      return JsonError(409, std::to_string(sessions_.size()) +
                                " sessions open; retry when drained");
    }
    const Readiness state = readiness();
    if (state != Readiness::kServing && state != Readiness::kFailed) {
      return JsonError(409, std::string("load in progress: ") +
                                ReadinessName(state));
    }
    // Flipped under `sessions_mu_`: every corpus-touching handler
    // re-checks readiness under this lock, so after the flip nothing can
    // start using db_/rfs_ while the loader below replaces them.
    SetReadiness(Readiness::kLoadingSnapshot);
  }
  if (loader_.joinable()) loader_.join();
  QDCBIR_LOG(obs::LogLevel::kInfo, "snapshot reload requested");
  loader_ = std::thread([this] { LoadInBackground(); });
  return obs::HttpResponse{202, kJsonType,
                           "{\"status\":\"reloading\"}\n"};
}

obs::HttpResponse ServeApp::HandleStatusz(const obs::HttpRequest&) {
  const Readiness state = readiness();
  const std::uint64_t uptime_s =
      (obs::MonotonicNanos() - start_mono_ns_) / 1000000000ull;
  std::size_t open_sessions = 0;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    open_sessions = sessions_.size();
  }

  std::string body =
      "<!DOCTYPE html>\n<html><head><title>qdcbir statusz</title>"
      "<style>body{font-family:monospace;margin:2em}"
      "table{border-collapse:collapse}"
      "td{border:1px solid #ccc;padding:4px 10px}</style></head><body>\n";
  body += "<h1>qdcbir serve</h1>\n<table>\n";
  const auto row = [&body](const std::string& key, const std::string& value) {
    body += "<tr><td>" + key + "</td><td>" + value + "</td></tr>\n";
  };
  row("state", ReadinessName(state));
  if (state == Readiness::kFailed) row("load_error", load_error());
  row("uptime_seconds", std::to_string(uptime_s));
  row("started_unix", std::to_string(start_epoch_seconds_));
  row("open_sessions", std::to_string(open_sessions));
  row("git", obs::kBuildGitDescribe);
  row("compiler", obs::kBuildCompiler);
  row("build_type", obs::kBuildType);
  row("obs", obs::kBuildObs);
  row("db", options_.db_path);
  if (cache_ != nullptr) {
    const cache::CacheStats cache_stats = cache_->TotalStats();
    row("cache", std::to_string(cache_stats.bytes_used / 1024) + " KiB of " +
                     std::to_string(cache_->budget_bytes() >> 20) +
                     " MiB, " + std::to_string(cache_stats.hits) + " hits / " +
                     std::to_string(cache_stats.misses) + " misses, " +
                     std::to_string(cache_stats.evictions) + " evictions");
  } else {
    row("cache", "off");
  }
  row("background_profiler",
      profiler_armed_ ? std::to_string(options_.profile_hz) + " Hz" : "off");
  {
    slo_engine_->Evaluate();
    std::string slo_summary = obs::SloStateName(slo_engine_->WorstState());
    slo_summary += " (";
    bool first = true;
    for (const obs::SloStatus& status : slo_engine_->Snapshot()) {
      if (!first) slo_summary += ", ";
      first = false;
      slo_summary += status.name + ": " + obs::SloStateName(status.state);
    }
    slo_summary += ")";
    row("slo", slo_summary);
  }
  {
    const obs::AccessStatsTable& table = obs::AccessStatsTable::Global();
    row("index_access",
        std::to_string(table.Snapshot().size()) + " leaves touched over " +
            std::to_string(table.sessions_merged()) + " sessions, " +
            std::to_string(obs::CoAccessTracker::Global().sets_recorded()) +
            " co-access sets");
  }
  row("flight_recorder",
      options_.history_interval_ms > 0
          ? std::to_string(options_.history_interval_ms) + " ms cadence, " +
                std::to_string(recorder_->samples_taken()) + " samples"
          : "off (" + std::to_string(recorder_->samples_taken()) +
                " event-driven samples)");
  if (wide_events_ != nullptr) {
    row("wide_events", wide_events_->path() + ", " +
                           std::to_string(wide_events_->emitted()) +
                           " emitted, " +
                           std::to_string(wide_events_->dropped()) +
                           " dropped, " +
                           std::to_string(wide_events_->rotations()) +
                           " rotations");
  } else {
    row("wide_events", "off");
  }
  body += "</table>\n<h2>endpoints</h2>\n<ul>\n";
  const auto link = [&body](const char* path, const char* what) {
    body += std::string("<li><a href=\"") + path + "\">" + path + "</a> — " +
            what + "</li>\n";
  };
  link("/healthz", "process liveness");
  link("/readyz", "readiness state machine");
  link("/varz", "build info + metrics snapshot (JSON)");
  link("/metrics", "Prometheus exposition incl. process_* families");
  link("/queryz", "audit ring of completed sessions (JSON)");
  link("/tracez", "sampled and slow span trees (JSON)");
  link("/logz", "structured log ring (JSON)");
  link("/sloz", "SLO burn-rate states (JSON)");
  link("/indexz", "RFS tree geometry + per-leaf access heatmap (JSON)");
  link("/historyz?metric=qd.sessions",
       "flight-recorder metric history (JSON)");
  link("/profilez?seconds=2", "span-attributed CPU profile (collapsed)");
  link("/profilez?seconds=2&amp;format=json", "CPU profile (JSON aggregate)");
  body +=
      "</ul>\n<p>POST /api/query opens a session; POST /api/feedback "
      "drives and finalizes it. GET /api/rep?id=N renders a representative "
      "(cached); POST /api/reload re-loads the snapshot and flushes the "
      "cache.</p>\n</body></html>\n";
  return obs::HttpResponse{200, "text/html; charset=utf-8", std::move(body)};
}

obs::HttpResponse ServeApp::HandleProfilez(const obs::HttpRequest& request) {
  double seconds = QueryParamDouble(request.query, "seconds", 2.0);
  if (seconds < 0.05) seconds = 0.05;
  if (seconds > 30.0) seconds = 30.0;
  const int hz = static_cast<int>(
      QueryParamDouble(request.query, "hz", obs::ProfilerOptions{}.hz));
  std::string format = QueryParam(request.query, "format");
  if (format.empty()) format = "collapsed";
  if (format != "collapsed" && format != "json") {
    return JsonError(400, "format must be \"collapsed\" or \"json\"");
  }

  // One capture window at a time; a concurrent request would fight over
  // profiler Start/Stop ownership.
  if (profilez_busy_.exchange(true, std::memory_order_acquire)) {
    return JsonError(409, "profile capture already in progress");
  }
  struct BusyReset {
    std::atomic<bool>& flag;
    ~BusyReset() { flag.store(false, std::memory_order_release); }
  } busy_reset{profilez_busy_};

  // With the background profiler armed the window is a zero-setup slice of
  // the continuous stream (the `hz` parameter is ignored); otherwise this
  // request starts its own capture and stops it afterwards.
  obs::Profiler& profiler = obs::Profiler::Global();
  const bool own_capture = !profiler.running();
  if (own_capture) {
    obs::ProfilerOptions profiler_options;
    profiler_options.hz = hz;
    std::string error;
    if (!profiler.Start(profiler_options, &error)) {
      return JsonError(501, "profiler unavailable: " + error);
    }
  }
  const std::uint64_t cursor = profiler.SampleCursor();
  // Deliberately blocks this connection lane for the window; the other
  // http_threads lanes keep serving.
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<long>(seconds * 1000.0)));
  const std::vector<obs::ProfileSample> samples =
      profiler.CollectSince(cursor);
  const int effective_hz = profiler.hz();
  const std::uint64_t dropped = profiler.dropped();
  if (own_capture) profiler.Stop();

  if (format == "json") {
    return obs::HttpResponse{
        200, kJsonType,
        obs::Profiler::RenderJson(samples, effective_hz, seconds, dropped)};
  }
  return obs::HttpResponse{200, "text/plain; charset=utf-8",
                           obs::Profiler::RenderCollapsed(samples)};
}

obs::HttpResponse ServeApp::HandleSloz(const obs::HttpRequest&) {
  slo_engine_->Evaluate();
  return obs::HttpResponse{200, kJsonType, slo_engine_->RenderJson() + "\n"};
}

obs::HttpResponse ServeApp::HandleIndexz(const obs::HttpRequest& request) {
  std::size_t hot_n = 0;
  if (!ParseCountParam(request.query, kHotLeafDefault, &hot_n)) {
    return JsonError(400, "n must be a positive integer");
  }
  // The tree walk runs under `sessions_mu_` like /api/rep: readiness flips
  // (reload) happen under the same lock, so observing kServing here pins
  // `rfs_` for the duration. The walk is O(nodes) over in-memory structs.
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (readiness() != Readiness::kServing) {
    return JsonError(503, std::string("not ready: ") +
                              ReadinessName(readiness()));
  }
  const IndexTreeSummary summary = SummarizeIndexTree(*rfs_);
  IndexAccessJoin join;
  join.generation = load_generation_.load(std::memory_order_relaxed);
  const obs::AccessStatsTable& table = obs::AccessStatsTable::Global();
  join.sessions = table.sessions_merged();
  join.access = table.Snapshot();
  const obs::CoAccessTracker& coaccess = obs::CoAccessTracker::Global();
  join.coaccess = coaccess.TopPairs(hot_n);
  join.coaccess_sets = coaccess.sets_recorded();
  join.coaccess_evictions = coaccess.evictions();
  join.coaccess_truncated = coaccess.leaves_truncated();
  return obs::HttpResponse{200, kJsonType,
                           RenderIndexzJson(summary, join, hot_n) + "\n"};
}

obs::HttpResponse ServeApp::HandleHistoryz(const obs::HttpRequest& request) {
  // `?metric=` names one series; absent (or unknown) renders the series
  // directory with `"known":false` so callers can self-correct.
  // `?window=` is trailing seconds of history; 0 or absent keeps the whole
  // ring.
  const std::string metric = QueryParam(request.query, "metric");
  const double window_s = QueryParamDouble(request.query, "window", 0.0);
  if (window_s < 0.0) {
    return JsonError(400, "window must be non-negative seconds");
  }
  const std::uint64_t window_ns =
      static_cast<std::uint64_t>(window_s * 1e9);
  return obs::HttpResponse{200, kJsonType,
                           recorder_->RenderJson(metric, window_ns) + "\n"};
}

void ServeApp::FinishSessionObservability(const Session& session,
                                          std::uint64_t session_id,
                                          const obs::SessionQuality& quality,
                                          const obs::QueryAuditRecord& record) {
  // Drain the session's index-access heatmap: this thread's pending slot
  // deltas first (pool workers flushed at task end; at teardown there is no
  // installed sink, so the flush is a no-op), then per-leaf rows into the
  // global table, label-free aggregates into the registry, and the
  // touched-leaf set into the co-access tracker.
  obs::FlushAccessAccounting();
  const std::vector<obs::LeafAccess> access = session.access.Snapshot();
  obs::AccessStatsTable::Global().MergeSession(access);
  if (!access.empty()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static obs::Counter& scans = registry.GetCounter(
        "access.leaf.scans", "Localized leaf scans across RF sessions");
    static obs::Counter& evals = registry.GetCounter(
        "access.leaf.distance_evals",
        "Distance evaluations attributed to leaf scans");
    static obs::Counter& bytes = registry.GetCounter(
        "access.leaf.feature_bytes",
        "Feature-vector bytes read by leaf scans");
    static obs::Counter& hits = registry.GetCounter(
        "access.cache.hits", "Leaf scans answered from the result cache");
    static obs::Counter& misses = registry.GetCounter(
        "access.cache.misses", "Leaf scans that had to touch the index");
    obs::LeafAccessCounts totals;
    std::vector<obs::AccessLeafId> touched;
    for (const obs::LeafAccess& row : access) {
      totals.Add(row.counts);
      if (row.counts.scans > 0 && row.leaf != obs::kTableScanLeaf) {
        touched.push_back(row.leaf);
      }
    }
    scans.Add(totals.scans);
    evals.Add(totals.distance_evals);
    bytes.Add(totals.feature_bytes);
    hits.Add(totals.cache_hits);
    misses.Add(totals.cache_misses);
    obs::CoAccessTracker::Global().RecordTouchedSet(std::move(touched));
  }

  obs::PublishSessionQuality(quality);
  slo_engine_->Evaluate();
  if (wide_events_ == nullptr) return;

  const std::uint64_t unix_ms = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
  obs::WideEventBuilder event;
  event.Add("event", "session")
      .Add("unix_ms", unix_ms)
      .Add("session", session_id)
      .Add("label", session.label)
      .Add("engine", "qd")
      .Add("seed", session.seed)
      .Add("trace", record.trace_hex())
      .Add("outcome", obs::SessionOutcomeName(quality.outcome))
      .Add("rounds", record.rounds)
      .Add("picks", record.picks)
      .Add("results", record.results)
      .Add("subqueries", record.subqueries)
      .Add("boundary_expansions", record.boundary_expansions)
      .Add("expanded_subqueries", record.expanded_subqueries)
      .Add("rounds_ns", record.rounds_ns)
      .Add("finalize_ns", record.finalize_ns)
      .Add("total_ns", record.total_ns)
      // Engine configuration the session ran under.
      .Add("display_size",
           static_cast<std::uint64_t>(options_.display_size))
      .Add("boundary_threshold", options_.boundary_threshold)
      .Add("cache_mb", static_cast<std::uint64_t>(options_.cache_mb))
      .Add("load_generation", load_generation_.load(std::memory_order_relaxed))
      // Physical work and cache traffic.
      .Add("distance_evals", record.distance_evals)
      .Add("feature_bytes", record.feature_bytes)
      .Add("leaves_visited", record.leaves_visited)
      .Add("tiles_gathered", record.tiles_gathered)
      .Add("alloc_bytes", record.alloc_bytes)
      .Add("cache_hits", record.cache_hits)
      .Add("cache_misses", record.cache_misses)
      .Add("leaves_touched", static_cast<std::uint64_t>(access.size()))
      // Quality telemetry.
      .Add("quality_jaccard_permille", quality.last_jaccard_permille)
      .Add("quality_mean_jaccard_permille", quality.mean_jaccard_permille)
      .Add("quality_rank_churn", quality.last_rank_churn)
      .Add("quality_rounds_to_stability", quality.rounds_to_stability)
      .Add("quality_subquery_growth", quality.subquery_growth);
  // SLO state at session completion, one field per definition plus the
  // worst state, so offline slicing can filter sessions by health.
  event.Add("slo_worst", obs::SloStateName(slo_engine_->WorstState()));
  for (const obs::SloStatus& status : slo_engine_->Snapshot()) {
    event.Add("slo_" + status.name, obs::SloStateName(status.state));
  }
  wide_events_->Emit(event.Build());
}

}  // namespace serve
}  // namespace qdcbir
