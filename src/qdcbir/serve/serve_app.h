#ifndef QDCBIR_SERVE_SERVE_APP_H_
#define QDCBIR_SERVE_SERVE_APP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "qdcbir/cache/cache_manager.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/database.h"
#include "qdcbir/obs/access_stats.h"
#include "qdcbir/obs/http_server.h"
#include "qdcbir/obs/quality_stats.h"
#include "qdcbir/obs/query_log.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/obs/slo.h"
#include "qdcbir/obs/timeseries.h"
#include "qdcbir/obs/trace_context.h"
#include "qdcbir/obs/wide_event.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_tree.h"

namespace qdcbir {
namespace serve {

/// Startup state machine of the admin server. `/readyz` answers 200 only
/// in `kServing`; every earlier state answers 503 with the state's name so
/// orchestration (and the CI smoke test) can poll until the snapshot and
/// RFS are actually usable.
enum class Readiness {
  kStarting,         ///< listener not yet bound
  kLoadingSnapshot,  ///< snapshot chunks loading (pool-overlapped)
  kBuildingRfs,      ///< reconstructing the RFS tree from its blob
  kServing,
  kFailed,           ///< load failed; see `load_error()`
};

const char* ReadinessName(Readiness state);

struct ServeOptions {
  std::string db_path;
  /// Standalone RFS file; empty loads the snapshot's embedded RFS chunk.
  std::string rfs_path;
  std::string address = "127.0.0.1";
  int port = 0;  ///< 0 binds an ephemeral port
  /// Lanes of the connection-dispatch pool. Kept separate from the query
  /// pool: a connection task blocks in recv() between keep-alive requests,
  /// and must never be adopted by a query batch waiting on `Run`.
  std::size_t http_threads = 4;
  std::size_t display_size = 21;
  double boundary_threshold = 0.4;
  /// Result size of `/api/feedback` finalization when the request names
  /// none.
  std::size_t default_k = 50;
  /// Concurrent interactive sessions held before `/api/query` answers 429.
  std::size_t max_sessions = 64;
  bool verify_checksums = true;
  /// Head sampling: every Nth opened session records its full span tree
  /// and publishes it to `/tracez` as "sampled". 0 disables head sampling.
  std::size_t trace_sample_every = 8;
  /// Slow-query trigger: sessions whose total latency reaches this many
  /// milliseconds keep their span tree as "slow" even when not head-sampled
  /// (recording is always on while either mechanism is active; the
  /// keep/drop decision is retroactive at session completion). 0 keeps
  /// every session; negative disables the trigger.
  double slow_trace_ms = 250.0;
  /// Always-on background profiler rate (Hz). 0 (the default) leaves the
  /// sampling profiler disarmed until a `/profilez` request starts its own
  /// capture window; positive values arm it for the server's lifetime at
  /// that rate so `/profilez` windows cut zero-setup slices out of the
  /// continuous stream. `Profiler::kBackgroundHz` is the recommended
  /// low-overhead rate.
  int profile_hz = 0;
  /// Byte budget (in MiB) of the result cache shared by every session:
  /// localized-scan rankings, finalized top-k results, and rendered
  /// representative payloads (`/api/rep`). 0 disables caching. The cache is
  /// flushed (new epoch) on every successful snapshot load, including
  /// `/api/reload`, so entries never outlive the corpus they came from.
  std::size_t cache_mb = 64;
  /// Pool for snapshot loading and localized subqueries; nullptr means
  /// `ThreadPool::Global()`.
  ThreadPool* pool = nullptr;
  /// JSON-lines wide-event file: one event per completed session joining
  /// trace id, engine config, resource stats, cache traffic, quality
  /// telemetry, and SLO state. Empty disables the sink.
  std::string wide_events_path;
  /// Size cap of the live wide-event file; past it the file rotates to
  /// `<path>.1` (replacing the previous rollover).
  std::size_t wide_events_max_mb = 64;
  /// Latency SLO: this fraction of sessions must finalize within
  /// `slo_latency_ms` (evaluated as multi-window burn rates; see
  /// obs/slo.h and `/sloz`).
  double slo_latency_ms = 2000.0;
  double slo_latency_objective = 0.95;
  /// Quality-proxy SLO floor: this fraction of sessions must end with a
  /// round-to-round top-k Jaccard overlap strictly above
  /// `slo_jaccard_floor_permille`. 0 keeps the SLO always-ok (still
  /// exported) — serve has no ground truth, so the floor is opt-in.
  std::uint64_t slo_jaccard_floor_permille = 0;
  double slo_jaccard_objective = 0.5;
  /// Metrics flight-recorder cadence: every counter and gauge is sampled
  /// into a fixed-memory ring this often, surfaced at `/historyz`. 0
  /// disables background sampling (the endpoint still answers, fed only by
  /// the slow-trace hook's direct samples).
  std::uint64_t history_interval_ms = 1000;
};

/// The admin/serving application: loads a database snapshot and RFS tree
/// in the background while already answering health endpoints, then drives
/// interactive Query Decomposition sessions over HTTP.
///
/// Endpoints:
///   GET  /healthz       process liveness (always 200)
///   GET  /readyz        readiness state machine (200 only when serving)
///   GET  /statusz       human landing page: build, uptime, endpoint links
///   GET  /varz          build info + metrics registry snapshot
///   GET  /metrics       Prometheus text exposition (with trace exemplars
///                       and standard process_* families)
///   GET  /queryz        audit ring of recently completed sessions (?n=N
///                       keeps only the newest N records)
///   GET  /tracez        recent sampled and slow span trees
///   GET  /logz          structured log ring (?n=N keeps the newest N)
///   GET  /sloz          SLO definitions and burn-rate states (JSON)
///   GET  /indexz        RFS tree geometry joined with live per-leaf access
///                       stats, hot-leaf/skew summary, and co-access pairs
///                       (?n=N sizes the hot-leaf and pair tables)
///   GET  /historyz      flight-recorder series for one metric
///                       (?metric=name&window=seconds; per-interval deltas
///                       and rates, with slow-trace event marks)
///   GET  /profilez      span-attributed CPU profile capture
///                       (?seconds=N&hz=N&format=collapsed|json)
///   POST /api/query     open a session, returns the first display
///   POST /api/feedback  mark relevant images; optionally finalize
///   GET  /api/rep?id=N  rendered representative image (PPM, cached)
///   POST /api/reload    re-load the snapshot; 409 while sessions are open;
///                       flushes the result cache on success
///
/// Both API endpoints accept a W3C `traceparent` request header. The trace
/// id given at session open identifies the whole session; every response
/// echoes it as a `traceparent` header and a `"trace"` JSON field, and the
/// same id appears in `/queryz`, `/logz`, `/tracez`, and as a Prometheus
/// exemplar on the session-latency histogram.
class ServeApp {
 public:
  explicit ServeApp(ServeOptions options);
  ~ServeApp();

  ServeApp(const ServeApp&) = delete;
  ServeApp& operator=(const ServeApp&) = delete;

  /// Binds the listener and starts the background snapshot load. Returns
  /// false (with `*error`) only when the socket cannot be bound — load
  /// failures surface through `/readyz` and `readiness()` instead.
  bool Start(std::string* error);

  /// Stops the server, joins the loader, and drains open connections.
  void Stop();

  int port() const { return server_.port(); }
  Readiness readiness() const {
    return readiness_.load(std::memory_order_acquire);
  }
  std::string load_error() const;

  /// Blocks until the loader reaches `kServing` or `kFailed` (or the
  /// timeout passes); true when serving.
  bool WaitUntilReady(int timeout_ms);

  /// Every registered admin route, sorted. The Content-Type audit test
  /// walks this list so a new endpoint cannot ship without a declared type.
  std::vector<std::string> HandledPaths() const {
    return server_.HandledPaths();
  }

 private:
  struct Session {
    explicit Session(QdSession qd_session) : qd(std::move(qd_session)) {}
    QdSession qd;
    /// One request mutates a session at a time; concurrent requests on the
    /// same id answer 409 instead of racing.
    std::atomic<bool> busy{false};
    std::uint64_t seed = 0;
    std::string label;
    std::size_t picks = 0;
    std::uint64_t rounds_ns = 0;
    /// The session's tracing identity (client-supplied or generated at
    /// open). Carries the span-tree buffer while recording is active.
    obs::TraceContext trace;
    bool head_sampled = false;
    /// Per-session resource accounting sink: every request handler installs
    /// it around the engine calls, so pool workers executing subqueries
    /// merge their physical-work deltas here. Snapshotted into the /queryz
    /// record and the serve.session.* histograms at finalize.
    obs::ResourceAccumulator resources;
    /// Per-leaf index access sink, installed alongside `resources` so pool
    /// workers attribute scans/evals/bytes to the RFS leaf they touched.
    /// Drained into the global AccessStatsTable and the co-access tracker
    /// when the session ends (finalize or teardown).
    obs::AccessAccumulator access;
    /// Passive quality observer: fed the ranked ids of every display and
    /// the final result; never influences ranking (see obs/quality_stats.h).
    obs::SessionQualityTracker quality;
  };

  void LoadInBackground();
  void SetReadiness(Readiness state);

  obs::HttpResponse HandleApiQuery(const obs::HttpRequest& request);
  obs::HttpResponse HandleApiFeedback(const obs::HttpRequest& request);
  obs::HttpResponse HandleApiRep(const obs::HttpRequest& request);
  obs::HttpResponse HandleApiReload(const obs::HttpRequest& request);
  obs::HttpResponse HandleStatusz(const obs::HttpRequest& request);
  obs::HttpResponse HandleProfilez(const obs::HttpRequest& request);
  obs::HttpResponse HandleSloz(const obs::HttpRequest& request);
  obs::HttpResponse HandleIndexz(const obs::HttpRequest& request);
  obs::HttpResponse HandleHistoryz(const obs::HttpRequest& request);

  /// Publishes quality metrics, fills the audit record's quality fields,
  /// and emits the session's wide event. Called with the session off the
  /// map (finalize) or during teardown (abandoned/errored) — purely
  /// observational, after the response is built.
  void FinishSessionObservability(const Session& session,
                                  std::uint64_t session_id,
                                  const obs::SessionQuality& quality,
                                  const obs::QueryAuditRecord& record);

  ThreadPool& QueryPool() const {
    return options_.pool != nullptr ? *options_.pool : ThreadPool::Global();
  }

  ServeOptions options_;

  /// Declared before `server_` so connections (which reference the pool's
  /// queue) drain in `server_.Stop()` before the pool is torn down.
  ThreadPool http_pool_;
  obs::HttpServer server_;

  std::thread loader_;
  std::atomic<Readiness> readiness_{Readiness::kStarting};
  mutable std::mutex state_mu_;
  std::condition_variable state_cv_;
  std::string load_error_;

  /// Loaded corpus; written by the loader thread before `kServing` is
  /// published, read-only afterwards. `/api/reload` replaces both — it
  /// refuses while sessions are open and flips readiness under
  /// `sessions_mu_` first, so no handler can observe a half-swapped corpus
  /// (see HandleApiReload).
  std::optional<ImageDatabase> db_;
  std::optional<RfsTree> rfs_;

  /// Result cache shared by every session (null when `cache_mb` is 0).
  /// Epoch-flushed by the loader on each successful load.
  std::unique_ptr<cache::CacheManager> cache_;
  /// Successful loads so far; with the db path it names the snapshot
  /// identity each cache epoch belongs to. Only the loader thread writes.
  std::atomic<std::uint64_t> load_generation_{0};
  /// Single-flight guard for `/api/reload`'s join-and-respawn section.
  std::atomic<bool> reload_busy_{false};

  std::mutex sessions_mu_;
  std::map<std::uint64_t, std::shared_ptr<Session>> sessions_;
  std::uint64_t next_session_id_ = 1;
  /// Sessions ever opened, for head sampling (every Nth); under
  /// `sessions_mu_`.
  std::uint64_t sessions_opened_ = 0;

  /// Start instants for /statusz uptime (wall seconds for display,
  /// monotonic for arithmetic). Set once in `Start`.
  std::uint64_t start_epoch_seconds_ = 0;
  std::uint64_t start_mono_ns_ = 0;
  /// Single-flight guard: one /profilez capture window at a time (a second
  /// concurrent request answers 409 instead of fighting over Start/Stop).
  std::atomic<bool> profilez_busy_{false};
  /// True when `Start` armed the background profiler (so `Stop` disarms
  /// exactly what it armed, leaving externally-started captures alone).
  bool profiler_armed_ = false;

  /// In-process SLO engine (obs/slo.h); evaluated from the /metrics,
  /// /sloz, and /statusz handlers and after each session finalize.
  std::unique_ptr<obs::SloEngine> slo_engine_;
  /// Metrics flight recorder behind `/historyz`. Background sampling runs
  /// from `Start` to `Stop` when `history_interval_ms` > 0; slow-trace
  /// capture additionally takes a direct sample and pins the trace id as an
  /// event mark so history and traces join on time.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  /// Wide-event sink (null when `wide_events_path` is empty).
  std::unique_ptr<obs::WideEventSink> wide_events_;
};

}  // namespace serve
}  // namespace qdcbir

#endif  // QDCBIR_SERVE_SERVE_APP_H_
