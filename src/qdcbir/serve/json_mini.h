#ifndef QDCBIR_SERVE_JSON_MINI_H_
#define QDCBIR_SERVE_JSON_MINI_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "qdcbir/core/status.h"

namespace qdcbir {
namespace serve {

/// A minimal JSON document model for the admin server's request bodies.
/// Covers all of RFC 8259 except that numbers are held as doubles (the
/// API's ids and seeds fit a double's 53-bit integer range). Not a
/// general-purpose JSON library — no streaming, no comments, inputs are
/// bounded by the HTTP body limit.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                           ///< kArray
  std::vector<std::pair<std::string, JsonValue>> fields;  ///< kObject

  /// First field with the given key (objects preserve insertion order);
  /// nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// The field's numeric value clamped to u64, or `fallback` when the
  /// field is absent / not a number / negative.
  std::uint64_t U64Field(std::string_view key, std::uint64_t fallback) const;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
};

/// Parses one JSON document (with optional surrounding whitespace).
/// Trailing non-whitespace bytes are an error.
StatusOr<JsonValue> ParseJson(std::string_view text);

/// `s` as a quoted, escaped JSON string literal.
std::string JsonQuote(std::string_view s);

}  // namespace serve
}  // namespace qdcbir

#endif  // QDCBIR_SERVE_JSON_MINI_H_
