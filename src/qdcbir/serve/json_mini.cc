#include "qdcbir/serve/json_mini.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace qdcbir {
namespace serve {

namespace {

constexpr int kMaxDepth = 32;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    const Status status = ParseValue(&value, 0);
    if (!status.ok()) return status;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing bytes after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("json: " + message + " at byte " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind = JsonValue::Kind::kString;
      return ParseString(&out->string);
    }
    if (ConsumeLiteral("true")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = true;
      return Status::Ok();
    }
    if (ConsumeLiteral("false")) {
      out->kind = JsonValue::Kind::kBool;
      out->boolean = false;
      return Status::Ok();
    }
    if (ConsumeLiteral("null")) {
      out->kind = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      Status status = ParseString(&key);
      if (!status.ok()) return status;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue value;
      status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->fields.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      const Status status = ParseValue(&value, depth + 1);
      if (!status.ok()) return status;
      out->items.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("bad \\u escape");
          }
          // BMP only; surrogate pairs render as two replacement points,
          // which is fine for an admin API that never needs them.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t begin = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == begin) return Error("expected a value");
    const std::string token(text_.substr(begin, pos_ - begin));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("bad number");
    out->kind = JsonValue::Kind::kNumber;
    out->number = value;
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [name, value] : fields) {
    if (name == key) return &value;
  }
  return nullptr;
}

std::uint64_t JsonValue::U64Field(std::string_view key,
                                  std::uint64_t fallback) const {
  const JsonValue* value = Find(key);
  if (value == nullptr || !value->is_number() || value->number < 0) {
    return fallback;
  }
  return static_cast<std::uint64_t>(value->number);
}

StatusOr<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

std::string JsonQuote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace serve
}  // namespace qdcbir
