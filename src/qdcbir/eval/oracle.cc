#include "qdcbir/eval/oracle.h"

namespace qdcbir {

OracleUser::OracleUser(const OracleOptions& options)
    : options_(options), rng_(options.seed) {}

std::vector<ImageId> OracleUser::SelectRelevant(
    const std::vector<ImageId>& display, const QueryGroundTruth& gt,
    std::size_t max_picks) {
  std::vector<ImageId> picks;
  for (const ImageId id : display) {
    if (picks.size() >= max_picks) break;
    const bool relevant = gt.IsRelevant(id);
    if (relevant && !rng_.Bernoulli(options_.miss_rate)) {
      picks.push_back(id);
    } else if (!relevant && rng_.Bernoulli(options_.false_mark_rate)) {
      picks.push_back(id);
    }
  }
  return picks;
}

}  // namespace qdcbir
