#ifndef QDCBIR_EVAL_ORACLE_H_
#define QDCBIR_EVAL_ORACLE_H_

#include <cstdint>
#include <vector>

#include "qdcbir/core/rng.h"
#include "qdcbir/core/types.h"
#include "qdcbir/eval/ground_truth.h"

namespace qdcbir {

/// Options of the simulated user.
struct OracleOptions {
  /// Probability of overlooking a relevant displayed image (imperfect user).
  double miss_rate = 0.0;
  /// Probability of wrongly marking an irrelevant displayed image.
  double false_mark_rate = 0.0;
  std::uint64_t seed = 211;
};

/// A simulated relevance-feedback user. The paper's 20 test students judged
/// displayed images against the Corel category ground truth; this oracle
/// applies the same rule — an image is relevant iff its sub-concept belongs
/// to the query's ground truth — with optional noise for robustness
/// ablations.
class OracleUser {
 public:
  explicit OracleUser(const OracleOptions& options = OracleOptions());

  /// Ground-truth relevance (noise-free).
  static bool IsRelevant(ImageId id, const QueryGroundTruth& gt) {
    return gt.IsRelevant(id);
  }

  /// Marks the relevant images within `display` (applying the configured
  /// noise), keeping at most `max_picks`.
  std::vector<ImageId> SelectRelevant(const std::vector<ImageId>& display,
                                      const QueryGroundTruth& gt,
                                      std::size_t max_picks);

 private:
  OracleOptions options_;
  Rng rng_;
};

}  // namespace qdcbir

#endif  // QDCBIR_EVAL_ORACLE_H_
