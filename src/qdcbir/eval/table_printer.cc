#include "qdcbir/eval/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace qdcbir {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Num(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << cells[c];
      for (std::size_t pad = cells[c].size(); pad < widths[c]; ++pad) {
        os << ' ';
      }
      os << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (const std::size_t w : widths) {
    os << std::string(w + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace qdcbir
