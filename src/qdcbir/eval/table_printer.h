#ifndef QDCBIR_EVAL_TABLE_PRINTER_H_
#define QDCBIR_EVAL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace qdcbir {

/// Fixed-width text table, used by the benchmark binaries to print the
/// paper's tables side by side with measured values.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row; missing cells print empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats a double with the given precision.
  static std::string Num(double value, int precision = 2);

  /// Renders the table with a header separator.
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qdcbir

#endif  // QDCBIR_EVAL_TABLE_PRINTER_H_
