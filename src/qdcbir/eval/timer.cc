#include "qdcbir/eval/timer.h"

// WallTimer is header-only; this file anchors the target's source list.
