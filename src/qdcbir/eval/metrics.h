#ifndef QDCBIR_EVAL_METRICS_H_
#define QDCBIR_EVAL_METRICS_H_

#include <vector>

#include "qdcbir/core/types.h"
#include "qdcbir/eval/ground_truth.h"

namespace qdcbir {

/// Precision and recall of a result list.
struct PrecisionRecall {
  double precision = 0.0;
  double recall = 0.0;
};

/// Computes precision (relevant retrieved / retrieved) and recall
/// (relevant retrieved / relevant). When the number of retrieved images
/// equals the ground-truth size — the paper's protocol — the two coincide.
PrecisionRecall ComputePrecisionRecall(const std::vector<ImageId>& results,
                                       const QueryGroundTruth& gt);

/// The paper's Ground Truth Inclusion Ratio:
///
///   GTIR = (# retrieved sub-concepts) / (# sub-concepts in ground truth)
///
/// A sub-concept counts as retrieved when at least `min_hits` of its images
/// appear in `results`.
double ComputeGtir(const std::vector<ImageId>& results,
                   const QueryGroundTruth& gt, std::size_t min_hits = 1);

/// Precision@n over the first n results (n clamped to the result size).
double PrecisionAtN(const std::vector<ImageId>& results,
                    const QueryGroundTruth& gt, std::size_t n);

}  // namespace qdcbir

#endif  // QDCBIR_EVAL_METRICS_H_
