#include "qdcbir/eval/metrics.h"

#include <algorithm>
#include <unordered_set>

namespace qdcbir {

PrecisionRecall ComputePrecisionRecall(const std::vector<ImageId>& results,
                                       const QueryGroundTruth& gt) {
  PrecisionRecall pr;
  if (results.empty() || gt.size() == 0) return pr;
  std::unordered_set<ImageId> unique(results.begin(), results.end());
  std::size_t hits = 0;
  for (const ImageId id : unique) {
    if (gt.IsRelevant(id)) ++hits;
  }
  pr.precision = static_cast<double>(hits) / static_cast<double>(unique.size());
  pr.recall = static_cast<double>(hits) / static_cast<double>(gt.size());
  return pr;
}

double ComputeGtir(const std::vector<ImageId>& results,
                   const QueryGroundTruth& gt, std::size_t min_hits) {
  if (gt.subconcept_images.empty()) return 0.0;
  const std::unordered_set<ImageId> result_set(results.begin(), results.end());
  std::size_t covered = 0;
  for (const std::vector<ImageId>& members : gt.subconcept_images) {
    std::size_t hits = 0;
    for (const ImageId id : members) {
      if (result_set.count(id) > 0) {
        ++hits;
        if (hits >= min_hits) break;
      }
    }
    if (hits >= min_hits) ++covered;
  }
  return static_cast<double>(covered) /
         static_cast<double>(gt.subconcept_images.size());
}

double PrecisionAtN(const std::vector<ImageId>& results,
                    const QueryGroundTruth& gt, std::size_t n) {
  n = std::min(n, results.size());
  if (n == 0) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (gt.IsRelevant(results[i])) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(n);
}

}  // namespace qdcbir
