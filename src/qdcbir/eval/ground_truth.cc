#include "qdcbir/eval/ground_truth.h"

namespace qdcbir {

StatusOr<QueryGroundTruth> BuildGroundTruth(const ImageDatabase& db,
                                            const QueryConceptSpec& spec) {
  if (spec.subconcepts.empty()) {
    return Status::InvalidArgument("query has no ground-truth sub-concepts");
  }
  QueryGroundTruth gt;
  gt.spec = spec;
  for (const QuerySubConcept& qs : spec.subconcepts) {
    std::vector<ImageId> images = db.ImagesOfSubConcepts(qs.members);
    if (images.empty()) {
      return Status::NotFound("ground-truth sub-concept '" + qs.name +
                              "' has no images in this database");
    }
    for (const ImageId id : images) {
      gt.all_images.push_back(id);
      gt.relevant.insert(id);
    }
    gt.subconcept_images.push_back(std::move(images));
  }
  return gt;
}

StatusOr<std::vector<QueryGroundTruth>> BuildAllGroundTruths(
    const ImageDatabase& db) {
  std::vector<QueryGroundTruth> out;
  for (const QueryConceptSpec& spec : db.catalog().queries()) {
    StatusOr<QueryGroundTruth> gt = BuildGroundTruth(db, spec);
    if (!gt.ok()) return gt.status();
    out.push_back(std::move(gt).value());
  }
  return out;
}

}  // namespace qdcbir
