#ifndef QDCBIR_EVAL_GROUND_TRUTH_H_
#define QDCBIR_EVAL_GROUND_TRUTH_H_

#include <unordered_set>
#include <vector>

#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/database.h"

namespace qdcbir {

/// Ground truth of one evaluation query, resolved against a database: the
/// relevant image set, broken down by the query's ground-truth sub-concepts
/// (the unit of the paper's GTIR metric).
struct QueryGroundTruth {
  QueryConceptSpec spec;
  /// Image ids per ground-truth sub-concept (parallel to spec.subconcepts).
  std::vector<std::vector<ImageId>> subconcept_images;
  /// All relevant ids (union of the above).
  std::vector<ImageId> all_images;
  /// Same as `all_images`, as a set for O(1) membership tests.
  std::unordered_set<ImageId> relevant;

  std::size_t size() const { return all_images.size(); }
  bool IsRelevant(ImageId id) const { return relevant.count(id) > 0; }
};

/// Resolves `spec` against `db`.
StatusOr<QueryGroundTruth> BuildGroundTruth(const ImageDatabase& db,
                                            const QueryConceptSpec& spec);

/// Resolves all of the catalog's evaluation queries against `db`.
StatusOr<std::vector<QueryGroundTruth>> BuildAllGroundTruths(
    const ImageDatabase& db);

}  // namespace qdcbir

#endif  // QDCBIR_EVAL_GROUND_TRUTH_H_
