#include "qdcbir/eval/session_runner.h"

#include <algorithm>
#include <optional>
#include <string_view>
#include <unordered_set>
#include <utility>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/eval/metrics.h"
#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/query_log.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/obs/span.h"
#include "qdcbir/obs/trace_context.h"

namespace qdcbir {

namespace {

std::vector<ImageId> FlattenDisplay(const std::vector<DisplayGroup>& groups) {
  std::vector<ImageId> out;
  for (const DisplayGroup& g : groups) {
    out.insert(out.end(), g.images.begin(), g.images.end());
  }
  return out;
}

/// Widens ids for the quality tracker (which compares opaque 64-bit ids).
std::vector<std::uint64_t> QualityIds(const std::vector<ImageId>& ids) {
  return std::vector<std::uint64_t>(ids.begin(), ids.end());
}

std::uint64_t Permille(double fraction) {
  if (fraction <= 0.0) return 0;
  if (fraction >= 1.0) return 1000;
  return static_cast<std::uint64_t>(fraction * 1000.0 + 0.5);
}

/// Removes images the user already marked in earlier rounds/browses.
std::vector<ImageId> FilterNew(const std::vector<ImageId>& picks,
                               std::unordered_set<ImageId>& marked) {
  std::vector<ImageId> out;
  for (const ImageId id : picks) {
    if (marked.insert(id).second) out.push_back(id);
  }
  return out;
}

std::uint64_t SecondsToNanos(double seconds) {
  return seconds > 0.0 ? static_cast<std::uint64_t>(seconds * 1e9) : 0;
}

/// Publishes one completed session into the `/queryz` audit ring. Pure
/// observation after the run finished — touches nothing the protocol or
/// rankings depend on.
void RecordAudit(std::string_view engine, const QueryGroundTruth& gt,
                 const ProtocolOptions& protocol, const RunOutcome& outcome,
                 std::size_t picks, const obs::ResourceUsage& usage,
                 const obs::SessionQuality& quality) {
  obs::QueryAuditRecord record;
  record.set_engine(engine);
  record.set_label(gt.spec.name);
  record.seed = protocol.seed;
  record.rounds = outcome.iteration_seconds.size();
  record.picks = picks;
  record.results = outcome.final_results.size();
  record.subqueries = outcome.qd_stats.localized_subqueries;
  record.boundary_expansions = outcome.qd_stats.boundary_expansions;
  record.expanded_subqueries = outcome.qd_stats.expanded_subqueries;
  record.nodes_touched = outcome.qd_stats.nodes_touched;
  record.distinct_nodes_sampled = outcome.qd_stats.distinct_nodes_sampled;
  if (engine == "qd") {
    record.nodes_visited = outcome.qd_stats.knn_nodes_visited;
    record.candidates_scored = outcome.qd_stats.knn_candidates;
  } else {
    record.nodes_visited = outcome.global_stats.global_knn_computations;
    record.candidates_scored = outcome.global_stats.candidates_scanned;
  }
  std::uint64_t rounds_ns = 0;
  for (const double t : outcome.iteration_seconds) {
    rounds_ns += SecondsToNanos(t);
  }
  record.rounds_ns = rounds_ns;
  record.finalize_ns = SecondsToNanos(outcome.finalize_seconds);
  record.total_ns = SecondsToNanos(outcome.total_seconds);
  record.distance_evals = usage.distance_evals;
  record.feature_bytes = usage.feature_bytes;
  record.leaves_visited = usage.leaves_visited;
  record.tiles_gathered = usage.tiles_gathered;
  record.container_allocs = usage.container_allocs;
  record.alloc_bytes = usage.alloc_bytes;
  record.cache_hits = usage.cache_hits;
  record.cache_misses = usage.cache_misses;
  record.quality_jaccard_permille = quality.last_jaccard_permille;
  record.quality_rank_churn = quality.last_rank_churn;
  record.quality_rounds_to_stability = quality.rounds_to_stability;
  record.quality_outcome = static_cast<std::uint64_t>(quality.outcome);
  if (quality.oracle_precision_defined) {
    record.quality_oracle_precision_permille_plus1 =
        quality.oracle_precision_permille + 1;
  }
  // Batch runs carry a trace id too when the caller installed one (the
  // serve layer always does; CLI runs leave it zero → rendered as "").
  const obs::TraceContext& trace = obs::CurrentTraceContext();
  record.trace_hi = trace.trace_hi;
  record.trace_lo = trace.trace_lo;
  obs::QueryLog::Global().Record(record);
}

}  // namespace

StatusOr<RunOutcome> SessionRunner::RunQd(const RfsTree& rfs,
                                          const QueryGroundTruth& gt,
                                          const QdOptions& qd_options,
                                          const ProtocolOptions& protocol) {
  QDCBIR_SPAN("eval.session.qd");
  // Per-session resource accounting: engine taps on this thread and every
  // pool worker executing for this session sum into `resources`.
  obs::ResourceAccumulator resources;
  const obs::ScopedResourceAccounting accounting(&resources);
  const std::size_t k =
      protocol.retrieval_size > 0 ? protocol.retrieval_size : gt.size();

  OracleOptions oracle_options = protocol.oracle;
  oracle_options.seed ^= protocol.seed * 0x9e3779b97f4a7c15ULL;
  OracleUser oracle(oracle_options);

  QdOptions session_options = qd_options;
  session_options.seed ^= protocol.seed;
  QdSession session(&rfs, session_options);

  RunOutcome outcome;
  std::unordered_set<ImageId> marked;
  std::vector<ImageId> all_marked;

  // Passive quality observer: fed the per-round displays and the final
  // ranked list after they are produced, so rankings are untouched.
  obs::SessionQualityTracker quality_tracker;

  WallTimer total;
  WallTimer step;
  std::vector<DisplayGroup> display = session.Start();
  double engine_time = step.Seconds();
  quality_tracker.ObserveRound(QualityIds(FlattenDisplay(display)),
                               session.stats().localized_subqueries);

  for (int round = 1; round <= protocol.feedback_rounds; ++round) {
    double round_time = engine_time;  // Start() / previous Feedback cost
    engine_time = 0.0;
    // A new round shows deeper subclusters; the user may (and should)
    // re-mark a representative seen before, so dedup is per round.
    marked.clear();

    // Browse: press "Random" until enough relevant images were found or the
    // budget runs out.
    std::vector<ImageId> picks;
    for (int browse = 0; browse < protocol.browse_budget; ++browse) {
      const std::vector<ImageId> found = oracle.SelectRelevant(
          FlattenDisplay(display), gt,
          protocol.max_picks_per_round - picks.size());
      const std::vector<ImageId> fresh = FilterNew(found, marked);
      picks.insert(picks.end(), fresh.begin(), fresh.end());
      if (picks.size() >= protocol.max_picks_per_round) break;
      step.Restart();
      display = session.Resample();
      round_time += step.Seconds();
    }
    all_marked.insert(all_marked.end(), picks.begin(), picks.end());

    step.Restart();
    StatusOr<std::vector<DisplayGroup>> next = session.Feedback(picks);
    round_time += step.Seconds();
    if (!next.ok()) return next.status();
    display = std::move(next).value();
    quality_tracker.ObserveRound(QualityIds(FlattenDisplay(display)),
                                 session.stats().localized_subqueries);

    RoundQuality quality;
    quality.gtir = ComputeGtir(all_marked, gt);
    outcome.rounds.push_back(quality);
    outcome.iteration_seconds.push_back(round_time);
  }

  step.Restart();
  StatusOr<QdResult> result = session.Finalize(k);
  outcome.finalize_seconds = step.Seconds();
  if (!result.ok()) return result.status();

  outcome.qd_result = std::move(result).value();
  outcome.final_results = outcome.qd_result.Flatten();
  const PrecisionRecall pr =
      ComputePrecisionRecall(outcome.final_results, gt);
  outcome.final_precision = pr.precision;
  outcome.final_recall = pr.recall;
  outcome.final_gtir = ComputeGtir(outcome.final_results, gt);
  if (!outcome.rounds.empty()) {
    outcome.rounds.back().precision_defined = true;
    outcome.rounds.back().precision = outcome.final_precision;
    outcome.rounds.back().gtir = outcome.final_gtir;
  }
  outcome.qd_stats = session.stats();

  double engine_total = outcome.finalize_seconds;
  for (const double t : outcome.iteration_seconds) engine_total += t;
  outcome.total_seconds = engine_total;
  obs::FlushResourceAccounting();
  outcome.resources = resources.Snapshot();

  quality_tracker.ObserveRound(QualityIds(outcome.final_results),
                               session.stats().localized_subqueries);
  quality_tracker.Finalized();
  outcome.quality = quality_tracker.Summary();
  // The eval path has ground truth: attach the oracle-labeled precision@k
  // the label-free proxies approximate.
  outcome.quality.oracle_precision_defined = true;
  outcome.quality.oracle_precision_permille =
      Permille(outcome.final_precision);
  obs::PublishSessionQuality(outcome.quality);
  QDCBIR_SPAN_ANNOTATE(
      "quality.topk_jaccard_permille",
      static_cast<std::int64_t>(outcome.quality.last_jaccard_permille));
  QDCBIR_SPAN_ANNOTATE(
      "quality.oracle_precision_permille",
      static_cast<std::int64_t>(outcome.quality.oracle_precision_permille));

  RecordAudit("qd", gt, protocol, outcome, all_marked.size(),
              outcome.resources, outcome.quality);
  return outcome;
}

StatusOr<RunOutcome> SessionRunner::RunEngine(FeedbackEngine& engine,
                                              const QueryGroundTruth& gt,
                                              const ProtocolOptions& protocol) {
  QDCBIR_SPAN("eval.session.engine");
  obs::ResourceAccumulator resources;
  const obs::ScopedResourceAccounting accounting(&resources);
  const std::size_t k =
      protocol.retrieval_size > 0 ? protocol.retrieval_size : gt.size();

  OracleOptions oracle_options = protocol.oracle;
  oracle_options.seed ^= protocol.seed * 0x9e3779b97f4a7c15ULL;
  OracleUser oracle(oracle_options);

  RunOutcome outcome;
  std::unordered_set<ImageId> marked;

  obs::SessionQualityTracker quality_tracker;

  WallTimer step;
  std::vector<ImageId> display = engine.Start();
  double engine_time = step.Seconds();
  quality_tracker.ObserveRound(QualityIds(display), 0);
  bool any_marked = false;
  std::size_t total_picks = 0;

  for (int round = 1; round <= protocol.feedback_rounds; ++round) {
    double round_time = engine_time;
    engine_time = 0.0;
    marked.clear();  // per-round dedup, as in RunQd

    std::vector<ImageId> picks;
    for (int browse = 0; browse < protocol.browse_budget; ++browse) {
      const std::vector<ImageId> found = oracle.SelectRelevant(
          display, gt, protocol.max_picks_per_round - picks.size());
      const std::vector<ImageId> fresh = FilterNew(found, marked);
      picks.insert(picks.end(), fresh.begin(), fresh.end());
      if (picks.size() >= protocol.max_picks_per_round) break;
      step.Restart();
      display = engine.Resample();
      round_time += step.Seconds();
    }
    if (!picks.empty()) any_marked = true;
    total_picks += picks.size();

    step.Restart();
    StatusOr<std::vector<ImageId>> next = engine.Feedback(picks);
    round_time += step.Seconds();
    if (!next.ok()) return next.status();
    display = std::move(next).value();
    quality_tracker.ObserveRound(QualityIds(display), 0);

    outcome.iteration_seconds.push_back(round_time);

    // Per-round quality snapshot (measurement only; not counted as engine
    // time). Rankings need at least one relevant image.
    RoundQuality quality;
    if (any_marked) {
      StatusOr<Ranking> snapshot = engine.Finalize(k);
      if (snapshot.ok()) {
        std::vector<ImageId> ids;
        ids.reserve(snapshot->size());
        for (const KnnMatch& m : *snapshot) ids.push_back(m.id);
        quality.precision_defined = true;
        quality.precision = ComputePrecisionRecall(ids, gt).precision;
        quality.gtir = ComputeGtir(ids, gt);
      }
    }
    outcome.rounds.push_back(quality);
  }

  if (!any_marked) {
    return Status::FailedPrecondition(
        "the user never found a relevant image to mark");
  }

  step.Restart();
  StatusOr<Ranking> final_ranking = engine.Finalize(k);
  outcome.finalize_seconds = step.Seconds();
  if (!final_ranking.ok()) return final_ranking.status();

  outcome.final_results.reserve(final_ranking->size());
  for (const KnnMatch& m : *final_ranking) {
    outcome.final_results.push_back(m.id);
  }
  const PrecisionRecall pr =
      ComputePrecisionRecall(outcome.final_results, gt);
  outcome.final_precision = pr.precision;
  outcome.final_recall = pr.recall;
  outcome.final_gtir = ComputeGtir(outcome.final_results, gt);
  outcome.global_stats = engine.stats();

  double engine_total = outcome.finalize_seconds;
  for (const double t : outcome.iteration_seconds) engine_total += t;
  outcome.total_seconds = engine_total;
  obs::FlushResourceAccounting();
  outcome.resources = resources.Snapshot();

  quality_tracker.ObserveRound(QualityIds(outcome.final_results), 0);
  quality_tracker.Finalized();
  outcome.quality = quality_tracker.Summary();
  outcome.quality.oracle_precision_defined = true;
  outcome.quality.oracle_precision_permille =
      Permille(outcome.final_precision);
  obs::PublishSessionQuality(outcome.quality);

  RecordAudit(engine.Name(), gt, protocol, outcome, total_picks,
              outcome.resources, outcome.quality);
  return outcome;
}

namespace {

/// Shared batching shape of RunQdBatch / RunEngineBatch: one pool task per
/// job, each writing its own slot — outcomes are position-stable and
/// independent of scheduling.
std::vector<StatusOr<RunOutcome>> RunJobs(
    std::size_t count, ThreadPool* pool,
    const std::function<StatusOr<RunOutcome>(std::size_t job)>& run) {
  QDCBIR_SPAN("eval.batch");
  std::vector<std::optional<StatusOr<RunOutcome>>> slots(count);
  ThreadPool& executor = pool != nullptr ? *pool : ThreadPool::Global();
  executor.ParallelFor(0, count,
                       [&](std::size_t job) { slots[job].emplace(run(job)); });
  std::vector<StatusOr<RunOutcome>> out;
  out.reserve(count);
  for (std::optional<StatusOr<RunOutcome>>& slot : slots) {
    out.push_back(std::move(slot).value());
  }
  return out;
}

}  // namespace

std::vector<StatusOr<RunOutcome>> SessionRunner::RunQdBatch(
    const RfsTree& rfs, const std::vector<const QueryGroundTruth*>& gts,
    const QdOptions& qd_options, const ProtocolOptions& protocol,
    ThreadPool* pool) {
  return RunJobs(gts.size(), pool, [&](std::size_t job) {
    ProtocolOptions job_protocol = protocol;
    job_protocol.seed = protocol.seed + job;
    return RunQd(rfs, *gts[job], qd_options, job_protocol);
  });
}

std::vector<StatusOr<RunOutcome>> SessionRunner::RunEngineBatch(
    const EngineFactory& factory,
    const std::vector<const QueryGroundTruth*>& gts,
    const ProtocolOptions& protocol, ThreadPool* pool) {
  return RunJobs(gts.size(), pool, [&](std::size_t job) {
    ProtocolOptions job_protocol = protocol;
    job_protocol.seed = protocol.seed + job;
    std::unique_ptr<FeedbackEngine> engine = factory(job);
    if (engine == nullptr) {
      return StatusOr<RunOutcome>(
          Status::InvalidArgument("engine factory returned null"));
    }
    return RunEngine(*engine, *gts[job], job_protocol);
  });
}

}  // namespace qdcbir
