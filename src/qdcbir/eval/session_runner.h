#ifndef QDCBIR_EVAL_SESSION_RUNNER_H_
#define QDCBIR_EVAL_SESSION_RUNNER_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "qdcbir/core/status.h"
#include "qdcbir/eval/ground_truth.h"
#include "qdcbir/obs/quality_stats.h"
#include "qdcbir/obs/resource_stats.h"
#include "qdcbir/eval/oracle.h"
#include "qdcbir/query/feedback_engine.h"
#include "qdcbir/query/qd_engine.h"
#include "qdcbir/rfs/rfs_tree.h"

namespace qdcbir {

class ThreadPool;

/// Options of the paper's 3-round interactive evaluation protocol.
struct ProtocolOptions {
  /// Feedback rounds before the final retrieval (the paper uses 3).
  int feedback_rounds = 3;
  /// "Random" button presses per round: how many 21-image screens the
  /// simulated user is willing to browse looking for relevant images.
  int browse_budget = 40;
  /// Picks the user makes per round at most.
  std::size_t max_picks_per_round = 10;
  /// Result size; 0 means |ground truth| (the paper's setting, which makes
  /// precision and recall coincide).
  std::size_t retrieval_size = 0;
  OracleOptions oracle;
  std::uint64_t seed = 1;
};

/// Quality after one feedback round (Table 2's rows).
struct RoundQuality {
  bool precision_defined = false;  ///< QD commits no k-NN until the end
  double precision = 0.0;
  double gtir = 0.0;
};

/// The outcome of one full protocol run.
struct RunOutcome {
  std::vector<RoundQuality> rounds;
  double final_precision = 0.0;
  double final_recall = 0.0;
  double final_gtir = 0.0;
  std::vector<ImageId> final_results;

  /// Engine-side processing time: everything except the simulated user's
  /// deliberation (which is free for an oracle).
  double total_seconds = 0.0;
  /// Engine-side time per feedback round.
  std::vector<double> iteration_seconds;
  double finalize_seconds = 0.0;

  QdSessionStats qd_stats;          ///< populated by RunQd
  GlobalEngineStats global_stats;   ///< populated by RunEngine
  QdResult qd_result;               ///< grouped results (RunQd only)
  /// Physical work summed across all pool workers (obs/resource_stats.h);
  /// also published to the /queryz audit record.
  obs::ResourceUsage resources;
  /// Session quality telemetry (obs/quality_stats.h): label-free proxies
  /// from the per-round displays plus the oracle-labeled precision@k.
  /// Published to the `quality.*` histograms and the audit record.
  obs::SessionQuality quality;
};

/// Drives full evaluation sessions: oracle browsing, feedback rounds, final
/// retrieval, metric computation, and timing.
class SessionRunner {
 public:
  /// Runs the Query Decomposition protocol over an RFS tree.
  static StatusOr<RunOutcome> RunQd(const RfsTree& rfs,
                                    const QueryGroundTruth& gt,
                                    const QdOptions& qd_options,
                                    const ProtocolOptions& protocol);

  /// Runs the same protocol through a traditional feedback engine
  /// (MV / QPM / MARS / Qcluster).
  static StatusOr<RunOutcome> RunEngine(FeedbackEngine& engine,
                                        const QueryGroundTruth& gt,
                                        const ProtocolOptions& protocol);

  /// One batched QD job: a ground-truth query run under the protocol.
  /// `RunQdBatch` executes one independent session per entry of `gts` —
  /// the multi-user load model: every simulated user shares the (read-only)
  /// RFS tree but owns a private session, oracle, and RNG stream. Job `i`
  /// runs with `protocol.seed + i`, so outcome `i` is byte-identical to a
  /// sequential `RunQd` call with that seed at any pool size.
  /// `pool == nullptr` means `ThreadPool::Global()`; sessions may share
  /// that pool with their own subqueries (the pool nests safely).
  static std::vector<StatusOr<RunOutcome>> RunQdBatch(
      const RfsTree& rfs, const std::vector<const QueryGroundTruth*>& gts,
      const QdOptions& qd_options, const ProtocolOptions& protocol,
      ThreadPool* pool = nullptr);

  /// Builds the per-job engine of a batched baseline run (engines are
  /// stateful, so every session needs a fresh one).
  using EngineFactory =
      std::function<std::unique_ptr<FeedbackEngine>(std::size_t job)>;

  /// Batched counterpart of `RunEngine`, with the same per-job seeding
  /// contract as `RunQdBatch`.
  static std::vector<StatusOr<RunOutcome>> RunEngineBatch(
      const EngineFactory& factory,
      const std::vector<const QueryGroundTruth*>& gts,
      const ProtocolOptions& protocol, ThreadPool* pool = nullptr);
};

}  // namespace qdcbir

#endif  // QDCBIR_EVAL_SESSION_RUNNER_H_
