#ifndef QDCBIR_RFS_RFS_TREE_H_
#define QDCBIR_RFS_RFS_TREE_H_

#include <unordered_map>
#include <vector>

#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/index/rstar_tree.h"

namespace qdcbir {

/// The Relevance Feedback Support (RFS) structure — the paper's Section 3.1.
///
/// An RFS tree is an R*-tree over the image feature vectors whose every node
/// is *additionally* annotated with representative images, selected bottom-up
/// by unsupervised k-means: a leaf's representatives are the images nearest
/// the centers of the k-means subclusters of its images; an internal node's
/// representatives are selected the same way from the union of its children's
/// representatives. Representative counts are proportional to cluster sizes
/// (about 5% of the database overall in the paper's prototype).
///
/// The structure is self-contained: it owns the index and a copy of the
/// feature vectors, so relevance-feedback processing needs nothing else —
/// the property that lets the paper run feedback on client machines.
class RfsTree {
 public:
  /// Per-node annotation.
  struct NodeInfo {
    int level = 0;
    NodeId parent = kInvalidNodeId;
    std::vector<NodeId> children;           ///< empty for leaves
    std::vector<ImageId> representatives;   ///< this node's representatives
    /// For each representative: the child subtree it came from (the node
    /// itself for leaf representatives). Drives query decomposition: marking
    /// a representative relevant selects its origin subtree.
    std::vector<NodeId> rep_origin;
    FeatureVector center;       ///< center of the node's MBR
    double diagonal = 0.0;      ///< MBR diagonal (boundary-expansion test)
    std::size_t subtree_size = 0;  ///< images in the subtree
  };

  RfsTree(RStarTree index, std::vector<FeatureVector> features)
      : index_(std::move(index)),
        features_(std::move(features)),
        feature_blocks_(features_) {}

  RfsTree(const RfsTree&) = delete;
  RfsTree& operator=(const RfsTree&) = delete;
  RfsTree(RfsTree&&) = default;
  RfsTree& operator=(RfsTree&&) = default;

  const RStarTree& index() const { return index_; }
  NodeId root() const { return index_.root(); }
  int height() const { return index_.height(); }
  std::size_t num_images() const { return features_.size(); }
  std::size_t feature_dim() const {
    return features_.empty() ? 0 : features_.front().dim();
  }

  const FeatureVector& feature(ImageId id) const { return features_[id]; }
  const std::vector<FeatureVector>& features() const { return features_; }

  /// Blocked SoA copy of the feature table, built once at construction —
  /// both the builder and the deserializer hand features to the
  /// constructor. Consumed by the batched localized-scan kernels.
  const FeatureBlockTable& feature_blocks() const { return feature_blocks_; }

  bool has_info(NodeId id) const { return info_.count(id) > 0; }
  const NodeInfo& info(NodeId id) const { return info_.at(id); }

  /// The subtree (child of `node`) a representative shown at `node` came
  /// from; `node` itself when `node` is a leaf. NotFound if `rep` is not a
  /// representative of `node`.
  StatusOr<NodeId> OriginOfRepresentative(NodeId node, ImageId rep) const;

  /// The leaf node whose entries contain `id`. Requires `RebuildLeafMap`
  /// to have run (the builder and deserializer both run it).
  NodeId LeafOf(ImageId id) const { return leaf_of_[id]; }

  /// Recomputes the image -> leaf map from the index.
  void RebuildLeafMap();

  /// `count` random representatives of `node` (the GUI's "Random" browsing
  /// function). Returns fewer if the node has fewer representatives.
  std::vector<ImageId> SampleRepresentatives(NodeId node, std::size_t count,
                                             Rng& rng) const;

  /// Total distinct representatives at the leaf level (the paper's "5% of
  /// the database" figure refers to these).
  std::size_t CountLeafRepresentatives() const;

  /// Structure statistics for the build benchmark.
  struct Stats {
    int height = 0;
    std::size_t node_count = 0;
    std::size_t leaf_count = 0;
    std::size_t total_images = 0;
    std::size_t leaf_representatives = 0;
    double representative_fraction = 0.0;
  };
  Stats ComputeStats() const;

  /// Verifies RFS-specific invariants on top of the R*-tree's own:
  /// representative lists are non-empty, representatives of a node lie in
  /// its subtree, rep_origin entries are children (or the node itself).
  Status CheckInvariants() const;

 private:
  friend class RfsBuilder;
  friend class RfsSerializer;

  RStarTree index_;
  std::vector<FeatureVector> features_;
  FeatureBlockTable feature_blocks_;
  std::unordered_map<NodeId, NodeInfo> info_;
  std::vector<NodeId> leaf_of_;  ///< containing leaf per image id
};

}  // namespace qdcbir

#endif  // QDCBIR_RFS_RFS_TREE_H_
