#include "qdcbir/rfs/rfs_introspect.h"

#include <algorithm>
#include <cstdio>

namespace qdcbir {

namespace {

void AppendU64(std::string* out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "%llu",
                static_cast<unsigned long long>(value));
  *out += buffer;
}

void AppendDouble(std::string* out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  *out += buffer;
}

void AppendCounts(std::string* out, const obs::LeafAccessCounts& counts) {
  *out += "{\"scans\":";
  AppendU64(out, counts.scans);
  *out += ",\"distance_evals\":";
  AppendU64(out, counts.distance_evals);
  *out += ",\"feature_bytes\":";
  AppendU64(out, counts.feature_bytes);
  *out += ",\"cache_hits\":";
  AppendU64(out, counts.cache_hits);
  *out += ",\"cache_misses\":";
  AppendU64(out, counts.cache_misses);
  *out += "}";
}

/// Gini coefficient over `values` (ascending-sorted in place), in permille.
/// 0 = perfectly even access, 1000 = all scans on one leaf.
std::uint64_t GiniPermille(std::vector<std::uint64_t> values) {
  if (values.empty()) return 0;
  std::sort(values.begin(), values.end());
  double sum = 0.0;
  double weighted = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += static_cast<double>(values[i]);
    weighted += static_cast<double>(i + 1) * static_cast<double>(values[i]);
  }
  if (sum <= 0.0) return 0;
  const double n = static_cast<double>(values.size());
  const double gini = (2.0 * weighted) / (n * sum) - (n + 1.0) / n;
  const double clamped = gini < 0.0 ? 0.0 : (gini > 1.0 ? 1.0 : gini);
  return static_cast<std::uint64_t>(clamped * 1000.0 + 0.5);
}

}  // namespace

IndexTreeSummary SummarizeIndexTree(const RfsTree& tree) {
  IndexTreeSummary summary;
  summary.height = tree.height();
  summary.total_images = tree.num_images();
  summary.feature_dim = tree.feature_dim();
  summary.leaf_representatives = tree.CountLeafRepresentatives();

  std::size_t fanout_sum = 0;
  std::size_t entries_sum = 0;
  std::vector<NodeId> stack = {tree.root()};
  while (!stack.empty()) {
    const NodeId node = stack.back();
    stack.pop_back();
    if (!tree.has_info(node)) continue;
    const RfsTree::NodeInfo& info = tree.info(node);
    ++summary.node_count;
    if (info.children.empty()) {
      IndexLeafShape leaf;
      leaf.id = node;
      leaf.entries = info.subtree_size;
      leaf.representatives = info.representatives.size();
      leaf.feature_bytes = static_cast<std::uint64_t>(info.subtree_size) *
                           summary.feature_dim * sizeof(double);
      leaf.diagonal = info.diagonal;
      entries_sum += leaf.entries;
      summary.leaf_feature_bytes += leaf.feature_bytes;
      if (summary.leaf_count == 0 || leaf.entries < summary.min_leaf_entries) {
        summary.min_leaf_entries = leaf.entries;
      }
      summary.max_leaf_entries =
          std::max(summary.max_leaf_entries, leaf.entries);
      ++summary.leaf_count;
      summary.leaves.push_back(leaf);
    } else {
      const std::size_t fanout = info.children.size();
      if (summary.internal_count == 0 || fanout < summary.min_fanout) {
        summary.min_fanout = fanout;
      }
      summary.max_fanout = std::max(summary.max_fanout, fanout);
      fanout_sum += fanout;
      ++summary.internal_count;
      for (const NodeId child : info.children) stack.push_back(child);
    }
  }
  if (summary.internal_count > 0) {
    summary.mean_fanout = static_cast<double>(fanout_sum) /
                          static_cast<double>(summary.internal_count);
  }
  if (summary.leaf_count > 0) {
    summary.mean_leaf_entries = static_cast<double>(entries_sum) /
                                static_cast<double>(summary.leaf_count);
  }
  std::sort(summary.leaves.begin(), summary.leaves.end(),
            [](const IndexLeafShape& a, const IndexLeafShape& b) {
              return a.id < b.id;
            });
  return summary;
}

std::string RenderIndexzJson(const IndexTreeSummary& tree,
                             const IndexAccessJoin& join, std::size_t hot_n) {
  // Per-leaf access lookup (sorted input → binary search would also do;
  // sizes here are small enough that a linear merge is clearest).
  const auto access_of = [&join](NodeId id) -> obs::LeafAccessCounts {
    for (const obs::LeafAccess& row : join.access) {
      if (row.leaf == static_cast<obs::AccessLeafId>(id)) return row.counts;
      if (row.leaf > static_cast<obs::AccessLeafId>(id)) break;
    }
    return obs::LeafAccessCounts{};
  };

  std::string out = "{\"generation\":";
  AppendU64(&out, join.generation);

  out += ",\"tree\":{\"height\":";
  AppendU64(&out, static_cast<std::uint64_t>(tree.height));
  out += ",\"nodes\":";
  AppendU64(&out, tree.node_count);
  out += ",\"internal\":";
  AppendU64(&out, tree.internal_count);
  out += ",\"leaves\":";
  AppendU64(&out, tree.leaf_count);
  out += ",\"images\":";
  AppendU64(&out, tree.total_images);
  out += ",\"feature_dim\":";
  AppendU64(&out, tree.feature_dim);
  out += ",\"leaf_representatives\":";
  AppendU64(&out, tree.leaf_representatives);
  out += ",\"fanout\":{\"min\":";
  AppendU64(&out, tree.min_fanout);
  out += ",\"max\":";
  AppendU64(&out, tree.max_fanout);
  out += ",\"mean\":";
  AppendDouble(&out, tree.mean_fanout);
  out += "},\"leaf_entries\":{\"min\":";
  AppendU64(&out, tree.min_leaf_entries);
  out += ",\"max\":";
  AppendU64(&out, tree.max_leaf_entries);
  out += ",\"mean\":";
  AppendDouble(&out, tree.mean_leaf_entries);
  out += "},\"leaf_feature_bytes\":";
  AppendU64(&out, tree.leaf_feature_bytes);
  out += "}";

  out += ",\"leaves\":[";
  bool first = true;
  for (const IndexLeafShape& leaf : tree.leaves) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":";
    AppendU64(&out, leaf.id);
    out += ",\"entries\":";
    AppendU64(&out, leaf.entries);
    out += ",\"representatives\":";
    AppendU64(&out, leaf.representatives);
    out += ",\"feature_bytes\":";
    AppendU64(&out, leaf.feature_bytes);
    out += ",\"diagonal\":";
    AppendDouble(&out, leaf.diagonal);
    out += ",\"access\":";
    AppendCounts(&out, access_of(leaf.id));
    out += "}";
  }
  out += "]";

  // Access rollup: totals, the table-scan bucket (flat-scan engines), the
  // hot-leaf table, and the skew summary over *tree* leaves (untouched
  // leaves count as zero, so concentration is measured honestly).
  obs::LeafAccessCounts totals;
  obs::LeafAccessCounts table_scan;
  for (const obs::LeafAccess& row : join.access) {
    if (row.leaf == obs::kTableScanLeaf) {
      table_scan.Add(row.counts);
    } else {
      totals.Add(row.counts);
    }
  }
  std::vector<std::uint64_t> leaf_scans;
  leaf_scans.reserve(tree.leaves.size());
  std::vector<std::pair<std::uint64_t, NodeId>> hot;
  for (const IndexLeafShape& leaf : tree.leaves) {
    const obs::LeafAccessCounts counts = access_of(leaf.id);
    leaf_scans.push_back(counts.scans);
    if (counts.scans > 0) hot.emplace_back(counts.scans, leaf.id);
  }
  std::sort(hot.begin(), hot.end(),
            [](const std::pair<std::uint64_t, NodeId>& a,
               const std::pair<std::uint64_t, NodeId>& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  std::uint64_t top_scans = 0;
  for (std::size_t i = 0; i < hot.size() && i < hot_n; ++i) {
    top_scans += hot[i].first;
  }
  const std::uint64_t top_share_permille =
      totals.scans == 0 ? 0 : top_scans * 1000 / totals.scans;

  out += ",\"access\":{\"sessions\":";
  AppendU64(&out, join.sessions);
  out += ",\"totals\":";
  AppendCounts(&out, totals);
  out += ",\"table_scan\":";
  AppendCounts(&out, table_scan);
  out += ",\"hot_leaves\":[";
  first = true;
  for (std::size_t i = 0; i < hot.size() && i < hot_n; ++i) {
    if (!first) out += ",";
    first = false;
    out += "{\"id\":";
    AppendU64(&out, hot[i].second);
    out += ",\"scans\":";
    AppendU64(&out, hot[i].first);
    out += "}";
  }
  out += "],\"skew\":{\"top_n\":";
  AppendU64(&out, hot_n);
  out += ",\"top_share_permille\":";
  AppendU64(&out, top_share_permille);
  out += ",\"gini_permille\":";
  AppendU64(&out, GiniPermille(std::move(leaf_scans)));
  out += "}}";

  out += ",\"coaccess\":{\"sets\":";
  AppendU64(&out, join.coaccess_sets);
  out += ",\"evictions\":";
  AppendU64(&out, join.coaccess_evictions);
  out += ",\"leaves_truncated\":";
  AppendU64(&out, join.coaccess_truncated);
  out += ",\"pairs\":[";
  first = true;
  for (const obs::CoAccessTracker::PairCount& pair : join.coaccess) {
    if (!first) out += ",";
    first = false;
    out += "{\"a\":";
    AppendU64(&out, pair.a);
    out += ",\"b\":";
    AppendU64(&out, pair.b);
    out += ",\"count\":";
    AppendU64(&out, pair.count);
    out += "}";
  }
  out += "]}}";
  return out;
}

std::string RenderIndexTreeText(const IndexTreeSummary& tree) {
  char buffer[256];
  std::string out;
  std::snprintf(buffer, sizeof(buffer),
                "rfs tree: height %d, %zu nodes (%zu internal, %zu leaves), "
                "%zu images, %zu-D features\n",
                tree.height, tree.node_count, tree.internal_count,
                tree.leaf_count, tree.total_images, tree.feature_dim);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  fanout min/mean/max: %zu/%.1f/%zu\n", tree.min_fanout,
                tree.mean_fanout, tree.max_fanout);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  leaf entries min/mean/max: %zu/%.1f/%zu\n",
                tree.min_leaf_entries, tree.mean_leaf_entries,
                tree.max_leaf_entries);
  out += buffer;
  std::snprintf(buffer, sizeof(buffer),
                "  leaf representatives: %zu, leaf feature payload: %llu "
                "bytes\n",
                tree.leaf_representatives,
                static_cast<unsigned long long>(tree.leaf_feature_bytes));
  out += buffer;
  return out;
}

}  // namespace qdcbir
