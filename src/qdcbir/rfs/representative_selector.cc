#include "qdcbir/rfs/representative_selector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>

#include "qdcbir/cluster/kmeans.h"
#include "qdcbir/core/distance.h"

namespace qdcbir {

std::size_t RepresentativeCount(std::size_t subtree_size,
                                std::size_t candidate_count,
                                const RepresentativeOptions& options) {
  std::size_t target = static_cast<std::size_t>(
      std::lround(options.fraction * static_cast<double>(subtree_size)));
  target = std::max(target, options.min_per_node);
  return std::min(target, candidate_count);
}

StatusOr<SelectedRepresentatives> SelectRepresentatives(
    const std::vector<RepresentativeCandidate>& candidates,
    const std::vector<FeatureVector>& features, std::size_t target_count,
    const RepresentativeOptions& options) {
  if (candidates.empty()) {
    return Status::InvalidArgument("no representative candidates");
  }
  target_count = std::min(target_count, candidates.size());
  if (target_count == 0) target_count = 1;

  std::vector<FeatureVector> points;
  points.reserve(candidates.size());
  for (const RepresentativeCandidate& c : candidates) {
    points.push_back(features[c.image]);
  }

  KMeansOptions km;
  km.k = static_cast<int>(target_count);
  km.max_iterations = options.kmeans_iterations;
  km.seed = options.seed;
  StatusOr<KMeansResult> result = RunKMeans(points, km);
  if (!result.ok()) return result.status();

  // For each subcluster, pick the candidate nearest its center.
  SelectedRepresentatives out;
  std::unordered_set<ImageId> chosen;
  const int k = static_cast<int>(result->centroids.size());
  for (int c = 0; c < k; ++c) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_i = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (result->assignments[i] != c) continue;
      const double d = SquaredL2(points[i], result->centroids[c]);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    if (best_i == candidates.size()) continue;  // empty subcluster
    if (!chosen.insert(candidates[best_i].image).second) continue;
    out.images.push_back(candidates[best_i].image);
    out.origins.push_back(candidates[best_i].origin);
  }
  // k-means can leave every point in one cluster in degenerate inputs; the
  // caller always gets at least one representative.
  if (out.images.empty()) {
    out.images.push_back(candidates.front().image);
    out.origins.push_back(candidates.front().origin);
  }
  return out;
}

}  // namespace qdcbir
