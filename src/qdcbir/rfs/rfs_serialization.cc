#include "qdcbir/rfs/rfs_serialization.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace qdcbir {

namespace {

constexpr char kMagic[] = "QDRFS001";
constexpr std::size_t kMagicLen = 8;

class Writer {
 public:
  void Raw(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  template <typename T>
  void Pod(T v) {
    Raw(&v, sizeof(T));
  }
  void U32(std::uint32_t v) { Pod(v); }
  void U64(std::uint64_t v) { Pod(v); }
  void I32(std::int32_t v) { Pod(v); }
  void F64(double v) { Pod(v); }
  void Doubles(const std::vector<double>& v) {
    Raw(v.data(), v.size() * sizeof(double));
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool Raw(void* data, std::size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool Pod(T* v) {
    return Raw(v, sizeof(T));
  }
  bool Doubles(std::vector<double>* v, std::size_t n) {
    v->resize(n);
    return Raw(v->data(), n * sizeof(double));
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string RfsSerializer::Serialize(const RfsTree& tree) {
  Writer w;
  w.Raw(kMagic, kMagicLen);

  // Features.
  const std::uint64_t num_images = tree.features_.size();
  const std::uint64_t dim = tree.feature_dim();
  w.U64(num_images);
  w.U64(dim);
  for (const FeatureVector& f : tree.features_) w.Doubles(f.values());

  // Index options and shape.
  const RStarTree& index = tree.index_;
  w.U64(index.options().max_entries);
  w.U64(index.options().min_entries);
  w.F64(index.options().reinsert_fraction);
  w.U64(index.nodes_.size());
  w.U32(index.root_);
  w.U64(index.size_);

  for (std::size_t i = 0; i < index.nodes_.size(); ++i) {
    const bool present = index.nodes_[i] != nullptr;
    w.Pod<std::uint8_t>(present ? 1 : 0);
    if (!present) continue;
    const RStarTree::Node& node = *index.nodes_[i];
    w.I32(node.level);
    w.U32(index.parent_[i]);
    w.U64(node.entries.size());
    for (const RStarTree::Entry& e : node.entries) {
      w.U32(e.child);
      w.U32(e.data);
      w.Doubles(e.rect.lo());
      w.Doubles(e.rect.hi());
    }
  }

  // Per-node RFS annotations.
  w.U64(tree.info_.size());
  for (const auto& [id, info] : tree.info_) {
    w.U32(id);
    w.I32(info.level);
    w.U32(info.parent);
    w.U64(info.children.size());
    for (const NodeId c : info.children) w.U32(c);
    w.U64(info.representatives.size());
    for (const ImageId r : info.representatives) w.U32(r);
    for (const NodeId o : info.rep_origin) w.U32(o);
    w.Doubles(info.center.values());
    w.F64(info.diagonal);
    w.U64(info.subtree_size);
  }
  return w.Take();
}

StatusOr<RfsTree> RfsSerializer::Deserialize(const std::string& bytes) {
  Reader r(bytes);
  char magic[kMagicLen];
  if (!r.Raw(magic, kMagicLen) || std::memcmp(magic, kMagic, kMagicLen) != 0) {
    return Status::IoError("not an RFS blob (bad magic)");
  }
  const auto corrupt = [] { return Status::IoError("truncated RFS blob"); };

  std::uint64_t num_images = 0, dim = 0;
  if (!r.Pod(&num_images) || !r.Pod(&dim)) return corrupt();
  std::vector<FeatureVector> features;
  features.reserve(num_images);
  for (std::uint64_t i = 0; i < num_images; ++i) {
    std::vector<double> values;
    if (!r.Doubles(&values, dim)) return corrupt();
    features.emplace_back(std::move(values));
  }

  RStarTreeOptions options;
  std::uint64_t max_entries = 0, min_entries = 0;
  if (!r.Pod(&max_entries) || !r.Pod(&min_entries) ||
      !r.Pod(&options.reinsert_fraction)) {
    return corrupt();
  }
  options.max_entries = max_entries;
  options.min_entries = min_entries;
  QDCBIR_RETURN_IF_ERROR(options.Validate());

  std::uint64_t node_slots = 0;
  std::uint32_t root = 0;
  std::uint64_t tree_size = 0;
  if (!r.Pod(&node_slots) || !r.Pod(&root) || !r.Pod(&tree_size)) {
    return corrupt();
  }

  RStarTree index(dim, options);
  index.nodes_.clear();
  index.parent_.clear();
  index.free_nodes_.clear();
  index.nodes_.resize(node_slots);
  index.parent_.assign(node_slots, kInvalidNodeId);

  for (std::uint64_t i = 0; i < node_slots; ++i) {
    std::uint8_t present = 0;
    if (!r.Pod(&present)) return corrupt();
    if (!present) {
      index.free_nodes_.push_back(static_cast<NodeId>(i));
      continue;
    }
    auto node = std::make_unique<RStarTree::Node>();
    std::uint32_t parent = 0;
    std::uint64_t entry_count = 0;
    if (!r.Pod(&node->level) || !r.Pod(&parent) || !r.Pod(&entry_count)) {
      return corrupt();
    }
    index.parent_[i] = parent;
    node->entries.reserve(entry_count);
    for (std::uint64_t e = 0; e < entry_count; ++e) {
      RStarTree::Entry entry;
      std::vector<double> lo, hi;
      if (!r.Pod(&entry.child) || !r.Pod(&entry.data) ||
          !r.Doubles(&lo, dim) || !r.Doubles(&hi, dim)) {
        return corrupt();
      }
      entry.rect = Rect(std::move(lo), std::move(hi));
      node->entries.push_back(std::move(entry));
    }
    index.nodes_[i] = std::move(node);
  }
  if (root >= node_slots || index.nodes_[root] == nullptr) {
    return Status::IoError("RFS blob has an invalid root");
  }
  index.root_ = root;
  index.size_ = tree_size;

  RfsTree tree(std::move(index), std::move(features));

  std::uint64_t info_count = 0;
  if (!r.Pod(&info_count)) return corrupt();
  for (std::uint64_t i = 0; i < info_count; ++i) {
    std::uint32_t id = 0;
    RfsTree::NodeInfo info;
    std::uint64_t child_count = 0, rep_count = 0;
    if (!r.Pod(&id) || !r.Pod(&info.level) || !r.Pod(&info.parent) ||
        !r.Pod(&child_count)) {
      return corrupt();
    }
    info.children.resize(child_count);
    for (auto& c : info.children) {
      if (!r.Pod(&c)) return corrupt();
    }
    if (!r.Pod(&rep_count)) return corrupt();
    info.representatives.resize(rep_count);
    info.rep_origin.resize(rep_count);
    for (auto& rep : info.representatives) {
      if (!r.Pod(&rep)) return corrupt();
    }
    for (auto& origin : info.rep_origin) {
      if (!r.Pod(&origin)) return corrupt();
    }
    std::vector<double> center;
    if (!r.Doubles(&center, dim) || !r.Pod(&info.diagonal) ||
        !r.Pod(&info.subtree_size)) {
      return corrupt();
    }
    info.center = FeatureVector(std::move(center));
    tree.info_[id] = std::move(info);
  }
  tree.RebuildLeafMap();
  return tree;
}

Status RfsSerializer::SaveToFile(const RfsTree& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const std::string bytes = Serialize(tree);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<RfsTree> RfsSerializer::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return Deserialize(ss.str());
}

}  // namespace qdcbir
