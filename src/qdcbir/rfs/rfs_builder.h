#ifndef QDCBIR_RFS_RFS_BUILDER_H_
#define QDCBIR_RFS_RFS_BUILDER_H_

#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"
#include "qdcbir/index/rstar_tree.h"
#include "qdcbir/rfs/clustered_bulk_load.h"
#include "qdcbir/rfs/representative_selector.h"
#include "qdcbir/rfs/rfs_tree.h"

namespace qdcbir {

class ThreadPool;

/// How the RFS "data clustering" stage builds the index.
enum class RfsBuildStrategy {
  /// Hierarchical k-means bulk load (default): leaves hold whole visual
  /// clusters, which is the property query decomposition relies on.
  kClustered = 0,
  /// Spatial median-partition bulk load (fast, but can slice clusters
  /// across leaf boundaries). Kept for the ablation benchmarks.
  kTgsBulkLoad = 1,
  /// One-at-a-time R* insertion (Beckmann et al. dynamics).
  kInsertion = 2,
};

const char* RfsBuildStrategyName(RfsBuildStrategy strategy);

/// Options for RFS construction.
struct RfsBuildOptions {
  RStarTreeOptions tree;
  RepresentativeOptions representatives;
  RfsBuildStrategy strategy = RfsBuildStrategy::kClustered;
  ClusteredBulkLoadOptions clustering;
  double bulk_fill_factor = 0.85;  ///< for kTgsBulkLoad
  /// Worker pool for the per-node k-means of representative selection
  /// (siblings of a level run concurrently) and the clustered bulk load's
  /// group splits; nullptr means `ThreadPool::Global()`. The built tree is
  /// identical across pool sizes — every node keeps its own derived seed.
  ThreadPool* pool = nullptr;
};

/// Builds RFS trees (paper §3.1): index construction ("data clustering")
/// followed by bottom-up representative selection.
class RfsBuilder {
 public:
  /// Builds an RFS tree over `features` (image id i = index i).
  /// The two construction stages:
  ///  1. Data clustering: an R*-tree organizes the images hierarchically.
  ///  2. Representative selection, bottom-up: leaves k-means their images;
  ///     internal nodes k-means the union of children's representatives.
  static StatusOr<RfsTree> Build(std::vector<FeatureVector> features,
                                 const RfsBuildOptions& options = RfsBuildOptions());

 private:
  static Status SelectAllRepresentatives(RfsTree& rfs,
                                         const RepresentativeOptions& options,
                                         ThreadPool& pool);
};

}  // namespace qdcbir

#endif  // QDCBIR_RFS_RFS_BUILDER_H_
