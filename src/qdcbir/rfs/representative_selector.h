#ifndef QDCBIR_RFS_REPRESENTATIVE_SELECTOR_H_
#define QDCBIR_RFS_REPRESENTATIVE_SELECTOR_H_

#include <cstdint>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"

namespace qdcbir {

/// Options for representative-image selection (paper §3.1).
struct RepresentativeOptions {
  /// Target fraction of a node's subtree designated as representatives.
  /// The paper's prototype uses 5%.
  double fraction = 0.05;
  /// Lower bound on representatives per node, so even small nodes offer the
  /// user something to mark during feedback.
  std::size_t min_per_node = 3;
  /// k-means seeding for subcluster discovery.
  std::uint64_t seed = 13;
  /// Lloyd iteration cap (representative selection does not need a tight
  /// optimum, so the builder keeps this modest).
  int kmeans_iterations = 20;
};

/// One selection candidate: an image plus the child subtree it comes from.
struct RepresentativeCandidate {
  ImageId image = kInvalidImageId;
  NodeId origin = kInvalidNodeId;
};

/// Result of selecting representatives for one node.
struct SelectedRepresentatives {
  std::vector<ImageId> images;
  std::vector<NodeId> origins;  ///< parallel to `images`
};

/// Selects `target_count` representatives from `candidates` by k-means:
/// candidates are clustered into `target_count` subclusters and the
/// candidate nearest each subcluster center is selected (duplicates
/// collapse, so fewer may be returned). `features[c.image]` supplies the
/// feature vector of each candidate.
///
/// Because k-means assigns more clusters where candidates are dense, the
/// number of representatives drawn from each child is roughly proportional
/// to the child's share of candidates — the paper's proportionality rule.
StatusOr<SelectedRepresentatives> SelectRepresentatives(
    const std::vector<RepresentativeCandidate>& candidates,
    const std::vector<FeatureVector>& features, std::size_t target_count,
    const RepresentativeOptions& options);

/// The representative count for a subtree of `subtree_size` images.
std::size_t RepresentativeCount(std::size_t subtree_size,
                                std::size_t candidate_count,
                                const RepresentativeOptions& options);

}  // namespace qdcbir

#endif  // QDCBIR_RFS_REPRESENTATIVE_SELECTOR_H_
