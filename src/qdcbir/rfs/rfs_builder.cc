#include "qdcbir/rfs/rfs_builder.h"

#include <numeric>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/index/str_bulk_load.h"
#include "qdcbir/obs/span.h"

namespace qdcbir {

const char* RfsBuildStrategyName(RfsBuildStrategy strategy) {
  switch (strategy) {
    case RfsBuildStrategy::kClustered:
      return "clustered";
    case RfsBuildStrategy::kTgsBulkLoad:
      return "tgs_bulk";
    case RfsBuildStrategy::kInsertion:
      return "insertion";
  }
  return "unknown";
}

StatusOr<RfsTree> RfsBuilder::Build(std::vector<FeatureVector> features,
                                    const RfsBuildOptions& options) {
  if (features.empty()) {
    return Status::InvalidArgument("cannot build RFS over an empty database");
  }
  const std::size_t dim = features.front().dim();
  QDCBIR_RETURN_IF_ERROR(options.tree.Validate());
  QDCBIR_SPAN("rfs.build");

  std::vector<ImageId> ids(features.size());
  std::iota(ids.begin(), ids.end(), 0u);

  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Global();

  // Stage 1: data clustering via the R*-tree.
  RStarTree index(dim, options.tree);
  {
    QDCBIR_SPAN("rfs.build.cluster");
    switch (options.strategy) {
    case RfsBuildStrategy::kClustered: {
      ClusteredBulkLoadOptions clustering = options.clustering;
      if (clustering.pool == nullptr) clustering.pool = &pool;
      StatusOr<RStarTree> loaded = ClusteredTreeBuilder::Build(
          features, ids, dim, options.tree, clustering);
      if (!loaded.ok()) return loaded.status();
      index = std::move(loaded).value();
      break;
    }
    case RfsBuildStrategy::kTgsBulkLoad: {
      StatusOr<RStarTree> loaded = BulkLoadRStarTree(
          features, ids, dim, options.tree, options.bulk_fill_factor);
      if (!loaded.ok()) return loaded.status();
      index = std::move(loaded).value();
      break;
    }
    case RfsBuildStrategy::kInsertion: {
      for (std::size_t i = 0; i < features.size(); ++i) {
        QDCBIR_RETURN_IF_ERROR(index.Insert(features[i], ids[i]));
      }
      break;
    }
    }
  }

  RfsTree rfs(std::move(index), std::move(features));

  rfs.RebuildLeafMap();

  // Stage 2: bottom-up representative selection.
  QDCBIR_RETURN_IF_ERROR(
      SelectAllRepresentatives(rfs, options.representatives, pool));
  return rfs;
}

Status RfsBuilder::SelectAllRepresentatives(
    RfsTree& rfs, const RepresentativeOptions& options, ThreadPool& pool) {
  QDCBIR_SPAN("rfs.build.representatives");
  const RStarTree& index = rfs.index_;
  const auto levels = index.NodesByLevel();

  // Leaves first, then each upper level in order, so children's
  // representatives exist before their parent aggregates them. Within a
  // level, the sibling nodes' k-means selections are independent and fan
  // out across the pool; the cheap info bookkeeping stays sequential so
  // the `info_` map is never mutated concurrently. Each node derives its
  // own k-means seed, so the selection is identical at any pool size.
  for (std::size_t level = 0; level < levels.size(); ++level) {
    const std::vector<NodeId>& nodes = levels[level];

    // Phase A (sequential): candidate gathering and structural annotation.
    std::vector<RfsTree::NodeInfo> infos(nodes.size());
    std::vector<std::vector<RepresentativeCandidate>> candidates(nodes.size());
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      const NodeId nid = nodes[ni];
      const RStarTree::Node& node = index.node(nid);
      RfsTree::NodeInfo& info = infos[ni];
      info.level = node.level;

      if (node.IsLeaf()) {
        for (const RStarTree::Entry& e : node.entries) {
          candidates[ni].push_back(RepresentativeCandidate{e.data, nid});
        }
        info.subtree_size = node.entries.size();
      } else {
        for (const RStarTree::Entry& e : node.entries) {
          info.children.push_back(e.child);
          const RfsTree::NodeInfo& child_info = rfs.info_.at(e.child);
          info.subtree_size += child_info.subtree_size;
          for (const ImageId rep : child_info.representatives) {
            candidates[ni].push_back(RepresentativeCandidate{rep, e.child});
          }
          rfs.info_.at(e.child).parent = nid;
        }
      }

      const Rect rect = index.NodeRect(nid);
      info.center = rect.Center();
      info.diagonal = rect.Diagonal();
    }

    // Phase B (parallel): per-node k-means representative selection.
    std::vector<Status> node_status(nodes.size(), Status::Ok());
    pool.ParallelFor(0, nodes.size(), [&](std::size_t ni) {
      const NodeId nid = nodes[ni];
      RfsTree::NodeInfo& info = infos[ni];
      const std::size_t target = RepresentativeCount(
          info.subtree_size, candidates[ni].size(), options);
      // Vary the k-means seed per node so sibling nodes do not share
      // degenerate seedings.
      RepresentativeOptions node_options = options;
      node_options.seed = options.seed ^ (0x9e3779b97f4a7c15ULL * (nid + 1));
      StatusOr<SelectedRepresentatives> selected =
          SelectRepresentatives(candidates[ni], rfs.features_, target,
                                node_options);
      if (!selected.ok()) {
        node_status[ni] = selected.status();
        return;
      }
      info.representatives = std::move(selected->images);
      info.rep_origin = std::move(selected->origins);
    });

    // Phase C (sequential): commit into the node map.
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
      QDCBIR_RETURN_IF_ERROR(node_status[ni]);
      rfs.info_[nodes[ni]] = std::move(infos[ni]);
    }
  }
  return Status::Ok();
}

}  // namespace qdcbir
