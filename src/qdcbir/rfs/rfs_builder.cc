#include "qdcbir/rfs/rfs_builder.h"

#include <numeric>

#include "qdcbir/index/str_bulk_load.h"

namespace qdcbir {

const char* RfsBuildStrategyName(RfsBuildStrategy strategy) {
  switch (strategy) {
    case RfsBuildStrategy::kClustered:
      return "clustered";
    case RfsBuildStrategy::kTgsBulkLoad:
      return "tgs_bulk";
    case RfsBuildStrategy::kInsertion:
      return "insertion";
  }
  return "unknown";
}

StatusOr<RfsTree> RfsBuilder::Build(std::vector<FeatureVector> features,
                                    const RfsBuildOptions& options) {
  if (features.empty()) {
    return Status::InvalidArgument("cannot build RFS over an empty database");
  }
  const std::size_t dim = features.front().dim();
  QDCBIR_RETURN_IF_ERROR(options.tree.Validate());

  std::vector<ImageId> ids(features.size());
  std::iota(ids.begin(), ids.end(), 0u);

  // Stage 1: data clustering via the R*-tree.
  RStarTree index(dim, options.tree);
  switch (options.strategy) {
    case RfsBuildStrategy::kClustered: {
      StatusOr<RStarTree> loaded = ClusteredTreeBuilder::Build(
          features, ids, dim, options.tree, options.clustering);
      if (!loaded.ok()) return loaded.status();
      index = std::move(loaded).value();
      break;
    }
    case RfsBuildStrategy::kTgsBulkLoad: {
      StatusOr<RStarTree> loaded = BulkLoadRStarTree(
          features, ids, dim, options.tree, options.bulk_fill_factor);
      if (!loaded.ok()) return loaded.status();
      index = std::move(loaded).value();
      break;
    }
    case RfsBuildStrategy::kInsertion: {
      for (std::size_t i = 0; i < features.size(); ++i) {
        QDCBIR_RETURN_IF_ERROR(index.Insert(features[i], ids[i]));
      }
      break;
    }
  }

  RfsTree rfs(std::move(index), std::move(features));

  rfs.RebuildLeafMap();

  // Stage 2: bottom-up representative selection.
  QDCBIR_RETURN_IF_ERROR(
      SelectAllRepresentatives(rfs, options.representatives));
  return rfs;
}

Status RfsBuilder::SelectAllRepresentatives(
    RfsTree& rfs, const RepresentativeOptions& options) {
  const RStarTree& index = rfs.index_;
  const auto levels = index.NodesByLevel();

  // Leaves first, then each upper level in order, so children's
  // representatives exist before their parent aggregates them.
  for (std::size_t level = 0; level < levels.size(); ++level) {
    for (const NodeId nid : levels[level]) {
      const RStarTree::Node& node = index.node(nid);
      RfsTree::NodeInfo info;
      info.level = node.level;

      std::vector<RepresentativeCandidate> candidates;
      if (node.IsLeaf()) {
        for (const RStarTree::Entry& e : node.entries) {
          candidates.push_back(RepresentativeCandidate{e.data, nid});
        }
        info.subtree_size = node.entries.size();
      } else {
        for (const RStarTree::Entry& e : node.entries) {
          info.children.push_back(e.child);
          const RfsTree::NodeInfo& child_info = rfs.info_.at(e.child);
          info.subtree_size += child_info.subtree_size;
          for (const ImageId rep : child_info.representatives) {
            candidates.push_back(RepresentativeCandidate{rep, e.child});
          }
          rfs.info_.at(e.child).parent = nid;
        }
      }

      const Rect rect = index.NodeRect(nid);
      info.center = rect.Center();
      info.diagonal = rect.Diagonal();

      const std::size_t target = RepresentativeCount(
          info.subtree_size, candidates.size(), options);
      // Vary the k-means seed per node so sibling nodes do not share
      // degenerate seedings.
      RepresentativeOptions node_options = options;
      node_options.seed = options.seed ^ (0x9e3779b97f4a7c15ULL * (nid + 1));
      StatusOr<SelectedRepresentatives> selected =
          SelectRepresentatives(candidates, rfs.features_, target,
                                node_options);
      if (!selected.ok()) return selected.status();
      info.representatives = std::move(selected->images);
      info.rep_origin = std::move(selected->origins);

      rfs.info_[nid] = std::move(info);
    }
  }
  return Status::Ok();
}

}  // namespace qdcbir
