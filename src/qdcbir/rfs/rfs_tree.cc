#include "qdcbir/rfs/rfs_tree.h"

#include <algorithm>
#include <unordered_set>

namespace qdcbir {

void RfsTree::RebuildLeafMap() {
  leaf_of_.assign(features_.size(), kInvalidNodeId);
  const auto levels = index_.NodesByLevel();
  for (const NodeId leaf : levels[0]) {
    for (const RStarTree::Entry& e : index_.node(leaf).entries) {
      if (e.data < leaf_of_.size()) leaf_of_[e.data] = leaf;
    }
  }
}

StatusOr<NodeId> RfsTree::OriginOfRepresentative(NodeId node,
                                                 ImageId rep) const {
  const NodeInfo& n = info(node);
  for (std::size_t i = 0; i < n.representatives.size(); ++i) {
    if (n.representatives[i] == rep) return n.rep_origin[i];
  }
  return Status::NotFound("image is not a representative of this node");
}

std::vector<ImageId> RfsTree::SampleRepresentatives(NodeId node,
                                                    std::size_t count,
                                                    Rng& rng) const {
  const NodeInfo& n = info(node);
  const std::vector<std::size_t> picks =
      rng.SampleWithoutReplacement(n.representatives.size(), count);
  std::vector<ImageId> out;
  out.reserve(picks.size());
  for (std::size_t i : picks) out.push_back(n.representatives[i]);
  return out;
}

std::size_t RfsTree::CountLeafRepresentatives() const {
  std::size_t total = 0;
  for (const auto& [id, info] : info_) {
    if (info.level == 0) total += info.representatives.size();
  }
  return total;
}

RfsTree::Stats RfsTree::ComputeStats() const {
  Stats stats;
  stats.height = height();
  stats.node_count = info_.size();
  stats.total_images = num_images();
  for (const auto& [id, info] : info_) {
    if (info.level == 0) {
      ++stats.leaf_count;
      stats.leaf_representatives += info.representatives.size();
    }
  }
  if (stats.total_images > 0) {
    stats.representative_fraction =
        static_cast<double>(stats.leaf_representatives) /
        static_cast<double>(stats.total_images);
  }
  return stats;
}

Status RfsTree::CheckInvariants() const {
  QDCBIR_RETURN_IF_ERROR(index_.CheckInvariants());

  const auto levels = index_.NodesByLevel();
  std::size_t indexed_nodes = 0;
  for (const auto& level_nodes : levels) indexed_nodes += level_nodes.size();
  if (indexed_nodes != info_.size()) {
    return Status::Internal("RFS info does not cover every index node");
  }

  for (const auto& [id, node_info] : info_) {
    if (node_info.representatives.empty()) {
      return Status::Internal("node without representatives");
    }
    if (node_info.representatives.size() != node_info.rep_origin.size()) {
      return Status::Internal("representative/origin size mismatch");
    }
    const std::vector<ImageId> subtree = index_.CollectSubtree(id);
    const std::unordered_set<ImageId> member(subtree.begin(), subtree.end());
    for (const ImageId rep : node_info.representatives) {
      if (member.count(rep) == 0) {
        return Status::Internal("representative outside its subtree");
      }
    }
    if (node_info.subtree_size != subtree.size()) {
      return Status::Internal("stale subtree size");
    }
    for (const NodeId origin : node_info.rep_origin) {
      if (node_info.level == 0) {
        if (origin != id) {
          return Status::Internal("leaf rep origin must be the leaf itself");
        }
      } else if (std::find(node_info.children.begin(),
                           node_info.children.end(),
                           origin) == node_info.children.end()) {
        return Status::Internal("rep origin is not a child of the node");
      }
    }
  }
  return Status::Ok();
}

}  // namespace qdcbir
