#include "qdcbir/rfs/clustered_bulk_load.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "qdcbir/cluster/kmeans.h"
#include "qdcbir/core/distance.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/span.h"

namespace qdcbir {

namespace {

struct Group {
  std::vector<std::size_t> members;  ///< indices into the level's point set
  FeatureVector centroid;
};

FeatureVector CentroidOf(const std::vector<std::size_t>& members,
                         const std::vector<FeatureVector>& points) {
  FeatureVector sum(points.front().dim());
  for (const std::size_t i : members) sum += points[i];
  sum *= 1.0 / static_cast<double>(members.size());
  return sum;
}

/// Splits an oversized member list in half along its widest axis,
/// recursively, until every piece fits in `max_size`.
void MedianSplit(std::vector<std::size_t> members,
                 const std::vector<FeatureVector>& points,
                 std::size_t max_size, std::vector<Group>& out) {
  if (members.size() <= max_size) {
    Group g;
    g.centroid = CentroidOf(members, points);
    g.members = std::move(members);
    out.push_back(std::move(g));
    return;
  }
  const std::size_t dim = points.front().dim();
  std::size_t best_axis = 0;
  double best_spread = -1.0;
  for (std::size_t a = 0; a < dim; ++a) {
    double lo = points[members.front()][a];
    double hi = lo;
    for (const std::size_t i : members) {
      lo = std::min(lo, points[i][a]);
      hi = std::max(hi, points[i][a]);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = a;
    }
  }
  const std::size_t half = members.size() / 2;
  std::nth_element(members.begin(),
                   members.begin() + static_cast<std::ptrdiff_t>(half),
                   members.end(), [&](std::size_t a, std::size_t b) {
                     return points[a][best_axis] < points[b][best_axis];
                   });
  std::vector<std::size_t> left(members.begin(),
                                members.begin() + static_cast<std::ptrdiff_t>(half));
  std::vector<std::size_t> right(members.begin() + static_cast<std::ptrdiff_t>(half),
                                 members.end());
  MedianSplit(std::move(left), points, max_size, out);
  MedianSplit(std::move(right), points, max_size, out);
}

/// Partitions `points` into groups of size [min_fill, max_size] by k-means,
/// then merging undersized and splitting oversized groups.
StatusOr<std::vector<Group>> GroupLevel(
    const std::vector<FeatureVector>& points, std::size_t capacity,
    std::size_t min_fill, std::size_t max_size,
    const ClusteredBulkLoadOptions& options, std::uint64_t level_seed) {
  const std::size_t n = points.size();
  std::vector<Group> groups;

  if (n <= max_size) {
    Group g;
    g.members.resize(n);
    std::iota(g.members.begin(), g.members.end(), 0u);
    g.centroid = CentroidOf(g.members, points);
    groups.push_back(std::move(g));
    return groups;
  }

  const std::size_t target_groups =
      std::max<std::size_t>(2, (n + capacity - 1) / capacity);
  KMeansOptions km;
  km.k = static_cast<int>(target_groups);
  km.max_iterations = options.kmeans_iterations;
  km.seed = options.seed ^ level_seed;
  StatusOr<KMeansResult> clusters = RunKMeans(points, km);
  if (!clusters.ok()) return clusters.status();

  std::vector<Group> raw(clusters->centroids.size());
  for (std::size_t c = 0; c < raw.size(); ++c) {
    raw[c].centroid = clusters->centroids[c];
  }
  for (std::size_t i = 0; i < n; ++i) {
    raw[static_cast<std::size_t>(clusters->assignments[i])].members.push_back(i);
  }
  raw.erase(std::remove_if(raw.begin(), raw.end(),
                           [](const Group& g) { return g.members.empty(); }),
            raw.end());

  // Merge undersized groups into the nearest sibling.
  bool merged = true;
  while (merged && raw.size() > 1) {
    merged = false;
    for (std::size_t g = 0; g < raw.size(); ++g) {
      if (raw[g].members.size() >= min_fill) continue;
      std::size_t nearest = raw.size();
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t h = 0; h < raw.size(); ++h) {
        if (h == g) continue;
        const double d = SquaredL2(raw[g].centroid, raw[h].centroid);
        if (d < best) {
          best = d;
          nearest = h;
        }
      }
      raw[nearest].members.insert(raw[nearest].members.end(),
                                  raw[g].members.begin(),
                                  raw[g].members.end());
      raw[nearest].centroid = CentroidOf(raw[nearest].members, points);
      raw.erase(raw.begin() + static_cast<std::ptrdiff_t>(g));
      merged = true;
      break;
    }
  }

  // Split oversized groups (a split piece is still >= max/2 >= min_fill).
  // Splits are independent per group: each task writes its own output list
  // and the lists concatenate in group order, so the resulting tree is the
  // same at any pool size.
  ThreadPool& pool = options.pool != nullptr ? *options.pool
                                             : ThreadPool::Global();
  std::vector<std::vector<Group>> split_groups(raw.size());
  pool.ParallelFor(0, raw.size(), [&](std::size_t g) {
    MedianSplit(std::move(raw[g].members), points, max_size, split_groups[g]);
  });
  for (std::vector<Group>& split : split_groups) {
    for (Group& g : split) groups.push_back(std::move(g));
  }
  return groups;
}

}  // namespace

StatusOr<RStarTree> ClusteredTreeBuilder::Build(
    const std::vector<FeatureVector>& points, const std::vector<ImageId>& ids,
    std::size_t dim, const RStarTreeOptions& tree_options,
    const ClusteredBulkLoadOptions& options) {
  QDCBIR_RETURN_IF_ERROR(tree_options.Validate());
  if (points.empty() || points.size() != ids.size()) {
    return Status::InvalidArgument(
        "clustered bulk load requires equal-length, non-empty points and ids");
  }
  for (const FeatureVector& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  if (options.fill_factor <= 0.0 || options.fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }
  QDCBIR_SPAN("rfs.build.kmeans_partition");

  const std::size_t capacity = std::max<std::size_t>(
      2, static_cast<std::size_t>(std::floor(
             options.fill_factor *
             static_cast<double>(tree_options.max_entries))));
  const std::size_t min_fill = std::min(tree_options.min_entries,
                                        (tree_options.max_entries + 1) / 2);

  RStarTree tree(dim, tree_options);
  tree.nodes_.clear();
  tree.parent_.clear();
  tree.free_nodes_.clear();

  // --- Leaf level --------------------------------------------------------
  StatusOr<std::vector<Group>> leaf_groups =
      GroupLevel(points, capacity, min_fill, tree_options.max_entries,
                 options, /*level_seed=*/0);
  if (!leaf_groups.ok()) return leaf_groups.status();

  std::vector<NodeId> level_nodes;
  std::vector<FeatureVector> level_centers;
  for (const Group& g : *leaf_groups) {
    const NodeId nid = tree.AllocateNode(/*level=*/0);
    RStarTree::Node& node = tree.mutable_node(nid);
    for (const std::size_t i : g.members) {
      RStarTree::Entry e;
      e.rect = Rect(points[i]);
      e.data = ids[i];
      node.entries.push_back(std::move(e));
    }
    level_nodes.push_back(nid);
    level_centers.push_back(tree.NodeRect(nid).Center());
  }

  // --- Upper levels ------------------------------------------------------
  int level = 1;
  while (level_nodes.size() > 1) {
    StatusOr<std::vector<Group>> node_groups =
        GroupLevel(level_centers, capacity, min_fill,
                   tree_options.max_entries, options,
                   static_cast<std::uint64_t>(level));
    if (!node_groups.ok()) return node_groups.status();

    std::vector<NodeId> next_nodes;
    std::vector<FeatureVector> next_centers;
    for (const Group& g : *node_groups) {
      const NodeId nid = tree.AllocateNode(level);
      RStarTree::Node& node = tree.mutable_node(nid);
      for (const std::size_t i : g.members) {
        const NodeId child = level_nodes[i];
        RStarTree::Entry e;
        e.rect = tree.NodeRect(child);
        e.child = child;
        node.entries.push_back(std::move(e));
        tree.parent_[child] = nid;
      }
      next_nodes.push_back(nid);
      next_centers.push_back(tree.NodeRect(nid).Center());
    }
    level_nodes = std::move(next_nodes);
    level_centers = std::move(next_centers);
    ++level;
  }

  tree.root_ = level_nodes.front();
  tree.parent_[tree.root_] = kInvalidNodeId;
  tree.size_ = points.size();
  return tree;
}

}  // namespace qdcbir
