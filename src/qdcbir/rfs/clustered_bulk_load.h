#ifndef QDCBIR_RFS_CLUSTERED_BULK_LOAD_H_
#define QDCBIR_RFS_CLUSTERED_BULK_LOAD_H_

#include <cstdint>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/index/rstar_tree.h"

namespace qdcbir {

class ThreadPool;

/// Options of the clustered bulk loader.
struct ClusteredBulkLoadOptions {
  /// Target leaf occupancy relative to `RStarTreeOptions::max_entries`.
  double fill_factor = 0.85;
  /// k-means effort per level (the grouping does not need a tight optimum).
  int kmeans_iterations = 12;
  std::uint64_t seed = 97;
  /// Worker pool for the per-group median splits; nullptr means
  /// `ThreadPool::Global()`. Group order (and so the tree) is preserved.
  ThreadPool* pool = nullptr;
};

/// Builds an R*-tree whose *leaves are visual clusters*: the paper's RFS
/// "data clustering" stage organizes the image database by hierarchical
/// clustering, and query decomposition assumes that a leaf holds one (or a
/// few whole) semantic subclusters.
///
/// Strategy, level by level (bottom-up):
///   1. k-means the points into ~n / capacity groups (k-means++ seeding);
///   2. groups larger than `max_entries` are median-split (they already
///      contain one coherent cluster, so any split is fine);
///      groups smaller than the occupancy minimum merge into the group with
///      the nearest centroid;
///   3. the next level repeats the procedure over the group centroids.
///
/// Compared to a spatial median partition (see `BulkLoadRStarTree`), this
/// keeps tight feature-space clusters intact inside single leaves, which is
/// what makes localized multipoint k-NN precise.
class ClusteredTreeBuilder {
 public:
  static StatusOr<RStarTree> Build(
      const std::vector<FeatureVector>& points,
      const std::vector<ImageId>& ids, std::size_t dim,
      const RStarTreeOptions& tree_options = RStarTreeOptions(),
      const ClusteredBulkLoadOptions& options = ClusteredBulkLoadOptions());
};

}  // namespace qdcbir

#endif  // QDCBIR_RFS_CLUSTERED_BULK_LOAD_H_
