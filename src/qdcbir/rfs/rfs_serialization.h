#ifndef QDCBIR_RFS_RFS_SERIALIZATION_H_
#define QDCBIR_RFS_RFS_SERIALIZATION_H_

#include <string>

#include "qdcbir/core/status.h"
#include "qdcbir/rfs/rfs_tree.h"

namespace qdcbir {

/// Binary (de)serialization of a complete RFS tree: feature vectors, the
/// R*-tree structure, and every node's representative annotations. Building
/// the RFS over 15k images costs seconds; persisting it lets the benchmark
/// binaries and a client-side feedback process (paper §4) reuse one build.
///
/// The format is host-endian and versioned by a magic string; it is a cache
/// format, not an interchange format.
class RfsSerializer {
 public:
  /// Serializes `tree` to a byte string.
  static std::string Serialize(const RfsTree& tree);

  /// Reconstructs a tree from `bytes`.
  static StatusOr<RfsTree> Deserialize(const std::string& bytes);

  /// File convenience wrappers.
  static Status SaveToFile(const RfsTree& tree, const std::string& path);
  static StatusOr<RfsTree> LoadFromFile(const std::string& path);
};

}  // namespace qdcbir

#endif  // QDCBIR_RFS_RFS_SERIALIZATION_H_
