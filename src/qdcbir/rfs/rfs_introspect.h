#ifndef QDCBIR_RFS_RFS_INTROSPECT_H_
#define QDCBIR_RFS_RFS_INTROSPECT_H_

/// \file
/// RFS tree introspection: one walk of the annotated tree producing the
/// geometry every observability surface shares — `GET /indexz` joins it
/// with live access stats, `qdcbir_tool indexz` dumps it offline from a
/// snapshot, and `qdcbir_tool snapshot inspect` prints the human summary.
/// Leaf ids are the tree's stable NodeIds, the same ids the access-stats
/// taps record, so the join is a plain merge on id.

#include <cstdint>
#include <string>
#include <vector>

#include "qdcbir/core/types.h"
#include "qdcbir/obs/access_stats.h"
#include "qdcbir/rfs/rfs_tree.h"

namespace qdcbir {

/// Shape of one RFS leaf, as `/indexz` reports it.
struct IndexLeafShape {
  NodeId id = kInvalidNodeId;
  std::size_t entries = 0;          ///< images stored in the leaf
  std::size_t representatives = 0;  ///< leaf-level representatives
  std::uint64_t feature_bytes = 0;  ///< resident feature payload
  double diagonal = 0.0;            ///< MBR diagonal (expansion test input)
};

/// Whole-tree geometry from one walk of the annotated RFS tree.
struct IndexTreeSummary {
  int height = 0;
  std::size_t node_count = 0;
  std::size_t internal_count = 0;
  std::size_t leaf_count = 0;
  std::size_t total_images = 0;
  std::size_t feature_dim = 0;
  std::size_t leaf_representatives = 0;
  std::size_t min_fanout = 0;  ///< children per internal node
  std::size_t max_fanout = 0;
  double mean_fanout = 0.0;
  std::size_t min_leaf_entries = 0;
  std::size_t max_leaf_entries = 0;
  double mean_leaf_entries = 0.0;
  std::uint64_t leaf_feature_bytes = 0;  ///< sum over leaves
  std::vector<IndexLeafShape> leaves;    ///< sorted by id
};

IndexTreeSummary SummarizeIndexTree(const RfsTree& tree);

/// Live access-side data joined into the `/indexz` document. Leave fields
/// default for offline (tree-only) dumps — the JSON then reports zero
/// access everywhere rather than changing shape.
struct IndexAccessJoin {
  std::uint64_t generation = 0;  ///< snapshot-load epoch the stats belong to
  std::uint64_t sessions = 0;    ///< sessions drained into the table
  std::vector<obs::LeafAccess> access;  ///< per-leaf counters, sorted by id
  std::vector<obs::CoAccessTracker::PairCount> coaccess;
  std::uint64_t coaccess_sets = 0;
  std::uint64_t coaccess_evictions = 0;
  std::uint64_t coaccess_truncated = 0;
};

/// The `/indexz` JSON document: tree geometry, per-leaf shape joined with
/// access counters, hot-leaf table (top `hot_n` by scans), skew summary
/// (top-`hot_n` share and Gini coefficient over leaf scan counts, both in
/// permille), the table-scan bucket, and the co-access pair table.
std::string RenderIndexzJson(const IndexTreeSummary& tree,
                             const IndexAccessJoin& join, std::size_t hot_n);

/// Human-readable tree-shape digest for `qdcbir_tool snapshot inspect`.
std::string RenderIndexTreeText(const IndexTreeSummary& tree);

}  // namespace qdcbir

#endif  // QDCBIR_RFS_RFS_INTROSPECT_H_
