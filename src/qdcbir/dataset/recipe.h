#ifndef QDCBIR_DATASET_RECIPE_H_
#define QDCBIR_DATASET_RECIPE_H_

#include <string>

#include "qdcbir/core/rng.h"
#include "qdcbir/image/image.h"

namespace qdcbir {

/// How the background of a synthetic image is painted.
enum class BackgroundKind {
  kSolid = 0,
  kVerticalGradient = 1,
  kHorizontalGradient = 2,
  kNoisy = 3,  ///< solid base modulated by smooth value noise
};

/// The object shape drawn on the background.
enum class ShapeKind {
  kEllipse = 0,
  kRectangle = 1,
  kTriangle = 2,
  kPolygon = 3,   ///< regular n-gon (see `polygon_sides`)
  kLineBurst = 4, ///< a fan of thick lines (high edge response)
};

/// Texture overlaid between background and shapes.
enum class TextureKind {
  kNone = 0,
  kChecker = 1,
  kStripes = 2,
  kSpeckle = 3,
};

/// Procedural drawing recipe of one *sub-concept* (e.g. "sedan, side view").
///
/// Every image of the sub-concept is rendered from this recipe with small
/// per-image jitter, so the sub-concept forms a tight cluster in feature
/// space, while different sub-concepts of the same semantic category use
/// visually distinct recipes and land in *separate* clusters — the semantic
/// scattering the paper's Figure 1 illustrates and Query Decomposition
/// exploits.
struct SubConceptRecipe {
  // Background.
  BackgroundKind background = BackgroundKind::kSolid;
  Rgb bg_color1 = Rgb{128, 128, 128};
  Rgb bg_color2 = Rgb{128, 128, 128};
  double bg_noise_scale = 8.0;   ///< value-noise cell size (kNoisy only)
  double bg_noise_amp = 0.25;    ///< value-noise amplitude (kNoisy only)

  // Texture overlay.
  TextureKind texture = TextureKind::kNone;
  Rgb texture_color = Rgb{0, 0, 0};
  double texture_param = 6.0;  ///< checker cell / stripe period / dot radius
  double texture_alpha = 0.35;
  double texture_angle = 0.0;  ///< stripe angle in radians
  int texture_count = 40;      ///< speckle dot count

  // Shape(s).
  ShapeKind shape = ShapeKind::kEllipse;
  Rgb shape_color = Rgb{200, 60, 60};
  double shape_size_frac = 0.30;  ///< circumradius / min(image dimension)
  double shape_aspect = 1.0;      ///< x-radius / y-radius for ellipse/rect
  double shape_rotation = 0.0;    ///< base rotation in radians
  int polygon_sides = 5;
  int shape_count = 1;            ///< e.g. 1 airplane vs several
  int line_count = 5;             ///< for kLineBurst
  int line_thickness = 2;

  // Per-image jitter. Kept small so each sub-concept forms a tight cluster
  // (the premise of Figure 1) while still exercising every feature group.
  double jitter_position_frac = 0.05;  ///< center offset, fraction of size
  double jitter_size_frac = 0.06;     ///< relative size perturbation
  double jitter_rotation = 0.07;      ///< radians
  double jitter_hue = 4.0;            ///< degrees of hue wobble
  double pixel_noise_stddev = 4.0;    ///< Gaussian pixel noise (8-bit units)
};

/// Renders one image of the sub-concept. `rng` supplies the per-image
/// jitter; rendering is deterministic given the rng state.
Image RenderRecipe(const SubConceptRecipe& recipe, int width, int height,
                   Rng& rng);

/// Perturbs a color's hue by `degrees` (used to apply `jitter_hue`).
Rgb JitterHue(Rgb color, double degrees, Rng& rng);

}  // namespace qdcbir

#endif  // QDCBIR_DATASET_RECIPE_H_
