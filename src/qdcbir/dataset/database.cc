#include "qdcbir/dataset/database.h"

#include "qdcbir/core/rng.h"
#include "qdcbir/dataset/recipe.h"

namespace qdcbir {

void ImageDatabase::RebuildFeatureBlocks() {
  feature_blocks_ = FeatureBlockTable(features_);
  for (int c = 0; c < kNumViewpointChannels; ++c) {
    channel_blocks_[c] = FeatureBlockTable(channel_features_[c]);
  }
}

std::vector<ImageId> ImageDatabase::ImagesOfSubConcept(SubConceptId sub) const {
  if (sub >= subconcept_images_.size()) return {};
  return subconcept_images_[sub];
}

std::vector<ImageId> ImageDatabase::ImagesOfSubConcepts(
    const std::vector<SubConceptId>& subs) const {
  std::vector<ImageId> out;
  for (SubConceptId sub : subs) {
    const std::vector<ImageId> ids = ImagesOfSubConcept(sub);
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

Image ImageDatabase::Render(ImageId id) const {
  const ImageRecord& rec = records_[id];
  Rng rng(rec.render_seed);
  return RenderRecipe(catalog_.subconcept(rec.subconcept).recipe, image_width_,
                      image_height_, rng);
}

std::string ImageDatabase::LabelOf(ImageId id) const {
  const ImageRecord& rec = records_[id];
  return catalog_.category(rec.category).name + "/" +
         catalog_.subconcept(rec.subconcept).name;
}

}  // namespace qdcbir
