#include "qdcbir/dataset/catalog.h"

#include <cassert>
#include <cmath>

#include "qdcbir/image/color.h"

namespace qdcbir {

std::vector<SubConceptId> QueryConceptSpec::AllMembers() const {
  std::vector<SubConceptId> out;
  for (const QuerySubConcept& qs : subconcepts) {
    out.insert(out.end(), qs.members.begin(), qs.members.end());
  }
  return out;
}

CategoryId Catalog::AddCategory(const std::string& name) {
  CategorySpec cat;
  cat.id = static_cast<CategoryId>(categories_.size());
  cat.name = name;
  categories_.push_back(std::move(cat));
  return categories_.back().id;
}

SubConceptId Catalog::AddSubConcept(CategoryId category,
                                    const std::string& name,
                                    const SubConceptRecipe& recipe,
                                    double weight) {
  SubConceptSpec sub;
  sub.id = static_cast<SubConceptId>(subconcepts_.size());
  sub.category = category;
  sub.name = name;
  sub.recipe = recipe;
  sub.weight = weight;
  subconcepts_.push_back(std::move(sub));
  categories_[category].subconcepts.push_back(subconcepts_.back().id);
  return subconcepts_.back().id;
}

namespace {

/// Terse recipe construction helpers for the hand-crafted categories.

SubConceptRecipe Base() { return SubConceptRecipe{}; }

SubConceptRecipe& Bg(SubConceptRecipe& r, BackgroundKind kind, Rgb c1,
                     Rgb c2 = Rgb{0, 0, 0}) {
  r.background = kind;
  r.bg_color1 = c1;
  r.bg_color2 = kind == BackgroundKind::kSolid ? c1 : c2;
  return r;
}

SubConceptRecipe& Shape(SubConceptRecipe& r, ShapeKind kind, Rgb color,
                        double size_frac, double aspect = 1.0,
                        double rotation = 0.0) {
  r.shape = kind;
  r.shape_color = color;
  r.shape_size_frac = size_frac;
  r.shape_aspect = aspect;
  r.shape_rotation = rotation;
  return r;
}

SubConceptRecipe& Tex(SubConceptRecipe& r, TextureKind kind, Rgb color,
                      double param, double alpha = 0.35, double angle = 0.0) {
  r.texture = kind;
  r.texture_color = color;
  r.texture_param = param;
  r.texture_alpha = alpha;
  r.texture_angle = angle;
  return r;
}

}  // namespace

void Catalog::AddEvaluationCategories() {
  // --- person: hair model / fitness / kongfu --------------------------
  {
    const CategoryId cat = AddCategory("person");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kVerticalGradient, Rgb{245, 205, 200},
       Rgb{255, 250, 245});
    Shape(r, ShapeKind::kEllipse, Rgb{224, 172, 140}, 0.32, 0.6);
    AddSubConcept(cat, "hair_model", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{150, 190, 230});
    Shape(r, ShapeKind::kRectangle, Rgb{200, 40, 40}, 0.28, 0.5);
    Tex(r, TextureKind::kStripes, Rgb{230, 230, 230}, 7.0, 0.3, 1.2);
    AddSubConcept(cat, "fitness", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{45, 45, 50});
    Shape(r, ShapeKind::kTriangle, Rgb{240, 240, 240}, 0.33);
    AddSubConcept(cat, "kongfu", r);
  }

  // --- airplane: single / multiple -------------------------------------
  // The two sub-concepts share a clear-sky background, so — as the paper
  // observes — they are comparatively close in feature space and even the
  // MV baseline can capture both.
  {
    const CategoryId cat = AddCategory("airplane");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kVerticalGradient, Rgb{135, 190, 240},
       Rgb{235, 245, 255});
    Shape(r, ShapeKind::kTriangle, Rgb{190, 195, 205}, 0.30, 1.0, 0.4);
    AddSubConcept(cat, "airplane_single", r);

    r = Base();
    Bg(r, BackgroundKind::kVerticalGradient, Rgb{140, 195, 240},
       Rgb{240, 248, 255});
    Shape(r, ShapeKind::kTriangle, Rgb{185, 190, 200}, 0.22, 1.0, 0.4);
    r.shape_count = 4;
    AddSubConcept(cat, "airplane_multiple", r);
  }

  // --- bird: eagle / owl / sparrow --------------------------------------
  {
    const CategoryId cat = AddCategory("bird");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kVerticalGradient, Rgb{120, 180, 235},
       Rgb{220, 235, 250});
    Shape(r, ShapeKind::kTriangle, Rgb{90, 60, 30}, 0.36, 1.0, 1.6);
    AddSubConcept(cat, "eagle", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{40, 30, 25});
    Shape(r, ShapeKind::kEllipse, Rgb{190, 150, 100}, 0.30, 0.75);
    Tex(r, TextureKind::kSpeckle, Rgb{90, 70, 50}, 1.5);
    r.texture_count = 60;
    AddSubConcept(cat, "owl", r);

    r = Base();
    Bg(r, BackgroundKind::kHorizontalGradient, Rgb{235, 230, 215},
       Rgb{250, 248, 240});
    Shape(r, ShapeKind::kEllipse, Rgb{150, 120, 90}, 0.16, 1.2);
    AddSubConcept(cat, "sparrow", r);
  }

  // --- car: modern sedan / antique car / steamed car --------------------
  {
    const CategoryId cat = AddCategory("car");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kHorizontalGradient, Rgb{170, 170, 175},
       Rgb{210, 210, 215});
    Shape(r, ShapeKind::kRectangle, Rgb{40, 80, 180}, 0.26, 1.8);
    AddSubConcept(cat, "modern_sedan", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{205, 180, 140});
    Shape(r, ShapeKind::kRectangle, Rgb{120, 40, 30}, 0.26, 1.4);
    Tex(r, TextureKind::kChecker, Rgb{160, 140, 110}, 5.0, 0.25);
    AddSubConcept(cat, "antique_car", r);

    r = Base();
    Bg(r, BackgroundKind::kNoisy, Rgb{150, 150, 150});
    r.bg_noise_amp = 0.35;
    Shape(r, ShapeKind::kPolygon, Rgb{30, 30, 30}, 0.27);
    r.polygon_sides = 6;
    Tex(r, TextureKind::kSpeckle, Rgb{220, 220, 220}, 2.0);
    r.texture_count = 30;
    AddSubConcept(cat, "steamed_car", r);
  }

  // --- horse: polo / wild / race -----------------------------------------
  {
    const CategoryId cat = AddCategory("horse");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{70, 150, 60});
    Shape(r, ShapeKind::kEllipse, Rgb{130, 85, 45}, 0.28, 1.5);
    AddSubConcept(cat, "polo_horse", r);

    r = Base();
    Bg(r, BackgroundKind::kNoisy, Rgb{200, 175, 120});
    r.bg_noise_amp = 0.3;
    Shape(r, ShapeKind::kEllipse, Rgb{80, 55, 35}, 0.26, 1.4);
    Tex(r, TextureKind::kSpeckle, Rgb{150, 130, 90}, 1.8);
    AddSubConcept(cat, "wild_horse", r);

    r = Base();
    Bg(r, BackgroundKind::kHorizontalGradient, Rgb{90, 170, 80},
       Rgb{230, 235, 230});
    Shape(r, ShapeKind::kRectangle, Rgb{140, 90, 50}, 0.24, 1.6);
    Tex(r, TextureKind::kStripes, Rgb{250, 250, 250}, 9.0, 0.3, 0.0);
    AddSubConcept(cat, "race_horse", r);
  }

  // --- mountain view: snow / with water ----------------------------------
  // Faraway, busy scenes: both sub-concepts use high-noise backgrounds so
  // that (as in the paper) many unrelated images interfere and the QD edge
  // over MV stays small.
  {
    const CategoryId cat = AddCategory("mountain");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kVerticalGradient, Rgb{140, 175, 225},
       Rgb{240, 245, 250});
    Shape(r, ShapeKind::kTriangle, Rgb{235, 240, 245}, 0.40);
    r.pixel_noise_stddev = 18.0;
    AddSubConcept(cat, "snow_mountain", r);

    r = Base();
    Bg(r, BackgroundKind::kVerticalGradient, Rgb{150, 180, 220},
       Rgb{40, 80, 140});
    Shape(r, ShapeKind::kTriangle, Rgb{110, 115, 125}, 0.36);
    Tex(r, TextureKind::kStripes, Rgb{70, 110, 170}, 6.0, 0.3, 0.0);
    r.pixel_noise_stddev = 18.0;
    AddSubConcept(cat, "mountain_water", r);
  }

  // --- rose: yellow / red -------------------------------------------------
  {
    const CategoryId cat = AddCategory("rose");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{30, 80, 35});
    Shape(r, ShapeKind::kPolygon, Rgb{235, 200, 40}, 0.30);
    r.polygon_sides = 8;
    AddSubConcept(cat, "yellow_rose", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{25, 70, 30});
    Shape(r, ShapeKind::kPolygon, Rgb{190, 25, 45}, 0.30);
    r.polygon_sides = 8;
    AddSubConcept(cat, "red_rose", r);
  }

  // --- water sports: surfing / sailing ------------------------------------
  {
    const CategoryId cat = AddCategory("water_sports");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kVerticalGradient, Rgb{120, 200, 220},
       Rgb{20, 90, 160});
    Shape(r, ShapeKind::kTriangle, Rgb{250, 250, 250}, 0.15, 1.0, 0.8);
    Tex(r, TextureKind::kStripes, Rgb{240, 250, 255}, 5.0, 0.4, 0.1);
    AddSubConcept(cat, "surfing", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{30, 90, 170});
    Shape(r, ShapeKind::kTriangle, Rgb{250, 250, 245}, 0.34, 1.0, 0.0);
    AddSubConcept(cat, "sailing", r);
  }

  // --- computer: server / desktop / laptop (clear & complicated bg) ------
  {
    const CategoryId cat = AddCategory("computer");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{70, 70, 75});
    Shape(r, ShapeKind::kRectangle, Rgb{25, 25, 30}, 0.34, 0.5);
    Tex(r, TextureKind::kSpeckle, Rgb{60, 220, 90}, 1.2);
    r.texture_count = 25;
    AddSubConcept(cat, "server", r);

    r = Base();
    Bg(r, BackgroundKind::kHorizontalGradient, Rgb{225, 215, 195},
       Rgb{245, 240, 230});
    Shape(r, ShapeKind::kRectangle, Rgb{150, 150, 155}, 0.28, 1.2);
    Tex(r, TextureKind::kChecker, Rgb{100, 100, 105}, 4.0, 0.3);
    AddSubConcept(cat, "desktop", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{248, 248, 248});
    Shape(r, ShapeKind::kRectangle, Rgb{55, 55, 60}, 0.28, 1.5);
    AddSubConcept(cat, "laptop_clear", r);

    r = Base();
    Bg(r, BackgroundKind::kNoisy, Rgb{170, 120, 150});
    r.bg_noise_amp = 0.45;
    r.bg_noise_scale = 5.0;
    Shape(r, ShapeKind::kRectangle, Rgb{50, 50, 55}, 0.28, 1.5);
    Tex(r, TextureKind::kSpeckle, Rgb{230, 200, 90}, 2.0);
    r.texture_count = 40;
    AddSubConcept(cat, "laptop_complex", r);
  }

  // --- white sedan: four views (Figure 1) ---------------------------------
  {
    const CategoryId cat = AddCategory("white_sedan");
    SubConceptRecipe r = Base();
    Bg(r, BackgroundKind::kHorizontalGradient, Rgb{160, 160, 165},
       Rgb{205, 205, 210});
    Shape(r, ShapeKind::kRectangle, Rgb{245, 245, 248}, 0.26, 2.2);
    AddSubConcept(cat, "white_sedan_side", r);

    r = Base();
    Bg(r, BackgroundKind::kHorizontalGradient, Rgb{150, 150, 160},
       Rgb{200, 200, 205});
    Shape(r, ShapeKind::kRectangle, Rgb{240, 240, 245}, 0.28, 1.0);
    AddSubConcept(cat, "white_sedan_front", r);

    r = Base();
    Bg(r, BackgroundKind::kSolid, Rgb{120, 120, 130});
    Shape(r, ShapeKind::kRectangle, Rgb{235, 235, 240}, 0.28, 1.1);
    Tex(r, TextureKind::kChecker, Rgb{90, 90, 95}, 4.0, 0.2);
    AddSubConcept(cat, "white_sedan_back", r);

    r = Base();
    Bg(r, BackgroundKind::kHorizontalGradient, Rgb{170, 175, 180},
       Rgb{120, 125, 130});
    Shape(r, ShapeKind::kPolygon, Rgb{240, 242, 246}, 0.28, 1.0, 0.5);
    r.polygon_sides = 5;
    AddSubConcept(cat, "white_sedan_angle", r);
  }
}

void Catalog::AddFillerCategories(std::size_t total_categories,
                                  std::uint64_t seed) {
  Rng rng(seed);
  const ShapeKind shapes[] = {ShapeKind::kEllipse, ShapeKind::kRectangle,
                              ShapeKind::kTriangle, ShapeKind::kPolygon,
                              ShapeKind::kLineBurst};
  const BackgroundKind backgrounds[] = {
      BackgroundKind::kSolid, BackgroundKind::kVerticalGradient,
      BackgroundKind::kHorizontalGradient, BackgroundKind::kNoisy};
  const TextureKind textures[] = {TextureKind::kNone, TextureKind::kChecker,
                                  TextureKind::kStripes,
                                  TextureKind::kSpeckle};

  auto random_color = [&](double v_lo, double v_hi) {
    return HsvToRgb(Hsv{rng.UniformDouble(0.0, 360.0),
                        rng.UniformDouble(0.2, 1.0),
                        rng.UniformDouble(v_lo, v_hi)});
  };

  std::size_t filler_index = 0;
  while (categories_.size() < total_categories) {
    const CategoryId cat =
        AddCategory("corel_" + std::to_string(filler_index++));
    const int num_subs = static_cast<int>(rng.UniformInt(1, 3));
    for (int s = 0; s < num_subs; ++s) {
      SubConceptRecipe r;
      r.background = backgrounds[rng.UniformInt(4)];
      r.bg_color1 = random_color(0.2, 1.0);
      r.bg_color2 = random_color(0.2, 1.0);
      r.bg_noise_scale = rng.UniformDouble(4.0, 12.0);
      r.bg_noise_amp = rng.UniformDouble(0.1, 0.4);
      r.shape = shapes[rng.UniformInt(5)];
      r.shape_color = random_color(0.1, 1.0);
      r.shape_size_frac = rng.UniformDouble(0.15, 0.40);
      r.shape_aspect = rng.UniformDouble(0.5, 2.0);
      r.shape_rotation = rng.UniformDouble(0.0, M_PI);
      r.polygon_sides = static_cast<int>(rng.UniformInt(3, 8));
      r.shape_count = rng.Bernoulli(0.15) ? 3 : 1;
      r.texture = textures[rng.UniformInt(4)];
      r.texture_color = random_color(0.1, 1.0);
      r.texture_param = rng.UniformDouble(3.0, 10.0);
      r.texture_alpha = rng.UniformDouble(0.2, 0.5);
      r.texture_angle = rng.UniformDouble(0.0, M_PI);
      r.pixel_noise_stddev = rng.UniformDouble(2.0, 6.0);
      AddSubConcept(cat,
                    categories_[cat].name + "_" +
                        std::string(1, static_cast<char>('a' + s)),
                    r);
    }
  }
}

void Catalog::AddEvaluationQueries() {
  auto sub = [this](const char* name) {
    StatusOr<SubConceptId> id = FindSubConcept(name);
    assert(id.ok());
    return *id;
  };

  auto add = [this](const std::string& name,
                    std::vector<QuerySubConcept> subs) {
    QueryConceptSpec q;
    q.name = name;
    q.subconcepts = std::move(subs);
    queries_.push_back(std::move(q));
  };

  add("a_person", {{"hair_model", {sub("hair_model")}},
                   {"fitness", {sub("fitness")}},
                   {"kongfu", {sub("kongfu")}}});
  add("airplane", {{"single", {sub("airplane_single")}},
                   {"multiple", {sub("airplane_multiple")}}});
  add("bird", {{"eagle", {sub("eagle")}},
               {"owl", {sub("owl")}},
               {"sparrow", {sub("sparrow")}}});
  add("car", {{"modern_sedan", {sub("modern_sedan")}},
              {"antique_car", {sub("antique_car")}},
              {"steamed_car", {sub("steamed_car")}}});
  add("horse", {{"polo", {sub("polo_horse")}},
                {"wild_horse", {sub("wild_horse")}},
                {"race", {sub("race_horse")}}});
  add("mountain_view", {{"snow", {sub("snow_mountain")}},
                        {"with_water", {sub("mountain_water")}}});
  add("rose", {{"yellow", {sub("yellow_rose")}},
               {"red", {sub("red_rose")}}});
  add("water_sports", {{"surfing", {sub("surfing")}},
                       {"sailing", {sub("sailing")}}});
  add("computer",
      {{"server", {sub("server")}},
       {"desktop", {sub("desktop")}},
       {"laptop", {sub("laptop_clear"), sub("laptop_complex")}}});
  add("personal_computer",
      {{"desktop", {sub("desktop")}},
       {"laptop", {sub("laptop_clear"), sub("laptop_complex")}}});
  add("laptop", {{"clear_background", {sub("laptop_clear")}},
                 {"complicated_background", {sub("laptop_complex")}}});
}

StatusOr<Catalog> Catalog::Build(const CatalogOptions& options) {
  Catalog catalog;
  catalog.AddEvaluationCategories();
  if (options.num_categories < catalog.categories_.size()) {
    return Status::InvalidArgument(
        "num_categories smaller than the hand-crafted evaluation set");
  }
  catalog.AddFillerCategories(options.num_categories, options.seed);
  catalog.AddEvaluationQueries();
  return catalog;
}

StatusOr<CategoryId> Catalog::FindCategory(const std::string& name) const {
  for (const CategorySpec& c : categories_) {
    if (c.name == name) return c.id;
  }
  return Status::NotFound("no category named " + name);
}

StatusOr<SubConceptId> Catalog::FindSubConcept(const std::string& name) const {
  for (const SubConceptSpec& s : subconcepts_) {
    if (s.name == name) return s.id;
  }
  return Status::NotFound("no sub-concept named " + name);
}

StatusOr<QueryConceptSpec> Catalog::FindQuery(const std::string& name) const {
  for (const QueryConceptSpec& q : queries_) {
    if (q.name == name) return q;
  }
  return Status::NotFound("no query named " + name);
}

}  // namespace qdcbir
