#ifndef QDCBIR_DATASET_CATALOG_H_
#define QDCBIR_DATASET_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/dataset/recipe.h"

namespace qdcbir {

/// One sub-concept: the unit of ground truth (e.g. "eagle" inside "bird").
struct SubConceptSpec {
  SubConceptId id = kInvalidSubConceptId;
  CategoryId category = kInvalidCategoryId;
  std::string name;
  SubConceptRecipe recipe;
  double weight = 1.0;  ///< relative share of database images
};

/// One semantic category (the Corel-style class label).
struct CategorySpec {
  CategoryId id = kInvalidCategoryId;
  std::string name;
  std::vector<SubConceptId> subconcepts;
};

/// A ground-truth sub-concept of a test query: a named group of one or more
/// dataset sub-concepts. (E.g. the query "computer" counts "laptop" as one
/// ground-truth sub-concept even though the dataset splits laptops into
/// clear-background and complicated-background sub-concepts.)
struct QuerySubConcept {
  std::string name;
  std::vector<SubConceptId> members;
};

/// One of the paper's Table 1 evaluation queries.
struct QueryConceptSpec {
  std::string name;
  std::vector<QuerySubConcept> subconcepts;

  /// All dataset sub-concept ids relevant to this query.
  std::vector<SubConceptId> AllMembers() const;
};

/// Options controlling catalog construction.
struct CatalogOptions {
  /// Total number of categories including the hand-crafted evaluation
  /// categories; the paper's database has "about 150 categories".
  std::size_t num_categories = 150;
  /// Seed for the procedurally generated filler categories.
  std::uint64_t seed = 2006;
};

/// The dataset catalog: categories, sub-concepts (with drawing recipes), and
/// the 11 evaluation queries of the paper's Table 1.
///
/// Hand-crafted evaluation categories reproduce the paper's query set
/// (person, airplane, bird, car, horse, mountain view, rose, water sports,
/// computer) plus the "white sedan" category with four view sub-concepts for
/// Figure 1. The remaining categories are procedurally generated "Corel
/// filler" with 1-3 sub-concepts each.
class Catalog {
 public:
  /// Constructs an empty catalog; use `Build` to obtain a populated one.
  Catalog() = default;

  /// Builds the full catalog.
  static StatusOr<Catalog> Build(const CatalogOptions& options = CatalogOptions());

  const std::vector<CategorySpec>& categories() const { return categories_; }
  const std::vector<SubConceptSpec>& subconcepts() const {
    return subconcepts_;
  }
  const std::vector<QueryConceptSpec>& queries() const { return queries_; }

  const CategorySpec& category(CategoryId id) const {
    return categories_[id];
  }
  const SubConceptSpec& subconcept(SubConceptId id) const {
    return subconcepts_[id];
  }

  /// Finds a category / sub-concept / query by name.
  StatusOr<CategoryId> FindCategory(const std::string& name) const;
  StatusOr<SubConceptId> FindSubConcept(const std::string& name) const;
  StatusOr<QueryConceptSpec> FindQuery(const std::string& name) const;

 private:
  friend class DatabaseIo;

  CategoryId AddCategory(const std::string& name);
  SubConceptId AddSubConcept(CategoryId category, const std::string& name,
                             const SubConceptRecipe& recipe,
                             double weight = 1.0);
  void AddEvaluationCategories();
  void AddFillerCategories(std::size_t total_categories, std::uint64_t seed);
  void AddEvaluationQueries();

  std::vector<CategorySpec> categories_;
  std::vector<SubConceptSpec> subconcepts_;
  std::vector<QueryConceptSpec> queries_;
};

}  // namespace qdcbir

#endif  // QDCBIR_DATASET_CATALOG_H_
