#ifndef QDCBIR_DATASET_SYNTHESIZER_H_
#define QDCBIR_DATASET_SYNTHESIZER_H_

#include <cstdint>

#include "qdcbir/core/status.h"
#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/database.h"

namespace qdcbir {

/// Options for database synthesis.
struct SynthesizerOptions {
  /// Total images; the paper's database holds 15,000.
  std::size_t total_images = 15000;
  int image_width = 48;
  int image_height = 48;
  std::uint64_t seed = 7;
  /// Also extract features for the negative / gray / gray-negative channels
  /// (required by the Multiple Viewpoints baseline; ~4x extraction cost).
  bool extract_viewpoint_channels = true;
};

/// Renders the synthetic Corel-like database described by `catalog` and
/// extracts (and normalizes) its feature vectors.
///
/// Images are allocated to sub-concepts proportionally to their weights;
/// every sub-concept receives at least one image when `total_images` allows.
/// Rendering is deterministic in `options.seed`.
class DatabaseSynthesizer {
 public:
  static StatusOr<ImageDatabase> Synthesize(const Catalog& catalog,
                                            const SynthesizerOptions& options);

  /// Builds a database with only the images of `subset_total` drawn evenly
  /// from an existing database's sub-concepts (used by the scalability
  /// sweeps of Figures 10-11, which vary the database size). Re-extracts
  /// nothing: features are copied.
  static StatusOr<ImageDatabase> Subsample(const ImageDatabase& db,
                                           std::size_t subset_total);
};

}  // namespace qdcbir

#endif  // QDCBIR_DATASET_SYNTHESIZER_H_
