#include "qdcbir/dataset/recipe.h"

#include <algorithm>
#include <cmath>

#include "qdcbir/image/color.h"
#include "qdcbir/image/draw.h"
#include "qdcbir/image/texture.h"

namespace qdcbir {

Rgb JitterHue(Rgb color, double degrees, Rng& rng) {
  if (degrees <= 0.0) return color;
  Hsv hsv = RgbToHsv(color);
  hsv.h += rng.UniformDouble(-degrees, degrees);
  hsv.s = std::clamp(hsv.s + rng.UniformDouble(-0.03, 0.03), 0.0, 1.0);
  hsv.v = std::clamp(hsv.v + rng.UniformDouble(-0.03, 0.03), 0.0, 1.0);
  return HsvToRgb(hsv);
}

namespace {

void PaintBackground(const SubConceptRecipe& r, Image& img, Rng& rng) {
  const Rgb c1 = JitterHue(r.bg_color1, r.jitter_hue, rng);
  const Rgb c2 = JitterHue(r.bg_color2, r.jitter_hue, rng);
  switch (r.background) {
    case BackgroundKind::kSolid:
      img.Fill(c1);
      break;
    case BackgroundKind::kVerticalGradient:
      VerticalGradient(img, c1, c2);
      break;
    case BackgroundKind::kHorizontalGradient:
      HorizontalGradient(img, c1, c2);
      break;
    case BackgroundKind::kNoisy:
      img.Fill(c1);
      ValueNoise(img, r.bg_noise_scale, r.bg_noise_amp, rng);
      break;
  }
}

void PaintTexture(const SubConceptRecipe& r, Image& img, Rng& rng) {
  switch (r.texture) {
    case TextureKind::kNone:
      break;
    case TextureKind::kChecker:
      Checkerboard(img, std::max(1, static_cast<int>(r.texture_param)),
                   r.texture_color, r.texture_alpha);
      break;
    case TextureKind::kStripes:
      Stripes(img, r.texture_param,
              r.texture_angle + rng.UniformDouble(-0.05, 0.05),
              r.texture_color, r.texture_alpha);
      break;
    case TextureKind::kSpeckle:
      SpeckleDots(img, r.texture_count, r.texture_param, r.texture_color, rng);
      break;
  }
}

void PaintShape(const SubConceptRecipe& r, Image& img, Rng& rng) {
  const double base = std::min(img.width(), img.height());
  const Rgb color = JitterHue(r.shape_color, r.jitter_hue, rng);

  for (int s = 0; s < std::max(1, r.shape_count); ++s) {
    double cx = img.width() / 2.0;
    double cy = img.height() / 2.0;
    if (r.shape_count > 1) {
      // Spread multiple shapes across the canvas.
      cx = img.width() * rng.UniformDouble(0.25, 0.75);
      cy = img.height() * rng.UniformDouble(0.25, 0.75);
    }
    cx += base * r.jitter_position_frac * rng.UniformDouble(-1.0, 1.0);
    cy += base * r.jitter_position_frac * rng.UniformDouble(-1.0, 1.0);

    double size = base * r.shape_size_frac *
                  (1.0 + r.jitter_size_frac * rng.UniformDouble(-1.0, 1.0));
    if (r.shape_count > 1) size *= 0.6;  // shrink when several objects
    const double rotation =
        r.shape_rotation + r.jitter_rotation * rng.UniformDouble(-1.0, 1.0);
    const Point2 center{cx, cy};

    switch (r.shape) {
      case ShapeKind::kEllipse:
        FillEllipse(img, cx, cy, size * r.shape_aspect, size, color);
        break;
      case ShapeKind::kRectangle: {
        const double hx = size * r.shape_aspect;
        const double hy = size;
        std::vector<Point2> corners = {{cx - hx, cy - hy},
                                       {cx + hx, cy - hy},
                                       {cx + hx, cy + hy},
                                       {cx - hx, cy + hy}};
        FillPolygon(img, RotatePoints(corners, center, rotation), color);
        break;
      }
      case ShapeKind::kTriangle: {
        std::vector<Point2> tri =
            RegularPolygon(center, size, 3, rotation - M_PI / 2.0);
        FillPolygon(img, tri, color);
        break;
      }
      case ShapeKind::kPolygon: {
        std::vector<Point2> poly = RegularPolygon(
            center, size, std::max(3, r.polygon_sides), rotation);
        FillPolygon(img, poly, color);
        break;
      }
      case ShapeKind::kLineBurst: {
        for (int i = 0; i < std::max(1, r.line_count); ++i) {
          const double a =
              rotation + M_PI * i / std::max(1, r.line_count);
          const Point2 p1{cx - size * std::cos(a), cy - size * std::sin(a)};
          const Point2 p2{cx + size * std::cos(a), cy + size * std::sin(a)};
          DrawLine(img, p1, p2, color, r.line_thickness);
        }
        break;
      }
    }
  }
}

}  // namespace

Image RenderRecipe(const SubConceptRecipe& recipe, int width, int height,
                   Rng& rng) {
  Image img(width, height);
  PaintBackground(recipe, img, rng);
  PaintTexture(recipe, img, rng);
  PaintShape(recipe, img, rng);
  AddGaussianNoise(img, recipe.pixel_noise_stddev, rng);
  return img;
}

}  // namespace qdcbir
