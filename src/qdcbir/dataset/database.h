#ifndef QDCBIR_DATASET_DATABASE_H_
#define QDCBIR_DATASET_DATABASE_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/dataset/catalog.h"
#include "qdcbir/features/extractor.h"
#include "qdcbir/features/normalizer.h"
#include "qdcbir/image/image.h"

namespace qdcbir {

/// Per-image ground-truth metadata.
struct ImageRecord {
  ImageId id = kInvalidImageId;
  SubConceptId subconcept = kInvalidSubConceptId;
  CategoryId category = kInvalidCategoryId;
  std::uint64_t render_seed = 0;  ///< reproduces the pixels on demand
};

/// The in-memory image database: ground-truth records plus normalized
/// feature vectors for the main channel and (optionally) the three extra
/// viewpoint channels used by the Multiple Viewpoints baseline.
///
/// Pixels are not retained: every image can be re-rendered deterministically
/// from its record (`Render`), which keeps a 24k-image database small.
class ImageDatabase {
 public:
  ImageDatabase() = default;

  std::size_t size() const { return records_.size(); }
  std::size_t feature_dim() const {
    return features_.empty() ? 0 : features_.front().dim();
  }
  bool has_channel_features() const { return !channel_features_[1].empty(); }

  const Catalog& catalog() const { return catalog_; }
  int image_width() const { return image_width_; }
  int image_height() const { return image_height_; }

  const ImageRecord& record(ImageId id) const { return records_[id]; }
  const std::vector<ImageRecord>& records() const { return records_; }

  /// Normalized feature vector of an image (main channel).
  const FeatureVector& feature(ImageId id) const { return features_[id]; }
  const std::vector<FeatureVector>& features() const { return features_; }

  /// Normalized feature vector as seen through a viewpoint channel.
  const FeatureVector& channel_feature(ViewpointChannel channel,
                                       ImageId id) const {
    return channel_features_[static_cast<int>(channel)][id];
  }
  const std::vector<FeatureVector>& channel_features(
      ViewpointChannel channel) const {
    return channel_features_[static_cast<int>(channel)];
  }

  /// Blocked SoA copy of the main-channel feature table, built once when
  /// the database is synthesized, subsampled, or loaded from a snapshot.
  /// The batched distance kernels scan this instead of `features()`.
  const FeatureBlockTable& feature_blocks() const { return feature_blocks_; }

  /// Blocked copy of a viewpoint channel's table (empty when the channel
  /// was not extracted).
  const FeatureBlockTable& channel_blocks(ViewpointChannel channel) const {
    return channel_blocks_[static_cast<int>(channel)];
  }

  /// Normalizer fitted on the raw main-channel features.
  const FeatureNormalizer& normalizer() const { return normalizer_; }
  const FeatureNormalizer& channel_normalizer(ViewpointChannel channel) const {
    return channel_normalizers_[static_cast<int>(channel)];
  }

  /// All image ids belonging to a sub-concept / a set of sub-concepts.
  std::vector<ImageId> ImagesOfSubConcept(SubConceptId sub) const;
  std::vector<ImageId> ImagesOfSubConcepts(
      const std::vector<SubConceptId>& subs) const;

  /// Re-renders the pixels of an image (deterministic).
  Image Render(ImageId id) const;

  /// A short human-readable label ("bird/eagle") for result listings.
  std::string LabelOf(ImageId id) const;

 private:
  friend class DatabaseSynthesizer;
  friend class DatabaseIo;

  /// Rebuilds the blocked copies from the row-major tables. Every
  /// construction path (synthesize / subsample / snapshot load) calls this
  /// after the feature tables are final.
  void RebuildFeatureBlocks();

  Catalog catalog_;
  std::vector<ImageRecord> records_;
  std::vector<FeatureVector> features_;
  std::array<std::vector<FeatureVector>, kNumViewpointChannels>
      channel_features_;
  FeatureBlockTable feature_blocks_;
  std::array<FeatureBlockTable, kNumViewpointChannels> channel_blocks_;
  FeatureNormalizer normalizer_;
  std::array<FeatureNormalizer, kNumViewpointChannels> channel_normalizers_;
  std::vector<std::vector<ImageId>> subconcept_images_;
  int image_width_ = 48;
  int image_height_ = 48;
};

}  // namespace qdcbir

#endif  // QDCBIR_DATASET_DATABASE_H_
