#ifndef QDCBIR_DATASET_DATABASE_IO_H_
#define QDCBIR_DATASET_DATABASE_IO_H_

#include <string>

#include "qdcbir/core/status.h"
#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/database.h"

namespace qdcbir {

/// Binary (de)serialization of catalogs and image databases.
///
/// Synthesizing and feature-extracting a paper-scale database (15,000 images
/// x 4 viewpoint channels) takes on the order of a minute; the benchmark
/// binaries serialize the result once and reload it afterwards. The format
/// is host-endian and versioned by magic strings (a cache format, not an
/// interchange format).
class DatabaseIo {
 public:
  /// Serializes a catalog (categories, sub-concept recipes, queries).
  static std::string SerializeCatalog(const Catalog& catalog);
  static StatusOr<Catalog> DeserializeCatalog(const std::string& bytes);

  /// Serializes a database (catalog, records, normalizers, all feature
  /// tables). Pixels are not stored; `Render` reproduces them on demand.
  static std::string SerializeDatabase(const ImageDatabase& db);
  static StatusOr<ImageDatabase> DeserializeDatabase(const std::string& bytes);

  /// File convenience wrappers.
  static Status SaveDatabase(const ImageDatabase& db, const std::string& path);
  static StatusOr<ImageDatabase> LoadDatabase(const std::string& path);
};

}  // namespace qdcbir

#endif  // QDCBIR_DATASET_DATABASE_IO_H_
