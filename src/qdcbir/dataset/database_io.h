#ifndef QDCBIR_DATASET_DATABASE_IO_H_
#define QDCBIR_DATASET_DATABASE_IO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "qdcbir/core/byte_source.h"
#include "qdcbir/core/status.h"
#include "qdcbir/dataset/catalog.h"
#include "qdcbir/dataset/database.h"

namespace qdcbir {

class ThreadPool;

/// How a snapshot is loaded. The defaults reproduce the sequential path;
/// handing the loader a pool overlaps chunk file reads with per-chunk
/// decoding (feature tables decode in parallel with the catalog and
/// records), which is the startup hot path for paper-scale databases.
/// The resulting database is byte-identical regardless of pool width.
struct SnapshotLoadOptions {
  /// Pool for overlapped chunk read+decode; `nullptr` (or a 1-lane pool)
  /// loads strictly sequentially.
  ThreadPool* pool = nullptr;
  /// Verify every chunk's CRC32C before decoding it. Disabling skips the
  /// integrity pass (trusted in-process round trips only).
  bool verify_checksums = true;
};

/// One entry of a v2 snapshot's chunk directory, as reported by
/// `DatabaseIo::InspectSnapshot`.
struct SnapshotChunkInfo {
  std::string id;        ///< four-character chunk tag, e.g. "FTB0"
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc32c = 0;  ///< stored checksum
  bool crc_ok = false;       ///< stored checksum matches the payload bytes
};

/// Snapshot directory summary (`DatabaseIo::InspectSnapshot`).
struct SnapshotInfo {
  int version = 0;  ///< 1 = legacy monolithic blob, 2 = chunked
  std::uint64_t file_size = 0;
  std::vector<SnapshotChunkInfo> chunks;  ///< empty for v1 blobs
};

/// Binary (de)serialization of catalogs and image databases.
///
/// Synthesizing and feature-extracting a paper-scale database (15,000
/// images x 4 viewpoint channels) takes on the order of a minute; the
/// benchmark binaries serialize the result once and reload it afterwards,
/// which makes snapshot load the startup hot path.
///
/// Databases are written in the **chunked snapshot format v2**
/// (docs/snapshot_format.md): a checksummed directory of per-section chunks
/// (catalog, records, one chunk per feature table, normalizers, an optional
/// embedded RFS blob), each carrying its byte length and a CRC32C. Loads
/// return typed errors — `kTruncated` when bytes end early, `kCorrupt` on
/// checksum/structure violations, `kVersionMismatch` for unknown versions —
/// and never trust embedded counts beyond the bytes actually present. The
/// legacy v1 monolithic format is still read transparently. The format is
/// little-endian; it is a cache format, not an interchange format.
class DatabaseIo {
 public:
  /// Serializes a catalog (categories, sub-concept recipes, queries).
  static std::string SerializeCatalog(const Catalog& catalog);
  static StatusOr<Catalog> DeserializeCatalog(const std::string& bytes);

  /// Serializes a database to snapshot format v2 (catalog, records,
  /// normalizers, all feature tables). Pixels are not stored; `Render`
  /// reproduces them on demand. When `rfs_blob` is non-null, the opaque
  /// pre-serialized RFS bytes (see `RfsSerializer`) ride along in their own
  /// chunk and can be recovered with `LoadEmbeddedRfsBlob`.
  static std::string SerializeDatabase(const ImageDatabase& db,
                                       const std::string* rfs_blob = nullptr);

  /// Decodes a v2 or legacy v1 blob (sequential, checksums verified).
  static StatusOr<ImageDatabase> DeserializeDatabase(const std::string& bytes);

  /// Legacy v1 writer, kept so the v1 compatibility reader stays testable
  /// without fixture files. New code should not call this.
  static std::string SerializeDatabaseV1(const ImageDatabase& db);

  /// File convenience wrappers.
  static Status SaveDatabase(const ImageDatabase& db, const std::string& path,
                             const std::string* rfs_blob = nullptr);
  static StatusOr<ImageDatabase> LoadDatabase(const std::string& path);
  static StatusOr<ImageDatabase> LoadDatabase(
      const std::string& path, const SnapshotLoadOptions& options);

  /// Core loader over any random-access source; `options.pool` overlaps
  /// per-chunk reads and decodes across the pool's lanes.
  static StatusOr<ImageDatabase> LoadDatabaseFrom(
      const ByteSource& source, const SnapshotLoadOptions& options);

  /// Extracts the embedded RFS chunk (checksum-verified) from a v2
  /// snapshot. `kNotFound` when the snapshot carries none.
  static StatusOr<std::string> LoadEmbeddedRfsBlob(const std::string& path);
  static StatusOr<std::string> LoadEmbeddedRfsBlobFrom(
      const ByteSource& source);

  /// Walks the chunk directory and recomputes every chunk's checksum
  /// without decoding payloads — the `qdcbir_tool snapshot` inspector.
  static StatusOr<SnapshotInfo> InspectSnapshot(const ByteSource& source);
  static StatusOr<SnapshotInfo> InspectSnapshot(const std::string& path);
};

}  // namespace qdcbir

#endif  // QDCBIR_DATASET_DATABASE_IO_H_
