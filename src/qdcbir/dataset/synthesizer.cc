#include "qdcbir/dataset/synthesizer.h"

#include <algorithm>
#include <cmath>

#include "qdcbir/core/rng.h"
#include "qdcbir/dataset/recipe.h"

namespace qdcbir {

StatusOr<ImageDatabase> DatabaseSynthesizer::Synthesize(
    const Catalog& catalog, const SynthesizerOptions& options) {
  if (options.total_images == 0) {
    return Status::InvalidArgument("total_images must be positive");
  }
  if (options.image_width < 8 || options.image_height < 8) {
    return Status::InvalidArgument("image dimensions must be at least 8x8");
  }
  const std::vector<SubConceptSpec>& subs = catalog.subconcepts();
  if (subs.empty()) {
    return Status::InvalidArgument("catalog has no sub-concepts");
  }

  // Allocate image counts per sub-concept proportionally to weight.
  double total_weight = 0.0;
  for (const SubConceptSpec& s : subs) total_weight += s.weight;
  std::vector<std::size_t> counts(subs.size());
  std::size_t allocated = 0;
  for (std::size_t i = 0; i < subs.size(); ++i) {
    counts[i] = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::floor(
               static_cast<double>(options.total_images) * subs[i].weight /
               total_weight)));
    allocated += counts[i];
  }
  // Adjust round-robin to hit total_images exactly.
  std::size_t cursor = 0;
  while (allocated < options.total_images) {
    counts[cursor % counts.size()] += 1;
    ++allocated;
    ++cursor;
  }
  // Keep at least one image per sub-concept while the budget allows; when
  // total_images < #sub-concepts that floor is unsatisfiable, so after one
  // full fruitless cycle drop it and let starved sub-concepts go empty
  // (otherwise this loop never terminates).
  std::size_t fruitless = 0;
  while (allocated > options.total_images) {
    const std::size_t i = cursor % counts.size();
    const std::size_t keep = fruitless >= counts.size() ? 0 : 1;
    if (counts[i] > keep) {
      counts[i] -= 1;
      --allocated;
      fruitless = 0;
    } else {
      ++fruitless;
    }
    ++cursor;
  }

  ImageDatabase db;
  db.catalog_ = catalog;
  db.image_width_ = options.image_width;
  db.image_height_ = options.image_height;
  db.subconcept_images_.assign(subs.size(), {});

  const FeatureExtractor extractor;
  Rng master(options.seed);

  std::vector<FeatureVector> raw_main;
  std::array<std::vector<FeatureVector>, kNumViewpointChannels> raw_channels;
  raw_main.reserve(options.total_images);

  for (std::size_t si = 0; si < subs.size(); ++si) {
    for (std::size_t k = 0; k < counts[si]; ++k) {
      const std::uint64_t render_seed = master.NextUint64();
      Rng image_rng(render_seed);
      const Image image = RenderRecipe(subs[si].recipe, options.image_width,
                                       options.image_height, image_rng);

      StatusOr<FeatureVector> fv = extractor.Extract(image);
      if (!fv.ok()) return fv.status();

      ImageRecord rec;
      rec.id = static_cast<ImageId>(db.records_.size());
      rec.subconcept = subs[si].id;
      rec.category = subs[si].category;
      rec.render_seed = render_seed;

      raw_main.push_back(std::move(fv).value());
      if (options.extract_viewpoint_channels) {
        for (int c = 1; c < kNumViewpointChannels; ++c) {
          StatusOr<FeatureVector> cf = extractor.ExtractChannel(
              image, static_cast<ViewpointChannel>(c));
          if (!cf.ok()) return cf.status();
          raw_channels[c].push_back(std::move(cf).value());
        }
      }
      db.subconcept_images_[subs[si].id].push_back(rec.id);
      db.records_.push_back(rec);
    }
  }

  QDCBIR_RETURN_IF_ERROR(db.normalizer_.Fit(raw_main));
  QDCBIR_RETURN_IF_ERROR(db.normalizer_.TransformInPlace(raw_main));
  db.features_ = std::move(raw_main);
  db.channel_features_[0] = db.features_;
  db.channel_normalizers_[0] = db.normalizer_;

  if (options.extract_viewpoint_channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      QDCBIR_RETURN_IF_ERROR(db.channel_normalizers_[c].Fit(raw_channels[c]));
      QDCBIR_RETURN_IF_ERROR(
          db.channel_normalizers_[c].TransformInPlace(raw_channels[c]));
      db.channel_features_[c] = std::move(raw_channels[c]);
    }
  }
  db.RebuildFeatureBlocks();
  return db;
}

StatusOr<ImageDatabase> DatabaseSynthesizer::Subsample(
    const ImageDatabase& db, std::size_t subset_total) {
  if (subset_total == 0 || subset_total > db.size()) {
    return Status::InvalidArgument("invalid subsample size");
  }
  const double ratio =
      static_cast<double>(subset_total) / static_cast<double>(db.size());

  ImageDatabase out;
  out.catalog_ = db.catalog_;
  out.image_width_ = db.image_width_;
  out.image_height_ = db.image_height_;
  out.normalizer_ = db.normalizer_;
  out.channel_normalizers_ = db.channel_normalizers_;
  out.subconcept_images_.assign(db.subconcept_images_.size(), {});

  // Stratified selection: keep a proportional prefix of every sub-concept so
  // the subsample preserves all clusters.
  std::vector<ImageId> selected;
  for (const auto& ids : db.subconcept_images_) {
    const std::size_t keep = std::min(
        ids.size(), static_cast<std::size_t>(
                        std::ceil(ratio * static_cast<double>(ids.size()))));
    for (std::size_t i = 0; i < keep; ++i) selected.push_back(ids[i]);
  }
  // Ceil rounding may overshoot; trim without emptying any sub-concept.
  if (selected.size() > subset_total) {
    std::vector<std::size_t> stratum_count(db.subconcept_images_.size(), 0);
    for (const ImageId id : selected) {
      stratum_count[db.records_[id].subconcept] += 1;
    }
    std::vector<ImageId> trimmed;
    trimmed.reserve(subset_total);
    std::size_t excess = selected.size() - subset_total;
    for (std::size_t i = selected.size(); i-- > 0;) {
      const SubConceptId sub = db.records_[selected[i]].subconcept;
      if (excess > 0 && stratum_count[sub] > 1) {
        stratum_count[sub] -= 1;
        --excess;
      } else {
        trimmed.push_back(selected[i]);
      }
    }
    std::reverse(trimmed.begin(), trimmed.end());
    selected = std::move(trimmed);
  }

  const bool channels = db.has_channel_features();
  for (const ImageId old_id : selected) {
    ImageRecord rec = db.records_[old_id];
    rec.id = static_cast<ImageId>(out.records_.size());
    out.features_.push_back(db.features_[old_id]);
    if (channels) {
      for (int c = 1; c < kNumViewpointChannels; ++c) {
        out.channel_features_[c].push_back(db.channel_features_[c][old_id]);
      }
    }
    out.subconcept_images_[rec.subconcept].push_back(rec.id);
    out.records_.push_back(rec);
  }
  out.channel_features_[0] = out.features_;
  out.RebuildFeatureBlocks();
  return out;
}

}  // namespace qdcbir
