#include "qdcbir/dataset/database_io.h"

#include <cstring>
#include <fstream>
#include <functional>
#include <utility>

#include "qdcbir/core/crc32c.h"
#include "qdcbir/core/thread_pool.h"
#include "qdcbir/obs/span.h"

namespace qdcbir {

namespace {

constexpr char kCatalogMagic[] = "QDCAT001";
constexpr char kDatabaseMagicV1[] = "QDDB0001";
constexpr char kSnapshotMagic[] = "QDSNAP02";
constexpr std::size_t kMagicLen = 8;
constexpr std::uint32_t kSnapshotVersion = 2;

/// Directory geometry: magic + version + chunk count, then one fixed-size
/// entry per chunk, then the directory's own CRC32C.
constexpr std::size_t kDirFixedBytes = kMagicLen + 4 + 4;
constexpr std::size_t kDirEntryBytes = 4 + 4 + 8 + 8 + 4;
/// Upper bound on the chunk count a reader will accept. The writer emits at
/// most 11 chunks; the slack leaves room for future sections while keeping
/// a hostile count from driving a large directory allocation.
constexpr std::uint32_t kMaxChunks = 64;

constexpr std::uint32_t FourCc(char a, char b, char c, char d) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(a)) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(b)) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(c)) << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(d)) << 24;
}

constexpr std::uint32_t kChunkCatalog = FourCc('C', 'A', 'T', 'L');
constexpr std::uint32_t kChunkMeta = FourCc('M', 'E', 'T', 'A');
constexpr std::uint32_t kChunkRecords = FourCc('R', 'E', 'C', 'S');
constexpr std::uint32_t kChunkRfs = FourCc('R', 'F', 'S', '0');

std::uint32_t FeatureChunkId(int channel) {
  return FourCc('F', 'T', 'B', static_cast<char>('0' + channel));
}
std::uint32_t NormalizerChunkId(int channel) {
  return FourCc('N', 'R', 'M', static_cast<char>('0' + channel));
}

std::string ChunkIdToString(std::uint32_t id) {
  std::string s(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((id >> (8 * i)) & 0xffu);
    s[i] = (c >= 32 && c < 127) ? c : '?';
  }
  return s;
}

class Writer {
 public:
  void Raw(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  template <typename T>
  void Pod(T v) {
    Raw(&v, sizeof(T));
  }
  void Str(const std::string& s) {
    Pod<std::uint64_t>(s.size());
    Raw(s.data(), s.size());
  }
  void Doubles(const std::vector<double>& v) {
    Pod<std::uint64_t>(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Bounds-checked cursor over a byte string. Every accessor fails (returns
/// false) instead of reading past the end, and every length/count it
/// consumes is validated against the bytes actually remaining *before* any
/// allocation — a hostile embedded length can neither overflow the cursor
/// arithmetic nor drive an outsized `resize`.
class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  std::size_t Remaining() const { return bytes_.size() - pos_; }

  bool Raw(void* data, std::size_t n) {
    if (n > Remaining()) return false;
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool Pod(T* v) {
    return Raw(v, sizeof(T));
  }
  /// Reads an element count; rejects counts that could not possibly fit in
  /// the remaining bytes given `min_bytes_per_elem` per element.
  bool Count(std::uint64_t* n, std::size_t min_bytes_per_elem) {
    if (!Pod(n)) return false;
    return *n <= Remaining() / (min_bytes_per_elem ? min_bytes_per_elem : 1);
  }
  bool Str(std::string* s) {
    std::uint64_t n = 0;
    if (!Pod(&n) || n > Remaining()) return false;
    s->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool Doubles(std::vector<double>* v) {
    std::uint64_t n = 0;
    if (!Pod(&n) || n > Remaining() / sizeof(double)) return false;
    v->resize(n);
    return Raw(v->data(), n * sizeof(double));
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

void WriteRecipe(Writer& w, const SubConceptRecipe& r) {
  w.Pod<std::int32_t>(static_cast<std::int32_t>(r.background));
  w.Pod(r.bg_color1);
  w.Pod(r.bg_color2);
  w.Pod(r.bg_noise_scale);
  w.Pod(r.bg_noise_amp);
  w.Pod<std::int32_t>(static_cast<std::int32_t>(r.texture));
  w.Pod(r.texture_color);
  w.Pod(r.texture_param);
  w.Pod(r.texture_alpha);
  w.Pod(r.texture_angle);
  w.Pod<std::int32_t>(r.texture_count);
  w.Pod<std::int32_t>(static_cast<std::int32_t>(r.shape));
  w.Pod(r.shape_color);
  w.Pod(r.shape_size_frac);
  w.Pod(r.shape_aspect);
  w.Pod(r.shape_rotation);
  w.Pod<std::int32_t>(r.polygon_sides);
  w.Pod<std::int32_t>(r.shape_count);
  w.Pod<std::int32_t>(r.line_count);
  w.Pod<std::int32_t>(r.line_thickness);
  w.Pod(r.jitter_position_frac);
  w.Pod(r.jitter_size_frac);
  w.Pod(r.jitter_rotation);
  w.Pod(r.jitter_hue);
  w.Pod(r.pixel_noise_stddev);
}

bool ReadRecipe(Reader& r, SubConceptRecipe* out) {
  std::int32_t background = 0, texture = 0, shape = 0;
  bool ok = r.Pod(&background) && r.Pod(&out->bg_color1) &&
            r.Pod(&out->bg_color2) && r.Pod(&out->bg_noise_scale) &&
            r.Pod(&out->bg_noise_amp) && r.Pod(&texture) &&
            r.Pod(&out->texture_color) && r.Pod(&out->texture_param) &&
            r.Pod(&out->texture_alpha) && r.Pod(&out->texture_angle) &&
            r.Pod(&out->texture_count) && r.Pod(&shape) &&
            r.Pod(&out->shape_color) && r.Pod(&out->shape_size_frac) &&
            r.Pod(&out->shape_aspect) && r.Pod(&out->shape_rotation) &&
            r.Pod(&out->polygon_sides) && r.Pod(&out->shape_count) &&
            r.Pod(&out->line_count) && r.Pod(&out->line_thickness) &&
            r.Pod(&out->jitter_position_frac) &&
            r.Pod(&out->jitter_size_frac) && r.Pod(&out->jitter_rotation) &&
            r.Pod(&out->jitter_hue) && r.Pod(&out->pixel_noise_stddev);
  if (!ok) return false;
  out->background = static_cast<BackgroundKind>(background);
  out->texture = static_cast<TextureKind>(texture);
  out->shape = static_cast<ShapeKind>(shape);
  return true;
}

void WriteCatalogBody(Writer& w, const Catalog& catalog) {
  w.Pod<std::uint64_t>(catalog.categories().size());
  for (const CategorySpec& c : catalog.categories()) {
    w.Str(c.name);
    w.Pod<std::uint64_t>(c.subconcepts.size());
    for (const SubConceptId id : c.subconcepts) w.Pod(id);
  }
  w.Pod<std::uint64_t>(catalog.subconcepts().size());
  for (const SubConceptSpec& s : catalog.subconcepts()) {
    w.Pod(s.category);
    w.Str(s.name);
    w.Pod(s.weight);
    WriteRecipe(w, s.recipe);
  }
  w.Pod<std::uint64_t>(catalog.queries().size());
  for (const QueryConceptSpec& q : catalog.queries()) {
    w.Str(q.name);
    w.Pod<std::uint64_t>(q.subconcepts.size());
    for (const QuerySubConcept& qs : q.subconcepts) {
      w.Str(qs.name);
      w.Pod<std::uint64_t>(qs.members.size());
      for (const SubConceptId id : qs.members) w.Pod(id);
    }
  }
}

bool ReadCatalogBody(Reader& r, std::vector<CategorySpec>* categories,
                     std::vector<SubConceptSpec>* subconcepts,
                     std::vector<QueryConceptSpec>* queries) {
  std::uint64_t num_categories = 0;
  // Minimum on-disk footprints: a category is a name length plus a
  // sub-concept count (16 bytes), a sub-concept id is 4 bytes, and so on —
  // the `Count` bounds below keep hostile counts from over-allocating.
  if (!r.Count(&num_categories, 16)) return false;
  categories->resize(num_categories);
  for (std::uint64_t c = 0; c < num_categories; ++c) {
    CategorySpec& cat = (*categories)[c];
    cat.id = static_cast<CategoryId>(c);
    std::uint64_t subs = 0;
    if (!r.Str(&cat.name) || !r.Count(&subs, sizeof(SubConceptId))) {
      return false;
    }
    cat.subconcepts.resize(subs);
    for (auto& id : cat.subconcepts) {
      if (!r.Pod(&id)) return false;
    }
  }
  std::uint64_t num_subs = 0;
  if (!r.Count(&num_subs, 16)) return false;
  subconcepts->resize(num_subs);
  for (std::uint64_t s = 0; s < num_subs; ++s) {
    SubConceptSpec& sub = (*subconcepts)[s];
    sub.id = static_cast<SubConceptId>(s);
    if (!r.Pod(&sub.category) || !r.Str(&sub.name) || !r.Pod(&sub.weight) ||
        !ReadRecipe(r, &sub.recipe)) {
      return false;
    }
  }
  std::uint64_t num_queries = 0;
  if (!r.Count(&num_queries, 16)) return false;
  queries->resize(num_queries);
  for (auto& q : *queries) {
    std::uint64_t subs = 0;
    if (!r.Str(&q.name) || !r.Count(&subs, 16)) return false;
    q.subconcepts.resize(subs);
    for (auto& qs : q.subconcepts) {
      std::uint64_t members = 0;
      if (!r.Str(&qs.name) || !r.Count(&members, sizeof(SubConceptId))) {
        return false;
      }
      qs.members.resize(members);
      for (auto& id : qs.members) {
        if (!r.Pod(&id)) return false;
      }
    }
  }
  return true;
}

void WriteFeatureTable(Writer& w, const std::vector<FeatureVector>& table) {
  w.Pod<std::uint64_t>(table.size());
  for (const FeatureVector& f : table) w.Doubles(f.values());
}

bool ReadFeatureTable(Reader& r, std::vector<FeatureVector>* table) {
  std::uint64_t n = 0;
  if (!r.Count(&n, sizeof(std::uint64_t))) return false;
  table->clear();
  table->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::vector<double> values;
    if (!r.Doubles(&values)) return false;
    table->emplace_back(std::move(values));
  }
  return true;
}

void WriteRecords(Writer& w, const std::vector<ImageRecord>& records) {
  w.Pod<std::uint64_t>(records.size());
  for (const ImageRecord& rec : records) {
    w.Pod(rec.subconcept);
    w.Pod(rec.category);
    w.Pod(rec.render_seed);
  }
}

bool ReadRecords(Reader& r, std::vector<ImageRecord>* records) {
  std::uint64_t n = 0;
  if (!r.Count(&n, 16)) return false;  // 4 + 4 + 8 bytes per record
  records->resize(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ImageRecord& rec = (*records)[i];
    rec.id = static_cast<ImageId>(i);
    if (!r.Pod(&rec.subconcept) || !r.Pod(&rec.category) ||
        !r.Pod(&rec.render_seed)) {
      return false;
    }
  }
  return true;
}

/// One parsed v2 chunk-directory entry.
struct DirEntry {
  std::uint32_t id = 0;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::uint32_t crc = 0;
};

struct Directory {
  int version = 0;  ///< 1 = legacy blob (no entries), 2 = chunked
  std::vector<DirEntry> entries;
};

template <typename T>
T LoadPod(const std::string& buf, std::size_t offset) {
  T v;
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  return v;
}

/// Reads and validates the snapshot header + chunk directory: magic,
/// version, directory CRC, and every entry's bounds against the source
/// size. Distinguishes the three failure classes the loaders promise.
StatusOr<Directory> ReadDirectory(const ByteSource& src) {
  char magic[kMagicLen];
  if (src.Size() < kMagicLen) {
    return Status::Truncated("snapshot shorter than its magic");
  }
  QDCBIR_RETURN_IF_ERROR(src.ReadAt(0, kMagicLen, magic));
  if (std::memcmp(magic, kDatabaseMagicV1, kMagicLen) == 0) {
    Directory dir;
    dir.version = 1;
    return dir;
  }
  if (std::memcmp(magic, kSnapshotMagic, 6) != 0) {
    return Status::Corrupt("not a qdcbir snapshot (bad magic)");
  }
  if (src.Size() < kDirFixedBytes) {
    return Status::Truncated("snapshot directory cut short");
  }
  char fixed[8];
  QDCBIR_RETURN_IF_ERROR(src.ReadAt(kMagicLen, 8, fixed));
  std::uint32_t version, count;
  std::memcpy(&version, fixed, 4);
  std::memcpy(&count, fixed + 4, 4);
  if (version != kSnapshotVersion) {
    return Status::VersionMismatch("snapshot version " +
                                   std::to_string(version) +
                                   " (this build reads versions 1 and 2)");
  }
  if (count > kMaxChunks) {
    return Status::Corrupt("implausible chunk count " + std::to_string(count));
  }
  const std::uint64_t dir_bytes =
      kDirFixedBytes + std::uint64_t{count} * kDirEntryBytes + 4;
  if (src.Size() < dir_bytes) {
    return Status::Truncated("snapshot directory cut short");
  }
  std::string dir_buf(dir_bytes, '\0');
  QDCBIR_RETURN_IF_ERROR(src.ReadAt(0, dir_bytes, dir_buf.data()));
  const std::uint32_t stored_crc =
      LoadPod<std::uint32_t>(dir_buf, dir_bytes - 4);
  if (Crc32c::Compute(dir_buf.data(), dir_bytes - 4) != stored_crc) {
    return Status::Corrupt("snapshot directory checksum mismatch");
  }

  Directory dir;
  dir.version = 2;
  dir.entries.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::size_t base = kDirFixedBytes + i * kDirEntryBytes;
    DirEntry& e = dir.entries[i];
    e.id = LoadPod<std::uint32_t>(dir_buf, base);
    e.offset = LoadPod<std::uint64_t>(dir_buf, base + 8);
    e.length = LoadPod<std::uint64_t>(dir_buf, base + 16);
    e.crc = LoadPod<std::uint32_t>(dir_buf, base + 24);
    if (e.offset < dir_bytes) {
      return Status::Corrupt("chunk " + ChunkIdToString(e.id) +
                             " overlaps the directory");
    }
    if (e.offset > src.Size() || e.length > src.Size() - e.offset) {
      return Status::Truncated("chunk " + ChunkIdToString(e.id) +
                               " extends past the end of the snapshot");
    }
    for (std::uint32_t j = 0; j < i; ++j) {
      if (dir.entries[j].id == e.id) {
        return Status::Corrupt("duplicate chunk " + ChunkIdToString(e.id));
      }
    }
  }
  return dir;
}

/// Decoded-but-unassembled chunk contents. Each chunk decodes into its own
/// slot, so the async loader's tasks never share mutable state.
struct Staging {
  bool has_meta = false;
  std::int32_t width = 0, height = 0;
  std::uint64_t record_count = 0;
  std::uint8_t channels_flag = 0;

  bool has_catalog = false;
  std::vector<CategorySpec> categories;
  std::vector<SubConceptSpec> subconcepts;
  std::vector<QueryConceptSpec> queries;

  bool has_records = false;
  std::vector<ImageRecord> records;

  bool has_table[kNumViewpointChannels] = {};
  std::vector<FeatureVector> tables[kNumViewpointChannels];

  bool has_norm[kNumViewpointChannels] = {};
  FeatureNormalizer norms[kNumViewpointChannels];

  bool has_rfs = false;
  std::string rfs_blob;
};

struct IoLoadMetrics {
  obs::Counter& bytes;
  obs::Counter& chunks;
  obs::Counter& chunks_skipped;
  obs::Counter& crc_failures;

  static IoLoadMetrics& Get() {
    static IoLoadMetrics* m = [] {
      obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
      return new IoLoadMetrics{
          reg.GetCounter("io.load.bytes", "Snapshot bytes read and decoded"),
          reg.GetCounter("io.load.chunks", "Snapshot chunks decoded"),
          reg.GetCounter("io.load.chunks_skipped",
                         "Snapshot chunks skipped (unknown id or disabled)"),
          reg.GetCounter("io.load.crc_failures",
                         "Snapshot chunks rejected by checksum")};
    }();
    return *m;
  }
};

/// Reads one chunk's payload from `src`, verifies its CRC32C and decodes it
/// into `st`. Runs on a pool lane during async loads; touches only this
/// chunk's staging slot.
Status ReadAndDecodeChunk(const ByteSource& src, const DirEntry& e,
                          bool verify, Staging* st) {
  IoLoadMetrics& metrics = IoLoadMetrics::Get();
  std::string payload;
  payload.resize(e.length);
  {
    QDCBIR_SPAN("io.load.read");
    QDCBIR_RETURN_IF_ERROR(src.ReadAt(e.offset, e.length, payload.data()));
  }
  metrics.bytes.Add(e.length);
  if (verify) {
    QDCBIR_SPAN("io.load.crc");
    if (Crc32c::Compute(payload) != e.crc) {
      metrics.crc_failures.Add(1);
      return Status::Corrupt("chunk " + ChunkIdToString(e.id) +
                             " checksum mismatch");
    }
  }

  QDCBIR_SPAN("io.load.decode");
  Reader r(payload);
  const auto malformed = [&e] {
    return Status::Corrupt("chunk " + ChunkIdToString(e.id) + " malformed");
  };
  bool known = true;
  if (e.id == kChunkCatalog) {
    if (!ReadCatalogBody(r, &st->categories, &st->subconcepts,
                         &st->queries) ||
        r.Remaining() != 0) {
      return malformed();
    }
    st->has_catalog = true;
  } else if (e.id == kChunkMeta) {
    if (!r.Pod(&st->width) || !r.Pod(&st->height) ||
        !r.Pod(&st->record_count) || !r.Pod(&st->channels_flag) ||
        r.Remaining() != 0) {
      return malformed();
    }
    st->has_meta = true;
  } else if (e.id == kChunkRecords) {
    if (!ReadRecords(r, &st->records) || r.Remaining() != 0) {
      return malformed();
    }
    st->has_records = true;
  } else if (e.id == kChunkRfs) {
    st->rfs_blob = std::move(payload);
    st->has_rfs = true;
  } else {
    known = false;
    for (int c = 0; c < kNumViewpointChannels; ++c) {
      if (e.id == FeatureChunkId(c)) {
        if (!ReadFeatureTable(r, &st->tables[c]) || r.Remaining() != 0) {
          return malformed();
        }
        st->has_table[c] = true;
        known = true;
      } else if (e.id == NormalizerChunkId(c)) {
        StatusOr<FeatureNormalizer> n = FeatureNormalizer::Deserialize(payload);
        if (!n.ok()) {
          return Status::Corrupt("chunk " + ChunkIdToString(e.id) + ": " +
                                 n.status().message());
        }
        st->norms[c] = std::move(n).value();
        st->has_norm[c] = true;
        known = true;
      }
    }
  }
  if (known) {
    metrics.chunks.Add(1);
  } else {
    // Unknown chunk kinds are tolerated (forward compatibility): their
    // checksum was still verified above.
    metrics.chunks_skipped.Add(1);
  }
  return Status::Ok();
}

/// Legacy v1 monolithic-blob reader (format of the original
/// `SerializeDatabase`), with the same hardened bounds checks as v2.
/// Decodes into `Staging`; the shared assembly in `LoadDatabaseFrom`
/// performs the cross-section validation for both versions.
Status DecodeV1(const std::string& bytes, Staging* st) {
  QDCBIR_SPAN("io.load.v1");
  const auto truncated = [] {
    return Status::Truncated("truncated v1 database blob");
  };
  Reader r(bytes);
  char magic[kMagicLen];
  if (!r.Raw(magic, kMagicLen) ||
      std::memcmp(magic, kDatabaseMagicV1, kMagicLen) != 0) {
    return Status::Corrupt("not a v1 database blob (bad magic)");
  }
  if (!ReadCatalogBody(r, &st->categories, &st->subconcepts, &st->queries)) {
    return truncated();
  }
  st->has_catalog = true;
  std::uint64_t num_records = 0;
  if (!r.Pod(&st->width) || !r.Pod(&st->height) ||
      !r.Count(&num_records, 16)) {
    return truncated();
  }
  st->records.resize(num_records);
  for (std::uint64_t i = 0; i < num_records; ++i) {
    ImageRecord& rec = st->records[i];
    rec.id = static_cast<ImageId>(i);
    if (!r.Pod(&rec.subconcept) || !r.Pod(&rec.category) ||
        !r.Pod(&rec.render_seed)) {
      return truncated();
    }
  }
  st->has_records = true;
  st->record_count = num_records;
  if (!ReadFeatureTable(r, &st->tables[0])) return truncated();
  st->has_table[0] = true;

  if (!r.Pod(&st->channels_flag)) return truncated();
  if (st->channels_flag) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      if (!ReadFeatureTable(r, &st->tables[c])) return truncated();
      st->has_table[c] = true;
    }
  }
  std::string normalizer_blob;
  const int num_norms = st->channels_flag ? kNumViewpointChannels : 1;
  for (int c = 0; c < num_norms; ++c) {
    if (!r.Str(&normalizer_blob)) return truncated();
    StatusOr<FeatureNormalizer> n =
        FeatureNormalizer::Deserialize(normalizer_blob);
    if (!n.ok()) {
      return Status::Corrupt("v1 normalizer: " + n.status().message());
    }
    st->norms[c] = std::move(n).value();
    st->has_norm[c] = true;
  }
  st->has_meta = true;
  return Status::Ok();
}

Status ReadAll(const ByteSource& src, std::string* out) {
  out->resize(src.Size());
  return src.ReadAt(0, out->size(), out->data());
}

}  // namespace

std::string DatabaseIo::SerializeCatalog(const Catalog& catalog) {
  Writer w;
  w.Raw(kCatalogMagic, kMagicLen);
  WriteCatalogBody(w, catalog);
  return w.Take();
}

StatusOr<Catalog> DatabaseIo::DeserializeCatalog(const std::string& bytes) {
  Reader r(bytes);
  char magic[kMagicLen];
  if (!r.Raw(magic, kMagicLen) ||
      std::memcmp(magic, kCatalogMagic, kMagicLen) != 0) {
    return Status::Corrupt("not a catalog blob (bad magic)");
  }
  Catalog catalog;
  if (!ReadCatalogBody(r, &catalog.categories_, &catalog.subconcepts_,
                       &catalog.queries_)) {
    return Status::Truncated("truncated catalog blob");
  }
  return catalog;
}

std::string DatabaseIo::SerializeDatabase(const ImageDatabase& db,
                                          const std::string* rfs_blob) {
  QDCBIR_SPAN("io.save.serialize");
  const bool channels = db.has_channel_features();

  std::vector<std::pair<std::uint32_t, std::string>> chunks;
  {
    Writer w;
    WriteCatalogBody(w, db.catalog_);
    chunks.emplace_back(kChunkCatalog, w.Take());
  }
  {
    Writer w;
    w.Pod(db.image_width_);
    w.Pod(db.image_height_);
    w.Pod<std::uint64_t>(db.records_.size());
    w.Pod<std::uint8_t>(channels ? 1 : 0);
    chunks.emplace_back(kChunkMeta, w.Take());
  }
  {
    Writer w;
    WriteRecords(w, db.records_);
    chunks.emplace_back(kChunkRecords, w.Take());
  }
  {
    Writer w;
    WriteFeatureTable(w, db.features_);
    chunks.emplace_back(FeatureChunkId(0), w.Take());
  }
  if (channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      Writer w;
      WriteFeatureTable(w, db.channel_features_[c]);
      chunks.emplace_back(FeatureChunkId(c), w.Take());
    }
  }
  chunks.emplace_back(NormalizerChunkId(0), db.normalizer_.Serialize());
  if (channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      chunks.emplace_back(NormalizerChunkId(c),
                          db.channel_normalizers_[c].Serialize());
    }
  }
  if (rfs_blob != nullptr) chunks.emplace_back(kChunkRfs, *rfs_blob);

  Writer dir;
  dir.Raw(kSnapshotMagic, kMagicLen);
  dir.Pod<std::uint32_t>(kSnapshotVersion);
  dir.Pod<std::uint32_t>(static_cast<std::uint32_t>(chunks.size()));
  std::uint64_t offset =
      kDirFixedBytes + chunks.size() * kDirEntryBytes + 4;
  std::uint64_t payload_bytes = 0;
  for (const auto& [id, payload] : chunks) {
    dir.Pod<std::uint32_t>(id);
    dir.Pod<std::uint32_t>(0);  // reserved
    dir.Pod<std::uint64_t>(offset);
    dir.Pod<std::uint64_t>(payload.size());
    dir.Pod<std::uint32_t>(Crc32c::Compute(payload));
    offset += payload.size();
    payload_bytes += payload.size();
  }
  std::string out = dir.Take();
  const std::uint32_t dir_crc = Crc32c::Compute(out);
  out.append(reinterpret_cast<const char*>(&dir_crc), 4);
  out.reserve(out.size() + payload_bytes);
  for (const auto& [id, payload] : chunks) out.append(payload);
  return out;
}

std::string DatabaseIo::SerializeDatabaseV1(const ImageDatabase& db) {
  Writer w;
  w.Raw(kDatabaseMagicV1, kMagicLen);
  WriteCatalogBody(w, db.catalog_);

  w.Pod<std::int32_t>(db.image_width_);
  w.Pod<std::int32_t>(db.image_height_);
  w.Pod<std::uint64_t>(db.records_.size());
  for (const ImageRecord& rec : db.records_) {
    w.Pod(rec.subconcept);
    w.Pod(rec.category);
    w.Pod(rec.render_seed);
  }
  WriteFeatureTable(w, db.features_);
  const std::uint8_t has_channels = db.has_channel_features() ? 1 : 0;
  w.Pod(has_channels);
  if (has_channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      WriteFeatureTable(w, db.channel_features_[c]);
    }
  }
  w.Str(db.normalizer_.Serialize());
  if (has_channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      w.Str(db.channel_normalizers_[c].Serialize());
    }
  }
  return w.Take();
}

StatusOr<ImageDatabase> DatabaseIo::DeserializeDatabase(
    const std::string& bytes) {
  MemoryByteSource source(bytes);
  return LoadDatabaseFrom(source, SnapshotLoadOptions{});
}

StatusOr<ImageDatabase> DatabaseIo::LoadDatabaseFrom(
    const ByteSource& source, const SnapshotLoadOptions& options) {
  QDCBIR_SPAN("io.load.total");
  StatusOr<Directory> dir = ReadDirectory(source);
  if (!dir.ok()) return dir.status();

  Staging st;
  if (dir->version == 1) {
    std::string bytes;
    QDCBIR_RETURN_IF_ERROR(ReadAll(source, &bytes));
    QDCBIR_RETURN_IF_ERROR(DecodeV1(bytes, &st));
  } else {
    const std::vector<DirEntry>& entries = dir->entries;
    std::vector<Status> statuses(entries.size());
    const bool parallel = options.pool != nullptr &&
                          options.pool->size() > 1 && entries.size() > 1;
    if (parallel) {
      // Each task reads its own byte range (positioned I/O) and decodes
      // into its own staging slot: file reads overlap with decoding and
      // with each other, and the assembled database is byte-identical to a
      // sequential load because assembly below is order-independent.
      std::vector<std::function<void()>> tasks;
      tasks.reserve(entries.size());
      for (std::size_t i = 0; i < entries.size(); ++i) {
        tasks.push_back([&source, &entries, &options, &st, &statuses, i] {
          statuses[i] = ReadAndDecodeChunk(source, entries[i],
                                           options.verify_checksums, &st);
        });
      }
      options.pool->Run(std::move(tasks));
    } else {
      for (std::size_t i = 0; i < entries.size(); ++i) {
        statuses[i] = ReadAndDecodeChunk(source, entries[i],
                                         options.verify_checksums, &st);
      }
    }
    // Report the first failure in directory order so the error is
    // deterministic across pool widths.
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
  }

  QDCBIR_SPAN("io.load.assemble");
  if (!st.has_catalog || !st.has_meta || !st.has_records || !st.has_table[0] ||
      !st.has_norm[0]) {
    return Status::Corrupt("snapshot is missing a required chunk");
  }
  ImageDatabase db;
  db.catalog_.categories_ = std::move(st.categories);
  db.catalog_.subconcepts_ = std::move(st.subconcepts);
  db.catalog_.queries_ = std::move(st.queries);
  db.image_width_ = st.width;
  db.image_height_ = st.height;

  if (st.records.size() != st.record_count) {
    return Status::Corrupt("record count disagrees with snapshot meta");
  }
  db.records_ = std::move(st.records);
  db.subconcept_images_.assign(db.catalog_.subconcepts().size(), {});
  for (const ImageRecord& rec : db.records_) {
    if (rec.subconcept >= db.subconcept_images_.size()) {
      return Status::Corrupt("record references unknown sub-concept");
    }
    db.subconcept_images_[rec.subconcept].push_back(rec.id);
  }

  if (st.tables[0].size() != db.records_.size()) {
    return Status::Corrupt("feature table size mismatch");
  }
  db.features_ = std::move(st.tables[0]);
  db.channel_features_[0] = db.features_;
  db.normalizer_ = std::move(st.norms[0]);
  db.channel_normalizers_[0] = db.normalizer_;

  const bool channels = st.channels_flag != 0;
  for (int c = 1; c < kNumViewpointChannels; ++c) {
    if (channels != st.has_table[c] || channels != st.has_norm[c]) {
      return Status::Corrupt("channel chunks disagree with snapshot meta");
    }
    if (channels) {
      if (st.tables[c].size() != db.records_.size()) {
        return Status::Corrupt("channel feature table size mismatch");
      }
      db.channel_features_[c] = std::move(st.tables[c]);
      db.channel_normalizers_[c] = std::move(st.norms[c]);
    }
  }
  // Snapshot load is where the scan-side data layout is established: the
  // blocked SoA tables the batched distance kernels consume are built once
  // here, not lazily on the first query.
  {
    QDCBIR_SPAN("io.load.feature_blocks");
    db.RebuildFeatureBlocks();
  }
  return db;
}

Status DatabaseIo::SaveDatabase(const ImageDatabase& db,
                                const std::string& path,
                                const std::string* rfs_blob) {
  QDCBIR_SPAN("io.save.total");
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const std::string bytes = SerializeDatabase(db, rfs_blob);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed: " + path);
  obs::MetricsRegistry::Global()
      .GetCounter("io.save.bytes", "Snapshot bytes serialized to disk")
      .Add(bytes.size());
  return Status::Ok();
}

StatusOr<ImageDatabase> DatabaseIo::LoadDatabase(const std::string& path) {
  return LoadDatabase(path, SnapshotLoadOptions{});
}

StatusOr<ImageDatabase> DatabaseIo::LoadDatabase(
    const std::string& path, const SnapshotLoadOptions& options) {
  StatusOr<std::unique_ptr<FileByteSource>> source =
      FileByteSource::Open(path);
  if (!source.ok()) return source.status();
  return LoadDatabaseFrom(**source, options);
}

StatusOr<std::string> DatabaseIo::LoadEmbeddedRfsBlob(const std::string& path) {
  StatusOr<std::unique_ptr<FileByteSource>> source =
      FileByteSource::Open(path);
  if (!source.ok()) return source.status();
  return LoadEmbeddedRfsBlobFrom(**source);
}

StatusOr<std::string> DatabaseIo::LoadEmbeddedRfsBlobFrom(
    const ByteSource& source) {
  StatusOr<Directory> dir = ReadDirectory(source);
  if (!dir.ok()) return dir.status();
  if (dir->version == 1) {
    return Status::NotFound("v1 snapshots carry no embedded RFS section");
  }
  for (const DirEntry& e : dir->entries) {
    if (e.id != kChunkRfs) continue;
    std::string payload(e.length, '\0');
    QDCBIR_RETURN_IF_ERROR(source.ReadAt(e.offset, e.length, payload.data()));
    if (Crc32c::Compute(payload) != e.crc) {
      return Status::Corrupt("chunk RFS0 checksum mismatch");
    }
    return payload;
  }
  return Status::NotFound("snapshot has no embedded RFS section");
}

StatusOr<SnapshotInfo> DatabaseIo::InspectSnapshot(const ByteSource& source) {
  StatusOr<Directory> dir = ReadDirectory(source);
  if (!dir.ok()) return dir.status();
  SnapshotInfo info;
  info.version = dir->version;
  info.file_size = source.Size();
  for (const DirEntry& e : dir->entries) {
    SnapshotChunkInfo chunk;
    chunk.id = ChunkIdToString(e.id);
    chunk.offset = e.offset;
    chunk.length = e.length;
    chunk.crc32c = e.crc;
    std::string payload(e.length, '\0');
    const Status read = source.ReadAt(e.offset, e.length, payload.data());
    chunk.crc_ok = read.ok() && Crc32c::Compute(payload) == e.crc;
    info.chunks.push_back(std::move(chunk));
  }
  return info;
}

StatusOr<SnapshotInfo> DatabaseIo::InspectSnapshot(const std::string& path) {
  StatusOr<std::unique_ptr<FileByteSource>> source =
      FileByteSource::Open(path);
  if (!source.ok()) return source.status();
  return InspectSnapshot(**source);
}

}  // namespace qdcbir
