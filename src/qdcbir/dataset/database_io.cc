#include "qdcbir/dataset/database_io.h"

#include <cstring>
#include <fstream>
#include <sstream>

namespace qdcbir {

namespace {

constexpr char kCatalogMagic[] = "QDCAT001";
constexpr char kDatabaseMagic[] = "QDDB0001";
constexpr std::size_t kMagicLen = 8;

class Writer {
 public:
  void Raw(const void* data, std::size_t n) {
    out_.append(static_cast<const char*>(data), n);
  }
  template <typename T>
  void Pod(T v) {
    Raw(&v, sizeof(T));
  }
  void Str(const std::string& s) {
    Pod<std::uint64_t>(s.size());
    Raw(s.data(), s.size());
  }
  void Doubles(const std::vector<double>& v) {
    Pod<std::uint64_t>(v.size());
    Raw(v.data(), v.size() * sizeof(double));
  }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  bool Raw(void* data, std::size_t n) {
    if (pos_ + n > bytes_.size()) return false;
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  template <typename T>
  bool Pod(T* v) {
    return Raw(v, sizeof(T));
  }
  bool Str(std::string* s) {
    std::uint64_t n = 0;
    if (!Pod(&n) || pos_ + n > bytes_.size()) return false;
    s->assign(bytes_.data() + pos_, n);
    pos_ += n;
    return true;
  }
  bool Doubles(std::vector<double>* v) {
    std::uint64_t n = 0;
    if (!Pod(&n) || pos_ + n * sizeof(double) > bytes_.size()) return false;
    v->resize(n);
    return Raw(v->data(), n * sizeof(double));
  }

 private:
  const std::string& bytes_;
  std::size_t pos_ = 0;
};

void WriteRecipe(Writer& w, const SubConceptRecipe& r) {
  w.Pod<std::int32_t>(static_cast<std::int32_t>(r.background));
  w.Pod(r.bg_color1);
  w.Pod(r.bg_color2);
  w.Pod(r.bg_noise_scale);
  w.Pod(r.bg_noise_amp);
  w.Pod<std::int32_t>(static_cast<std::int32_t>(r.texture));
  w.Pod(r.texture_color);
  w.Pod(r.texture_param);
  w.Pod(r.texture_alpha);
  w.Pod(r.texture_angle);
  w.Pod<std::int32_t>(r.texture_count);
  w.Pod<std::int32_t>(static_cast<std::int32_t>(r.shape));
  w.Pod(r.shape_color);
  w.Pod(r.shape_size_frac);
  w.Pod(r.shape_aspect);
  w.Pod(r.shape_rotation);
  w.Pod<std::int32_t>(r.polygon_sides);
  w.Pod<std::int32_t>(r.shape_count);
  w.Pod<std::int32_t>(r.line_count);
  w.Pod<std::int32_t>(r.line_thickness);
  w.Pod(r.jitter_position_frac);
  w.Pod(r.jitter_size_frac);
  w.Pod(r.jitter_rotation);
  w.Pod(r.jitter_hue);
  w.Pod(r.pixel_noise_stddev);
}

bool ReadRecipe(Reader& r, SubConceptRecipe* out) {
  std::int32_t background = 0, texture = 0, shape = 0;
  bool ok = r.Pod(&background) && r.Pod(&out->bg_color1) &&
            r.Pod(&out->bg_color2) && r.Pod(&out->bg_noise_scale) &&
            r.Pod(&out->bg_noise_amp) && r.Pod(&texture) &&
            r.Pod(&out->texture_color) && r.Pod(&out->texture_param) &&
            r.Pod(&out->texture_alpha) && r.Pod(&out->texture_angle) &&
            r.Pod(&out->texture_count) && r.Pod(&shape) &&
            r.Pod(&out->shape_color) && r.Pod(&out->shape_size_frac) &&
            r.Pod(&out->shape_aspect) && r.Pod(&out->shape_rotation) &&
            r.Pod(&out->polygon_sides) && r.Pod(&out->shape_count) &&
            r.Pod(&out->line_count) && r.Pod(&out->line_thickness) &&
            r.Pod(&out->jitter_position_frac) &&
            r.Pod(&out->jitter_size_frac) && r.Pod(&out->jitter_rotation) &&
            r.Pod(&out->jitter_hue) && r.Pod(&out->pixel_noise_stddev);
  if (!ok) return false;
  out->background = static_cast<BackgroundKind>(background);
  out->texture = static_cast<TextureKind>(texture);
  out->shape = static_cast<ShapeKind>(shape);
  return true;
}

void WriteCatalogBody(Writer& w, const Catalog& catalog) {
  w.Pod<std::uint64_t>(catalog.categories().size());
  for (const CategorySpec& c : catalog.categories()) {
    w.Str(c.name);
    w.Pod<std::uint64_t>(c.subconcepts.size());
    for (const SubConceptId id : c.subconcepts) w.Pod(id);
  }
  w.Pod<std::uint64_t>(catalog.subconcepts().size());
  for (const SubConceptSpec& s : catalog.subconcepts()) {
    w.Pod(s.category);
    w.Str(s.name);
    w.Pod(s.weight);
    WriteRecipe(w, s.recipe);
  }
  w.Pod<std::uint64_t>(catalog.queries().size());
  for (const QueryConceptSpec& q : catalog.queries()) {
    w.Str(q.name);
    w.Pod<std::uint64_t>(q.subconcepts.size());
    for (const QuerySubConcept& qs : q.subconcepts) {
      w.Str(qs.name);
      w.Pod<std::uint64_t>(qs.members.size());
      for (const SubConceptId id : qs.members) w.Pod(id);
    }
  }
}

Status ReadCatalogBody(Reader& r, std::vector<CategorySpec>* categories,
                       std::vector<SubConceptSpec>* subconcepts,
                       std::vector<QueryConceptSpec>* queries) {
  const auto corrupt = [] { return Status::IoError("truncated catalog blob"); };
  std::uint64_t num_categories = 0;
  if (!r.Pod(&num_categories)) return corrupt();
  categories->resize(num_categories);
  for (std::uint64_t c = 0; c < num_categories; ++c) {
    CategorySpec& cat = (*categories)[c];
    cat.id = static_cast<CategoryId>(c);
    std::uint64_t subs = 0;
    if (!r.Str(&cat.name) || !r.Pod(&subs)) return corrupt();
    cat.subconcepts.resize(subs);
    for (auto& id : cat.subconcepts) {
      if (!r.Pod(&id)) return corrupt();
    }
  }
  std::uint64_t num_subs = 0;
  if (!r.Pod(&num_subs)) return corrupt();
  subconcepts->resize(num_subs);
  for (std::uint64_t s = 0; s < num_subs; ++s) {
    SubConceptSpec& sub = (*subconcepts)[s];
    sub.id = static_cast<SubConceptId>(s);
    if (!r.Pod(&sub.category) || !r.Str(&sub.name) || !r.Pod(&sub.weight) ||
        !ReadRecipe(r, &sub.recipe)) {
      return corrupt();
    }
  }
  std::uint64_t num_queries = 0;
  if (!r.Pod(&num_queries)) return corrupt();
  queries->resize(num_queries);
  for (auto& q : *queries) {
    std::uint64_t subs = 0;
    if (!r.Str(&q.name) || !r.Pod(&subs)) return corrupt();
    q.subconcepts.resize(subs);
    for (auto& qs : q.subconcepts) {
      std::uint64_t members = 0;
      if (!r.Str(&qs.name) || !r.Pod(&members)) return corrupt();
      qs.members.resize(members);
      for (auto& id : qs.members) {
        if (!r.Pod(&id)) return corrupt();
      }
    }
  }
  return Status::Ok();
}

void WriteFeatureTable(Writer& w, const std::vector<FeatureVector>& table) {
  w.Pod<std::uint64_t>(table.size());
  for (const FeatureVector& f : table) w.Doubles(f.values());
}

bool ReadFeatureTable(Reader& r, std::vector<FeatureVector>* table) {
  std::uint64_t n = 0;
  if (!r.Pod(&n)) return false;
  table->clear();
  table->reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::vector<double> values;
    if (!r.Doubles(&values)) return false;
    table->emplace_back(std::move(values));
  }
  return true;
}

}  // namespace

std::string DatabaseIo::SerializeCatalog(const Catalog& catalog) {
  Writer w;
  w.Raw(kCatalogMagic, kMagicLen);
  WriteCatalogBody(w, catalog);
  return w.Take();
}

StatusOr<Catalog> DatabaseIo::DeserializeCatalog(const std::string& bytes) {
  Reader r(bytes);
  char magic[kMagicLen];
  if (!r.Raw(magic, kMagicLen) ||
      std::memcmp(magic, kCatalogMagic, kMagicLen) != 0) {
    return Status::IoError("not a catalog blob (bad magic)");
  }
  Catalog catalog;
  QDCBIR_RETURN_IF_ERROR(ReadCatalogBody(r, &catalog.categories_,
                                         &catalog.subconcepts_,
                                         &catalog.queries_));
  return catalog;
}

std::string DatabaseIo::SerializeDatabase(const ImageDatabase& db) {
  Writer w;
  w.Raw(kDatabaseMagic, kMagicLen);
  WriteCatalogBody(w, db.catalog_);

  w.Pod<std::int32_t>(db.image_width_);
  w.Pod<std::int32_t>(db.image_height_);
  w.Pod<std::uint64_t>(db.records_.size());
  for (const ImageRecord& rec : db.records_) {
    w.Pod(rec.subconcept);
    w.Pod(rec.category);
    w.Pod(rec.render_seed);
  }
  WriteFeatureTable(w, db.features_);
  const std::uint8_t has_channels = db.has_channel_features() ? 1 : 0;
  w.Pod(has_channels);
  if (has_channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      WriteFeatureTable(w, db.channel_features_[c]);
    }
  }
  w.Str(db.normalizer_.Serialize());
  if (has_channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      w.Str(db.channel_normalizers_[c].Serialize());
    }
  }
  return w.Take();
}

StatusOr<ImageDatabase> DatabaseIo::DeserializeDatabase(
    const std::string& bytes) {
  const auto corrupt = [] { return Status::IoError("truncated database blob"); };
  Reader r(bytes);
  char magic[kMagicLen];
  if (!r.Raw(magic, kMagicLen) ||
      std::memcmp(magic, kDatabaseMagic, kMagicLen) != 0) {
    return Status::IoError("not a database blob (bad magic)");
  }
  ImageDatabase db;
  QDCBIR_RETURN_IF_ERROR(ReadCatalogBody(r, &db.catalog_.categories_,
                                         &db.catalog_.subconcepts_,
                                         &db.catalog_.queries_));
  std::uint64_t num_records = 0;
  if (!r.Pod(&db.image_width_) || !r.Pod(&db.image_height_) ||
      !r.Pod(&num_records)) {
    return corrupt();
  }
  db.records_.resize(num_records);
  db.subconcept_images_.assign(db.catalog_.subconcepts().size(), {});
  for (std::uint64_t i = 0; i < num_records; ++i) {
    ImageRecord& rec = db.records_[i];
    rec.id = static_cast<ImageId>(i);
    if (!r.Pod(&rec.subconcept) || !r.Pod(&rec.category) ||
        !r.Pod(&rec.render_seed)) {
      return corrupt();
    }
    if (rec.subconcept >= db.subconcept_images_.size()) {
      return Status::IoError("record references unknown sub-concept");
    }
    db.subconcept_images_[rec.subconcept].push_back(rec.id);
  }
  if (!ReadFeatureTable(r, &db.features_)) return corrupt();
  if (db.features_.size() != num_records) {
    return Status::IoError("feature table size mismatch");
  }
  db.channel_features_[0] = db.features_;

  std::uint8_t has_channels = 0;
  if (!r.Pod(&has_channels)) return corrupt();
  if (has_channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      if (!ReadFeatureTable(r, &db.channel_features_[c])) return corrupt();
    }
  }
  std::string normalizer_blob;
  if (!r.Str(&normalizer_blob)) return corrupt();
  StatusOr<FeatureNormalizer> normalizer =
      FeatureNormalizer::Deserialize(normalizer_blob);
  if (!normalizer.ok()) return normalizer.status();
  db.normalizer_ = std::move(normalizer).value();
  db.channel_normalizers_[0] = db.normalizer_;
  if (has_channels) {
    for (int c = 1; c < kNumViewpointChannels; ++c) {
      if (!r.Str(&normalizer_blob)) return corrupt();
      StatusOr<FeatureNormalizer> n =
          FeatureNormalizer::Deserialize(normalizer_blob);
      if (!n.ok()) return n.status();
      db.channel_normalizers_[c] = std::move(n).value();
    }
  }
  return db;
}

Status DatabaseIo::SaveDatabase(const ImageDatabase& db,
                                const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const std::string bytes = SerializeDatabase(db);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<ImageDatabase> DatabaseIo::LoadDatabase(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return DeserializeDatabase(ss.str());
}

}  // namespace qdcbir
