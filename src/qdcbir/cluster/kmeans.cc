#include "qdcbir/cluster/kmeans.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "qdcbir/core/distance.h"

namespace qdcbir {

namespace {

/// k-means++ seeding: first centroid uniform, then proportional to squared
/// distance from the nearest chosen centroid.
std::vector<FeatureVector> SeedPlusPlus(
    const std::vector<FeatureVector>& points, int k, Rng& rng) {
  std::vector<FeatureVector> centroids;
  centroids.reserve(static_cast<std::size_t>(k));
  centroids.push_back(points[rng.UniformInt(points.size())]);

  std::vector<double> d2(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    d2[i] = SquaredL2(points[i], centroids[0]);
  }
  while (static_cast<int>(centroids.size()) < k) {
    double total = 0.0;
    for (double d : d2) total += d;
    std::size_t chosen = 0;
    if (total <= 0.0) {
      // All points coincide with chosen centroids; pick uniformly.
      chosen = rng.UniformInt(points.size());
    } else {
      double r = rng.UniformDouble() * total;
      for (std::size_t i = 0; i < points.size(); ++i) {
        r -= d2[i];
        if (r <= 0.0) {
          chosen = i;
          break;
        }
      }
    }
    centroids.push_back(points[chosen]);
    for (std::size_t i = 0; i < points.size(); ++i) {
      d2[i] = std::min(d2[i], SquaredL2(points[i], centroids.back()));
    }
  }
  return centroids;
}

KMeansResult LloydRun(const std::vector<FeatureVector>& points, int k,
                      const KMeansOptions& options, Rng& rng) {
  const std::size_t n = points.size();
  const std::size_t dim = points.front().dim();

  KMeansResult result;
  result.centroids = SeedPlusPlus(points, k, rng);
  result.assignments.assign(n, 0);
  result.cluster_sizes.assign(static_cast<std::size_t>(k), 0);

  std::vector<FeatureVector> sums(static_cast<std::size_t>(k));
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter + 1;
    // Assignment step.
    double inertia = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (int c = 0; c < k; ++c) {
        const double d = SquaredL2(points[i], result.centroids[c]);
        if (d < best) {
          best = d;
          best_c = c;
        }
      }
      result.assignments[i] = best_c;
      inertia += best;
    }
    result.inertia = inertia;

    // Update step.
    for (int c = 0; c < k; ++c) {
      sums[c] = FeatureVector(dim);
      result.cluster_sizes[c] = 0;
    }
    for (std::size_t i = 0; i < n; ++i) {
      sums[result.assignments[i]] += points[i];
      result.cluster_sizes[result.assignments[i]] += 1;
    }

    double movement = 0.0;
    for (int c = 0; c < k; ++c) {
      FeatureVector new_centroid(dim);
      if (result.cluster_sizes[c] == 0) {
        // Reseed an empty cluster at the point farthest from its centroid.
        std::size_t farthest = 0;
        double fd = -1.0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d =
              SquaredL2(points[i], result.centroids[result.assignments[i]]);
          if (d > fd) {
            fd = d;
            farthest = i;
          }
        }
        new_centroid = points[farthest];
      } else {
        new_centroid =
            sums[c] * (1.0 / static_cast<double>(result.cluster_sizes[c]));
      }
      movement += SquaredL2(new_centroid, result.centroids[c]);
      result.centroids[c] = std::move(new_centroid);
    }
    if (movement < options.tolerance) break;
  }

  // Final assignment against the last centroid update.
  double inertia = 0.0;
  std::fill(result.cluster_sizes.begin(), result.cluster_sizes.end(), 0u);
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (int c = 0; c < k; ++c) {
      const double d = SquaredL2(points[i], result.centroids[c]);
      if (d < best) {
        best = d;
        best_c = c;
      }
    }
    result.assignments[i] = best_c;
    result.cluster_sizes[best_c] += 1;
    inertia += best;
  }
  result.inertia = inertia;
  return result;
}

}  // namespace

StatusOr<KMeansResult> RunKMeans(const std::vector<FeatureVector>& points,
                                 const KMeansOptions& options) {
  if (points.empty()) {
    return Status::InvalidArgument("k-means requires at least one point");
  }
  if (options.k <= 0) {
    return Status::InvalidArgument("k-means requires k > 0");
  }
  const std::size_t dim = points.front().dim();
  for (const FeatureVector& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("k-means points have mixed dimensions");
    }
  }
  const int k = std::min<int>(options.k, static_cast<int>(points.size()));

  Rng rng(options.seed);
  KMeansResult best;
  bool have_best = false;
  const int n_init = std::max(1, options.n_init);
  for (int run = 0; run < n_init; ++run) {
    Rng run_rng = rng.Fork();
    KMeansResult r = LloydRun(points, k, options, run_rng);
    if (!have_best || r.inertia < best.inertia) {
      best = std::move(r);
      have_best = true;
    }
  }
  return best;
}

std::size_t NearestPointIndex(const std::vector<FeatureVector>& points,
                              const FeatureVector& target) {
  assert(!points.empty());
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    const double d = SquaredL2(points[i], target);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace qdcbir
