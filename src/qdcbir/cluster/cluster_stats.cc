#include "qdcbir/cluster/cluster_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "qdcbir/core/distance.h"

namespace qdcbir {

namespace {

/// Groups point indices by label, skipping negative labels.
std::map<int, std::vector<std::size_t>> GroupByLabel(
    const std::vector<int>& labels) {
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] >= 0) groups[labels[i]].push_back(i);
  }
  return groups;
}

std::map<int, FeatureVector> Centroids(
    const std::vector<FeatureVector>& points,
    const std::map<int, std::vector<std::size_t>>& groups) {
  std::map<int, FeatureVector> centroids;
  for (const auto& [label, idx] : groups) {
    FeatureVector sum(points.front().dim());
    for (std::size_t i : idx) sum += points[i];
    sum *= 1.0 / static_cast<double>(idx.size());
    centroids.emplace(label, std::move(sum));
  }
  return centroids;
}

}  // namespace

ClusterSeparationStats ComputeSeparation(
    const std::vector<FeatureVector>& points, const std::vector<int>& labels) {
  ClusterSeparationStats stats;
  if (points.empty() || points.size() != labels.size()) return stats;

  const auto groups = GroupByLabel(labels);
  const auto centroids = Centroids(points, groups);
  stats.num_clusters = groups.size();
  if (groups.empty()) return stats;

  double intra_sum = 0.0;
  std::size_t intra_count = 0;
  for (const auto& [label, idx] : groups) {
    const FeatureVector& c = centroids.at(label);
    for (std::size_t i : idx) {
      intra_sum += std::sqrt(SquaredL2(points[i], c));
      ++intra_count;
    }
  }
  stats.mean_intra_radius = intra_count > 0 ? intra_sum / intra_count : 0.0;

  double min_inter = std::numeric_limits<double>::infinity();
  double inter_sum = 0.0;
  std::size_t inter_count = 0;
  for (auto it1 = centroids.begin(); it1 != centroids.end(); ++it1) {
    for (auto it2 = std::next(it1); it2 != centroids.end(); ++it2) {
      const double d = std::sqrt(SquaredL2(it1->second, it2->second));
      min_inter = std::min(min_inter, d);
      inter_sum += d;
      ++inter_count;
    }
  }
  if (inter_count > 0) {
    stats.min_inter_centroid_dist = min_inter;
    stats.mean_inter_centroid_dist = inter_sum / inter_count;
    if (stats.mean_intra_radius > 0.0) {
      stats.separation_ratio =
          stats.min_inter_centroid_dist / (2.0 * stats.mean_intra_radius);
    }
  }
  return stats;
}

double MeanSilhouette(const std::vector<FeatureVector>& points,
                      const std::vector<int>& labels) {
  if (points.size() != labels.size() || points.size() < 2) return 0.0;
  const auto groups = GroupByLabel(labels);
  if (groups.size() < 2) return 0.0;

  double total = 0.0;
  std::size_t counted = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (labels[i] < 0) continue;
    double a = 0.0;
    double b = std::numeric_limits<double>::infinity();
    for (const auto& [label, idx] : groups) {
      double sum = 0.0;
      std::size_t cnt = 0;
      for (std::size_t j : idx) {
        if (j == i) continue;
        sum += std::sqrt(SquaredL2(points[i], points[j]));
        ++cnt;
      }
      if (label == labels[i]) {
        if (cnt == 0) {
          a = -1.0;  // singleton cluster: silhouette defined as 0
        } else {
          a = sum / cnt;
        }
      } else if (cnt > 0) {
        b = std::min(b, sum / cnt);
      }
    }
    if (a < 0.0 || !std::isfinite(b)) continue;  // singleton or degenerate
    const double denom = std::max(a, b);
    total += denom > 0.0 ? (b - a) / denom : 0.0;
    ++counted;
  }
  return counted > 0 ? total / counted : 0.0;
}

double DaviesBouldinIndex(const std::vector<FeatureVector>& points,
                          const std::vector<int>& labels) {
  if (points.size() != labels.size() || points.empty()) return 0.0;
  const auto groups = GroupByLabel(labels);
  if (groups.size() < 2) return 0.0;
  const auto centroids = Centroids(points, groups);

  std::map<int, double> scatter;
  for (const auto& [label, idx] : groups) {
    double sum = 0.0;
    for (std::size_t i : idx) {
      sum += std::sqrt(SquaredL2(points[i], centroids.at(label)));
    }
    scatter[label] = sum / static_cast<double>(idx.size());
  }

  double db = 0.0;
  for (const auto& [li, ci] : centroids) {
    double worst = 0.0;
    for (const auto& [lj, cj] : centroids) {
      if (li == lj) continue;
      const double d = std::sqrt(SquaredL2(ci, cj));
      if (d <= 0.0) continue;
      worst = std::max(worst, (scatter.at(li) + scatter.at(lj)) / d);
    }
    db += worst;
  }
  return db / static_cast<double>(centroids.size());
}

}  // namespace qdcbir
