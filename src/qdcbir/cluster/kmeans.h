#ifndef QDCBIR_CLUSTER_KMEANS_H_
#define QDCBIR_CLUSTER_KMEANS_H_

#include <cstdint>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/rng.h"
#include "qdcbir/core/status.h"

namespace qdcbir {

/// Options for the Lloyd k-means algorithm.
struct KMeansOptions {
  int k = 8;                ///< number of clusters (clamped to |points|)
  int max_iterations = 50;  ///< Lloyd iteration cap
  int n_init = 1;           ///< restarts; the lowest-inertia run wins
  double tolerance = 1e-6;  ///< stop when centroid movement^2 falls below this
  std::uint64_t seed = 42;  ///< seeding for k-means++ initialization
};

/// Result of a k-means run.
struct KMeansResult {
  std::vector<FeatureVector> centroids;    ///< k centroids
  std::vector<int> assignments;            ///< cluster index per input point
  std::vector<std::size_t> cluster_sizes;  ///< points per cluster
  double inertia = 0.0;  ///< sum of squared distances to assigned centroids
  int iterations = 0;    ///< Lloyd iterations of the winning run
};

/// Runs k-means (k-means++ seeding, Lloyd iterations, empty clusters reseeded
/// to the farthest point). Fails on an empty input or non-positive k.
///
/// This is the unsupervised clustering step the paper's RFS construction uses
/// to pick representative images at every tree node.
StatusOr<KMeansResult> RunKMeans(const std::vector<FeatureVector>& points,
                                 const KMeansOptions& options);

/// Returns the index of the point nearest to `target` (squared L2).
/// `points` must be non-empty.
std::size_t NearestPointIndex(const std::vector<FeatureVector>& points,
                              const FeatureVector& target);

}  // namespace qdcbir

#endif  // QDCBIR_CLUSTER_KMEANS_H_
