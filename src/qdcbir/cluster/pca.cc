#include "qdcbir/cluster/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qdcbir {

void JacobiEigenSymmetric(std::vector<double> a, std::size_t n,
                          std::vector<double>& eigenvalues,
                          std::vector<std::vector<double>>& eigenvectors) {
  // V starts as identity; rows of V end up as eigenvectors.
  std::vector<double> v(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = 1.0;

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a[i * n + j] * a[i * n + j];
    }
    return s;
  };

  const int kMaxSweeps = 64;
  for (int sweep = 0; sweep < kMaxSweeps && off_diagonal_norm() > 1e-18;
       ++sweep) {
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a[p * n + q];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = a[p * n + p];
        const double aqq = a[q * n + q];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a[i * n + p];
          const double aiq = a[i * n + q];
          a[i * n + p] = c * aip - s * aiq;
          a[i * n + q] = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a[p * n + i];
          const double aqi = a[q * n + i];
          a[p * n + i] = c * api - s * aqi;
          a[q * n + i] = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v[p * n + i];
          const double viq = v[q * n + i];
          v[p * n + i] = c * vip - s * viq;
          v[q * n + i] = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    return a[x * n + x] > a[y * n + y];
  });

  eigenvalues.resize(n);
  eigenvectors.assign(n, std::vector<double>(n));
  for (std::size_t r = 0; r < n; ++r) {
    eigenvalues[r] = a[order[r] * n + order[r]];
    for (std::size_t i = 0; i < n; ++i) {
      eigenvectors[r][i] = v[order[r] * n + i];
    }
  }
}

Status Pca::Fit(const std::vector<FeatureVector>& points,
                std::size_t num_components) {
  if (points.size() < 2) {
    return Status::InvalidArgument("PCA requires at least two points");
  }
  const std::size_t dim = points.front().dim();
  for (const FeatureVector& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("PCA points have mixed dimensions");
    }
  }
  if (num_components == 0 || num_components > dim) {
    return Status::InvalidArgument("invalid PCA component count");
  }

  mean_ = FeatureVector::Centroid(points);

  std::vector<double> cov(dim * dim, 0.0);
  for (const FeatureVector& p : points) {
    for (std::size_t i = 0; i < dim; ++i) {
      const double di = p[i] - mean_[i];
      for (std::size_t j = i; j < dim; ++j) {
        cov[i * dim + j] += di * (p[j] - mean_[j]);
      }
    }
  }
  const double inv_n = 1.0 / static_cast<double>(points.size());
  for (std::size_t i = 0; i < dim; ++i) {
    for (std::size_t j = i; j < dim; ++j) {
      cov[i * dim + j] *= inv_n;
      cov[j * dim + i] = cov[i * dim + j];
    }
  }

  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
  JacobiEigenSymmetric(cov, dim, eigenvalues, eigenvectors);

  total_variance_ = 0.0;
  for (double ev : eigenvalues) total_variance_ += std::max(0.0, ev);

  components_.clear();
  explained_variance_.clear();
  for (std::size_t c = 0; c < num_components; ++c) {
    components_.emplace_back(eigenvectors[c]);
    explained_variance_.push_back(std::max(0.0, eigenvalues[c]));
  }
  return Status::Ok();
}

StatusOr<FeatureVector> Pca::Transform(const FeatureVector& point) const {
  if (!fitted()) return Status::FailedPrecondition("PCA not fitted");
  if (point.dim() != input_dim()) {
    return Status::InvalidArgument("dimension mismatch in PCA Transform");
  }
  FeatureVector centered = point - mean_;
  FeatureVector out(components_.size());
  for (std::size_t c = 0; c < components_.size(); ++c) {
    out[c] = components_[c].Dot(centered);
  }
  return out;
}

StatusOr<std::vector<FeatureVector>> Pca::TransformBatch(
    const std::vector<FeatureVector>& points) const {
  std::vector<FeatureVector> out;
  out.reserve(points.size());
  for (const FeatureVector& p : points) {
    StatusOr<FeatureVector> t = Transform(p);
    if (!t.ok()) return t.status();
    out.push_back(std::move(t).value());
  }
  return out;
}

double Pca::explained_variance_ratio() const {
  if (total_variance_ <= 0.0) return 0.0;
  double kept = 0.0;
  for (double ev : explained_variance_) kept += ev;
  return kept / total_variance_;
}

}  // namespace qdcbir
