#ifndef QDCBIR_CLUSTER_CLUSTER_STATS_H_
#define QDCBIR_CLUSTER_CLUSTER_STATS_H_

#include <vector>

#include "qdcbir/core/feature_vector.h"

namespace qdcbir {

/// Summary geometry of a labeled clustering, used to verify that the
/// synthetic dataset reproduces the paper's "semantic scattering" premise
/// (Figure 1): sub-concepts of one concept form well-separated clusters.
struct ClusterSeparationStats {
  std::size_t num_clusters = 0;
  double mean_intra_radius = 0.0;        ///< mean distance to own centroid
  double min_inter_centroid_dist = 0.0;  ///< closest pair of centroids
  double mean_inter_centroid_dist = 0.0;
  /// min inter-centroid distance / (2 * mean intra radius); > 1 means the
  /// closest pair of clusters is still separated by more than their radii.
  double separation_ratio = 0.0;
};

/// Computes separation stats for points labeled 0..k-1. Labels outside the
/// observed range and empty clusters are skipped.
ClusterSeparationStats ComputeSeparation(
    const std::vector<FeatureVector>& points, const std::vector<int>& labels);

/// Mean silhouette coefficient of a labeled clustering (in [-1, 1], higher
/// is better separated). O(n^2); intended for evaluation-sized inputs.
double MeanSilhouette(const std::vector<FeatureVector>& points,
                      const std::vector<int>& labels);

/// Davies-Bouldin index (lower is better; 0 is ideal).
double DaviesBouldinIndex(const std::vector<FeatureVector>& points,
                          const std::vector<int>& labels);

}  // namespace qdcbir

#endif  // QDCBIR_CLUSTER_CLUSTER_STATS_H_
