#ifndef QDCBIR_CLUSTER_PCA_H_
#define QDCBIR_CLUSTER_PCA_H_

#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"

namespace qdcbir {

/// Principal Component Analysis over feature vectors.
///
/// Used to reproduce the paper's Figure 1: projecting the 37-D feature space
/// onto its top 3 principal components to visualize that sub-concepts of one
/// semantic concept ("white sedan" side/front/back/angle views) form distinct
/// clusters.
///
/// Implementation: covariance matrix + cyclic Jacobi eigendecomposition
/// (adequate and exact for the 37x37 matrices this library encounters).
class Pca {
 public:
  Pca() = default;

  /// Fits the PCA on `points` (all with equal dimensionality, at least two
  /// points) and keeps the top `num_components` components.
  Status Fit(const std::vector<FeatureVector>& points, std::size_t num_components);

  bool fitted() const { return !components_.empty(); }
  std::size_t input_dim() const { return mean_.dim(); }
  std::size_t num_components() const { return components_.size(); }

  /// Projects one point onto the principal subspace.
  StatusOr<FeatureVector> Transform(const FeatureVector& point) const;

  /// Projects a batch of points.
  StatusOr<std::vector<FeatureVector>> TransformBatch(
      const std::vector<FeatureVector>& points) const;

  /// Eigenvalue of each kept component, in decreasing order.
  const std::vector<double>& explained_variance() const {
    return explained_variance_;
  }

  /// Fraction of total variance captured by the kept components, in [0, 1].
  double explained_variance_ratio() const;

  /// The kept principal axes (unit vectors in input space).
  const std::vector<FeatureVector>& components() const { return components_; }

 private:
  FeatureVector mean_;
  std::vector<FeatureVector> components_;
  std::vector<double> explained_variance_;
  double total_variance_ = 0.0;
};

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (row-major, n x n).
/// Returns eigenvalues (descending) and matching unit eigenvectors as rows of
/// `eigenvectors`. Exposed for testing.
void JacobiEigenSymmetric(std::vector<double> matrix, std::size_t n,
                          std::vector<double>& eigenvalues,
                          std::vector<std::vector<double>>& eigenvectors);

}  // namespace qdcbir

#endif  // QDCBIR_CLUSTER_PCA_H_
