#ifndef QDCBIR_INDEX_RSTAR_TREE_H_
#define QDCBIR_INDEX_RSTAR_TREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/index/rect.h"

namespace qdcbir {

/// Configuration of an R*-tree.
struct RStarTreeOptions {
  /// Maximum entries per node. The paper's prototype uses 100.
  std::size_t max_entries = 100;
  /// Minimum entries per node (except the root). The paper uses 70; the
  /// classical default is 40% of max.
  std::size_t min_entries = 40;
  /// Fraction of entries removed during forced reinsertion (Beckmann et al.
  /// recommend 30%).
  double reinsert_fraction = 0.3;

  Status Validate() const;
};

/// One k-NN match: an image id and its (squared) distance to the query.
struct KnnMatch {
  ImageId id = kInvalidImageId;
  double distance_squared = 0.0;
};

/// Work counters of a single search, in units that map onto the paper's
/// disk-based cost model: every visited node is one page access.
struct SearchStats {
  std::size_t nodes_visited = 0;    ///< tree nodes opened ("disk accesses")
  std::size_t entries_scanned = 0;  ///< entries compared inside those nodes
};

/// R*-tree (Beckmann, Kriegel, Schneider, Seeger; SIGMOD'90) over point data
/// in a feature space of fixed (but runtime-chosen) dimensionality.
///
/// This is the hierarchical clustering substrate of the paper's RFS
/// structure: every tree node is a cluster of images, and the RFS builder
/// walks `root()` / `node_*` accessors to attach representative images.
///
/// Nodes are arena-allocated and addressed by stable `NodeId`s so external
/// structures (the RFS tree) can reference them.
class RStarTree {
 public:
  /// An entry of an internal node (child subtree) or leaf node (data point).
  struct Entry {
    Rect rect;
    NodeId child = kInvalidNodeId;  ///< valid for internal entries
    ImageId data = kInvalidImageId; ///< valid for leaf entries
  };

  /// A tree node. `level` 0 means leaf.
  struct Node {
    int level = 0;
    std::vector<Entry> entries;
    bool IsLeaf() const { return level == 0; }
  };

  explicit RStarTree(std::size_t dim,
                     const RStarTreeOptions& options = RStarTreeOptions());

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) = default;
  RStarTree& operator=(RStarTree&&) = default;

  std::size_t dim() const { return dim_; }
  const RStarTreeOptions& options() const { return options_; }
  std::size_t size() const { return size_; }
  int height() const;  ///< number of levels (1 for a root-only tree)

  /// Inserts a point with the given id. Duplicate ids are rejected only by
  /// Delete semantics (the tree itself does not index ids); callers keep ids
  /// unique.
  Status Insert(const FeatureVector& point, ImageId id);

  /// Removes the entry with the given point and id. Returns NotFound if the
  /// exact (point, id) pair is absent.
  Status Delete(const FeatureVector& point, ImageId id);

  /// All data ids whose points fall inside `range`.
  std::vector<ImageId> RangeSearch(const Rect& range) const;

  /// The k nearest data points to `query`, ascending by distance
  /// (best-first search with MINDIST pruning).
  std::vector<KnnMatch> KnnSearch(const FeatureVector& query,
                                  std::size_t k) const;

  /// The k nearest data points *within the subtree rooted at `subtree`*.
  /// This is the paper's "localized k-NN computation": the final round of
  /// query decomposition searches only the relevant subclusters.
  /// `stats`, when non-null, accumulates the node/entry visit counts.
  std::vector<KnnMatch> KnnSearchInSubtree(NodeId subtree,
                                           const FeatureVector& query,
                                           std::size_t k,
                                           SearchStats* stats = nullptr) const;

  /// Node accessors for structures built on top of the tree (RFS).
  NodeId root() const { return root_; }
  const Node& node(NodeId id) const;
  /// The MBR of a node (union of its entries; empty rect for empty root).
  Rect NodeRect(NodeId id) const;
  /// Ids of all data points in the subtree rooted at `id`.
  std::vector<ImageId> CollectSubtree(NodeId id) const;
  /// All node ids, grouped by level (levels[0] = leaves).
  std::vector<std::vector<NodeId>> NodesByLevel() const;

  /// Structural statistics, for the build benchmarks.
  struct Stats {
    std::size_t node_count = 0;
    std::size_t leaf_count = 0;
    int height = 0;
    double avg_leaf_occupancy = 0.0;  ///< entries / max_entries over leaves
  };
  Stats ComputeStats() const;

  /// Verifies structural invariants (MBR containment, occupancy bounds,
  /// level consistency, data count). Intended for tests.
  Status CheckInvariants() const;

 private:
  friend class RfsSerializer;
  friend class ClusteredTreeBuilder;
  friend StatusOr<RStarTree> BulkLoadRStarTree(
      const std::vector<FeatureVector>& points, const std::vector<ImageId>& ids,
      std::size_t dim, const RStarTreeOptions& options, double fill_factor);

  NodeId AllocateNode(int level);
  void FreeNode(NodeId id);
  Node& mutable_node(NodeId id) { return *nodes_[id]; }

  /// Descends from the root to `target_level`, choosing the subtree per the
  /// R* criteria. Records the path (node ids from root to the chosen node).
  NodeId ChooseSubtree(const Rect& rect, int target_level,
                       std::vector<NodeId>& path) const;

  /// Core insertion of an entry at `target_level`, with overflow handling.
  /// `reinsert_done` flags which levels already did forced reinsertion
  /// during the current top-level operation.
  void InsertEntry(const Entry& entry, int target_level,
                   std::vector<bool>& reinsert_done);

  /// Handles an overflowing node: forced reinsertion (once per level per
  /// top-level insert) or split.
  void OverflowTreatment(NodeId node_id, std::vector<NodeId>& path,
                         std::vector<bool>& reinsert_done);

  void ForcedReinsert(NodeId node_id, std::vector<NodeId>& path,
                      std::vector<bool>& reinsert_done);

  /// Splits `node_id`; the new sibling is linked into the parent (or a new
  /// root is grown). May recursively overflow ancestors.
  void Split(NodeId node_id, std::vector<NodeId>& path,
             std::vector<bool>& reinsert_done);

  /// R* split heuristics.
  static void ChooseSplitAxisAndIndex(const std::vector<Entry>& entries,
                                      std::size_t min_entries,
                                      std::size_t* split_axis,
                                      std::size_t* split_index,
                                      std::vector<std::size_t>* order);

  /// Recomputes MBRs along `path` after a child changed.
  void AdjustPathRects(const std::vector<NodeId>& path);

  /// Rebuilds the parent map entry for all children of `id`.
  void ReparentChildren(NodeId id);

  Rect ComputeNodeRect(const Node& n) const;

  std::size_t dim_;
  RStarTreeOptions options_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<NodeId> free_nodes_;
  std::vector<NodeId> parent_;  ///< parent id per node (root -> invalid)
  NodeId root_ = kInvalidNodeId;
  std::size_t size_ = 0;
};

}  // namespace qdcbir

#endif  // QDCBIR_INDEX_RSTAR_TREE_H_
