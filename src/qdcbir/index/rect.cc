#include "qdcbir/index/rect.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace qdcbir {

Rect::Rect(const FeatureVector& point)
    : lo_(point.values()), hi_(point.values()) {}

Rect::Rect(std::vector<double> lo, std::vector<double> hi)
    : lo_(std::move(lo)), hi_(std::move(hi)) {
  assert(lo_.size() == hi_.size());
#ifndef NDEBUG
  for (std::size_t i = 0; i < lo_.size(); ++i) assert(lo_[i] <= hi_[i]);
#endif
}

double Rect::Area() const {
  double area = 1.0;
  for (std::size_t i = 0; i < dim(); ++i) area *= hi_[i] - lo_[i];
  return area;
}

double Rect::Margin() const {
  double margin = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) margin += hi_[i] - lo_[i];
  return margin;
}

double Rect::Overlap(const Rect& other) const {
  assert(dim() == other.dim());
  double volume = 1.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double lo = std::max(lo_[i], other.lo_[i]);
    const double hi = std::min(hi_[i], other.hi_[i]);
    if (hi <= lo) return 0.0;
    volume *= hi - lo;
  }
  return volume;
}

double Rect::Enlargement(const Rect& other) const {
  return Union(*this, other).Area() - Area();
}

bool Rect::Contains(const Rect& other) const {
  assert(dim() == other.dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    if (other.lo_[i] < lo_[i] || other.hi_[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::ContainsPoint(const FeatureVector& point) const {
  assert(dim() == point.dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    if (point[i] < lo_[i] || point[i] > hi_[i]) return false;
  }
  return true;
}

bool Rect::Intersects(const Rect& other) const {
  assert(dim() == other.dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    if (other.hi_[i] < lo_[i] || other.lo_[i] > hi_[i]) return false;
  }
  return true;
}

void Rect::Extend(const Rect& other) {
  if (empty()) {
    *this = other;
    return;
  }
  assert(dim() == other.dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    lo_[i] = std::min(lo_[i], other.lo_[i]);
    hi_[i] = std::max(hi_[i], other.hi_[i]);
  }
}

Rect Rect::Union(const Rect& a, const Rect& b) {
  Rect out = a;
  out.Extend(b);
  return out;
}

FeatureVector Rect::Center() const {
  FeatureVector c(dim());
  for (std::size_t i = 0; i < dim(); ++i) c[i] = (lo_[i] + hi_[i]) / 2.0;
  return c;
}

double Rect::Diagonal() const {
  double sum = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    const double e = hi_[i] - lo_[i];
    sum += e * e;
  }
  return std::sqrt(sum);
}

double Rect::MinDistSquared(const FeatureVector& point) const {
  assert(dim() == point.dim());
  double sum = 0.0;
  for (std::size_t i = 0; i < dim(); ++i) {
    double d = 0.0;
    if (point[i] < lo_[i]) {
      d = lo_[i] - point[i];
    } else if (point[i] > hi_[i]) {
      d = point[i] - hi_[i];
    }
    sum += d * d;
  }
  return sum;
}

std::string Rect::ToString() const {
  std::string out = "{";
  char buf[64];
  for (std::size_t i = 0; i < dim(); ++i) {
    std::snprintf(buf, sizeof(buf), "[%.3g, %.3g]", lo_[i], hi_[i]);
    if (i > 0) out += ", ";
    out += buf;
  }
  out += "}";
  return out;
}

}  // namespace qdcbir
