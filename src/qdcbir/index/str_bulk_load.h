#ifndef QDCBIR_INDEX_STR_BULK_LOAD_H_
#define QDCBIR_INDEX_STR_BULK_LOAD_H_

#include <vector>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/status.h"
#include "qdcbir/core/types.h"
#include "qdcbir/index/rstar_tree.h"

namespace qdcbir {

/// Bulk-loads an R*-tree from a point set.
///
/// Strategy: top-down greedy partitioning (TGS/VAMSplit style, a
/// high-dimensional generalization of Sort-Tile-Recursive): points are
/// recursively median-partitioned along the axis of largest spread until
/// partitions fit in a leaf; upper levels are built the same way over child
/// MBR centers. This is far faster than one-at-a-time insertion when
/// populating large databases for the scalability experiments (Figures
/// 10-11), and produces well-clustered leaves for the RFS hierarchy.
///
/// `fill_factor` in (0, 1] controls target leaf occupancy relative to
/// `options.max_entries`.
///
/// `points` and `ids` must have equal, non-zero length; all points must have
/// dimensionality `dim`.
StatusOr<RStarTree> BulkLoadRStarTree(
    const std::vector<FeatureVector>& points, const std::vector<ImageId>& ids,
    std::size_t dim, const RStarTreeOptions& options = RStarTreeOptions(),
    double fill_factor = 0.85);

}  // namespace qdcbir

#endif  // QDCBIR_INDEX_STR_BULK_LOAD_H_
