#ifndef QDCBIR_INDEX_RECT_H_
#define QDCBIR_INDEX_RECT_H_

#include <cstddef>
#include <string>
#include <vector>

#include "qdcbir/core/feature_vector.h"

namespace qdcbir {

/// Axis-aligned hyper-rectangle (minimum bounding rectangle) of dynamic
/// dimensionality, the geometric primitive of the R*-tree.
class Rect {
 public:
  Rect() = default;

  /// Degenerate rectangle covering exactly `point`.
  explicit Rect(const FeatureVector& point);

  /// Rectangle with explicit bounds; requires lo[i] <= hi[i] for all i.
  Rect(std::vector<double> lo, std::vector<double> hi);

  std::size_t dim() const { return lo_.size(); }
  bool empty() const { return lo_.empty(); }

  double lo(std::size_t i) const { return lo_[i]; }
  double hi(std::size_t i) const { return hi_[i]; }
  const std::vector<double>& lo() const { return lo_; }
  const std::vector<double>& hi() const { return hi_; }

  /// Hyper-volume (product of extents). Degenerate rects have area 0.
  double Area() const;

  /// Margin: sum of extents (the R*-tree split heuristic's "perimeter").
  double Margin() const;

  /// Overlap volume with `other` (0 when disjoint).
  double Overlap(const Rect& other) const;

  /// Growth in area needed to also cover `other`.
  double Enlargement(const Rect& other) const;

  /// Whether this rect fully contains `other` / `point`.
  bool Contains(const Rect& other) const;
  bool ContainsPoint(const FeatureVector& point) const;

  /// Whether this rect intersects `other`.
  bool Intersects(const Rect& other) const;

  /// Extends this rect to cover `other`.
  void Extend(const Rect& other);

  /// Smallest rect covering both inputs.
  static Rect Union(const Rect& a, const Rect& b);

  /// Geometric center.
  FeatureVector Center() const;

  /// Euclidean length of the main diagonal. This is the denominator of the
  /// paper's boundary-expansion test (distance-to-center / diagonal > t).
  double Diagonal() const;

  /// MINDIST: squared Euclidean distance from `point` to the nearest point
  /// of the rect (0 when inside). Drives best-first k-NN search.
  double MinDistSquared(const FeatureVector& point) const;

  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  std::vector<double> lo_;
  std::vector<double> hi_;
};

}  // namespace qdcbir

#endif  // QDCBIR_INDEX_RECT_H_
