#include "qdcbir/index/str_bulk_load.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace qdcbir {

namespace {

/// Recursively partitions `indices[begin, end)` into `groups` balanced
/// groups, splitting along the axis of largest spread. Appends the group
/// boundaries (as begin offsets) to `bounds`.
void PartitionBalanced(std::vector<std::size_t>& indices, std::size_t begin,
                       std::size_t end, std::size_t groups,
                       const std::vector<const FeatureVector*>& points,
                       std::vector<std::pair<std::size_t, std::size_t>>& out) {
  if (groups <= 1 || end - begin <= 1) {
    out.emplace_back(begin, end);
    return;
  }
  // Axis of largest spread within this partition.
  const std::size_t dim = points[indices[begin]]->dim();
  std::size_t best_axis = 0;
  double best_spread = -1.0;
  for (std::size_t a = 0; a < dim; ++a) {
    double lo = (*points[indices[begin]])[a];
    double hi = lo;
    for (std::size_t i = begin + 1; i < end; ++i) {
      const double v = (*points[indices[i]])[a];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi - lo > best_spread) {
      best_spread = hi - lo;
      best_axis = a;
    }
  }

  const std::size_t left_groups = groups / 2;
  const std::size_t n = end - begin;
  const std::size_t left_count = n * left_groups / groups;

  std::nth_element(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                   indices.begin() + static_cast<std::ptrdiff_t>(begin +
                                                                 left_count),
                   indices.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     return (*points[a])[best_axis] < (*points[b])[best_axis];
                   });

  PartitionBalanced(indices, begin, begin + left_count, left_groups, points,
                    out);
  PartitionBalanced(indices, begin + left_count, end, groups - left_groups,
                    points, out);
}

}  // namespace

StatusOr<RStarTree> BulkLoadRStarTree(const std::vector<FeatureVector>& points,
                                      const std::vector<ImageId>& ids,
                                      std::size_t dim,
                                      const RStarTreeOptions& options,
                                      double fill_factor) {
  QDCBIR_RETURN_IF_ERROR(options.Validate());
  if (points.empty() || points.size() != ids.size()) {
    return Status::InvalidArgument(
        "bulk load requires equal-length, non-empty points and ids");
  }
  for (const FeatureVector& p : points) {
    if (p.dim() != dim) {
      return Status::InvalidArgument("point dimensionality mismatch");
    }
  }
  if (fill_factor <= 0.0 || fill_factor > 1.0) {
    return Status::InvalidArgument("fill_factor must be in (0, 1]");
  }

  RStarTree tree(dim, options);
  tree.nodes_.clear();
  tree.parent_.clear();
  tree.free_nodes_.clear();

  const std::size_t capacity = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::floor(fill_factor *
                        static_cast<double>(options.max_entries))));
  // Keep every group at or above the occupancy minimum the invariant checker
  // enforces: cap the group count at n / min_entries.
  const std::size_t min_fill =
      std::min(options.min_entries, (options.max_entries + 1) / 2);
  auto group_count = [&](std::size_t n) {
    std::size_t g = (n + capacity - 1) / capacity;
    if (min_fill > 0) g = std::min(g, std::max<std::size_t>(1, n / min_fill));
    return std::max<std::size_t>(1, g);
  };

  // --- Leaf level ------------------------------------------------------
  std::vector<const FeatureVector*> point_ptrs(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) point_ptrs[i] = &points[i];
  std::vector<std::size_t> indices(points.size());
  std::iota(indices.begin(), indices.end(), 0u);

  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  PartitionBalanced(indices, 0, indices.size(), group_count(points.size()),
                    point_ptrs, bounds);

  std::vector<NodeId> level_nodes;
  std::vector<FeatureVector> level_centers;
  for (const auto& [begin, end] : bounds) {
    const NodeId nid = tree.AllocateNode(/*level=*/0);
    RStarTree::Node& n = tree.mutable_node(nid);
    for (std::size_t i = begin; i < end; ++i) {
      RStarTree::Entry e;
      e.rect = Rect(points[indices[i]]);
      e.data = ids[indices[i]];
      n.entries.push_back(std::move(e));
    }
    level_nodes.push_back(nid);
    level_centers.push_back(tree.NodeRect(nid).Center());
  }

  // --- Upper levels ------------------------------------------------------
  int level = 1;
  while (level_nodes.size() > 1) {
    std::vector<const FeatureVector*> center_ptrs(level_centers.size());
    for (std::size_t i = 0; i < level_centers.size(); ++i) {
      center_ptrs[i] = &level_centers[i];
    }
    std::vector<std::size_t> node_indices(level_nodes.size());
    std::iota(node_indices.begin(), node_indices.end(), 0u);
    bounds.clear();
    PartitionBalanced(node_indices, 0, node_indices.size(),
                      group_count(level_nodes.size()), center_ptrs, bounds);

    std::vector<NodeId> next_nodes;
    std::vector<FeatureVector> next_centers;
    for (const auto& [begin, end] : bounds) {
      const NodeId nid = tree.AllocateNode(level);
      RStarTree::Node& n = tree.mutable_node(nid);
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId child = level_nodes[node_indices[i]];
        RStarTree::Entry e;
        e.rect = tree.NodeRect(child);
        e.child = child;
        n.entries.push_back(std::move(e));
        tree.parent_[child] = nid;
      }
      next_nodes.push_back(nid);
      next_centers.push_back(tree.NodeRect(nid).Center());
    }
    level_nodes = std::move(next_nodes);
    level_centers = std::move(next_centers);
    ++level;
  }

  tree.root_ = level_nodes.front();
  tree.parent_[tree.root_] = kInvalidNodeId;
  tree.size_ = points.size();
  return tree;
}

}  // namespace qdcbir
