#include "qdcbir/index/rstar_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "qdcbir/core/distance.h"

namespace qdcbir {

namespace {

/// The effective minimum fill for splits: the classical R*-tree requires
/// m <= (M+1)/2 so that an overflowing node can be divided; configurations
/// like the paper's 70..100 describe target occupancy rather than the split
/// minimum, so the split clamps to the feasible bound.
std::size_t EffectiveMinEntries(const RStarTreeOptions& options) {
  return std::min(options.min_entries, (options.max_entries + 1) / 2);
}

}  // namespace

Status RStarTreeOptions::Validate() const {
  if (max_entries < 4) {
    return Status::InvalidArgument("max_entries must be >= 4");
  }
  if (min_entries < 2 || min_entries > max_entries) {
    return Status::InvalidArgument(
        "min_entries must be in [2, max_entries]");
  }
  if (reinsert_fraction <= 0.0 || reinsert_fraction >= 1.0) {
    return Status::InvalidArgument("reinsert_fraction must be in (0, 1)");
  }
  return Status::Ok();
}

RStarTree::RStarTree(std::size_t dim, const RStarTreeOptions& options)
    : dim_(dim), options_(options) {
  assert(options_.Validate().ok());
  root_ = AllocateNode(/*level=*/0);
}

NodeId RStarTree::AllocateNode(int level) {
  NodeId id;
  if (!free_nodes_.empty()) {
    id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = std::make_unique<Node>();
  } else {
    id = static_cast<NodeId>(nodes_.size());
    nodes_.push_back(std::make_unique<Node>());
    parent_.push_back(kInvalidNodeId);
  }
  nodes_[id]->level = level;
  parent_[id] = kInvalidNodeId;
  return id;
}

void RStarTree::FreeNode(NodeId id) {
  nodes_[id].reset();
  parent_[id] = kInvalidNodeId;
  free_nodes_.push_back(id);
}

const RStarTree::Node& RStarTree::node(NodeId id) const {
  assert(id < nodes_.size() && nodes_[id] != nullptr);
  return *nodes_[id];
}

Rect RStarTree::ComputeNodeRect(const Node& n) const {
  Rect rect;
  for (const Entry& e : n.entries) rect.Extend(e.rect);
  return rect;
}

Rect RStarTree::NodeRect(NodeId id) const { return ComputeNodeRect(node(id)); }

int RStarTree::height() const { return node(root_).level + 1; }

Status RStarTree::Insert(const FeatureVector& point, ImageId id) {
  if (point.dim() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  if (id == kInvalidImageId) {
    return Status::InvalidArgument("invalid image id");
  }
  Entry entry;
  entry.rect = Rect(point);
  entry.data = id;
  // One flag per level: forced reinsertion happens at most once per level
  // for a single top-level insertion (Beckmann et al. §4.3).
  std::vector<bool> reinsert_done(static_cast<std::size_t>(height()) + 2,
                                  false);
  InsertEntry(entry, /*target_level=*/0, reinsert_done);
  ++size_;
  return Status::Ok();
}

NodeId RStarTree::ChooseSubtree(const Rect& rect, int target_level,
                                std::vector<NodeId>& path) const {
  NodeId nid = root_;
  path.clear();
  path.push_back(nid);
  while (node(nid).level > target_level) {
    const Node& n = node(nid);
    assert(!n.entries.empty());
    std::size_t best = 0;

    if (n.level == 1) {
      // Children are leaves: minimize overlap enlargement, then area
      // enlargement, then area.
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n.entries.size(); ++i) {
        const Rect grown = Rect::Union(n.entries[i].rect, rect);
        double overlap_delta = 0.0;
        for (std::size_t j = 0; j < n.entries.size(); ++j) {
          if (j == i) continue;
          overlap_delta += grown.Overlap(n.entries[j].rect) -
                           n.entries[i].rect.Overlap(n.entries[j].rect);
        }
        const double enlarge = n.entries[i].rect.Enlargement(rect);
        const double area = n.entries[i].rect.Area();
        if (overlap_delta < best_overlap ||
            (overlap_delta == best_overlap && enlarge < best_enlarge) ||
            (overlap_delta == best_overlap && enlarge == best_enlarge &&
             area < best_area)) {
          best_overlap = overlap_delta;
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    } else {
      // Children are internal: minimize area enlargement, then area.
      double best_enlarge = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n.entries.size(); ++i) {
        const double enlarge = n.entries[i].rect.Enlargement(rect);
        const double area = n.entries[i].rect.Area();
        if (enlarge < best_enlarge ||
            (enlarge == best_enlarge && area < best_area)) {
          best_enlarge = enlarge;
          best_area = area;
          best = i;
        }
      }
    }
    nid = n.entries[best].child;
    path.push_back(nid);
  }
  return nid;
}

void RStarTree::AdjustPathRects(const std::vector<NodeId>& path) {
  // Walk from the deepest node to the root, refreshing each parent's entry.
  for (std::size_t i = path.size(); i-- > 1;) {
    const NodeId child = path[i];
    const NodeId parent = path[i - 1];
    Node& p = mutable_node(parent);
    for (Entry& e : p.entries) {
      if (e.child == child) {
        e.rect = ComputeNodeRect(node(child));
        break;
      }
    }
  }
}

void RStarTree::ReparentChildren(NodeId id) {
  const Node& n = node(id);
  if (n.IsLeaf()) return;
  for (const Entry& e : n.entries) parent_[e.child] = id;
}

void RStarTree::InsertEntry(const Entry& entry, int target_level,
                            std::vector<bool>& reinsert_done) {
  std::vector<NodeId> path;
  const NodeId nid = ChooseSubtree(entry.rect, target_level, path);
  Node& n = mutable_node(nid);
  n.entries.push_back(entry);
  if (entry.child != kInvalidNodeId) parent_[entry.child] = nid;
  AdjustPathRects(path);
  if (n.entries.size() > options_.max_entries) {
    OverflowTreatment(nid, path, reinsert_done);
  }
}

void RStarTree::OverflowTreatment(NodeId node_id, std::vector<NodeId>& path,
                                  std::vector<bool>& reinsert_done) {
  const std::size_t level = static_cast<std::size_t>(node(node_id).level);
  if (level >= reinsert_done.size()) reinsert_done.resize(level + 1, false);
  if (node_id != root_ && !reinsert_done[level]) {
    reinsert_done[level] = true;
    ForcedReinsert(node_id, path, reinsert_done);
  } else {
    Split(node_id, path, reinsert_done);
  }
}

void RStarTree::ForcedReinsert(NodeId node_id, std::vector<NodeId>& path,
                               std::vector<bool>& reinsert_done) {
  Node& n = mutable_node(node_id);
  const FeatureVector center = ComputeNodeRect(n).Center();

  // Sort entries by the distance of their rect centers from the node center.
  std::vector<std::size_t> order(n.entries.size());
  std::iota(order.begin(), order.end(), 0u);
  std::vector<double> dist(n.entries.size());
  for (std::size_t i = 0; i < n.entries.size(); ++i) {
    dist[i] = SquaredL2(n.entries[i].rect.Center(), center);
  }
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });

  std::size_t p = static_cast<std::size_t>(
      std::ceil(options_.reinsert_fraction *
                static_cast<double>(n.entries.size())));
  p = std::max<std::size_t>(1, p);
  // Keep the node at or above the minimum fill.
  const std::size_t min_keep = EffectiveMinEntries(options_);
  if (n.entries.size() - p < min_keep) p = n.entries.size() - min_keep;
  if (p == 0) {
    Split(node_id, path, reinsert_done);
    return;
  }

  std::vector<Entry> removed;
  removed.reserve(p);
  std::vector<bool> is_removed(n.entries.size(), false);
  for (std::size_t i = 0; i < p; ++i) {
    removed.push_back(n.entries[order[i]]);
    is_removed[order[i]] = true;
  }
  std::vector<Entry> kept;
  kept.reserve(n.entries.size() - p);
  for (std::size_t i = 0; i < n.entries.size(); ++i) {
    if (!is_removed[i]) kept.push_back(n.entries[i]);
  }
  const int level = n.level;
  n.entries = std::move(kept);
  AdjustPathRects(path);

  // "Close reinsert": reinsert starting with the entry closest to the
  // center, which Beckmann et al. found to perform best.
  std::reverse(removed.begin(), removed.end());
  for (const Entry& e : removed) {
    InsertEntry(e, level, reinsert_done);
  }
}

void RStarTree::ChooseSplitAxisAndIndex(const std::vector<Entry>& entries,
                                        std::size_t min_entries,
                                        std::size_t* split_axis,
                                        std::size_t* split_index,
                                        std::vector<std::size_t>* order) {
  const std::size_t total = entries.size();
  const std::size_t dim = entries.front().rect.dim();
  assert(min_entries >= 1 && 2 * min_entries <= total);
  const std::size_t num_dists = total - 2 * min_entries + 1;

  double best_margin = std::numeric_limits<double>::infinity();
  std::size_t best_axis = 0;
  bool best_axis_by_hi = false;

  auto make_order = [&](std::size_t axis, bool by_hi) {
    std::vector<std::size_t> ord(total);
    std::iota(ord.begin(), ord.end(), 0u);
    std::sort(ord.begin(), ord.end(), [&](std::size_t a, std::size_t b) {
      const double ka = by_hi ? entries[a].rect.hi(axis) : entries[a].rect.lo(axis);
      const double kb = by_hi ? entries[b].rect.hi(axis) : entries[b].rect.lo(axis);
      if (ka != kb) return ka < kb;
      // Tie-break on the other bound for determinism.
      const double ta = by_hi ? entries[a].rect.lo(axis) : entries[a].rect.hi(axis);
      const double tb = by_hi ? entries[b].rect.lo(axis) : entries[b].rect.hi(axis);
      return ta < tb;
    });
    return ord;
  };

  // Prefix/suffix bounding rects for one sort order.
  auto distributions = [&](const std::vector<std::size_t>& ord,
                           std::vector<Rect>& prefix,
                           std::vector<Rect>& suffix) {
    prefix.assign(total, Rect());
    suffix.assign(total, Rect());
    Rect acc;
    for (std::size_t i = 0; i < total; ++i) {
      acc.Extend(entries[ord[i]].rect);
      prefix[i] = acc;
    }
    acc = Rect();
    for (std::size_t i = total; i-- > 0;) {
      acc.Extend(entries[ord[i]].rect);
      suffix[i] = acc;
    }
  };

  std::vector<Rect> prefix, suffix;
  for (std::size_t axis = 0; axis < dim; ++axis) {
    for (bool by_hi : {false, true}) {
      const std::vector<std::size_t> ord = make_order(axis, by_hi);
      distributions(ord, prefix, suffix);
      double margin_sum = 0.0;
      for (std::size_t d = 0; d < num_dists; ++d) {
        const std::size_t k = min_entries + d;  // first group size
        margin_sum += prefix[k - 1].Margin() + suffix[k].Margin();
      }
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis = axis;
        best_axis_by_hi = by_hi;
      }
    }
  }

  // On the chosen axis, re-examine both sorts and pick the distribution with
  // the lowest overlap (ties: lowest combined area).
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  std::size_t best_k = min_entries;
  std::vector<std::size_t> best_order;
  for (bool by_hi : {best_axis_by_hi, !best_axis_by_hi}) {
    const std::vector<std::size_t> ord = make_order(best_axis, by_hi);
    distributions(ord, prefix, suffix);
    for (std::size_t d = 0; d < num_dists; ++d) {
      const std::size_t k = min_entries + d;
      const double overlap = prefix[k - 1].Overlap(suffix[k]);
      const double area = prefix[k - 1].Area() + suffix[k].Area();
      if (overlap < best_overlap ||
          (overlap == best_overlap && area < best_area)) {
        best_overlap = overlap;
        best_area = area;
        best_k = k;
        best_order = ord;
      }
    }
  }

  *split_axis = best_axis;
  *split_index = best_k;
  *order = std::move(best_order);
}

void RStarTree::Split(NodeId node_id, std::vector<NodeId>& path,
                      std::vector<bool>& reinsert_done) {
  Node& n = mutable_node(node_id);
  const std::size_t min_entries = EffectiveMinEntries(options_);

  std::size_t axis = 0, index = 0;
  std::vector<std::size_t> order;
  ChooseSplitAxisAndIndex(n.entries, min_entries, &axis, &index, &order);

  const NodeId sibling_id = AllocateNode(n.level);
  // AllocateNode may reallocate the arena; re-fetch the node reference.
  Node& n2 = mutable_node(node_id);
  Node& sibling = mutable_node(sibling_id);

  std::vector<Entry> first_group, second_group;
  first_group.reserve(index);
  second_group.reserve(n2.entries.size() - index);
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (i < index) {
      first_group.push_back(n2.entries[order[i]]);
    } else {
      second_group.push_back(n2.entries[order[i]]);
    }
  }
  n2.entries = std::move(first_group);
  sibling.entries = std::move(second_group);
  ReparentChildren(node_id);
  ReparentChildren(sibling_id);

  if (node_id == root_) {
    const NodeId new_root = AllocateNode(node(node_id).level + 1);
    Node& r = mutable_node(new_root);
    r.entries.push_back(Entry{NodeRect(node_id), node_id, kInvalidImageId});
    r.entries.push_back(Entry{NodeRect(sibling_id), sibling_id,
                              kInvalidImageId});
    parent_[node_id] = new_root;
    parent_[sibling_id] = new_root;
    root_ = new_root;
    return;
  }

  const NodeId parent_id = parent_[node_id];
  Node& p = mutable_node(parent_id);
  for (Entry& e : p.entries) {
    if (e.child == node_id) {
      e.rect = NodeRect(node_id);
      break;
    }
  }
  p.entries.push_back(Entry{NodeRect(sibling_id), sibling_id, kInvalidImageId});
  parent_[sibling_id] = parent_id;

  // Refresh ancestors' rects: the path ends at node_id; drop it so the path
  // ends at the parent.
  if (!path.empty() && path.back() == node_id) path.pop_back();
  AdjustPathRects(path);

  if (p.entries.size() > options_.max_entries) {
    OverflowTreatment(parent_id, path, reinsert_done);
  }
}

Status RStarTree::Delete(const FeatureVector& point, ImageId id) {
  if (point.dim() != dim_) {
    return Status::InvalidArgument("point dimensionality mismatch");
  }
  // Locate the leaf containing the exact (point, id) entry.
  NodeId found_leaf = kInvalidNodeId;
  std::size_t found_index = 0;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty() && found_leaf == kInvalidNodeId) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = node(nid);
    if (n.IsLeaf()) {
      for (std::size_t i = 0; i < n.entries.size(); ++i) {
        if (n.entries[i].data == id &&
            n.entries[i].rect.ContainsPoint(point)) {
          found_leaf = nid;
          found_index = i;
          break;
        }
      }
    } else {
      for (const Entry& e : n.entries) {
        if (e.rect.ContainsPoint(point)) stack.push_back(e.child);
      }
    }
  }
  if (found_leaf == kInvalidNodeId) {
    return Status::NotFound("no such (point, id) entry");
  }

  Node& leaf = mutable_node(found_leaf);
  leaf.entries.erase(leaf.entries.begin() +
                     static_cast<std::ptrdiff_t>(found_index));
  --size_;

  // Condense: walk upward; dissolve underfull nodes, collecting their data
  // points for reinsertion (subtrees are flattened to points, which is
  // always level-correct).
  std::vector<std::pair<FeatureVector, ImageId>> orphans;
  const std::size_t min_entries = EffectiveMinEntries(options_);
  NodeId nid = found_leaf;
  while (nid != root_) {
    const NodeId pid = parent_[nid];
    Node& p = mutable_node(pid);
    if (node(nid).entries.size() < min_entries) {
      std::vector<NodeId> sub = {nid};
      while (!sub.empty()) {
        const NodeId s = sub.back();
        sub.pop_back();
        const Node& sn = node(s);
        if (sn.IsLeaf()) {
          for (const Entry& e : sn.entries) {
            orphans.emplace_back(e.rect.Center(), e.data);
          }
        } else {
          for (const Entry& e : sn.entries) sub.push_back(e.child);
        }
        if (s != nid) FreeNode(s);
      }
      for (std::size_t i = 0; i < p.entries.size(); ++i) {
        if (p.entries[i].child == nid) {
          p.entries.erase(p.entries.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
      FreeNode(nid);
    } else {
      for (Entry& e : p.entries) {
        if (e.child == nid) {
          e.rect = NodeRect(nid);
          break;
        }
      }
    }
    nid = pid;
  }

  // Shrink the root if it is an internal node with a single child.
  while (!node(root_).IsLeaf() && node(root_).entries.size() == 1) {
    const NodeId old_root = root_;
    root_ = node(root_).entries.front().child;
    parent_[root_] = kInvalidNodeId;
    FreeNode(old_root);
  }

  for (auto& [p, data_id] : orphans) {
    Entry entry;
    entry.rect = Rect(p);
    entry.data = data_id;
    std::vector<bool> reinsert_done(static_cast<std::size_t>(height()) + 2,
                                    false);
    InsertEntry(entry, 0, reinsert_done);
  }
  return Status::Ok();
}

std::vector<ImageId> RStarTree::RangeSearch(const Rect& range) const {
  std::vector<ImageId> out;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = node(nid);
    for (const Entry& e : n.entries) {
      if (!range.Intersects(e.rect)) continue;
      if (n.IsLeaf()) {
        out.push_back(e.data);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

std::vector<KnnMatch> RStarTree::KnnSearch(const FeatureVector& query,
                                           std::size_t k) const {
  return KnnSearchInSubtree(root_, query, k);
}

std::vector<KnnMatch> RStarTree::KnnSearchInSubtree(
    NodeId subtree, const FeatureVector& query, std::size_t k,
    SearchStats* stats) const {
  std::vector<KnnMatch> results;
  if (k == 0 || query.dim() != dim_) return results;

  struct Item {
    double dist;
    bool is_data;
    NodeId node;
    ImageId data;
  };
  struct Cmp {
    bool operator()(const Item& a, const Item& b) const {
      return a.dist > b.dist;  // min-heap
    }
  };
  std::priority_queue<Item, std::vector<Item>, Cmp> heap;
  heap.push(Item{0.0, false, subtree, kInvalidImageId});

  while (!heap.empty() && results.size() < k) {
    const Item item = heap.top();
    heap.pop();
    if (item.is_data) {
      results.push_back(KnnMatch{item.data, item.dist});
      continue;
    }
    const Node& n = node(item.node);
    if (stats != nullptr) {
      stats->nodes_visited += 1;
      stats->entries_scanned += n.entries.size();
    }
    for (const Entry& e : n.entries) {
      const double d = e.rect.MinDistSquared(query);
      if (n.IsLeaf()) {
        heap.push(Item{d, true, kInvalidNodeId, e.data});
      } else {
        heap.push(Item{d, false, e.child, kInvalidImageId});
      }
    }
  }
  return results;
}

std::vector<ImageId> RStarTree::CollectSubtree(NodeId id) const {
  std::vector<ImageId> out;
  std::vector<NodeId> stack = {id};
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = node(nid);
    for (const Entry& e : n.entries) {
      if (n.IsLeaf()) {
        out.push_back(e.data);
      } else {
        stack.push_back(e.child);
      }
    }
  }
  return out;
}

std::vector<std::vector<NodeId>> RStarTree::NodesByLevel() const {
  std::vector<std::vector<NodeId>> levels(
      static_cast<std::size_t>(height()));
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = node(nid);
    levels[static_cast<std::size_t>(n.level)].push_back(nid);
    if (!n.IsLeaf()) {
      for (const Entry& e : n.entries) stack.push_back(e.child);
    }
  }
  return levels;
}

RStarTree::Stats RStarTree::ComputeStats() const {
  Stats stats;
  stats.height = height();
  double occupancy_sum = 0.0;
  const auto levels = NodesByLevel();
  for (const auto& level_nodes : levels) {
    stats.node_count += level_nodes.size();
  }
  for (const NodeId leaf : levels[0]) {
    ++stats.leaf_count;
    occupancy_sum += static_cast<double>(node(leaf).entries.size()) /
                     static_cast<double>(options_.max_entries);
  }
  stats.avg_leaf_occupancy =
      stats.leaf_count > 0 ? occupancy_sum / stats.leaf_count : 0.0;
  return stats;
}

Status RStarTree::CheckInvariants() const {
  const std::size_t min_entries = EffectiveMinEntries(options_);
  std::size_t data_count = 0;

  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const NodeId nid = stack.back();
    stack.pop_back();
    const Node& n = node(nid);

    if (nid != root_) {
      if (n.entries.size() < min_entries ||
          n.entries.size() > options_.max_entries) {
        return Status::Internal("node occupancy out of bounds");
      }
    } else if (!n.IsLeaf() && n.entries.size() < 2) {
      return Status::Internal("internal root must have >= 2 entries");
    }

    for (const Entry& e : n.entries) {
      if (n.IsLeaf()) {
        if (e.data == kInvalidImageId) {
          return Status::Internal("leaf entry without data id");
        }
        ++data_count;
      } else {
        if (e.child == kInvalidNodeId) {
          return Status::Internal("internal entry without child");
        }
        if (node(e.child).level != n.level - 1) {
          return Status::Internal("child level mismatch");
        }
        if (parent_[e.child] != nid) {
          return Status::Internal("parent pointer mismatch");
        }
        if (!(e.rect == NodeRect(e.child))) {
          return Status::Internal("stale MBR in parent entry");
        }
        stack.push_back(e.child);
      }
    }
  }
  if (data_count != size_) {
    return Status::Internal("data entry count does not match size()");
  }
  return Status::Ok();
}

}  // namespace qdcbir
