#ifndef QDCBIR_OBS_QUALITY_STATS_H_
#define QDCBIR_OBS_QUALITY_STATS_H_

/// \file
/// Per-session retrieval-quality telemetry.
///
/// The paper's claim is about feedback-session quality — precision over a
/// multi-round relevance-feedback protocol — but latency/CPU/cache metrics
/// cannot see a quality regression. This module computes, per session:
///
///  - oracle-labeled precision@k, when ground truth is available (the
///    eval/bench paths hand it in; serve cannot),
///  - label-free proxies usable in serve: round-to-round top-k Jaccard
///    overlap, rank churn, rounds-to-stability, subquery-count growth,
///  - an outcome classification (finalized / abandoned / errored).
///
/// `SessionQualityTracker` is a passive observer: callers feed it the ranked
/// id list the engine already produced at each round, and it derives the
/// proxies. It never influences ranking, so determinism of results is
/// preserved by construction. `PublishSessionQuality` folds a finished
/// session into the global `quality.*` histograms and counters.
///
/// Fixed-point convention: ratios (Jaccard, precision) are carried as
/// permille (0..1000) so they fit the integer histogram/audit-record plumbing
/// without float drift.

#include <cstdint>
#include <string>
#include <vector>

namespace qdcbir {
namespace obs {

/// How a feedback session ended.
enum class SessionOutcome : std::uint64_t {
  kFinalized = 0,  ///< client called finalize and got a ranked result
  kAbandoned = 1,  ///< session was still open when it was torn down
  kErrored = 2,    ///< a round or finalize failed and the session never
                   ///< recovered before teardown
};

/// Stable lowercase name for JSON surfaces ("finalized", "abandoned",
/// "errored"; "unknown" for out-of-range values).
const char* SessionOutcomeName(SessionOutcome outcome);

/// Summary of one session's quality signals, ready for the audit record,
/// wide event, and `quality.*` metrics.
struct SessionQuality {
  std::uint64_t rounds_observed = 0;  ///< ranked lists fed to the tracker
  /// Jaccard overlap (permille) between the last two observed rounds'
  /// id sets. 1000 when fewer than two rounds were observed (a single
  /// display is trivially stable).
  std::uint64_t last_jaccard_permille = 1000;
  /// Mean of the per-transition Jaccard overlaps (permille).
  std::uint64_t mean_jaccard_permille = 1000;
  /// Positions whose image changed between the last two rounds (plus any
  /// length difference).
  std::uint64_t last_rank_churn = 0;
  /// 1-based index of the first round whose overlap with its predecessor
  /// reached the stability threshold; 0 when the session never stabilized.
  std::uint64_t rounds_to_stability = 0;
  /// Subquery count at the last round minus the first round (0 floor —
  /// the paper's decomposition only grows the frontier).
  std::uint64_t subquery_growth = 0;
  /// Oracle precision@k in permille; only meaningful when
  /// `oracle_precision_defined` (eval/bench paths).
  std::uint64_t oracle_precision_permille = 0;
  bool oracle_precision_defined = false;
  SessionOutcome outcome = SessionOutcome::kAbandoned;
};

/// Accumulates ranked-list observations over the life of one session.
/// Not thread-safe; sessions are already serialized by their busy flag.
class SessionQualityTracker {
 public:
  /// Round-to-round Jaccard overlap (permille) at or above which a
  /// transition counts as "stable" for rounds-to-stability.
  static constexpr std::uint64_t kStabilityPermille = 800;

  /// Feeds the ranked image ids shown (or finalized) at a round, plus the
  /// subquery/frontier count at that point. Ids are whatever the engine
  /// ranks — the tracker only compares them for identity.
  void ObserveRound(const std::vector<std::uint64_t>& ranked_ids,
                    std::uint64_t subquery_count);

  /// Marks that a round or finalize failed. Sticky until a later
  /// successful `Finalized()`.
  void RecordError() { errored_ = true; }

  /// Marks a successful finalize; clears any earlier error.
  void Finalized() {
    finalized_ = true;
    errored_ = false;
  }

  std::uint64_t rounds_observed() const { return rounds_observed_; }

  /// Jaccard overlap (permille) of the most recent transition; 1000 before
  /// the second observation.
  std::uint64_t last_jaccard_permille() const { return last_jaccard_permille_; }
  std::uint64_t last_rank_churn() const { return last_rank_churn_; }

  /// Snapshots the session's quality summary. The outcome reflects the
  /// tracker state: finalized beats errored beats abandoned.
  SessionQuality Summary() const;

 private:
  std::vector<std::uint64_t> previous_;  ///< last observed ranked list
  std::uint64_t rounds_observed_ = 0;
  std::uint64_t last_jaccard_permille_ = 1000;
  std::uint64_t jaccard_sum_permille_ = 0;  ///< over transitions
  std::uint64_t transitions_ = 0;
  std::uint64_t last_rank_churn_ = 0;
  std::uint64_t rounds_to_stability_ = 0;
  std::uint64_t first_subqueries_ = 0;
  std::uint64_t last_subqueries_ = 0;
  bool finalized_ = false;
  bool errored_ = false;
};

/// Jaccard overlap of two id sets in permille (|A∩B| * 1000 / |A∪B|,
/// duplicates ignored). 1000 when both are empty.
std::uint64_t JaccardPermille(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b);

/// Positional churn between two ranked lists: positions (over the shorter
/// length) holding different ids, plus the length difference.
std::uint64_t RankChurn(const std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b);

/// Folds a finished session into the global `quality.*` histograms and
/// per-outcome counters. Purely observational.
void PublishSessionQuality(const SessionQuality& quality);

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_QUALITY_STATS_H_
