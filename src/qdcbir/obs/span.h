#ifndef QDCBIR_OBS_SPAN_H_
#define QDCBIR_OBS_SPAN_H_

#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/trace.h"

namespace qdcbir {
namespace obs {

/// RAII phase marker. On destruction it records the span's wall-time into
/// its latency histogram (`span.<name>`, nanoseconds) and, when the tracer
/// is armed, streams a balanced "B"/"E" event pair to the Chrome trace.
/// Instantiate through `QDCBIR_SPAN` — the macro resolves the histogram
/// once per call site, so steady-state cost is two clock reads plus one
/// sharded histogram increment (~tens of nanoseconds).
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Histogram& histogram)
      : name_(name), histogram_(histogram), start_ns_(MonotonicNanos()) {
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) tracer.Begin(name_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    const std::uint64_t end_ns = MonotonicNanos();
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) tracer.End(name_);
    histogram_.Record(end_ns - start_ns_);
  }

 private:
  const char* name_;
  Histogram& histogram_;
  std::uint64_t start_ns_;
};

}  // namespace obs
}  // namespace qdcbir

/// `QDCBIR_SPAN("qd.finalize.subquery");` times the enclosing scope.
/// `name` must be a string literal (the tracer stores the pointer). Span
/// taxonomy lives in docs/observability.md. Building with
/// -DQDCBIR_DISABLE_OBS compiles every span to nothing.
#ifndef QDCBIR_DISABLE_OBS
#define QDCBIR_SPAN(name) QDCBIR_SPAN_IMPL_(name, __COUNTER__)
#define QDCBIR_SPAN_IMPL_(name, counter) QDCBIR_SPAN_IMPL2_(name, counter)
#define QDCBIR_SPAN_IMPL2_(name, counter)                              \
  static ::qdcbir::obs::Histogram& qdcbir_span_hist_##counter =        \
      ::qdcbir::obs::MetricsRegistry::Global().SpanHistogram(name);    \
  const ::qdcbir::obs::ScopedSpan qdcbir_span_##counter(               \
      name, qdcbir_span_hist_##counter)
#else
#define QDCBIR_SPAN(name) \
  do {                    \
  } while (false)
#endif

#endif  // QDCBIR_OBS_SPAN_H_
