#ifndef QDCBIR_OBS_SPAN_H_
#define QDCBIR_OBS_SPAN_H_

#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/span_stack.h"
#include "qdcbir/obs/trace.h"
#include "qdcbir/obs/trace_context.h"
#include "qdcbir/obs/trace_tree.h"

namespace qdcbir {
namespace obs {

/// RAII phase marker. On destruction it records the span's wall-time into
/// its latency histogram (`span.<name>`, nanoseconds) and, when the tracer
/// is armed, streams a balanced "B"/"E" event pair to the Chrome trace.
/// When the calling thread carries a recording `TraceContext` (a serve
/// request with tree capture on), the span additionally registers itself as
/// the thread's innermost span for its lifetime and appends a `SpanRecord`
/// — parent links come from the context, so trees stay correct across the
/// thread pool's capture/restore.
/// Instantiate through `QDCBIR_SPAN` — the macro resolves the histogram
/// once per call site, so steady-state cost is two clock reads plus one
/// sharded histogram increment (~tens of nanoseconds) plus one relaxed
/// thread-local check for tree capture.
class ScopedSpan {
 public:
  ScopedSpan(const char* name, Histogram& histogram)
      : name_(name), histogram_(histogram), start_ns_(MonotonicNanos()) {
    // Always mirrored onto the signal-safe span stack, so the sampling
    // profiler can attribute CPU samples even when no trace is recording.
    CurrentSpanStack().Push(name_);
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) tracer.Begin(name_);
    TraceContext& context = MutableCurrentTraceContext();
    if (context.buffer != nullptr) {
      parent_id_ = context.span_id;
      span_id_ = context.buffer->NewSpanId();
      context.span_id = span_id_;
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    CurrentSpanStack().Pop();
    const std::uint64_t end_ns = MonotonicNanos();
    Tracer& tracer = Tracer::Global();
    if (tracer.enabled()) tracer.End(name_);
    if (span_id_ != 0) {
      TraceContext& context = MutableCurrentTraceContext();
      // Spans and context scopes nest strictly, so the buffer seen here is
      // the one the constructor allocated the id from.
      if (context.buffer != nullptr) {
        context.buffer->Append(SpanRecord{span_id_, parent_id_, name_,
                                          start_ns_, end_ns, ThreadTid()});
        context.span_id = parent_id_;
      }
    }
    histogram_.Record(end_ns - start_ns_);
  }

 private:
  const char* name_;
  Histogram& histogram_;
  std::uint64_t start_ns_;
  std::uint64_t span_id_ = 0;  ///< 0 = no tree capture at construction
  std::uint64_t parent_id_ = 0;
};

/// Attaches `key = value` to the thread's innermost open span (no-op when
/// no tree is being captured). The per-subquery spans use this for leaf /
/// search-node attribution on `/tracez`.
inline void AnnotateCurrentSpan(const char* key, std::int64_t value) {
  TraceContext& context = MutableCurrentTraceContext();
  if (context.buffer != nullptr && context.span_id != 0) {
    context.buffer->Annotate(context.span_id, key, value);
  }
}

}  // namespace obs
}  // namespace qdcbir

/// `QDCBIR_SPAN("qd.finalize.subquery");` times the enclosing scope.
/// `name` must be a string literal (the tracer stores the pointer). Span
/// taxonomy lives in docs/observability.md. Building with
/// -DQDCBIR_DISABLE_OBS compiles every span to nothing.
#ifndef QDCBIR_DISABLE_OBS
#define QDCBIR_SPAN(name) QDCBIR_SPAN_IMPL_(name, __COUNTER__)
#define QDCBIR_SPAN_IMPL_(name, counter) QDCBIR_SPAN_IMPL2_(name, counter)
#define QDCBIR_SPAN_IMPL2_(name, counter)                              \
  static ::qdcbir::obs::Histogram& qdcbir_span_hist_##counter =        \
      ::qdcbir::obs::MetricsRegistry::Global().SpanHistogram(name);    \
  const ::qdcbir::obs::ScopedSpan qdcbir_span_##counter(               \
      name, qdcbir_span_hist_##counter)
/// `QDCBIR_SPAN_ANNOTATE("leaf", leaf_id);` tags the innermost open span.
/// `key` must be a string literal; compiles to nothing with the spans.
#define QDCBIR_SPAN_ANNOTATE(key, value) \
  ::qdcbir::obs::AnnotateCurrentSpan((key), static_cast<std::int64_t>(value))
#else
#define QDCBIR_SPAN(name) \
  do {                    \
  } while (false)
#define QDCBIR_SPAN_ANNOTATE(key, value) \
  do {                                   \
  } while (false)
#endif

#endif  // QDCBIR_OBS_SPAN_H_
