#include "qdcbir/obs/profiler.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/span_stack.h"

#if defined(__linux__)
#include <cxxabi.h>
#include <dlfcn.h>
#include <errno.h>
#include <pthread.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#endif  // __linux__

// Sanitizer builds keep the profiler functional but restrict backtraces to
// the interrupted pc: the frame-pointer walk reads raw stack words, which
// ASan may have poisoned (redzones) and TSan cannot model from a handler.
// Span attribution — the part CI gates on — is unaffected.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define QDCBIR_PROFILER_PC_ONLY 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define QDCBIR_PROFILER_PC_ONLY 1
#endif
#endif

namespace qdcbir {
namespace obs {
namespace {

constexpr std::size_t kRingSize = 16384;  // power of two; ~4 MiB, leaked
constexpr std::size_t kSampleWords =
    (sizeof(ProfileSample) + sizeof(std::uint64_t) - 1) /
    sizeof(std::uint64_t);
static_assert(sizeof(ProfileSample) % sizeof(std::uint64_t) == 0,
              "ProfileSample must be word-copyable for the seqlock ring");

/// Seqlock slot, same protocol as QueryLog: version odd while a writer owns
/// the slot, sample words stored as relaxed atomics so the cross-thread
/// copy is race-free under TSan, `seq` identifies which write the words
/// belong to.
struct SampleSlot {
  std::atomic<std::uint64_t> version{0};
  std::atomic<std::uint64_t> seq{0};
  std::atomic<std::uint64_t> words[kSampleWords];
};

struct SampleRing {
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> dropped{0};
  SampleSlot slots[kRingSize];
};

/// Published with release before any timer is armed; the handler loads it
/// with acquire, so a firing timer always sees a constructed ring.
std::atomic<SampleRing*> g_ring{nullptr};

#if defined(__linux__)

struct ThreadEntry {
  pid_t tid = 0;
  clockid_t cpu_clock = 0;
  timer_t timer{};
  bool armed = false;
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
};

/// Raw pointer TLS (constinit: readable from signal context with no guard).
/// Non-null exactly while the thread is registered.
constinit thread_local ThreadEntry* t_entry = nullptr;

struct ProfilerState {
  std::mutex mu;
  std::vector<ThreadEntry*> threads;
  std::atomic<bool> running{false};
  std::atomic<int> hz{0};
  bool handler_installed = false;
};

ProfilerState& State() {
  static ProfilerState* state = new ProfilerState();  // leaked on purpose
  return *state;
}

std::uint32_t CaptureBacktrace(void* ucontext_void, std::uintptr_t* frames,
                               std::uint32_t max_frames) {
  auto* uc = static_cast<ucontext_t*>(ucontext_void);
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
#endif
  if (pc == 0) return 0;
  frames[0] = pc;
  std::uint32_t n = 1;
#if !defined(QDCBIR_PROFILER_PC_ONLY)
  const ThreadEntry* entry = t_entry;
  if (entry == nullptr) return n;
  const std::uintptr_t lo = entry->stack_lo;
  const std::uintptr_t hi = entry->stack_hi;
  // Every dereference is bounds-checked against the thread's stack segment
  // before it happens, so a function that repurposed the frame-pointer
  // register truncates the walk instead of faulting.
  while (n < max_frames) {
    if (fp < lo || fp + 2 * sizeof(std::uintptr_t) > hi ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const std::uintptr_t next_fp =
        reinterpret_cast<const std::uintptr_t*>(fp)[0];
    const std::uintptr_t ret = reinterpret_cast<const std::uintptr_t*>(fp)[1];
    if (ret == 0) break;
    frames[n++] = ret;
    if (next_fp <= fp) break;  // frames must move toward the stack base
    fp = next_fp;
  }
#endif
  return n;
}

/// SIGPROF handler. Constraints: own-thread constinit TLS and lock-free
/// atomics only — no locks, no allocation, no errno-clobbering calls.
void ProfilerSignalHandler(int /*signo*/, siginfo_t* /*info*/,
                           void* ucontext) {
  SampleRing* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return;

  ProfileSample sample;
  sample.num_frames =
      CaptureBacktrace(ucontext, sample.frames, ProfileSample::kMaxFrames);
  const SpanStack& stack = CurrentSpanStack();
  sample.span = stack.Innermost();
  sample.trace_hi = stack.trace_hi;
  sample.trace_lo = stack.trace_lo;
  const ThreadEntry* entry = t_entry;
  sample.tid = entry != nullptr ? static_cast<std::uint32_t>(entry->tid) : 0;

  const std::uint64_t seq =
      ring->head.fetch_add(1, std::memory_order_relaxed);
  SampleSlot& slot = ring->slots[seq % kRingSize];
  std::uint64_t version = slot.version.load(std::memory_order_relaxed);
  if ((version & 1) != 0 ||
      !slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
    // Another thread's handler owns this slot; drop rather than spin.
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::uint64_t words[kSampleWords];
  std::memcpy(words, &sample, sizeof(sample));
  for (std::size_t i = 0; i < kSampleWords; ++i) {
    slot.words[i].store(words[i], std::memory_order_relaxed);
  }
  slot.seq.store(seq, std::memory_order_relaxed);
  slot.version.store(version + 2, std::memory_order_release);
}

bool InstallHandlerLocked(ProfilerState& state, std::string* error) {
  if (state.handler_installed) return true;
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = &ProfilerSignalHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, nullptr) != 0) {
    if (error != nullptr) *error = "sigaction(SIGPROF) failed";
    return false;
  }
  state.handler_installed = true;
  return true;
}

bool ArmTimerLocked(ThreadEntry* entry, int hz) {
  if (entry->armed) return true;
  struct sigevent event;
  std::memset(&event, 0, sizeof(event));
  event.sigev_notify = SIGEV_THREAD_ID;
  event.sigev_signo = SIGPROF;
  event.sigev_notify_thread_id = entry->tid;
  if (timer_create(entry->cpu_clock, &event, &entry->timer) != 0) {
    return false;  // thread may be exiting; skip it
  }
  const long interval_ns = 1000000000L / hz;
  struct itimerspec spec;
  spec.it_interval.tv_sec = interval_ns / 1000000000L;
  spec.it_interval.tv_nsec = interval_ns % 1000000000L;
  spec.it_value = spec.it_interval;
  if (timer_settime(entry->timer, 0, &spec, nullptr) != 0) {
    timer_delete(entry->timer);
    return false;
  }
  entry->armed = true;
  return true;
}

void DisarmTimerLocked(ThreadEntry* entry) {
  if (!entry->armed) return;
  timer_delete(entry->timer);
  entry->armed = false;
}

void FillStackBounds(ThreadEntry* entry) {
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) != 0) return;
  void* stack_addr = nullptr;
  std::size_t stack_size = 0;
  if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
    entry->stack_lo = reinterpret_cast<std::uintptr_t>(stack_addr);
    entry->stack_hi = entry->stack_lo + stack_size;
  }
  pthread_attr_destroy(&attr);
}

#endif  // __linux__

SampleRing* EnsureRing() {
  SampleRing* ring = g_ring.load(std::memory_order_acquire);
  if (ring != nullptr) return ring;
  auto* fresh = new SampleRing();  // leaked: handlers may outlive any owner
  SampleRing* expected = nullptr;
  if (g_ring.compare_exchange_strong(expected, fresh,
                                     std::memory_order_release,
                                     std::memory_order_acquire)) {
    return fresh;
  }
  delete fresh;
  return expected;
}

struct ProfilerCounters {
  Counter& collected;
  Counter& dropped_published;
  Gauge& hz_gauge;
  static ProfilerCounters& Get() {
    static ProfilerCounters counters{
        MetricsRegistry::Global().GetCounter(
            "profiler.samples.collected",
            "CPU profile samples drained from the ring"),
        MetricsRegistry::Global().GetCounter(
            "profiler.samples.dropped",
            "CPU profile samples dropped on ring collision"),
        MetricsRegistry::Global().GetGauge(
            "profiler.hz", "Active profiler sampling rate (0 = off)")};
    return counters;
  }
};

std::string SanitizeFrameName(std::string name) {
  // Collapsed format delimits frames with ';' and the count with the last
  // space, so neither may appear inside a frame.
  const std::size_t paren = name.find('(');
  if (paren != std::string::npos && paren > 0) name.resize(paren);
  for (char& c : name) {
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') c = '_';
  }
  if (name.empty()) name = "??";
  return name;
}

std::string SymbolizePc(std::uintptr_t pc, bool is_return_address,
                        std::unordered_map<std::uintptr_t, std::string>*
                            cache) {
  // Return addresses point one past the call; step back one byte so the
  // lookup lands inside the calling function.
  const std::uintptr_t lookup = is_return_address && pc > 0 ? pc - 1 : pc;
  const auto it = cache->find(lookup);
  if (it != cache->end()) return it->second;
  std::string name;
#if defined(__linux__)
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
      info.dli_sname != nullptr) {
    int status = 0;
    char* demangled =
        abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    if (status == 0 && demangled != nullptr) {
      name = SanitizeFrameName(demangled);
    } else {
      name = SanitizeFrameName(info.dli_sname);
    }
    std::free(demangled);
  } else if (dladdr(reinterpret_cast<void*>(lookup), &info) != 0 &&
             info.dli_fname != nullptr) {
    const char* base = std::strrchr(info.dli_fname, '/');
    char buffer[160];
    std::snprintf(buffer, sizeof(buffer), "%s+0x%" PRIxPTR,
                  base != nullptr ? base + 1 : info.dli_fname,
                  lookup - reinterpret_cast<std::uintptr_t>(info.dli_fbase));
    name = SanitizeFrameName(buffer);
  }
#endif
  if (name.empty()) {
    char buffer[32];
    std::snprintf(buffer, sizeof(buffer), "0x%" PRIxPTR, pc);
    name = buffer;
  }
  (*cache)[lookup] = name;
  return name;
}

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();  // leaked on purpose
  return *profiler;
}

#if defined(__linux__)

void Profiler::RegisterCurrentThread() {
  if (t_entry != nullptr) return;  // idempotent
  auto* entry = new ThreadEntry();
  entry->tid = static_cast<pid_t>(syscall(SYS_gettid));
  if (pthread_getcpuclockid(pthread_self(), &entry->cpu_clock) != 0) {
    delete entry;
    return;
  }
  FillStackBounds(entry);
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.threads.push_back(entry);
  t_entry = entry;
  if (state.running.load(std::memory_order_relaxed)) {
    ArmTimerLocked(entry, state.hz.load(std::memory_order_relaxed));
  }
}

void Profiler::UnregisterCurrentThread() {
  ThreadEntry* entry = t_entry;
  if (entry == nullptr) return;
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  DisarmTimerLocked(entry);
  state.threads.erase(
      std::remove(state.threads.begin(), state.threads.end(), entry),
      state.threads.end());
  t_entry = nullptr;
  delete entry;
}

bool Profiler::Start(const ProfilerOptions& options, std::string* error) {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.running.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "profiler already running";
    return false;
  }
  if (!InstallHandlerLocked(state, error)) return false;
  EnsureRing();
  const int hz = std::clamp(options.hz, 1, 2000);
  std::size_t armed = 0;
  for (ThreadEntry* entry : state.threads) {
    if (ArmTimerLocked(entry, hz)) ++armed;
  }
  state.hz.store(hz, std::memory_order_relaxed);
  state.running.store(true, std::memory_order_relaxed);
  ProfilerCounters::Get().hz_gauge.Set(hz);
  (void)armed;
  return true;
}

void Profiler::Stop() {
  ProfilerState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (!state.running.load(std::memory_order_relaxed)) return;
  for (ThreadEntry* entry : state.threads) DisarmTimerLocked(entry);
  state.running.store(false, std::memory_order_relaxed);
  state.hz.store(0, std::memory_order_relaxed);
  ProfilerCounters::Get().hz_gauge.Set(0);
}

bool Profiler::running() const {
  return State().running.load(std::memory_order_relaxed);
}

int Profiler::hz() const { return State().hz.load(std::memory_order_relaxed); }

#else  // !__linux__

void Profiler::RegisterCurrentThread() {}
void Profiler::UnregisterCurrentThread() {}

bool Profiler::Start(const ProfilerOptions&, std::string* error) {
  if (error != nullptr) {
    *error = "sampling profiler requires Linux (timer_create + SIGPROF)";
  }
  return false;
}

void Profiler::Stop() {}
bool Profiler::running() const { return false; }
int Profiler::hz() const { return 0; }

#endif  // __linux__

std::uint64_t Profiler::SampleCursor() const {
  const SampleRing* ring = g_ring.load(std::memory_order_acquire);
  return ring != nullptr ? ring->head.load(std::memory_order_acquire) : 0;
}

std::uint64_t Profiler::dropped() const {
  const SampleRing* ring = g_ring.load(std::memory_order_acquire);
  return ring != nullptr ? ring->dropped.load(std::memory_order_relaxed) : 0;
}

std::vector<ProfileSample> Profiler::CollectSince(
    std::uint64_t cursor) const {
  std::vector<ProfileSample> samples;
  SampleRing* ring = g_ring.load(std::memory_order_acquire);
  if (ring == nullptr) return samples;
  const std::uint64_t head = ring->head.load(std::memory_order_acquire);
  std::uint64_t begin = cursor;
  if (head > kRingSize && begin < head - kRingSize) {
    begin = head - kRingSize;  // older slots have been overwritten
  }
  samples.reserve(static_cast<std::size_t>(head - begin));
  for (std::uint64_t seq = begin; seq < head; ++seq) {
    SampleSlot& slot = ring->slots[seq % kRingSize];
    const std::uint64_t v1 = slot.version.load(std::memory_order_acquire);
    if ((v1 & 1) != 0) continue;  // writer mid-flight
    std::uint64_t words[kSampleWords];
    for (std::size_t i = 0; i < kSampleWords; ++i) {
      words[i] = slot.words[i].load(std::memory_order_relaxed);
    }
    const std::uint64_t slot_seq = slot.seq.load(std::memory_order_relaxed);
    const std::uint64_t v2 = slot.version.load(std::memory_order_acquire);
    if (v1 != v2 || slot_seq != seq) continue;  // torn or recycled
    ProfileSample sample;
    std::memcpy(&sample, words, sizeof(sample));
    if (sample.num_frames > ProfileSample::kMaxFrames) continue;  // corrupt
    samples.push_back(sample);
  }
  ProfilerCounters::Get().collected.Add(samples.size());
  const std::uint64_t drops = ring->dropped.load(std::memory_order_relaxed);
  Counter& published = ProfilerCounters::Get().dropped_published;
  const std::uint64_t already = static_cast<std::uint64_t>(published.Value());
  if (drops > already) published.Add(drops - already);
  return samples;
}

std::string Profiler::RenderCollapsed(
    const std::vector<ProfileSample>& samples) {
  std::unordered_map<std::uintptr_t, std::string> symbol_cache;
  std::map<std::string, std::uint64_t> stacks;
  for (const ProfileSample& sample : samples) {
    std::string line =
        sample.span != nullptr ? SanitizeFrameName(sample.span) : "(no-span)";
    // Collapsed stacks read root-first; frames are captured innermost-first.
    for (std::uint32_t i = sample.num_frames; i > 0; --i) {
      line.push_back(';');
      line += SymbolizePc(sample.frames[i - 1], /*is_return_address=*/i > 1,
                          &symbol_cache);
    }
    ++stacks[line];
  }
  std::string out;
  for (const auto& [stack, count] : stacks) {
    out += stack;
    out.push_back(' ');
    out += std::to_string(count);
    out.push_back('\n');
  }
  return out;
}

std::string Profiler::RenderJson(const std::vector<ProfileSample>& samples,
                                 int hz, double seconds,
                                 std::uint64_t dropped) {
  std::map<std::string, std::uint64_t> span_totals;
  std::map<std::string, std::uint64_t> trace_totals;
  for (const ProfileSample& sample : samples) {
    ++span_totals[sample.span != nullptr ? sample.span : "(no-span)"];
    if ((sample.trace_hi | sample.trace_lo) != 0) {
      char trace_id[33];
      std::snprintf(trace_id, sizeof(trace_id), "%016" PRIx64 "%016" PRIx64,
                    sample.trace_hi, sample.trace_lo);
      ++trace_totals[trace_id];
    }
  }
  std::string out = "{";
  out += "\"hz\":" + std::to_string(hz);
  char seconds_buffer[32];
  std::snprintf(seconds_buffer, sizeof(seconds_buffer), "%.3f", seconds);
  out += ",\"seconds\":";
  out += seconds_buffer;
  out += ",\"samples\":" + std::to_string(samples.size());
  out += ",\"dropped\":" + std::to_string(dropped);
  out += ",\"spans\":{";
  bool first = true;
  for (const auto& [span, count] : span_totals) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, span);
    out.push_back(':');
    out += std::to_string(count);
  }
  out += "},\"traces\":{";
  first = true;
  for (const auto& [trace, count] : trace_totals) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonString(&out, trace);
    out.push_back(':');
    out += std::to_string(count);
  }
  out += "},\"stacks\":[";
  // Top stacks by weight, collapsed-rendered for readability.
  std::unordered_map<std::uintptr_t, std::string> symbol_cache;
  std::map<std::string, std::uint64_t> stacks;
  for (const ProfileSample& sample : samples) {
    std::string line =
        sample.span != nullptr ? SanitizeFrameName(sample.span) : "(no-span)";
    for (std::uint32_t i = sample.num_frames; i > 0; --i) {
      line.push_back(';');
      line += SymbolizePc(sample.frames[i - 1], i > 1, &symbol_cache);
    }
    ++stacks[line];
  }
  std::vector<std::pair<std::string, std::uint64_t>> ranked(stacks.begin(),
                                                            stacks.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  constexpr std::size_t kMaxStacks = 200;
  if (ranked.size() > kMaxStacks) ranked.resize(kMaxStacks);
  first = true;
  for (const auto& [stack, count] : ranked) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"stack\":";
    AppendJsonString(&out, stack);
    out += ",\"count\":" + std::to_string(count) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace obs
}  // namespace qdcbir
