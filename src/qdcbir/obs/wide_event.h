#ifndef QDCBIR_OBS_WIDE_EVENT_H_
#define QDCBIR_OBS_WIDE_EVENT_H_

/// \file
/// Wide-event session export: one JSON line per completed feedback session,
/// joining the trace id, engine configuration, resource accounting, cache
/// behavior, quality telemetry, and SLO state — everything an offline tool
/// needs to slice sessions without re-joining five metric surfaces.
///
/// `WideEventSink` is an append-only JSON-lines file with size-capped
/// rotation (the live file rolls to `<path>.1`, replacing the previous
/// rollover) and drop counting: a failed write never blocks or aborts a
/// session, it increments `wide_events.dropped` and moves on. The sink is
/// purely observational — emission happens after the ranked response is
/// built, so ranked output is byte-identical with the sink on or off.
///
/// `WideEventBuilder` assembles one event; callers add typed fields and
/// take the rendered line. `qdcbir_tool events summarize` aggregates these
/// files offline.

#include <cstdint>
#include <mutex>
#include <string>

namespace qdcbir {
namespace obs {

struct WideEventSinkOptions {
  std::string path;                          ///< live JSON-lines file
  std::uint64_t max_bytes = 64ull << 20;     ///< rotate past this size
};

/// Thread-safe, non-blocking-on-error JSON-lines sink.
class WideEventSink {
 public:
  explicit WideEventSink(WideEventSinkOptions options);

  /// Appends `json` plus a newline; rotates first when the file would
  /// exceed the cap. Failures are counted, never thrown.
  void Emit(const std::string& json);

  std::uint64_t emitted() const;
  std::uint64_t dropped() const;
  std::uint64_t rotations() const;

  const std::string& path() const { return options_.path; }
  std::string rotated_path() const { return options_.path + ".1"; }

 private:
  WideEventSinkOptions options_;
  mutable std::mutex mu_;
  std::uint64_t bytes_written_ = 0;  ///< size of the live file
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t rotations_ = 0;
};

/// Incremental builder for one flat JSON event object. Strings are escaped;
/// doubles render with %.6g; field order is insertion order (deterministic
/// for a fixed call sequence).
class WideEventBuilder {
 public:
  WideEventBuilder& Add(const std::string& key, const std::string& value);
  WideEventBuilder& Add(const std::string& key, const char* value);
  WideEventBuilder& Add(const std::string& key, std::uint64_t value);
  WideEventBuilder& Add(const std::string& key, std::int64_t value);
  WideEventBuilder& Add(const std::string& key, double value);
  WideEventBuilder& Add(const std::string& key, bool value);

  /// The finished `{...}` object (no trailing newline).
  std::string Build() const;

 private:
  void Key(const std::string& key);
  std::string body_;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_WIDE_EVENT_H_
