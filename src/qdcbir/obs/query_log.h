#ifndef QDCBIR_OBS_QUERY_LOG_H_
#define QDCBIR_OBS_QUERY_LOG_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qdcbir {
namespace obs {

/// One completed retrieval session, as shown on `/queryz`. Fixed-size and
/// trivially copyable so records can live in the lock-free audit ring:
/// the struct is copied word-by-word through `std::atomic<uint64_t>`
/// slots, which keeps concurrent record/snapshot TSan-clean.
struct QueryAuditRecord {
  std::uint64_t sequence = 0;  ///< assigned by QueryLog::Record, 0-based
  char engine[12] = {};        ///< "qd" or "global"
  char label[28] = {};         ///< query/session name, truncated
  std::uint64_t seed = 0;

  std::uint64_t rounds = 0;       ///< relevance-feedback rounds run
  std::uint64_t picks = 0;        ///< relevant images marked across rounds
  std::uint64_t results = 0;      ///< final ranked results returned

  std::uint64_t subqueries = 0;             ///< localized subqueries issued
  std::uint64_t boundary_expansions = 0;
  /// Subqueries whose search node expanded past their leaf (paper 3.3) —
  /// correlates expansion cost with per-session latency on /queryz.
  std::uint64_t expanded_subqueries = 0;
  std::uint64_t nodes_visited = 0;          ///< k-NN nodes visited
  std::uint64_t candidates_scored = 0;      ///< k-NN candidates scored
  std::uint64_t nodes_touched = 0;          ///< display-set nodes touched
  std::uint64_t distinct_nodes_sampled = 0;

  std::uint64_t rounds_ns = 0;    ///< wall time of the feedback rounds
  std::uint64_t finalize_ns = 0;  ///< wall time of Finalize / final rank
  std::uint64_t total_ns = 0;

  /// The session's 128-bit trace id (see obs/trace_context.h); zero when
  /// the session ran without one. Links /queryz rows to /tracez trees.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;

  /// Per-session resource accounting (obs/resource_stats.h): physical work
  /// summed across every pool worker that executed for this session.
  std::uint64_t distance_evals = 0;
  std::uint64_t feature_bytes = 0;
  std::uint64_t leaves_visited = 0;
  std::uint64_t tiles_gathered = 0;
  std::uint64_t container_allocs = 0;
  std::uint64_t alloc_bytes = 0;
  /// Cache traffic of the session (src/qdcbir/cache/): lookups served from
  /// memory vs. computed. Zero on both when the session ran uncached.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  /// Retrieval-quality telemetry (obs/quality_stats.h). Ratios are carried
  /// as permille so the record stays a flat array of words.
  std::uint64_t quality_jaccard_permille = 0;   ///< last round-to-round overlap
  std::uint64_t quality_rank_churn = 0;         ///< last-transition churn
  std::uint64_t quality_rounds_to_stability = 0;  ///< 0 = never stabilized
  /// `SessionOutcome` as its underlying value (finalized/abandoned/errored).
  std::uint64_t quality_outcome = 0;
  /// Oracle precision@k in permille, plus one so 0 still means "undefined"
  /// (serve has no ground truth; eval/bench paths fill it in).
  std::uint64_t quality_oracle_precision_permille_plus1 = 0;

  void set_engine(std::string_view name);
  void set_label(std::string_view name);
  std::string_view engine_view() const;
  std::string_view label_view() const;
  /// 32-hex trace id, "" when zero.
  std::string trace_hex() const;
};

static_assert(sizeof(QueryAuditRecord) % sizeof(std::uint64_t) == 0,
              "record must pack into whole atomic words");

/// A fixed-capacity lock-free ring of the most recent completed sessions.
/// Writers claim a slot by sequence number and publish through a per-slot
/// seqlock version (even = stable, odd = write in progress); readers retry
/// on torn slots. Writers never block and never touch the query hot path —
/// recording happens once per *session*, after Finalize. On the rare
/// collision (two writers `Capacity()` sequences apart racing for one
/// slot) the younger record is dropped and counted.
class QueryLog {
 public:
  static constexpr std::size_t kCapacity = 128;
  static constexpr std::size_t kWords =
      sizeof(QueryAuditRecord) / sizeof(std::uint64_t);

  QueryLog() = default;
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Assigns the next sequence number and publishes a copy of `record`
  /// (with `sequence` filled in) into the ring.
  void Record(QueryAuditRecord record);

  /// A consistent copy of every stable record, ascending by sequence.
  /// Records being overwritten concurrently are skipped, never torn.
  std::vector<QueryAuditRecord> Snapshot() const;

  /// Total sessions ever recorded (including those since evicted).
  std::uint64_t total_recorded() const {
    return head_.load(std::memory_order_relaxed);
  }

  /// Records dropped on same-slot writer collisions.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

  /// The `/queryz` JSON document: ring stats plus the most recent `limit`
  /// stable records (default: the whole ring).
  std::string RenderJson(std::size_t limit = kCapacity) const;

  /// The process-wide audit ring that SessionRunner and the serve layer
  /// record into.
  static QueryLog& Global();

 private:
  /// Test-only accessor: a real slot collision needs two writers racing
  /// `kCapacity` sequences apart mid-write, which cannot be scheduled
  /// deterministically from the public API. The peer pins a slot's seqlock
  /// version to "write in progress" so the drop path is directly testable.
  friend class QueryLogTestPeer;

  struct Slot {
    /// Seqlock version: 0 = never written, odd = write in progress.
    std::atomic<std::uint32_t> version{0};
    std::atomic<std::uint64_t> words[kWords] = {};
  };

  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> dropped_{0};
  Slot slots_[kCapacity];
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_QUERY_LOG_H_
