#include "qdcbir/obs/trace_context.h"

#include <atomic>
#include <cstdio>

#include "qdcbir/obs/clock.h"

namespace qdcbir {
namespace obs {

namespace {

std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  return -1;  // uppercase is invalid per the W3C spec
}

/// Parses exactly `digits` lowercase hex characters into `*out`.
bool ParseHexField(std::string_view text, std::size_t digits,
                   std::uint64_t* out) {
  if (text.size() < digits) return false;
  std::uint64_t value = 0;
  for (std::size_t i = 0; i < digits; ++i) {
    const int nibble = HexNibble(text[i]);
    if (nibble < 0) return false;
    value = (value << 4) | static_cast<std::uint64_t>(nibble);
  }
  *out = value;
  return true;
}

void AppendHex(std::string* out, std::uint64_t value) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(value));
  *out += buf;
}

}  // namespace

TraceContext& MutableCurrentTraceContext() {
  thread_local TraceContext context;
  return context;
}

TraceContext NewTraceContext() {
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t tick = counter.fetch_add(1, std::memory_order_relaxed);
  TraceContext context;
  context.trace_hi = SplitMix64(tick ^ MonotonicNanos());
  context.trace_lo = SplitMix64(context.trace_hi ^ (tick << 32) ^ 0xa5a5ULL);
  if (!context.has_trace_id()) context.trace_lo = 1;  // spec forbids all-zero
  return context;
}

bool ParseTraceparent(std::string_view header, TraceContext* out) {
  // version "00": 2 + 1 + 32 + 1 + 16 + 1 + 2 = 55 bytes exactly.
  if (header.size() != 55) return false;
  if (header[0] != '0' || header[1] != '0') return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') return false;
  std::uint64_t hi = 0, lo = 0, parent = 0, flags = 0;
  if (!ParseHexField(header.substr(3), 16, &hi)) return false;
  if (!ParseHexField(header.substr(19), 16, &lo)) return false;
  if (!ParseHexField(header.substr(36), 16, &parent)) return false;
  if (!ParseHexField(header.substr(53), 2, &flags)) return false;
  if ((hi | lo) == 0 || parent == 0) return false;
  out->trace_hi = hi;
  out->trace_lo = lo;
  out->span_id = parent;
  out->buffer = nullptr;
  return true;
}

std::string FormatTraceparent(const TraceContext& context) {
  std::string out = "00-";
  out.reserve(55);
  AppendHex(&out, context.trace_hi);
  AppendHex(&out, context.trace_lo);
  out.push_back('-');
  AppendHex(&out, context.span_id != 0 ? context.span_id : 1);
  out += "-01";
  return out;
}

std::string TraceIdHex(const TraceContext& context) {
  if (!context.has_trace_id()) return "";
  std::string out;
  out.reserve(32);
  AppendHex(&out, context.trace_hi);
  AppendHex(&out, context.trace_lo);
  return out;
}

}  // namespace obs
}  // namespace qdcbir
