#ifndef QDCBIR_OBS_TRACE_CONTEXT_H_
#define QDCBIR_OBS_TRACE_CONTEXT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "qdcbir/obs/span_stack.h"

namespace qdcbir {
namespace obs {

class TraceBuffer;

/// The request-scoped tracing identity of the calling thread: which trace
/// (128-bit id, W3C-compatible) the thread is currently working for, which
/// span is the innermost open one (the parent of any span opened next),
/// and the buffer that collects the trace's span tree. A default-constructed
/// context is inert: spans still record their histograms but no tree is
/// assembled.
///
/// Propagation: the context lives in a thread-local. `ThreadPool` captures
/// it at enqueue time and restores it around each task, so parent→child
/// span links survive the hop onto pool workers (including nested
/// `ParallelFor` and caller participation).
struct TraceContext {
  std::uint64_t trace_hi = 0;  ///< high 64 bits of the 128-bit trace id
  std::uint64_t trace_lo = 0;  ///< low 64 bits
  std::uint64_t span_id = 0;   ///< innermost open span (0 = trace root)
  /// Span-tree collector; null means "identified but not recorded".
  std::shared_ptr<TraceBuffer> buffer;

  bool has_trace_id() const { return (trace_hi | trace_lo) != 0; }
  bool recording() const { return buffer != nullptr; }
};

/// The calling thread's current context. The reference is to thread-local
/// storage: valid for the thread's lifetime, mutated by ScopedTraceContext
/// and by span construction/destruction.
TraceContext& MutableCurrentTraceContext();
inline const TraceContext& CurrentTraceContext() {
  return MutableCurrentTraceContext();
}

/// Installs `context` as the thread's current context for the enclosing
/// scope and restores the previous one on destruction. The thread-pool
/// task wrapper and the serve layer's request handlers use this; it nests.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(TraceContext context)
      : saved_(std::move(MutableCurrentTraceContext())) {
    TraceContext& current = MutableCurrentTraceContext();
    current = std::move(context);
    // Mirror the trace id into the signal-safe span stack so profiler
    // samples can be joined with /tracez by trace id.
    SetCurrentSpanStackTrace(current.trace_hi, current.trace_lo);
  }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

  ~ScopedTraceContext() {
    TraceContext& current = MutableCurrentTraceContext();
    current = std::move(saved_);
    SetCurrentSpanStackTrace(current.trace_hi, current.trace_lo);
  }

 private:
  TraceContext saved_;
};

/// A fresh context with a process-unique, well-mixed 128-bit trace id
/// (splitmix64 over a counter and the monotonic clock — not a CSPRNG,
/// collision-resistant enough for request correlation). `span_id` is 0 and
/// no buffer is attached.
TraceContext NewTraceContext();

/// Parses a W3C `traceparent` header (`00-<32 hex>-<16 hex>-<2 hex>`).
/// Returns false (leaving `*out` untouched) on any malformation, including
/// the all-zero trace id the spec declares invalid. On success `out->span_id`
/// carries the caller's parent span id and no buffer is attached.
bool ParseTraceparent(std::string_view header, TraceContext* out);

/// Formats `context` as a version-00 `traceparent` value with the sampled
/// flag set. The span id field renders `context.span_id` (0 becomes a
/// generated-looking but stable `0000000000000001`, since the spec forbids
/// all-zero parent ids).
std::string FormatTraceparent(const TraceContext& context);

/// The 32-lowercase-hex trace id, or "" when the context has none.
std::string TraceIdHex(const TraceContext& context);

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_TRACE_CONTEXT_H_
