#include "qdcbir/obs/metrics.h"

#include <bit>
#include <cstdio>

namespace qdcbir {
namespace obs {

std::size_t Histogram::BucketOf(std::uint64_t value) {
  if (value < kSubBuckets) return static_cast<std::size_t>(value);
  const std::size_t msb = 63 - static_cast<std::size_t>(std::countl_zero(value));
  const std::size_t shift = msb - kSubBits;
  const std::size_t sub =
      static_cast<std::size_t>(value >> shift) - kSubBuckets;
  return (msb - kSubBits + 1) * kSubBuckets + sub;
}

double Histogram::BucketMidpoint(std::size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<double>(bucket);
  const std::size_t octave = bucket / kSubBuckets;  // >= 1
  const std::size_t sub = bucket % kSubBuckets;
  const std::size_t shift = octave - 1;
  const double lower =
      static_cast<double>((kSubBuckets + sub)) * static_cast<double>(
          std::uint64_t{1} << shift);
  const double width = static_cast<double>(std::uint64_t{1} << shift);
  return lower + width / 2.0;
}

std::uint64_t Histogram::BucketUpperBound(std::size_t bucket) {
  if (bucket < kSubBuckets) return static_cast<std::uint64_t>(bucket);
  const std::size_t octave = bucket / kSubBuckets;  // >= 1
  const std::size_t sub = bucket % kSubBuckets;
  const std::size_t shift = octave - 1;
  const std::uint64_t lower = (kSubBuckets + sub) << shift;
  const std::uint64_t width = std::uint64_t{1} << shift;
  return lower + width - 1;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>>
Histogram::CumulativeBuckets() const {
  std::uint64_t merged[kNumBuckets] = {};
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& shard = shards_[s];
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
  }
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    if (merged[b] == 0) continue;
    cumulative += merged[b];
    out.emplace_back(BucketUpperBound(b), cumulative);
  }
  return out;
}

void Histogram::Record(std::uint64_t value) {
  Shard& shard = shards_[internal::ShardIndex(kShards)];
  shard.buckets[BucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  shard.count.fetch_add(1, std::memory_order_relaxed);
  shard.sum.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = shard.min.load(std::memory_order_relaxed);
  while (value < seen && !shard.min.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
  seen = shard.max.load(std::memory_order_relaxed);
  while (value > seen && !shard.max.compare_exchange_weak(
                             seen, value, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  std::uint64_t merged[kNumBuckets] = {};
  Snapshot snap;
  snap.min = ~std::uint64_t{0};
  for (std::size_t s = 0; s < kShards; ++s) {
    const Shard& shard = shards_[s];
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      merged[b] += shard.buckets[b].load(std::memory_order_relaxed);
    }
    snap.count += shard.count.load(std::memory_order_relaxed);
    snap.sum += shard.sum.load(std::memory_order_relaxed);
    const std::uint64_t mn = shard.min.load(std::memory_order_relaxed);
    const std::uint64_t mx = shard.max.load(std::memory_order_relaxed);
    if (mn < snap.min) snap.min = mn;
    if (mx > snap.max) snap.max = mx;
  }
  if (snap.count == 0) {
    snap.min = 0;
    return snap;
  }

  const auto percentile = [&](double q) {
    // The value at rank ceil(q * count), reported as its bucket midpoint
    // clamped into the observed [min, max] range (so p100-ish quantiles of
    // tiny samples do not overshoot the true maximum).
    const std::uint64_t rank = static_cast<std::uint64_t>(
        q * static_cast<double>(snap.count) + 0.5);
    std::uint64_t seen = 0;
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      seen += merged[b];
      if (seen >= rank && merged[b] > 0) {
        double v = BucketMidpoint(b);
        if (v < static_cast<double>(snap.min)) {
          v = static_cast<double>(snap.min);
        }
        if (v > static_cast<double>(snap.max)) {
          v = static_cast<double>(snap.max);
        }
        return v;
      }
    }
    return static_cast<double>(snap.max);
  };
  snap.p50 = percentile(0.50);
  snap.p90 = percentile(0.90);
  snap.p95 = percentile(0.95);
  snap.p99 = percentile(0.99);
  return snap;
}

void Histogram::Clear() {
  for (std::size_t s = 0; s < kShards; ++s) {
    Shard& shard = shards_[s];
    for (std::size_t b = 0; b < kNumBuckets; ++b) {
      shard.buckets[b].store(0, std::memory_order_relaxed);
    }
    shard.count.store(0, std::memory_order_relaxed);
    shard.sum.store(0, std::memory_order_relaxed);
    shard.min.store(~std::uint64_t{0}, std::memory_order_relaxed);
    shard.max.store(0, std::memory_order_relaxed);
  }
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

namespace {

/// Unit inference from the repo's metric-naming convention
/// (docs/observability.md): `_ns` measures nanoseconds, `bytes` bytes.
std::string UnitOfName(const std::string& name) {
  if (name.size() >= 3 && name.compare(name.size() - 3, 3, "_ns") == 0) {
    return "nanoseconds";
  }
  if (name.find("bytes") != std::string::npos) return "bytes";
  return "";
}

}  // namespace

void MetricsRegistry::RecordMeta(const std::string& name, const char* help) {
  MetricMeta& meta = meta_[name];
  if (meta.unit.empty()) meta.unit = UnitOfName(name);
  if (meta.help.empty() && help != nullptr) meta.help = help;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const char* help) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordMeta(name, help);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const char* help) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordMeta(name, help);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const char* help) {
  std::lock_guard<std::mutex> lock(mu_);
  RecordMeta(name, help);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

Histogram& MetricsRegistry::SpanHistogram(const char* span_name) {
  return GetHistogram(std::string("span.") + span_name,
                      "Wall time of the identically-named engine phase span");
}

void MetricsRegistry::RecordExemplar(const std::string& name,
                                     std::uint64_t value,
                                     const std::string& trace_id) {
  if (trace_id.empty()) return;
  const std::uint64_t le = Histogram::BucketUpperBound(
      Histogram::BucketOf(value));
  std::lock_guard<std::mutex> lock(mu_);
  exemplars_[name][le] = HistogramExemplar{value, le, trace_id};
}

MetricsRegistry::RegistrySnapshot MetricsRegistry::Snapshot() const {
  RegistrySnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name,
                             std::make_pair(gauge->Value(), gauge->Max()));
  }
  for (const auto& [name, histogram] : histograms_) {
    snap.histograms.emplace_back(name, histogram->Snap());
    snap.histogram_buckets.emplace_back(name, histogram->CumulativeBuckets());
  }
  snap.meta = meta_;
  for (const auto& [name, by_bucket] : exemplars_) {
    std::vector<HistogramExemplar>& list = snap.exemplars[name];
    list.reserve(by_bucket.size());
    for (const auto& [le, exemplar] : by_bucket) list.push_back(exemplar);
  }
  return snap;
}

namespace {

void AppendEscaped(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c == '\n' ? ' ' : c);
  }
}

void AppendNumber(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  out += buf;
}

}  // namespace

std::string MetricsRegistry::SnapshotJson() const {
  const RegistrySnapshot snap = Snapshot();
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value_max] : snap.gauges) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    out += "\":{\"value\":";
    out += std::to_string(value_max.first);
    out += ",\"max\":";
    out += std::to_string(value_max.second);
    out.push_back('}');
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    AppendEscaped(out, name);
    out += "\":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"min\":";
    out += std::to_string(h.min);
    out += ",\"max\":";
    out += std::to_string(h.max);
    out += ",\"mean\":";
    AppendNumber(out, h.mean());
    out += ",\"p50\":";
    AppendNumber(out, h.p50);
    out += ",\"p90\":";
    AppendNumber(out, h.p90);
    out += ",\"p95\":";
    AppendNumber(out, h.p95);
    out += ",\"p99\":";
    AppendNumber(out, h.p99);
    out.push_back('}');
  }
  out += "}}";
  return out;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Clear();
  for (auto& [name, gauge] : gauges_) gauge->Clear();
  for (auto& [name, histogram] : histograms_) histogram->Clear();
  exemplars_.clear();
}

}  // namespace obs
}  // namespace qdcbir
