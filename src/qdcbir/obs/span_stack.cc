#include "qdcbir/obs/span_stack.h"

namespace qdcbir {
namespace obs {
namespace {

// constinit: zero-initialized in the TLS image, no per-thread guard or
// dynamic initializer — the SIGPROF handler may be the first reader on a
// thread and must not trip a TLS initialization path.
constinit thread_local SpanStack t_span_stack;

}  // namespace

SpanStack& CurrentSpanStack() { return t_span_stack; }

}  // namespace obs
}  // namespace qdcbir
