#include "qdcbir/obs/query_log.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/quality_stats.h"

namespace qdcbir {
namespace obs {

namespace {

void CopyTruncated(char* dst, std::size_t dst_size, std::string_view src) {
  const std::size_t n = src.size() < dst_size ? src.size() : dst_size;
  std::memset(dst, 0, dst_size);
  std::memcpy(dst, src.data(), n);
}

std::string_view ViewOf(const char* data, std::size_t max) {
  std::size_t len = 0;
  while (len < max && data[len] != '\0') ++len;
  return std::string_view(data, len);
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendField(std::string* out, const char* name, std::uint64_t value,
                 bool* first) {
  if (!*first) out->push_back(',');
  *first = false;
  *out += '"';
  *out += name;
  *out += "\":";
  *out += std::to_string(value);
}

}  // namespace

void QueryAuditRecord::set_engine(std::string_view name) {
  CopyTruncated(engine, sizeof(engine), name);
}

void QueryAuditRecord::set_label(std::string_view name) {
  CopyTruncated(label, sizeof(label), name);
}

std::string_view QueryAuditRecord::engine_view() const {
  return ViewOf(engine, sizeof(engine));
}

std::string_view QueryAuditRecord::label_view() const {
  return ViewOf(label, sizeof(label));
}

std::string QueryAuditRecord::trace_hex() const {
  if ((trace_hi | trace_lo) == 0) return "";
  char buf[33];
  std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                static_cast<unsigned long long>(trace_hi),
                static_cast<unsigned long long>(trace_lo));
  return std::string(buf, 32);
}

void QueryLog::Record(QueryAuditRecord record) {
  const std::uint64_t seq = head_.fetch_add(1, std::memory_order_relaxed);
  record.sequence = seq;
  Slot& slot = slots_[seq % kCapacity];

  std::uint32_t version = slot.version.load(std::memory_order_relaxed);
  if ((version & 1u) != 0 ||
      !slot.version.compare_exchange_strong(version, version + 1,
                                            std::memory_order_acquire,
                                            std::memory_order_relaxed)) {
    // Another writer holds this slot (sequences kCapacity apart racing).
    dropped_.fetch_add(1, std::memory_order_relaxed);
    static Counter& dropped_counter = MetricsRegistry::Global().GetCounter(
        "querylog.dropped",
        "Session audit records dropped on a query-log slot collision");
    dropped_counter.Add(1);
    return;
  }

  std::uint64_t words[kWords];
  std::memcpy(words, &record, sizeof(record));
  for (std::size_t w = 0; w < kWords; ++w) {
    slot.words[w].store(words[w], std::memory_order_relaxed);
  }
  slot.version.store(version + 2, std::memory_order_release);
}

std::vector<QueryAuditRecord> QueryLog::Snapshot() const {
  std::vector<QueryAuditRecord> records;
  records.reserve(kCapacity);
  for (const Slot& slot : slots_) {
    // Bounded retries: a slot rewritten in a tight loop is skipped rather
    // than stalling the reader.
    for (int attempt = 0; attempt < 4; ++attempt) {
      const std::uint32_t v1 = slot.version.load(std::memory_order_acquire);
      if (v1 == 0) break;             // never written
      if ((v1 & 1u) != 0) continue;   // write in progress
      std::uint64_t words[kWords];
      for (std::size_t w = 0; w < kWords; ++w) {
        words[w] = slot.words[w].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot.version.load(std::memory_order_relaxed) != v1) continue;
      QueryAuditRecord record;
      std::memcpy(&record, words, sizeof(record));
      records.push_back(record);
      break;
    }
  }
  std::sort(records.begin(), records.end(),
            [](const QueryAuditRecord& a, const QueryAuditRecord& b) {
              return a.sequence < b.sequence;
            });
  return records;
}

std::string QueryLog::RenderJson(std::size_t limit) const {
  std::vector<QueryAuditRecord> records = Snapshot();
  if (records.size() > limit) {
    // Keep the most recent records: Snapshot sorts ascending by sequence.
    records.erase(records.begin(),
                  records.end() - static_cast<std::ptrdiff_t>(limit));
  }
  std::string out = "{\"capacity\":" + std::to_string(kCapacity);
  out += ",\"total_recorded\":" + std::to_string(total_recorded());
  out += ",\"dropped\":" + std::to_string(dropped());
  out += ",\"records\":[";
  bool first_record = true;
  for (const QueryAuditRecord& record : records) {
    if (!first_record) out.push_back(',');
    first_record = false;
    out.push_back('{');
    bool first = true;
    AppendField(&out, "sequence", record.sequence, &first);
    out += ",\"engine\":";
    AppendJsonString(&out, record.engine_view());
    out += ",\"label\":";
    AppendJsonString(&out, record.label_view());
    AppendField(&out, "seed", record.seed, &first);
    AppendField(&out, "rounds", record.rounds, &first);
    AppendField(&out, "picks", record.picks, &first);
    AppendField(&out, "results", record.results, &first);
    AppendField(&out, "subqueries", record.subqueries, &first);
    AppendField(&out, "boundary_expansions", record.boundary_expansions,
                &first);
    AppendField(&out, "expanded_subqueries", record.expanded_subqueries,
                &first);
    AppendField(&out, "nodes_visited", record.nodes_visited, &first);
    AppendField(&out, "candidates_scored", record.candidates_scored, &first);
    AppendField(&out, "nodes_touched", record.nodes_touched, &first);
    AppendField(&out, "distinct_nodes_sampled",
                record.distinct_nodes_sampled, &first);
    AppendField(&out, "rounds_ns", record.rounds_ns, &first);
    AppendField(&out, "finalize_ns", record.finalize_ns, &first);
    AppendField(&out, "total_ns", record.total_ns, &first);
    AppendField(&out, "distance_evals", record.distance_evals, &first);
    AppendField(&out, "feature_bytes", record.feature_bytes, &first);
    AppendField(&out, "leaves_visited", record.leaves_visited, &first);
    AppendField(&out, "tiles_gathered", record.tiles_gathered, &first);
    AppendField(&out, "container_allocs", record.container_allocs, &first);
    AppendField(&out, "alloc_bytes", record.alloc_bytes, &first);
    AppendField(&out, "cache_hits", record.cache_hits, &first);
    AppendField(&out, "cache_misses", record.cache_misses, &first);
    AppendField(&out, "quality_jaccard_permille",
                record.quality_jaccard_permille, &first);
    AppendField(&out, "quality_rank_churn", record.quality_rank_churn,
                &first);
    AppendField(&out, "quality_rounds_to_stability",
                record.quality_rounds_to_stability, &first);
    out += ",\"outcome\":";
    AppendJsonString(&out, SessionOutcomeName(static_cast<SessionOutcome>(
                               record.quality_outcome)));
    if (record.quality_oracle_precision_permille_plus1 > 0) {
      AppendField(&out, "oracle_precision_permille",
                  record.quality_oracle_precision_permille_plus1 - 1, &first);
    }
    out += ",\"trace\":";
    AppendJsonString(&out, record.trace_hex());
    out.push_back('}');
  }
  out += "]}";
  return out;
}

QueryLog& QueryLog::Global() {
  static QueryLog* log = new QueryLog();
  return *log;
}

}  // namespace obs
}  // namespace qdcbir
