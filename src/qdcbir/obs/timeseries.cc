#include "qdcbir/obs/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "qdcbir/obs/clock.h"

namespace qdcbir {
namespace obs {

namespace {

void AppendJsonString(std::string* out, const std::string& value) {
  out->push_back('"');
  for (const char c : value) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(c));
          *out += buffer;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendNumber(std::string* out, double value) {
  char buffer[40];
  if (value == static_cast<double>(static_cast<long long>(value)) &&
      value < 9.2e18 && value > -9.2e18) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  }
  *out += buffer;
}

}  // namespace

FlightRecorder::FlightRecorder(Options options, MetricsRegistry* registry,
                               Clock clock)
    : options_(options),
      registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      clock_(clock != nullptr ? std::move(clock) : [] {
        return MonotonicNanos();
      }) {
  ring_.resize(options_.capacity == 0 ? 1 : options_.capacity);
  events_.resize(options_.max_events == 0 ? 1 : options_.max_events);
  // Register the self-accounting families up front so the very first
  // sample already contains them (and /metrics shows them at zero).
  registry_->GetCounter("history.samples.taken",
                        "Flight-recorder registry samples taken.");
  registry_->GetCounter(
      "history.series.dropped",
      "Metrics the flight recorder could not track (name table full).");
  registry_->GetCounter("history.events.marked",
                        "Event marks pinned into the flight-recorder ring.");
}

FlightRecorder::~FlightRecorder() { Stop(); }

void FlightRecorder::Start() {
  std::lock_guard<std::mutex> lock(thread_mu_);
  if (sampler_.joinable()) return;
  stopping_ = false;
  sampler_ = std::thread([this] { BackgroundLoop(); });
}

void FlightRecorder::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mu_);
    stopping_ = true;
  }
  thread_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

void FlightRecorder::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(thread_mu_);
  // Sample-then-wait (not wait-then-sample): every Start/Stop cycle records
  // at least one sample even if Stop lands before the thread is scheduled.
  do {
    lock.unlock();
    SampleNow();
    lock.lock();
    thread_cv_.wait_for(lock, std::chrono::nanoseconds(options_.interval_ns),
                        [this] { return stopping_; });
  } while (!stopping_);
}

std::size_t FlightRecorder::SeriesIdLocked(const std::string& name,
                                           bool is_counter) {
  auto it = series_ids_.find(name);
  if (it != series_ids_.end()) return it->second;
  if (series_names_.size() >= options_.max_series) {
    ++series_dropped_;
    return options_.max_series;  // sentinel: untracked
  }
  const std::size_t id = series_names_.size();
  series_ids_.emplace(name, id);
  series_names_.push_back(name);
  series_is_counter_.push_back(is_counter);
  return id;
}

void FlightRecorder::SampleNow() {
  const MetricsRegistry::RegistrySnapshot snap = registry_->Snapshot();
  const std::uint64_t now_ns = clock_();

  std::uint64_t dropped_delta = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::uint64_t dropped_before = series_dropped_;
    Sample& slot = ring_[ring_head_];
    slot.t_ns = now_ns;
    slot.values.assign(series_names_.size(), 0.0);
    const auto record = [&](std::size_t id, double value) {
      if (id >= options_.max_series) return;
      if (id >= slot.values.size()) slot.values.resize(id + 1, 0.0);
      slot.values[id] = value;
    };
    for (const auto& [name, value] : snap.counters) {
      record(SeriesIdLocked(name, /*is_counter=*/true),
             static_cast<double>(value));
    }
    for (const auto& [name, gauge] : snap.gauges) {
      record(SeriesIdLocked(name, /*is_counter=*/false),
             static_cast<double>(gauge.first));
    }
    ring_head_ = (ring_head_ + 1) % ring_.size();
    if (ring_size_ < ring_.size()) ++ring_size_;
    ++samples_taken_;
    dropped_delta = series_dropped_ - dropped_before;
  }

  // Registry ticks happen outside mu_ (GetCounter takes the registry
  // mutex); the next sample picks them up.
  registry_->GetCounter("history.samples.taken").Add(1);
  if (dropped_delta > 0) {
    registry_->GetCounter("history.series.dropped").Add(dropped_delta);
  }
}

void FlightRecorder::MarkEvent(const std::string& label) {
  const std::uint64_t now_ns = clock_();
  {
    std::lock_guard<std::mutex> lock(mu_);
    EventMark& slot = events_[events_head_];
    slot.t_ns = now_ns;
    slot.label = label;
    events_head_ = (events_head_ + 1) % events_.size();
    if (events_size_ < events_.size()) ++events_size_;
  }
  registry_->GetCounter("history.events.marked").Add(1);
}

FlightRecorder::Series FlightRecorder::Query(const std::string& metric,
                                             std::uint64_t window_ns) const {
  Series series;
  series.name = metric;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = series_ids_.find(metric);
  if (it == series_ids_.end()) return series;
  series.known = true;
  series.is_counter = series_is_counter_[it->second];
  const std::size_t id = it->second;

  // Ring slots oldest-first.
  const std::size_t oldest =
      (ring_head_ + ring_.size() - ring_size_) % ring_.size();
  std::uint64_t newest_t = 0;
  for (std::size_t i = 0; i < ring_size_; ++i) {
    const Sample& sample = ring_[(oldest + i) % ring_.size()];
    if (id < sample.values.size()) newest_t = sample.t_ns;
  }
  const std::uint64_t cutoff =
      (window_ns == 0 || newest_t < window_ns) ? 0 : newest_t - window_ns;

  bool have_prev = false;
  double prev_value = 0.0;
  std::uint64_t prev_t = 0;
  for (std::size_t i = 0; i < ring_size_; ++i) {
    const Sample& sample = ring_[(oldest + i) % ring_.size()];
    if (id >= sample.values.size()) continue;
    const double value = sample.values[id];
    if (sample.t_ns >= cutoff) {
      Point point;
      point.t_ns = sample.t_ns;
      point.value = value;
      if (have_prev) {
        double delta = value - prev_value;
        if (series.is_counter && delta < 0) delta = value;  // reset
        point.delta = delta;
        const std::uint64_t dt = sample.t_ns - prev_t;
        point.rate = dt == 0 ? 0.0 : delta * 1e9 / static_cast<double>(dt);
      }
      series.points.push_back(point);
    }
    have_prev = true;
    prev_value = value;
    prev_t = sample.t_ns;
  }
  return series;
}

std::vector<std::string> FlightRecorder::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names = series_names_;
  std::sort(names.begin(), names.end());
  return names;
}

std::vector<FlightRecorder::EventMark> FlightRecorder::Events(
    std::uint64_t window_ns) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<EventMark> marks;
  const std::size_t oldest =
      (events_head_ + events_.size() - events_size_) % events_.size();
  std::uint64_t newest_t = 0;
  for (std::size_t i = 0; i < events_size_; ++i) {
    newest_t = std::max(newest_t,
                        events_[(oldest + i) % events_.size()].t_ns);
  }
  const std::uint64_t cutoff =
      (window_ns == 0 || newest_t < window_ns) ? 0 : newest_t - window_ns;
  for (std::size_t i = 0; i < events_size_; ++i) {
    const EventMark& mark = events_[(oldest + i) % events_.size()];
    if (mark.t_ns >= cutoff) marks.push_back(mark);
  }
  return marks;
}

std::string FlightRecorder::RenderJson(const std::string& metric,
                                       std::uint64_t window_ns) const {
  const Series series = Query(metric, window_ns);
  std::string out = "{\"metric\":";
  AppendJsonString(&out, metric);
  out += ",\"known\":";
  out += series.known ? "true" : "false";
  if (series.known) {
    out += ",\"type\":\"";
    out += series.is_counter ? "counter" : "gauge";
    out += "\"";
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), ",\"interval_ms\":%llu",
                static_cast<unsigned long long>(options_.interval_ns /
                                                1000000ull));
  out += buffer;
  std::snprintf(buffer, sizeof(buffer), ",\"window_ns\":%llu",
                static_cast<unsigned long long>(window_ns));
  out += buffer;
  out += ",\"points\":[";
  bool first = true;
  for (const Point& point : series.points) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buffer, sizeof(buffer), "{\"t_ns\":%llu,\"value\":",
                  static_cast<unsigned long long>(point.t_ns));
    out += buffer;
    AppendNumber(&out, point.value);
    out += ",\"delta\":";
    AppendNumber(&out, point.delta);
    out += ",\"rate\":";
    AppendNumber(&out, point.rate);
    out += "}";
  }
  out += "],\"events\":[";
  first = true;
  for (const EventMark& mark : Events(window_ns)) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buffer, sizeof(buffer), "{\"t_ns\":%llu,\"label\":",
                  static_cast<unsigned long long>(mark.t_ns));
    out += buffer;
    AppendJsonString(&out, mark.label);
    out += "}";
  }
  out += "]";
  if (!series.known) {
    out += ",\"series\":[";
    first = true;
    for (const std::string& name : SeriesNames()) {
      if (!first) out += ",";
      first = false;
      AppendJsonString(&out, name);
    }
    out += "]";
  }
  std::snprintf(buffer, sizeof(buffer),
                ",\"samples_taken\":%llu,\"series_dropped\":%llu}",
                static_cast<unsigned long long>(samples_taken()),
                static_cast<unsigned long long>(series_dropped()));
  out += buffer;
  return out;
}

std::uint64_t FlightRecorder::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_taken_;
}

std::uint64_t FlightRecorder::series_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return series_dropped_;
}

}  // namespace obs
}  // namespace qdcbir
