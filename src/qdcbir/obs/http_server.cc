#include "qdcbir/obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {

namespace {

bool EqualsIgnoreCase(const std::string& a, const std::string& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool IsTokenChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '-' || c == '_';
}

/// Shared server telemetry; all HttpServer instances record into the same
/// named metrics, like the thread pools do.
struct HttpMetrics {
  Counter& requests;
  Counter& bad_requests;
  Gauge& connections_active;
  Histogram& request_ns;

  static HttpMetrics& Get() {
    static HttpMetrics* m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return new HttpMetrics{
          reg.GetCounter("serve.http.requests",
                         "HTTP requests answered by the embedded server"),
          reg.GetCounter("serve.http.bad_requests",
                         "HTTP connections dropped on malformed or "
                         "oversized requests"),
          reg.GetGauge("serve.http.connections_active",
                       "Open HTTP connections"),
          reg.GetHistogram("serve.http.request_ns",
                           "Wall time from parsed request to response "
                           "written"),
      };
    }();
    return *m;
  }
};

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) return &value;
  }
  return nullptr;
}

HttpParseStatus ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                                 std::size_t* consumed,
                                 const HttpLimits& limits) {
  const std::size_t header_end = buffer.find("\r\n\r\n");
  if (header_end == std::string_view::npos) {
    return buffer.size() > limits.max_header_bytes
               ? HttpParseStatus::kHeaderTooLarge
               : HttpParseStatus::kIncomplete;
  }
  if (header_end + 4 > limits.max_header_bytes) {
    return HttpParseStatus::kHeaderTooLarge;
  }

  HttpRequest request;
  const std::string_view head = buffer.substr(0, header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);

  // METHOD SP target SP HTTP/x.y — anything else is malformed.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return HttpParseStatus::kBadRequest;
  }
  request.method = std::string(request_line.substr(0, sp1));
  std::string target(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  request.version = std::string(request_line.substr(sp2 + 1));
  if (request.method.empty() || request.method.size() > 16) {
    return HttpParseStatus::kBadRequest;
  }
  for (const char c : request.method) {
    if (!std::isupper(static_cast<unsigned char>(c))) {
      return HttpParseStatus::kBadRequest;
    }
  }
  if (target.empty() || target[0] != '/' ||
      (request.version != "HTTP/1.1" && request.version != "HTTP/1.0")) {
    return HttpParseStatus::kBadRequest;
  }
  const std::size_t question = target.find('?');
  if (question != std::string::npos) {
    request.query = target.substr(question + 1);
    target.resize(question);
  }
  request.target = std::move(target);

  // Header fields.
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = head.size();
    const std::string_view line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return HttpParseStatus::kBadRequest;
    }
    std::string name(line.substr(0, colon));
    for (const char c : name) {
      if (!IsTokenChar(c)) return HttpParseStatus::kBadRequest;
    }
    std::size_t value_begin = colon + 1;
    while (value_begin < line.size() &&
           (line[value_begin] == ' ' || line[value_begin] == '\t')) {
      ++value_begin;
    }
    std::size_t value_end = line.size();
    while (value_end > value_begin && (line[value_end - 1] == ' ' ||
                                       line[value_end - 1] == '\t')) {
      --value_end;
    }
    request.headers.emplace_back(
        std::move(name), std::string(line.substr(value_begin,
                                                 value_end - value_begin)));
  }

  // Body framing: Content-Length only (chunked uploads are out of scope
  // for an introspection server).
  std::size_t content_length = 0;
  if (request.FindHeader("Transfer-Encoding") != nullptr) {
    return HttpParseStatus::kBadRequest;
  }
  if (const std::string* header = request.FindHeader("Content-Length")) {
    if (header->empty()) return HttpParseStatus::kBadRequest;
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(header->c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0') {
      return HttpParseStatus::kBadRequest;
    }
    content_length = static_cast<std::size_t>(parsed);
    if (content_length > limits.max_body_bytes) {
      return HttpParseStatus::kBodyTooLarge;
    }
  }
  const std::size_t total = header_end + 4 + content_length;
  if (buffer.size() < total) return HttpParseStatus::kIncomplete;
  request.body = std::string(buffer.substr(header_end + 4, content_length));

  *out = std::move(request);
  *consumed = total;
  return HttpParseStatus::kOk;
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    ReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  out += "\r\n";
  out += response.body;
  return out;
}

HttpServer::HttpServer() : HttpServer(Options()) {}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& path, Handler handler) {
  handlers_[path] = std::move(handler);
}

bool HttpServer::Start(std::string* error) {
  const auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.address.c_str(), &addr.sin_addr) != 1) {
    return fail("bad address " + options_.address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return fail("bind " + options_.address + ":" +
                std::to_string(options_.port));
  }
  if (::listen(listen_fd_, options_.backlog) != 0) return fail("listen");

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));

  stopping_.store(false, std::memory_order_release);
  serving_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void HttpServer::Stop() {
  if (!serving_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept() and refuse new connections.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // Force every open connection's blocking recv to return, then wait for
  // all dispatched handlers to drain.
  std::unique_lock<std::mutex> lock(conn_mu_);
  for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  conn_cv_.wait(lock, [this] { return active_connections_ == 0; });
  serving_.store(false, std::memory_order_release);
}

void HttpServer::AcceptLoop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen socket was shut down (Stop) or broke
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const timeval timeout{options_.recv_timeout_ms / 1000,
                          (options_.recv_timeout_ms % 1000) * 1000};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    {
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_fds_.insert(fd);
      ++active_connections_;
    }
    HttpMetrics::Get().connections_active.Add(1);
    auto task = [this, fd] {
      HandleConnection(fd);
      HttpMetrics::Get().connections_active.Add(-1);
      // Notify while holding the lock: Stop()'s waiter can then only
      // observe the drained count after this notify_all has returned, so
      // the destructor never tears down conn_cv_ mid-notify.
      std::lock_guard<std::mutex> lock(conn_mu_);
      open_fds_.erase(fd);
      ::close(fd);
      --active_connections_;
      conn_cv_.notify_all();
    };
    if (options_.executor) {
      options_.executor(std::move(task));
    } else {
      task();
    }
  }
}

HttpResponse HttpServer::Route(const HttpRequest& request) const {
  if (request.method != "GET" && request.method != "HEAD" &&
      request.method != "POST") {
    return HttpResponse{405, "text/plain; charset=utf-8",
                        "method not allowed\n"};
  }
  const auto it = handlers_.find(request.target);
  if (it != handlers_.end()) return it->second(request);
  if (request.target == "/") {
    std::string index = "qdcbir introspection server\nendpoints:\n";
    for (const auto& [path, handler] : handlers_) {
      index += "  " + path + "\n";
    }
    return HttpResponse{200, "text/plain; charset=utf-8", std::move(index)};
  }
  return HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
}

void HttpServer::HandleConnection(int fd) {
  HttpMetrics& metrics = HttpMetrics::Get();
  std::string buffer;
  char chunk[4096];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    HttpRequest request;
    std::size_t consumed = 0;
    const HttpParseStatus parsed =
        ParseHttpRequest(buffer, &request, &consumed, options_.limits);

    if (parsed == HttpParseStatus::kIncomplete) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return;  // peer closed, timeout, or forced shutdown
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }

    if (parsed != HttpParseStatus::kOk) {
      int status = 400;
      if (parsed == HttpParseStatus::kHeaderTooLarge) status = 431;
      if (parsed == HttpParseStatus::kBodyTooLarge) status = 413;
      metrics.bad_requests.Add(1);
      const std::string reply = SerializeHttpResponse(
          HttpResponse{status, "text/plain; charset=utf-8",
                       "malformed request\n"},
          /*keep_alive=*/false);
      (void)::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      return;
    }

    const std::uint64_t start_ns = MonotonicNanos();
    buffer.erase(0, consumed);
    HttpResponse response = Route(request);

    bool keep_alive = request.version == "HTTP/1.1";
    if (const std::string* connection = request.FindHeader("Connection")) {
      if (EqualsIgnoreCase(*connection, "close")) keep_alive = false;
      if (EqualsIgnoreCase(*connection, "keep-alive")) keep_alive = true;
    }
    if (stopping_.load(std::memory_order_acquire)) keep_alive = false;

    std::string reply = SerializeHttpResponse(response, keep_alive);
    if (request.method == "HEAD") {
      reply.resize(reply.size() - response.body.size());
    }
    std::size_t sent = 0;
    while (sent < reply.size()) {
      const ssize_t n =
          ::send(fd, reply.data() + sent, reply.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return;
      sent += static_cast<std::size_t>(n);
    }
    metrics.requests.Add(1);
    metrics.request_ns.Record(MonotonicNanos() - start_ns);
    open = keep_alive;
  }
}

}  // namespace obs
}  // namespace qdcbir
