#ifndef QDCBIR_OBS_TRACE_H_
#define QDCBIR_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qdcbir {
namespace obs {

/// Chrome `trace_event` recorder. When enabled, spans stream balanced
/// "B"/"E" duration events into an in-memory buffer that `Stop()` (or
/// process exit) writes as a JSON file loadable in `chrome://tracing` and
/// Perfetto.
///
/// Activation:
///  - environment: `QDCBIR_TRACE=<path>` arms the global tracer at first
///    use and flushes to `<path>` at process exit;
///  - programmatic: `Tracer::Global().Start(path)` / `Stop()`, used by
///    `qdcbir_tool --trace-out=...` and the trace tests.
///
/// Recording takes one mutex-guarded append per event; tracing is a
/// diagnostic mode, not a production hot path. When disabled, `enabled()`
/// is a single relaxed atomic load and nothing else happens.
class Tracer {
 public:
  /// The process-wide tracer (leaked; flushed via `atexit`).
  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  /// Begins buffering events for a later flush to `path`. Fails if already
  /// started.
  bool Start(const std::string& path, std::string* error = nullptr);

  /// Disables recording and writes the buffered events to the path given
  /// at `Start`. Returns false (with `error`) if not started or the file
  /// cannot be written.
  bool Stop(std::string* error = nullptr);

  /// Emits a begin/end duration event pair boundary. `name` must point to
  /// storage outliving the tracer (string literals; `QDCBIR_SPAN` passes
  /// literals). Callers must keep pairs balanced per thread — RAII spans
  /// guarantee this.
  void Begin(const char* name);
  void End(const char* name);

  /// Events currently buffered (diagnostics/tests).
  std::size_t buffered_events() const;

 private:
  struct Event {
    const char* name;
    std::uint64_t ts_ns;
    std::uint32_t tid;
    char ph;  // 'B' or 'E'
  };

  void Append(const char* name, char ph);

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::string path_;
  std::uint64_t start_ns_ = 0;
  std::vector<Event> events_;
};

/// Structural validation of a Chrome trace JSON document (the subset the
/// tracer emits): a `traceEvents` array of flat objects, every event
/// carrying name/ph/ts/tid, "B"/"E" pairs balanced and well-nested per
/// thread, timestamps non-decreasing per thread. On success, fills
/// `begin_counts` (if non-null) with the number of "B" events per span
/// name. Returns false and sets `error` on the first violation.
bool ValidateChromeTrace(const std::string& json, std::string* error,
                         std::map<std::string, std::size_t>* begin_counts);

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_TRACE_H_
