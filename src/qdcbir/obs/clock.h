#ifndef QDCBIR_OBS_CLOCK_H_
#define QDCBIR_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace qdcbir {
namespace obs {

/// Nanoseconds on the process's monotonic clock. The single time source of
/// the observability layer: spans, the thread-pool instrumentation, and
/// `WallTimer` all read it, so durations from different subsystems compare
/// directly.
inline std::uint64_t MonotonicNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// A small dense id for the calling thread, assigned on first use. Trace
/// events and metric shards key on it instead of `std::thread::id` so the
/// exported data stays compact and stable within a run.
inline std::uint32_t ThreadTid() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

}  // namespace obs

/// Monotonic wall-clock timer for the efficiency experiments. Lives in the
/// observability layer so the repo has exactly one monotonic-clock utility
/// (spans and benches measure on the same clock).
class WallTimer {
 public:
  WallTimer() : start_(obs::MonotonicNanos()) {}

  void Restart() { start_ = obs::MonotonicNanos(); }

  /// Seconds elapsed since construction or the last Restart().
  double Seconds() const {
    return static_cast<double>(obs::MonotonicNanos() - start_) * 1e-9;
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  std::uint64_t start_;
};

}  // namespace qdcbir

#endif  // QDCBIR_OBS_CLOCK_H_
