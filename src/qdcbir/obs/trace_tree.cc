#include "qdcbir/obs/trace_tree.h"

#include <algorithm>
#include <map>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {

namespace {

void AppendJsonString(std::string* out, const char* s) {
  out->push_back('"');
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(static_cast<unsigned char>(c) < 0x20 ? ' ' : c);
  }
  out->push_back('"');
}

void AppendJsonString(std::string* out, const std::string& s) {
  AppendJsonString(out, s.c_str());
}

}  // namespace

void TraceBuffer::Append(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    // Cold path only: the registered reference is cached so a trace stuck
    // at capacity doesn't re-walk the registry map per span.
    static Counter& dropped_counter = MetricsRegistry::Global().GetCounter(
        "trace.spans.dropped",
        "Spans dropped because a trace's span buffer was full");
    dropped_counter.Add(1);
    return;
  }
  spans_.push_back(record);
}

void TraceBuffer::Annotate(std::uint64_t span_id, const char* key,
                           std::int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (annotations_.size() >= kMaxSpans) {
    static Counter& dropped_counter = MetricsRegistry::Global().GetCounter(
        "trace.annotations.dropped",
        "Span annotations dropped because a trace's buffer was full");
    dropped_counter.Add(1);
    return;
  }
  annotations_.push_back(SpanAnnotation{span_id, key, value});
}

std::vector<SpanRecord> TraceBuffer::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::vector<SpanAnnotation> TraceBuffer::annotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return annotations_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TraceStore::Publish(CompletedTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ++published_;
  std::deque<CompletedTrace>& bucket =
      trace.reason == "slow" ? slow_ : sampled_;
  bucket.push_back(std::move(trace));
  if (bucket.size() > kKeepPerReason) bucket.pop_front();
}

std::vector<CompletedTrace> TraceStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<CompletedTrace> out;
  out.reserve(sampled_.size() + slow_.size());
  out.insert(out.end(), sampled_.begin(), sampled_.end());
  out.insert(out.end(), slow_.begin(), slow_.end());
  return out;
}

std::uint64_t TraceStore::total_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  sampled_.clear();
  slow_.clear();
}

namespace {

/// Renders the subtree rooted at span index `idx` (children in start-time
/// order), computing self time as duration minus the direct children's
/// summed durations.
void AppendSpanTree(
    std::string* out, const CompletedTrace& trace, std::size_t idx,
    const std::multimap<std::uint64_t, std::size_t>& children_of,
    const std::multimap<std::uint64_t, const SpanAnnotation*>& notes_of) {
  const SpanRecord& span = trace.spans[idx];
  const std::uint64_t duration =
      span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;

  std::uint64_t child_ns = 0;
  std::vector<std::size_t> kids;
  const auto [lo, hi] = children_of.equal_range(span.span_id);
  for (auto it = lo; it != hi; ++it) {
    const SpanRecord& child = trace.spans[it->second];
    child_ns += child.end_ns >= child.start_ns
                    ? child.end_ns - child.start_ns
                    : 0;
    kids.push_back(it->second);
  }
  std::sort(kids.begin(), kids.end(), [&trace](std::size_t a, std::size_t b) {
    if (trace.spans[a].start_ns != trace.spans[b].start_ns) {
      return trace.spans[a].start_ns < trace.spans[b].start_ns;
    }
    return trace.spans[a].span_id < trace.spans[b].span_id;
  });
  // Parallel children can overlap, so their sum may exceed the parent's
  // wall time; self time clamps at zero rather than going negative.
  const std::uint64_t self_ns = child_ns < duration ? duration - child_ns : 0;

  *out += "{\"name\":";
  AppendJsonString(out, span.name);
  *out += ",\"span_id\":" + std::to_string(span.span_id);
  *out += ",\"tid\":" + std::to_string(span.tid);
  *out += ",\"start_ns\":" + std::to_string(span.start_ns);
  *out += ",\"duration_ns\":" + std::to_string(duration);
  *out += ",\"self_ns\":" + std::to_string(self_ns);

  const auto [nlo, nhi] = notes_of.equal_range(span.span_id);
  if (nlo != nhi) {
    *out += ",\"annotations\":{";
    bool first = true;
    for (auto it = nlo; it != nhi; ++it) {
      if (!first) out->push_back(',');
      first = false;
      AppendJsonString(out, it->second->key);
      out->push_back(':');
      *out += std::to_string(it->second->value);
    }
    out->push_back('}');
  }

  *out += ",\"children\":[";
  bool first = true;
  for (const std::size_t kid : kids) {
    if (!first) out->push_back(',');
    first = false;
    AppendSpanTree(out, trace, kid, children_of, notes_of);
  }
  *out += "]}";
}

}  // namespace

std::string TraceStore::RenderJson() const {
  const std::vector<CompletedTrace> traces = Snapshot();
  std::string out = "{\"total_published\":" +
                    std::to_string(total_published()) + ",\"traces\":[";
  bool first_trace = true;
  for (const CompletedTrace& trace : traces) {
    if (!first_trace) out.push_back(',');
    first_trace = false;

    // span_id → index, then children grouped by parent. Spans whose parent
    // never closed (or was dropped) surface as roots instead of vanishing.
    std::map<std::uint64_t, std::size_t> by_id;
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
      by_id.emplace(trace.spans[i].span_id, i);
    }
    std::multimap<std::uint64_t, std::size_t> children_of;
    std::vector<std::size_t> roots;
    for (std::size_t i = 0; i < trace.spans.size(); ++i) {
      const std::uint64_t parent = trace.spans[i].parent_id;
      if (parent != 0 && by_id.count(parent) != 0) {
        children_of.emplace(parent, i);
      } else {
        roots.push_back(i);
      }
    }
    std::sort(roots.begin(), roots.end(),
              [&trace](std::size_t a, std::size_t b) {
                if (trace.spans[a].start_ns != trace.spans[b].start_ns) {
                  return trace.spans[a].start_ns < trace.spans[b].start_ns;
                }
                return trace.spans[a].span_id < trace.spans[b].span_id;
              });
    std::multimap<std::uint64_t, const SpanAnnotation*> notes_of;
    for (const SpanAnnotation& note : trace.annotations) {
      notes_of.emplace(note.span_id, &note);
    }

    out += "{\"trace_id\":";
    AppendJsonString(&out, trace.trace_id);
    out += ",\"label\":";
    AppendJsonString(&out, trace.label);
    out += ",\"reason\":";
    AppendJsonString(&out, trace.reason);
    out += ",\"total_ns\":" + std::to_string(trace.total_ns);
    out += ",\"span_count\":" + std::to_string(trace.spans.size());
    out += ",\"dropped_spans\":" + std::to_string(trace.dropped_spans);
    out += ",\"spans\":[";
    bool first_root = true;
    for (const std::size_t root : roots) {
      if (!first_root) out.push_back(',');
      first_root = false;
      AppendSpanTree(&out, trace, root, children_of, notes_of);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

TraceStore& TraceStore::Global() {
  static TraceStore* store = new TraceStore();
  return *store;
}

}  // namespace obs
}  // namespace qdcbir
