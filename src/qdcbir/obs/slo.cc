#include "qdcbir/obs/slo.h"

#include <algorithm>
#include <cstdio>

#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/log.h"

namespace qdcbir {
namespace obs {

namespace {

std::uint64_t CounterValue(const MetricsRegistry::RegistrySnapshot& snap,
                           const std::string& name) {
  for (const auto& [counter, value] : snap.counters) {
    if (counter == name) return value;
  }
  return 0;
}

/// (good, total) from a histogram's cumulative buckets: events at or below
/// `threshold` are good. The HDR buckets quantize the cut to the first
/// upper bound at/above the threshold (≤ ~6% value error, same as the
/// percentile readouts).
std::pair<std::uint64_t, std::uint64_t> HistogramGoodAtOrBelow(
    const MetricsRegistry::RegistrySnapshot& snap, const std::string& name,
    double threshold) {
  for (const auto& [hist, buckets] : snap.histogram_buckets) {
    if (hist != name) continue;
    std::uint64_t good = 0;
    std::uint64_t total = 0;
    for (const auto& [upper, cumulative] : buckets) {
      total = cumulative;
      if (static_cast<double>(upper) <= threshold) good = cumulative;
    }
    // Threshold beyond the last finite bound: everything recorded is good.
    if (!buckets.empty() &&
        threshold >= static_cast<double>(buckets.back().first)) {
      good = total;
    }
    return {good, total};
  }
  return {0, 0};
}

void AppendDouble(std::string& out, double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out += buffer;
}

}  // namespace

const char* SloKindName(SloKind kind) {
  switch (kind) {
    case SloKind::kLatencyQuantile: return "latency_quantile";
    case SloKind::kAvailability: return "availability";
    case SloKind::kRatioFloor: return "ratio_floor";
    case SloKind::kHistogramFloor: return "histogram_floor";
  }
  return "unknown";
}

const char* SloStateName(SloState state) {
  switch (state) {
    case SloState::kOk: return "ok";
    case SloState::kWarn: return "warn";
    case SloState::kBreach: return "breach";
  }
  return "unknown";
}

SloEngine::SloEngine(std::vector<SloDefinition> definitions,
                     MetricsRegistry* registry, Clock clock)
    : registry_(registry != nullptr ? registry : &MetricsRegistry::Global()),
      clock_(clock != nullptr ? std::move(clock) : [] {
        return MonotonicNanos();
      }) {
  slos_.reserve(definitions.size());
  for (SloDefinition& def : definitions) {
    TrackedSlo tracked;
    tracked.def = std::move(def);
    const std::string base = "slo." + tracked.def.name;
    tracked.state_gauge = &registry_->GetGauge(
        base + ".state", "SLO state: 0 ok, 1 warn, 2 breach");
    tracked.fast_gauge = &registry_->GetGauge(
        base + ".fast_burn_permille",
        "Error-budget burn rate over the fast window, x1000");
    tracked.slow_gauge = &registry_->GetGauge(
        base + ".slow_burn_permille",
        "Error-budget burn rate over the slow window, x1000");
    // Gauges exist (value 0 = ok) from construction so `/metrics` exposes
    // every qdcbir_slo_* family before the first evaluation.
    tracked.state_gauge->Set(0);
    tracked.fast_gauge->Set(0);
    tracked.slow_gauge->Set(0);
    slos_.push_back(std::move(tracked));
  }
}

SloEngine::WindowSample SloEngine::Sample(
    const MetricsRegistry::RegistrySnapshot& snap, const SloDefinition& def,
    std::uint64_t now_ns) const {
  WindowSample sample;
  sample.at_ns = now_ns;
  switch (def.kind) {
    case SloKind::kLatencyQuantile: {
      const auto [good, total] =
          HistogramGoodAtOrBelow(snap, def.metric, def.threshold);
      sample.good = good;
      sample.total = total;
      break;
    }
    case SloKind::kAvailability: {
      sample.total = CounterValue(snap, def.metric);
      const std::uint64_t bad = CounterValue(snap, def.bad_metric);
      sample.good = sample.total > bad ? sample.total - bad : 0;
      break;
    }
    case SloKind::kRatioFloor: {
      sample.good = CounterValue(snap, def.metric);
      sample.total = sample.good + CounterValue(snap, def.bad_metric);
      break;
    }
    case SloKind::kHistogramFloor: {
      const auto [at_or_below, total] =
          HistogramGoodAtOrBelow(snap, def.metric, def.threshold);
      // good = strictly above the floor; a non-positive floor accepts
      // everything (exported but never burning — opt-in floors).
      sample.good = def.threshold <= 0.0 ? total : total - at_or_below;
      sample.total = total;
      break;
    }
  }
  return sample;
}

double SloEngine::BurnOver(const TrackedSlo& slo, std::uint64_t now_ns,
                           std::uint64_t window_ns) {
  if (slo.samples.size() < 2) return 0.0;
  const WindowSample& newest = slo.samples.back();
  // Baseline: the latest sample at or before the window start; when the
  // ring does not reach back that far, the oldest sample (partial window).
  const std::uint64_t start_ns =
      now_ns > window_ns ? now_ns - window_ns : 0;
  const WindowSample* baseline = &slo.samples.front();
  for (const WindowSample& sample : slo.samples) {
    if (sample.at_ns > start_ns) break;
    baseline = &sample;
  }
  if (baseline == &newest) return 0.0;
  const std::uint64_t total = newest.total - baseline->total;
  if (total == 0) return 0.0;
  const std::uint64_t good = newest.good - baseline->good;
  const double bad_fraction =
      static_cast<double>(total - good) / static_cast<double>(total);
  const double budget = 1.0 - slo.def.objective;
  if (budget <= 0.0) return bad_fraction > 0.0 ? 1e9 : 0.0;
  return bad_fraction / budget;
}

void SloEngine::Evaluate() {
  const std::uint64_t now_ns = clock_();
  const MetricsRegistry::RegistrySnapshot snap = registry_->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  for (TrackedSlo& slo : slos_) {
    const WindowSample sample = Sample(snap, slo.def, now_ns);
    // Monotonic guard: a clock hiccup or reset registry must not make the
    // window deltas go negative.
    if (!slo.samples.empty() &&
        (sample.at_ns < slo.samples.back().at_ns ||
         sample.total < slo.samples.back().total ||
         sample.good < slo.samples.back().good)) {
      slo.samples.clear();
    }
    slo.samples.push_back(sample);
    // Prune to the slow window, keeping one baseline sample beyond it.
    const std::uint64_t horizon =
        now_ns > slo.def.slow_window_ns ? now_ns - slo.def.slow_window_ns : 0;
    std::size_t keep_from = 0;
    while (keep_from + 1 < slo.samples.size() &&
           slo.samples[keep_from + 1].at_ns <= horizon) {
      ++keep_from;
    }
    if (keep_from > 0) {
      slo.samples.erase(slo.samples.begin(),
                        slo.samples.begin() + static_cast<long>(keep_from));
    }

    slo.good = sample.good;
    slo.total = sample.total;
    slo.fast_burn = BurnOver(slo, now_ns, slo.def.fast_window_ns);
    slo.slow_burn = BurnOver(slo, now_ns, slo.def.slow_window_ns);
    const bool fast_hot = slo.fast_burn >= slo.def.fast_burn_threshold;
    const bool slow_hot = slo.slow_burn >= slo.def.slow_burn_threshold;
    const SloState next = fast_hot && slow_hot ? SloState::kBreach
                          : fast_hot || slow_hot ? SloState::kWarn
                                                 : SloState::kOk;
    if (next != slo.state) {
      if (next > slo.state) {
        QDCBIR_LOG(obs::LogLevel::kWarn,
                   "slo " + slo.def.name + " " + SloStateName(slo.state) +
                       " -> " + SloStateName(next));
      } else {
        QDCBIR_LOG(obs::LogLevel::kInfo,
                   "slo " + slo.def.name + " recovered: " +
                       SloStateName(slo.state) + " -> " + SloStateName(next));
      }
      slo.state = next;
    }
    slo.state_gauge->Set(static_cast<std::int64_t>(slo.state));
    slo.fast_gauge->Set(static_cast<std::int64_t>(slo.fast_burn * 1000.0));
    slo.slow_gauge->Set(static_cast<std::int64_t>(slo.slow_burn * 1000.0));
  }
}

std::vector<SloStatus> SloEngine::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SloStatus> out;
  out.reserve(slos_.size());
  for (const TrackedSlo& slo : slos_) {
    SloStatus status;
    status.name = slo.def.name;
    status.kind = slo.def.kind;
    status.state = slo.state;
    status.objective = slo.def.objective;
    status.threshold = slo.def.threshold;
    status.fast_burn = slo.fast_burn;
    status.slow_burn = slo.slow_burn;
    status.good = slo.good;
    status.total = slo.total;
    out.push_back(std::move(status));
  }
  return out;
}

std::string SloEngine::RenderJson() const {
  const std::vector<SloStatus> statuses = Snapshot();
  std::string out = "{\"slos\":[";
  bool first = true;
  for (const SloStatus& status : statuses) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"name\":\"" + status.name + "\"";
    out += ",\"kind\":\"" + std::string(SloKindName(status.kind)) + "\"";
    out += ",\"state\":\"" + std::string(SloStateName(status.state)) + "\"";
    out += ",\"objective\":";
    AppendDouble(out, status.objective);
    out += ",\"threshold\":";
    AppendDouble(out, status.threshold);
    out += ",\"fast_burn\":";
    AppendDouble(out, status.fast_burn);
    out += ",\"slow_burn\":";
    AppendDouble(out, status.slow_burn);
    out += ",\"good\":" + std::to_string(status.good);
    out += ",\"total\":" + std::to_string(status.total);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

SloState SloEngine::WorstState() const {
  std::lock_guard<std::mutex> lock(mu_);
  SloState worst = SloState::kOk;
  for (const TrackedSlo& slo : slos_) {
    worst = std::max(worst, slo.state);
  }
  return worst;
}

}  // namespace obs
}  // namespace qdcbir
