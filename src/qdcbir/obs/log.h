#ifndef QDCBIR_OBS_LOG_H_
#define QDCBIR_OBS_LOG_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace qdcbir {
namespace obs {

/// Structured, trace-aware logging for the engine's error and lifecycle
/// paths. Entries are leveled, stamped with the calling thread's current
/// trace id (see trace_context.h), rate-limited per call site, and kept in
/// a bounded in-memory ring served as JSON on `/logz`. Warnings and errors
/// additionally mirror to stderr so headless runs are not silent.
///
/// This is deliberately not a hot-path facility: one mutex-guarded append
/// per admitted entry. Call sites are load/serve lifecycle transitions and
/// failure paths, which fire at most a few times per request.

enum class LogLevel : std::uint8_t {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

struct LogEntry {
  std::uint64_t sequence = 0;
  std::uint64_t unix_ms = 0;   ///< wall clock, for operators
  std::uint64_t mono_ns = 0;   ///< monotonic, comparable with span times
  LogLevel level = LogLevel::kInfo;
  std::string trace_id;        ///< 32-hex current trace, "" when none
  std::string site;            ///< "file.cc:123"
  std::string message;
  std::uint64_t suppressed = 0;  ///< entries this call site dropped before
};

/// Per-call-site token bucket behind `QDCBIR_LOG`: a burst of `kBurst`
/// entries, refilled at `kPerSecond` per second. Suppressed entries are
/// counted and reported on the next admitted entry.
class LogCallSite {
 public:
  static constexpr double kBurst = 8.0;
  static constexpr double kPerSecond = 4.0;

  /// True when this entry may be written; false increments the suppressed
  /// count.
  bool Admit();

  /// Returns and resets the count of entries suppressed since the last
  /// admitted one.
  std::uint64_t TakeSuppressed();

 private:
  std::mutex mu_;
  double tokens_ = kBurst;
  std::uint64_t last_refill_ns_ = 0;
  std::uint64_t suppressed_ = 0;
};

/// The bounded ring `/logz` serves. Appends take a mutex; snapshots copy.
class LogRing {
 public:
  static constexpr std::size_t kCapacity = 256;

  LogRing() = default;
  LogRing(const LogRing&) = delete;
  LogRing& operator=(const LogRing&) = delete;

  /// Appends one entry stamped with the current thread's trace context,
  /// wall/monotonic clocks, and a sequence number. `file` keeps only its
  /// basename. Warn/error levels mirror to stderr.
  void Write(LogLevel level, const char* file, int line, std::string message,
             std::uint64_t suppressed = 0);

  std::vector<LogEntry> Snapshot() const;
  std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }

  /// The `/logz` document: ring stats plus the newest `limit` retained
  /// entries, oldest first (default: the whole ring).
  std::string RenderJson(std::size_t limit = kCapacity) const;

  /// For tests: empties the ring (the total counter stays).
  void Clear();

  /// The process-wide ring every `QDCBIR_LOG` site writes into.
  static LogRing& Global();

 private:
  mutable std::mutex mu_;
  std::deque<LogEntry> entries_;
  std::uint64_t next_sequence_ = 0;
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace obs
}  // namespace qdcbir

/// `QDCBIR_LOG(qdcbir::obs::LogLevel::kWarn, "snapshot load failed: " + s)`
/// writes one rate-limited, trace-stamped entry into the global log ring.
/// Always compiled (error paths are product behavior, not instrumentation);
/// the per-site limiter keeps a wedged retry loop from flooding the ring.
#define QDCBIR_LOG(level, message) QDCBIR_LOG_IMPL_(level, message, __COUNTER__)
#define QDCBIR_LOG_IMPL_(level, message, counter) \
  QDCBIR_LOG_IMPL2_(level, message, counter)
#define QDCBIR_LOG_IMPL2_(level, message, counter)                      \
  do {                                                                  \
    static ::qdcbir::obs::LogCallSite qdcbir_log_site_##counter;        \
    if (qdcbir_log_site_##counter.Admit()) {                            \
      ::qdcbir::obs::LogRing::Global().Write(                           \
          (level), __FILE__, __LINE__, (message),                       \
          qdcbir_log_site_##counter.TakeSuppressed());                  \
    }                                                                   \
  } while (false)

#endif  // QDCBIR_OBS_LOG_H_
