#ifndef QDCBIR_OBS_PROFILER_H_
#define QDCBIR_OBS_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qdcbir {
namespace obs {

/// One CPU sample captured by the SIGPROF handler: a frame-pointer
/// backtrace plus the span/trace identity the thread was working under.
/// Trivially copyable — samples cross the lock-free ring as raw words.
struct ProfileSample {
  static constexpr std::uint32_t kMaxFrames = 24;

  std::uint64_t trace_hi = 0;  ///< trace id mirror (0 when outside a trace)
  std::uint64_t trace_lo = 0;
  /// Innermost `QDCBIR_SPAN` literal at sample time (possibly re-opened on
  /// a pool worker via `ScopedSpanTag`), or nullptr outside any span.
  const char* span = nullptr;
  std::uint32_t num_frames = 0;
  std::uint32_t tid = 0;  ///< OS thread id of the sampled thread
  /// frames[0] is the interrupted pc; frames[1..] are return addresses,
  /// innermost first.
  std::uintptr_t frames[kMaxFrames] = {};
};

struct ProfilerOptions {
  /// Per-thread CPU-time sampling rate. Clamped to [1, 2000]. 99 is the
  /// conventional "odd so it doesn't beat against periodic work" rate;
  /// `kBackgroundHz` is the low always-on default for `--profile-hz`.
  int hz = 99;
};

/// Sampling CPU profiler. Every registered thread gets a POSIX timer on its
/// own CPU-time clock (`timer_create` + `SIGEV_THREAD_ID`, so ticks are
/// proportional to CPU actually burned, and idle threads are silent). The
/// SIGPROF handler is async-signal-safe by construction: it reads only the
/// interrupted ucontext, its own thread's constinit TLS (`SpanStack`,
/// registration entry), and lock-free atomics; samples go into a fixed
/// seqlock ring and are dropped — counted, never blocked on — under
/// collision. Symbolization (`dladdr` + demangle) happens at render time on
/// the draining thread.
///
/// Linux-only: on other platforms `Start` fails with a clear error and
/// everything else is a no-op. The render helpers work everywhere (unit
/// tests build samples by hand).
class Profiler {
 public:
  /// Default rate for the always-on background mode (`serve --profile-hz`
  /// uses this when the flag is passed without a value).
  static constexpr int kBackgroundHz = 47;

  /// Process-wide instance. Intentionally leaked so worker threads may
  /// unregister during static destruction.
  static Profiler& Global();

  /// Adds the calling thread to the sampled set (idempotent). If the
  /// profiler is running, the thread's timer is armed immediately. Pool
  /// workers call this via `ScopedThreadProfiling`; main threads of
  /// profiling-capable commands call it once at startup.
  static void RegisterCurrentThread();
  /// Removes the calling thread and disarms its timer. Must be called on
  /// the registering thread before it exits.
  static void UnregisterCurrentThread();

  /// Arms timers on every registered thread at `options.hz`. Fails (with a
  /// diagnostic in `*error`) if already running or unsupported.
  bool Start(const ProfilerOptions& options, std::string* error = nullptr);
  /// Disarms all timers. Samples already in the ring stay collectable.
  void Stop();

  bool running() const;
  int hz() const;

  /// Monotonic sequence cursor: the number of samples ever written (plus
  /// drops). Take before a capture window, pass to `CollectSince` after.
  std::uint64_t SampleCursor() const;
  /// Stable samples with sequence >= cursor, oldest first. Slots being
  /// concurrently rewritten or already overwritten are skipped.
  std::vector<ProfileSample> CollectSince(std::uint64_t cursor) const;
  /// Samples lost to slot collisions or handler re-entry since process
  /// start.
  std::uint64_t dropped() const;

  /// flamegraph.pl collapsed-stack format, one line per distinct stack:
  /// `span;outermost;...;innermost count`. The span name (or `(no-span)`)
  /// is the root frame, so flame graphs group by engine phase first.
  static std::string RenderCollapsed(
      const std::vector<ProfileSample>& samples);
  /// JSON aggregate: per-span and per-trace sample totals plus the top
  /// stacks, for programmatic consumers of `/profilez?format=json`.
  static std::string RenderJson(const std::vector<ProfileSample>& samples,
                                int hz, double seconds,
                                std::uint64_t dropped);

 private:
  Profiler() = default;
};

/// RAII thread registration; instantiate at the top of a thread's run loop.
class ScopedThreadProfiling {
 public:
  ScopedThreadProfiling() { Profiler::RegisterCurrentThread(); }
  ScopedThreadProfiling(const ScopedThreadProfiling&) = delete;
  ScopedThreadProfiling& operator=(const ScopedThreadProfiling&) = delete;
  ~ScopedThreadProfiling() { Profiler::UnregisterCurrentThread(); }
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_PROFILER_H_
