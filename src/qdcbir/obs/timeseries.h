#ifndef QDCBIR_OBS_TIMESERIES_H_
#define QDCBIR_OBS_TIMESERIES_H_

/// \file
/// Metrics flight recorder: a fixed-memory ring that samples every counter
/// and gauge of a metrics registry on a background cadence, so "what was
/// the whole engine doing around that slow query?" is answerable after the
/// fact without an external scraper. `/historyz?metric=&window=` renders a
/// series as per-interval deltas and rates; slow-trace capture marks an
/// event in the ring so the two surfaces join on time and trace id.
///
/// Memory is bounded on every axis: the sample ring holds `capacity`
/// snapshots, the series name table is append-only and capped at
/// `max_series` (overflow ticks `history.series.dropped`), and event marks
/// live in a small ring of their own. The clock is injectable (à la
/// `SloEngine`) and `SampleNow` is callable directly, so tests drive the
/// delta math deterministically without threads or real time.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {

class FlightRecorder {
 public:
  using Clock = std::function<std::uint64_t()>;

  struct Options {
    /// Background sampling cadence; also the nominal interval reported for
    /// rate math when samples are driven manually.
    std::uint64_t interval_ns = 1000ull * 1000 * 1000;
    std::size_t capacity = 512;     ///< sample-ring slots
    std::size_t max_series = 512;   ///< bounded name table
    std::size_t max_events = 32;    ///< event-mark ring slots
  };

  /// `registry` defaults to the process-global one; tests pass their own
  /// registry and clock. Self-accounting counters (`history.*`) always go
  /// to the sampled registry, so the recorder's own health is in the data.
  explicit FlightRecorder(Options options,
                          MetricsRegistry* registry = nullptr,
                          Clock clock = nullptr);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Starts/stops the background sampling thread. Idempotent.
  void Start();
  void Stop();

  /// Takes one sample of every counter and gauge right now. The background
  /// thread calls this on its cadence; tests and the slow-trace hook call
  /// it directly.
  void SampleNow();

  /// Pins a labeled mark (conventionally a trace id) at the current clock
  /// reading, so `/historyz` output can join engine history to the slow
  /// queries captured inside the window.
  void MarkEvent(const std::string& label);

  struct Point {
    std::uint64_t t_ns = 0;
    double value = 0.0;  ///< sampled cumulative value (or gauge level)
    /// Delta vs the previous sample. Counter-reset aware: a counter that
    /// went backwards (registry `Reset`, reload epoch) contributes its new
    /// value as the delta, Prometheus-style, so rates never go negative.
    /// The window's first point reports delta 0.
    double delta = 0.0;
    double rate = 0.0;  ///< delta per second of actual inter-sample time
  };

  struct Series {
    std::string name;
    bool known = false;       ///< false: metric never seen by the recorder
    bool is_counter = false;  ///< counters get reset-aware deltas
    std::vector<Point> points;
  };

  struct EventMark {
    std::uint64_t t_ns = 0;
    std::string label;
  };

  /// The series for `metric` restricted to the trailing `window_ns` of
  /// recorded time (0 = everything in the ring).
  Series Query(const std::string& metric, std::uint64_t window_ns) const;

  /// Every series name the recorder has sampled, sorted.
  std::vector<std::string> SeriesNames() const;

  /// Event marks inside the trailing `window_ns` (0 = all retained).
  std::vector<EventMark> Events(std::uint64_t window_ns) const;

  /// `/historyz` document for one metric: the series' points plus the
  /// window's event marks and the recorder's own ring accounting. An
  /// unknown metric renders `"known":false` with the series directory so
  /// callers can self-correct.
  std::string RenderJson(const std::string& metric,
                         std::uint64_t window_ns) const;

  std::uint64_t samples_taken() const;
  std::uint64_t series_dropped() const;

 private:
  struct Sample {
    std::uint64_t t_ns = 0;
    /// Indexed by series id; shorter than the name table for samples taken
    /// before later series appeared (those points are simply absent).
    std::vector<double> values;
  };

  std::size_t SeriesIdLocked(const std::string& name, bool is_counter);
  void BackgroundLoop();

  const Options options_;
  MetricsRegistry* registry_;
  Clock clock_;

  mutable std::mutex mu_;
  std::unordered_map<std::string, std::size_t> series_ids_;
  std::vector<std::string> series_names_;   ///< id → name
  std::vector<bool> series_is_counter_;     ///< id → kind
  std::vector<Sample> ring_;                ///< capacity slots, reused
  std::size_t ring_head_ = 0;               ///< next slot to write
  std::size_t ring_size_ = 0;
  std::vector<EventMark> events_;           ///< max_events slots, reused
  std::size_t events_head_ = 0;
  std::size_t events_size_ = 0;
  std::uint64_t samples_taken_ = 0;
  std::uint64_t series_dropped_ = 0;

  std::mutex thread_mu_;
  std::condition_variable thread_cv_;
  std::thread sampler_;
  bool stopping_ = false;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_TIMESERIES_H_
