#include "qdcbir/obs/log.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "qdcbir/obs/clock.h"
#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/trace_context.h"

namespace qdcbir {
namespace obs {

namespace {

std::uint64_t UnixMillis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "unknown";
}

bool LogCallSite::Admit() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t now_ns = MonotonicNanos();
  if (last_refill_ns_ == 0) last_refill_ns_ = now_ns;
  tokens_ += static_cast<double>(now_ns - last_refill_ns_) * 1e-9 *
             kPerSecond;
  if (tokens_ > kBurst) tokens_ = kBurst;
  last_refill_ns_ = now_ns;
  if (tokens_ < 1.0) {
    ++suppressed_;
    // Scrape-visible twin of the per-site suppressed count: /logz shows
    // drops only on the *next admitted* entry of the same site, so a site
    // that stays over its rate would otherwise hide its losses entirely.
    static Counter& dropped = MetricsRegistry::Global().GetCounter(
        "log.dropped", "Log entries suppressed by per-site rate limiting");
    dropped.Add(1);
    return false;
  }
  tokens_ -= 1.0;
  return true;
}

std::uint64_t LogCallSite::TakeSuppressed() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t taken = suppressed_;
  suppressed_ = 0;
  return taken;
}

void LogRing::Write(LogLevel level, const char* file, int line,
                    std::string message, std::uint64_t suppressed) {
  LogEntry entry;
  entry.unix_ms = UnixMillis();
  entry.mono_ns = MonotonicNanos();
  entry.level = level;
  entry.trace_id = TraceIdHex(CurrentTraceContext());
  entry.site = std::string(Basename(file)) + ":" + std::to_string(line);
  entry.message = std::move(message);
  entry.suppressed = suppressed;

  if (level == LogLevel::kWarn || level == LogLevel::kError) {
    std::fprintf(stderr, "[%s] %s %s%s%s\n", LogLevelName(level),
                 entry.site.c_str(), entry.message.c_str(),
                 entry.trace_id.empty() ? "" : " trace=",
                 entry.trace_id.c_str());
  }

  total_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  entry.sequence = next_sequence_++;
  entries_.push_back(std::move(entry));
  if (entries_.size() > kCapacity) entries_.pop_front();
}

std::vector<LogEntry> LogRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<LogEntry>(entries_.begin(), entries_.end());
}

std::string LogRing::RenderJson(std::size_t limit) const {
  std::vector<LogEntry> entries = Snapshot();
  if (entries.size() > limit) {
    // Keep the newest entries: Snapshot returns them oldest-first.
    entries.erase(entries.begin(),
                  entries.end() - static_cast<std::ptrdiff_t>(limit));
  }
  std::string out = "{\"capacity\":" + std::to_string(kCapacity);
  out += ",\"total\":" + std::to_string(total());
  out += ",\"entries\":[";
  bool first = true;
  for (const LogEntry& entry : entries) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"sequence\":" + std::to_string(entry.sequence);
    out += ",\"unix_ms\":" + std::to_string(entry.unix_ms);
    out += ",\"mono_ns\":" + std::to_string(entry.mono_ns);
    out += ",\"level\":";
    AppendJsonString(&out, LogLevelName(entry.level));
    out += ",\"trace\":";
    AppendJsonString(&out, entry.trace_id);
    out += ",\"site\":";
    AppendJsonString(&out, entry.site);
    out += ",\"message\":";
    AppendJsonString(&out, entry.message);
    out += ",\"suppressed\":" + std::to_string(entry.suppressed);
    out.push_back('}');
  }
  out += "]}";
  return out;
}

void LogRing::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

LogRing& LogRing::Global() {
  static LogRing* ring = new LogRing();
  return *ring;
}

}  // namespace obs
}  // namespace qdcbir
