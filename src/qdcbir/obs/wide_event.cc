#include "qdcbir/obs/wide_event.h"

#include <cstdio>

#include <filesystem>
#include <fstream>
#include <system_error>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {

namespace {

struct WideEventMetrics {
  Counter& emitted;
  Counter& dropped;
  Counter& rotations;

  static WideEventMetrics& Get() {
    static WideEventMetrics* m = [] {
      MetricsRegistry& reg = MetricsRegistry::Global();
      return new WideEventMetrics{
          reg.GetCounter("wide_events.emitted",
                         "Wide events appended to the JSON-lines sink"),
          reg.GetCounter("wide_events.dropped",
                         "Wide events lost to write failures"),
          reg.GetCounter("wide_events.rotations",
                         "Size-capped rollovers of the wide-event file"),
      };
    }();
    return *m;
  }
};

void AppendEscaped(std::string& out, const std::string& value) {
  for (const char c : value) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
}

}  // namespace

WideEventSink::WideEventSink(WideEventSinkOptions options)
    : options_(std::move(options)) {
  // Resume the byte count of an existing live file so rotation caps hold
  // across process restarts.
  std::error_code ec;
  const auto size = std::filesystem::file_size(options_.path, ec);
  if (!ec) bytes_written_ = size;
}

void WideEventSink::Emit(const std::string& json) {
  const std::uint64_t line_bytes = json.size() + 1;
  std::lock_guard<std::mutex> lock(mu_);
  if (bytes_written_ > 0 && bytes_written_ + line_bytes > options_.max_bytes) {
    std::error_code ec;
    std::filesystem::rename(options_.path, rotated_path(), ec);
    // A failed rename (e.g. read-only directory) falls through: the append
    // below either works (file keeps growing past the soft cap) or drops.
    if (!ec) {
      bytes_written_ = 0;
      ++rotations_;
      WideEventMetrics::Get().rotations.Add();
    }
  }
  std::ofstream out(options_.path, std::ios::app | std::ios::binary);
  if (!out) {
    ++dropped_;
    WideEventMetrics::Get().dropped.Add();
    return;
  }
  out << json << '\n';
  out.flush();
  if (!out) {
    ++dropped_;
    WideEventMetrics::Get().dropped.Add();
    return;
  }
  bytes_written_ += line_bytes;
  ++emitted_;
  WideEventMetrics::Get().emitted.Add();
}

std::uint64_t WideEventSink::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

std::uint64_t WideEventSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::uint64_t WideEventSink::rotations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rotations_;
}

void WideEventBuilder::Key(const std::string& key) {
  body_ += body_.empty() ? "\"" : ",\"";
  AppendEscaped(body_, key);
  body_ += "\":";
}

WideEventBuilder& WideEventBuilder::Add(const std::string& key,
                                        const std::string& value) {
  Key(key);
  body_.push_back('"');
  AppendEscaped(body_, value);
  body_.push_back('"');
  return *this;
}

WideEventBuilder& WideEventBuilder::Add(const std::string& key,
                                        const char* value) {
  return Add(key, std::string(value));
}

WideEventBuilder& WideEventBuilder::Add(const std::string& key,
                                        std::uint64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

WideEventBuilder& WideEventBuilder::Add(const std::string& key,
                                        std::int64_t value) {
  Key(key);
  body_ += std::to_string(value);
  return *this;
}

WideEventBuilder& WideEventBuilder::Add(const std::string& key, double value) {
  Key(key);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  body_ += buffer;
  return *this;
}

WideEventBuilder& WideEventBuilder::Add(const std::string& key, bool value) {
  Key(key);
  body_ += value ? "true" : "false";
  return *this;
}

std::string WideEventBuilder::Build() const { return "{" + body_ + "}"; }

}  // namespace obs
}  // namespace qdcbir
