#ifndef QDCBIR_OBS_RESOURCE_STATS_H_
#define QDCBIR_OBS_RESOURCE_STATS_H_

#include <atomic>
#include <cstdint>

namespace qdcbir {
namespace obs {

/// Physical work performed on behalf of one query/feedback round. Counted
/// at the engine hot paths (distance kernels' call sites, tree descent,
/// tile gathers, hot-container allocations) and summed across every pool
/// worker that touched the session, then published to `/queryz` and the
/// `serve.session.*` metric family. These are the "where did the cycles
/// go" denominators the sampling profiler's percentages divide into.
struct ResourceUsage {
  std::uint64_t distance_evals = 0;   ///< query-point × candidate distances
  std::uint64_t feature_bytes = 0;    ///< feature-vector bytes scanned
  std::uint64_t leaves_visited = 0;   ///< RFS tree nodes/leaves descended
  std::uint64_t tiles_gathered = 0;   ///< blocked-layout gather tiles built
  std::uint64_t container_allocs = 0; ///< hot-container allocations
  std::uint64_t alloc_bytes = 0;      ///< bytes those allocations requested
  /// Cache traffic (src/qdcbir/cache/): physical-work counters, so a hit
  /// legitimately *reduces* the other fields relative to a cold run — the
  /// logical cost model (QdSessionStats) stays identical either way.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;

  void Add(const ResourceUsage& other) {
    distance_evals += other.distance_evals;
    feature_bytes += other.feature_bytes;
    leaves_visited += other.leaves_visited;
    tiles_gathered += other.tiles_gathered;
    container_allocs += other.container_allocs;
    alloc_bytes += other.alloc_bytes;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }

  bool IsZero() const {
    return (distance_evals | feature_bytes | leaves_visited | tiles_gathered |
            container_allocs | alloc_bytes | cache_hits | cache_misses) == 0;
  }
};

/// Shared sink for one query's usage. Workers batch increments in plain
/// thread-local deltas and merge once per task, so the per-event cost on
/// the hot path is a thread-local null check plus an ordinary add — no
/// atomics, no sharing.
class ResourceAccumulator {
 public:
  void Merge(const ResourceUsage& usage) {
    if (usage.IsZero()) return;
    distance_evals_.fetch_add(usage.distance_evals, std::memory_order_relaxed);
    feature_bytes_.fetch_add(usage.feature_bytes, std::memory_order_relaxed);
    leaves_visited_.fetch_add(usage.leaves_visited, std::memory_order_relaxed);
    tiles_gathered_.fetch_add(usage.tiles_gathered, std::memory_order_relaxed);
    container_allocs_.fetch_add(usage.container_allocs,
                                std::memory_order_relaxed);
    alloc_bytes_.fetch_add(usage.alloc_bytes, std::memory_order_relaxed);
    cache_hits_.fetch_add(usage.cache_hits, std::memory_order_relaxed);
    cache_misses_.fetch_add(usage.cache_misses, std::memory_order_relaxed);
  }

  ResourceUsage Snapshot() const {
    ResourceUsage usage;
    usage.distance_evals = distance_evals_.load(std::memory_order_relaxed);
    usage.feature_bytes = feature_bytes_.load(std::memory_order_relaxed);
    usage.leaves_visited = leaves_visited_.load(std::memory_order_relaxed);
    usage.tiles_gathered = tiles_gathered_.load(std::memory_order_relaxed);
    usage.container_allocs = container_allocs_.load(std::memory_order_relaxed);
    usage.alloc_bytes = alloc_bytes_.load(std::memory_order_relaxed);
    usage.cache_hits = cache_hits_.load(std::memory_order_relaxed);
    usage.cache_misses = cache_misses_.load(std::memory_order_relaxed);
    return usage;
  }

 private:
  std::atomic<std::uint64_t> distance_evals_{0};
  std::atomic<std::uint64_t> feature_bytes_{0};
  std::atomic<std::uint64_t> leaves_visited_{0};
  std::atomic<std::uint64_t> tiles_gathered_{0};
  std::atomic<std::uint64_t> container_allocs_{0};
  std::atomic<std::uint64_t> alloc_bytes_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
};

namespace internal {

/// Per-thread accounting state: the active sink (null = accounting off,
/// every tap is a single predictable branch) and the local deltas batched
/// toward it.
struct ResourceTls {
  ResourceAccumulator* accumulator = nullptr;
  ResourceUsage local;
};

inline ResourceTls& ResourceState() {
  constinit thread_local ResourceTls state;
  return state;
}

}  // namespace internal

/// The sink active on this thread, or null. `ThreadPool` captures this at
/// enqueue so tasks spawned while accounting carry the session's sink onto
/// workers, exactly like trace context.
inline ResourceAccumulator* CurrentResourceAccumulator() {
  return internal::ResourceState().accumulator;
}

/// Hot-path taps. Each compiles to a TLS load, a branch, and an add; with
/// no active accumulator they are pure overheadless no-ops past the branch.
/// Call granularity should be per *scan or phase*, not per element — pass
/// the batch size.
inline void CountDistanceEvals(std::uint64_t n) {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) state.local.distance_evals += n;
}
inline void CountFeatureBytes(std::uint64_t n) {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) state.local.feature_bytes += n;
}
inline void CountLeafVisits(std::uint64_t n) {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) state.local.leaves_visited += n;
}
inline void CountTileGathers(std::uint64_t n) {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) state.local.tiles_gathered += n;
}
inline void CountContainerAlloc(std::uint64_t bytes) {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) {
    state.local.container_allocs += 1;
    state.local.alloc_bytes += bytes;
  }
}
inline void CountCacheHit() {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) state.local.cache_hits += 1;
}
inline void CountCacheMiss() {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) state.local.cache_misses += 1;
}

/// Merges this thread's pending local deltas into the active sink now,
/// without waiting for the enclosing scope to close. Callers that read the
/// accumulator while their own scope is still open (session runners
/// publishing audit records) flush first.
inline void FlushResourceAccounting() {
  internal::ResourceTls& state = internal::ResourceState();
  if (state.accumulator != nullptr) {
    state.accumulator->Merge(state.local);
    state.local = ResourceUsage{};
  }
}

/// Installs `accumulator` as this thread's sink for the enclosing scope and
/// flushes the deltas gathered inside the scope into it on destruction.
/// Nests (inner scopes may re-install the same or another sink); a null
/// accumulator disables accounting for the scope. The serve layer opens one
/// per request around the engine calls; the thread-pool task wrapper opens
/// one per task with the enqueuer's sink.
class ScopedResourceAccounting {
 public:
  explicit ScopedResourceAccounting(ResourceAccumulator* accumulator)
      : saved_accumulator_(internal::ResourceState().accumulator),
        saved_local_(internal::ResourceState().local) {
    internal::ResourceTls& state = internal::ResourceState();
    state.accumulator = accumulator;
    state.local = ResourceUsage{};
  }

  ScopedResourceAccounting(const ScopedResourceAccounting&) = delete;
  ScopedResourceAccounting& operator=(const ScopedResourceAccounting&) =
      delete;

  ~ScopedResourceAccounting() {
    internal::ResourceTls& state = internal::ResourceState();
    if (state.accumulator != nullptr) state.accumulator->Merge(state.local);
    state.accumulator = saved_accumulator_;
    state.local = saved_local_;
  }

 private:
  ResourceAccumulator* saved_accumulator_;
  ResourceUsage saved_local_;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_RESOURCE_STATS_H_
