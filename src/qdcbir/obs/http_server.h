#ifndef QDCBIR_OBS_HTTP_SERVER_H_
#define QDCBIR_OBS_HTTP_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace qdcbir {
namespace obs {

/// A small dependency-free HTTP/1.1 server for the engine's introspection
/// and serving endpoints (`/metrics`, `/healthz`, `/queryz`, `/api/*`).
/// One blocking accept loop; each accepted connection is handed to the
/// configured executor (the serve layer passes `ThreadPool::Post`) or, with
/// no executor, handled inline on the accept thread. Connections are
/// keep-alive and support pipelined requests; request parsing enforces
/// hard header/body limits. This is an operational surface for trusted
/// networks, not an internet-facing web server.

struct HttpLimits {
  std::size_t max_header_bytes = 8 * 1024;
  std::size_t max_body_bytes = 1024 * 1024;
};

struct HttpRequest {
  std::string method;
  std::string target;   ///< path only; the query string is split off
  std::string query;    ///< raw query string (no leading '?')
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(const std::string& name) const;
};

enum class HttpParseStatus {
  kOk,             ///< one complete request parsed; `*consumed` bytes used
  kIncomplete,     ///< need more bytes
  kBadRequest,     ///< malformed request line / headers / body framing
  kHeaderTooLarge, ///< header block exceeds `limits.max_header_bytes`
  kBodyTooLarge,   ///< declared body exceeds `limits.max_body_bytes`
};

/// Parses the first complete request out of `buffer`. On `kOk`, `*out` is
/// filled and `*consumed` is the byte count of the parsed request —
/// callers loop to drain pipelined requests. Exposed for unit tests.
HttpParseStatus ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                                 std::size_t* consumed,
                                 const HttpLimits& limits = HttpLimits());

struct HttpResponse {
  HttpResponse() = default;
  HttpResponse(int status_in, std::string content_type_in, std::string body_in)
      : status(status_in),
        content_type(std::move(content_type_in)),
        body(std::move(body_in)) {}

  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra response headers (e.g. `traceparent`). Content-Type,
  /// Content-Length, and Connection are emitted by the serializer and must
  /// not appear here.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Serializes a response with Content-Length and the requested connection
/// disposition. Exposed for unit tests.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;
  /// Runs the given closure, possibly asynchronously (e.g.
  /// `ThreadPool::Post`). The closure must eventually run exactly once.
  using Executor = std::function<void(std::function<void()>)>;

  struct Options {
    std::string address = "127.0.0.1";
    int port = 0;  ///< 0 binds an ephemeral port; see `port()` after Start
    int backlog = 64;
    /// Idle-connection read timeout. A keep-alive connection with no
    /// request within this window is closed.
    int recv_timeout_ms = 5000;
    HttpLimits limits;
    /// Connection dispatcher; empty → connections are handled one at a
    /// time on the accept thread (deterministic, used by tests).
    Executor executor;
  };

  HttpServer();
  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact path `path`. Must be called before
  /// `Start`. Paths not registered answer 404; `GET /` answers with a
  /// plain-text index of the registered paths.
  void Handle(const std::string& path, Handler handler);

  /// Every registered path, sorted. Lets tests walk the full route table
  /// (e.g. asserting each endpoint's Content-Type) without a parallel list.
  std::vector<std::string> HandledPaths() const {
    std::vector<std::string> paths;
    paths.reserve(handlers_.size());
    for (const auto& [path, handler] : handlers_) paths.push_back(path);
    return paths;
  }

  /// Binds, listens, and starts the accept loop. Returns false (with
  /// `*error` set) when the socket cannot be bound.
  bool Start(std::string* error);

  /// Stops accepting, shuts down open connections, and joins; idempotent.
  void Stop();

  /// The bound port (valid after a successful `Start`).
  int port() const { return port_; }
  bool serving() const { return serving_.load(std::memory_order_acquire); }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  HttpResponse Route(const HttpRequest& request) const;

  Options options_;
  std::map<std::string, Handler> handlers_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> serving_{false};
  std::atomic<bool> stopping_{false};

  /// Open connection fds and in-flight handler count, so Stop can force
  /// sockets shut and then wait for every dispatched handler to finish.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::set<int> open_fds_;
  std::size_t active_connections_ = 0;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_HTTP_SERVER_H_
