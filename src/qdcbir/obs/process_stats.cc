#include "qdcbir/obs/process_stats.h"

#include <cstdio>
#include <cstring>

#if defined(__linux__)
#include <dirent.h>
#include <unistd.h>
#endif

namespace qdcbir {
namespace obs {
namespace {

#if defined(__linux__)

/// Boot time (unix seconds) from /proc/stat's btime line; 0 on failure.
/// starttime in /proc/self/stat is measured in clock ticks since boot.
double ReadBootTimeSeconds() {
  std::FILE* file = std::fopen("/proc/stat", "r");
  if (file == nullptr) return 0.0;
  double btime = 0.0;
  char line[256];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "btime %llu", &value) == 1) {
      btime = static_cast<double>(value);
      break;
    }
  }
  std::fclose(file);
  return btime;
}

std::uint64_t CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  std::uint64_t count = 0;
  while (readdir(dir) != nullptr) ++count;
  closedir(dir);
  // "." and ".." plus the fd opendir itself holds.
  return count >= 3 ? count - 3 : 0;
}

#endif  // __linux__

}  // namespace

ProcessStats ReadProcessStats() {
  ProcessStats stats;
#if defined(__linux__)
  std::FILE* file = std::fopen("/proc/self/stat", "r");
  if (file == nullptr) return stats;
  char buffer[2048];
  const std::size_t read = std::fread(buffer, 1, sizeof(buffer) - 1, file);
  std::fclose(file);
  buffer[read] = '\0';
  // Field 2 (comm) is parenthesized and may itself contain spaces or
  // parens; everything after the *last* ')' is space-separated and starts
  // at field 3 (state).
  const char* after_comm = std::strrchr(buffer, ')');
  if (after_comm == nullptr) return stats;
  after_comm += 1;
  // Fields, 1-indexed per proc(5): 14 utime, 15 stime, 20 num_threads,
  // 22 starttime (ticks since boot), 23 vsize (bytes), 24 rss (pages).
  unsigned long long utime = 0, stime = 0, threads = 0, starttime = 0;
  unsigned long long vsize = 0;
  long long rss_pages = 0;
  const int matched = std::sscanf(
      after_comm,
      " %*c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u"  // fields 3..13
      " %llu %llu %*d %*d %*d %*d %llu %*d %llu %llu %lld",
      &utime, &stime, &threads, &starttime, &vsize, &rss_pages);
  if (matched != 6) return stats;
  const double ticks = static_cast<double>(sysconf(_SC_CLK_TCK));
  const double page = static_cast<double>(sysconf(_SC_PAGESIZE));
  if (ticks <= 0.0 || page <= 0.0) return stats;
  stats.cpu_user_seconds = static_cast<double>(utime) / ticks;
  stats.cpu_system_seconds = static_cast<double>(stime) / ticks;
  stats.num_threads = threads;
  stats.virtual_bytes = vsize;
  stats.resident_bytes =
      rss_pages > 0
          ? static_cast<std::uint64_t>(rss_pages) *
                static_cast<std::uint64_t>(page)
          : 0;
  const double btime = ReadBootTimeSeconds();
  if (btime > 0.0) {
    stats.start_time_unix_seconds =
        btime + static_cast<double>(starttime) / ticks;
  }
  stats.open_fds = CountOpenFds();
  stats.valid = true;
#endif
  return stats;
}

std::string RenderProcessMetricsText(const ProcessStats& stats) {
  if (!stats.valid) return "";
  char buffer[512];
  std::string out;
  out +=
      "# HELP process_cpu_seconds_total Total user and system CPU time "
      "spent in seconds.\n"
      "# TYPE process_cpu_seconds_total counter\n";
  std::snprintf(buffer, sizeof(buffer), "process_cpu_seconds_total %.6f\n",
                stats.cpu_user_seconds + stats.cpu_system_seconds);
  out += buffer;
  out +=
      "# HELP process_resident_memory_bytes Resident memory size in "
      "bytes.\n"
      "# TYPE process_resident_memory_bytes gauge\n";
  std::snprintf(buffer, sizeof(buffer),
                "process_resident_memory_bytes %llu\n",
                static_cast<unsigned long long>(stats.resident_bytes));
  out += buffer;
  out +=
      "# HELP process_virtual_memory_bytes Virtual memory size in bytes.\n"
      "# TYPE process_virtual_memory_bytes gauge\n";
  std::snprintf(buffer, sizeof(buffer), "process_virtual_memory_bytes %llu\n",
                static_cast<unsigned long long>(stats.virtual_bytes));
  out += buffer;
  out +=
      "# HELP process_open_fds Number of open file descriptors.\n"
      "# TYPE process_open_fds gauge\n";
  std::snprintf(buffer, sizeof(buffer), "process_open_fds %llu\n",
                static_cast<unsigned long long>(stats.open_fds));
  out += buffer;
  out +=
      "# HELP process_threads Number of OS threads in the process.\n"
      "# TYPE process_threads gauge\n";
  std::snprintf(buffer, sizeof(buffer), "process_threads %llu\n",
                static_cast<unsigned long long>(stats.num_threads));
  out += buffer;
  out +=
      "# HELP process_start_time_seconds Start time of the process since "
      "unix epoch in seconds.\n"
      "# TYPE process_start_time_seconds gauge\n";
  std::snprintf(buffer, sizeof(buffer), "process_start_time_seconds %.3f\n",
                stats.start_time_unix_seconds);
  out += buffer;
  return out;
}

}  // namespace obs
}  // namespace qdcbir
