#ifndef QDCBIR_OBS_PROCESS_STATS_H_
#define QDCBIR_OBS_PROCESS_STATS_H_

#include <cstdint>
#include <string>

namespace qdcbir {
namespace obs {

/// Process-wide resource usage read from `/proc/self` (Linux). `valid` is
/// false on platforms without procfs or on parse failure; callers should
/// then omit the process section rather than export zeros.
struct ProcessStats {
  double cpu_user_seconds = 0.0;
  double cpu_system_seconds = 0.0;
  std::uint64_t resident_bytes = 0;
  std::uint64_t virtual_bytes = 0;
  std::uint64_t open_fds = 0;
  std::uint64_t num_threads = 0;
  double start_time_unix_seconds = 0.0;
  bool valid = false;
};

/// One pass over `/proc/self/stat`, `/proc/stat` (btime) and
/// `/proc/self/fd`. Cheap enough to call per scrape (~tens of µs).
ProcessStats ReadProcessStats();

/// Renders the conventional (unprefixed) `process_*` Prometheus families —
/// `process_cpu_seconds_total`, `process_resident_memory_bytes`,
/// `process_virtual_memory_bytes`, `process_open_fds`,
/// `process_threads`, `process_start_time_seconds` — each with its
/// `# TYPE` line, in the exposition-validator-clean form `/metrics`
/// appends after the registry families. Returns "" when `stats.valid` is
/// false.
std::string RenderProcessMetricsText(const ProcessStats& stats);

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_PROCESS_STATS_H_
