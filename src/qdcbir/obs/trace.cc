#include "qdcbir/obs/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "qdcbir/obs/clock.h"

namespace qdcbir {
namespace obs {

Tracer& Tracer::Global() {
  static Tracer* tracer = [] {
    Tracer* t = new Tracer();
    if (const char* path = std::getenv("QDCBIR_TRACE")) {
      if (path[0] != '\0') {
        std::string error;
        if (t->Start(path, &error)) {
          // Flush whatever was recorded when the process exits. Spans that
          // fire during static teardown after the flush see enabled()
          // false and are dropped, never lost mid-file.
          std::atexit([] {
            // Tools that flush explicitly (tests, bench_micro) already
            // stopped the tracer; only flush what is still armed.
            if (!Tracer::Global().enabled()) return;
            std::string stop_error;
            if (!Tracer::Global().Stop(&stop_error)) {
              std::fprintf(stderr, "[qdcbir] trace flush failed: %s\n",
                           stop_error.c_str());
            }
          });
        } else {
          std::fprintf(stderr, "[qdcbir] QDCBIR_TRACE ignored: %s\n",
                       error.c_str());
        }
      }
    }
    return t;
  }();
  return *tracer;
}

bool Tracer::Start(const std::string& path, std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (enabled_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "tracer already started (" + path_ + ")";
    return false;
  }
  path_ = path;
  start_ns_ = MonotonicNanos();
  events_.clear();
  events_.reserve(4096);
  enabled_.store(true, std::memory_order_release);
  return true;
}

void Tracer::Append(const char* name, char ph) {
  const std::uint64_t now = MonotonicNanos();
  const std::uint32_t tid = ThreadTid();
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return;
  events_.push_back(Event{name, now, tid, ph});
}

void Tracer::Begin(const char* name) { Append(name, 'B'); }
void Tracer::End(const char* name) { Append(name, 'E'); }

std::size_t Tracer::buffered_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

bool Tracer::Stop(std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    if (error != nullptr) *error = "tracer is not started";
    return false;
  }
  enabled_.store(false, std::memory_order_release);

  std::ofstream out(path_);
  if (!out) {
    if (error != nullptr) *error = "cannot open trace file: " + path_;
    events_.clear();
    return false;
  }
  // Spans that straddle Start()/Stop() leave a lone "E" (begin recorded
  // before arming) or a lone "B" (still open at flush). Drop those so the
  // emitted file always has balanced, well-nested pairs per thread.
  std::vector<bool> skip(events_.size(), false);
  std::map<std::uint32_t, std::vector<std::size_t>> open;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const Event& e = events_[i];
    if (e.ph == 'B') {
      open[e.tid].push_back(i);
    } else {
      std::vector<std::size_t>& stack = open[e.tid];
      if (stack.empty() || events_[stack.back()].name != e.name) {
        skip[i] = true;
      } else {
        stack.pop_back();
      }
    }
  }
  for (const auto& [tid, stack] : open) {
    for (const std::size_t i : stack) skip[i] = true;
  }

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t i = 0; i < events_.size(); ++i) {
    if (skip[i]) continue;
    const Event& e = events_[i];
    // Timestamps are microseconds (Chrome's unit) relative to Start(),
    // with nanosecond resolution kept in the fraction.
    const double ts_us =
        static_cast<double>(e.ts_ns - start_ns_) / 1e3;
    char ts[48];
    std::snprintf(ts, sizeof(ts), "%.3f", ts_us);
    out << (first ? "" : ",\n") << "{\"name\":\"" << e.name
        << "\",\"cat\":\"qdcbir\",\"ph\":\"" << e.ph << "\",\"ts\":" << ts
        << ",\"pid\":1,\"tid\":" << e.tid << "}";
    first = false;
  }
  out << "\n]}\n";
  out.flush();
  events_.clear();
  if (!out) {
    if (error != nullptr) *error = "trace write failed: " + path_;
    return false;
  }
  return true;
}

namespace {

/// Minimal JSON scanner for the validator: walks the document, yielding
/// the flat key/primitive pairs of each object inside `traceEvents`.
/// Tolerates any whitespace and extra top-level keys; rejects structural
/// garbage (unterminated strings/arrays).
class EventScanner {
 public:
  explicit EventScanner(const std::string& text) : text_(text) {}

  bool FindEventsArray(std::string* error) {
    const std::size_t key = text_.find("\"traceEvents\"");
    if (key == std::string::npos) {
      *error = "no \"traceEvents\" key";
      return false;
    }
    pos_ = text_.find('[', key);
    if (pos_ == std::string::npos) {
      *error = "\"traceEvents\" is not an array";
      return false;
    }
    ++pos_;
    return true;
  }

  /// Parses the next event object into `fields`; returns false at the end
  /// of the array (`done` true) or on malformed input (`done` false).
  bool NextEvent(std::map<std::string, std::string>* fields, bool* done,
                 std::string* error) {
    *done = false;
    SkipWs();
    if (pos_ >= text_.size()) {
      *error = "unterminated traceEvents array";
      return false;
    }
    if (text_[pos_] == ',') {
      ++pos_;
      SkipWs();
    }
    if (pos_ < text_.size() && text_[pos_] == ']') {
      *done = true;
      return false;
    }
    if (pos_ >= text_.size() || text_[pos_] != '{') {
      *error = "expected event object at offset " + std::to_string(pos_);
      return false;
    }
    ++pos_;
    fields->clear();
    for (;;) {
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      std::string key, value;
      if (!ParseString(&key, error)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        *error = "expected ':' after key \"" + key + "\"";
        return false;
      }
      ++pos_;
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == '"') {
        if (!ParseString(&value, error)) return false;
      } else {
        while (pos_ < text_.size() && text_[pos_] != ',' &&
               text_[pos_] != '}') {
          value.push_back(text_[pos_++]);
        }
        while (!value.empty() &&
               (value.back() == ' ' || value.back() == '\n')) {
          value.pop_back();
        }
      }
      (*fields)[key] = value;
    }
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\r' || text_[pos_] == '\t')) {
      ++pos_;
    }
  }

  bool ParseString(std::string* out, std::string* error) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      *error = "expected string at offset " + std::to_string(pos_);
      return false;
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out->push_back(text_[pos_++]);
    }
    if (pos_ >= text_.size()) {
      *error = "unterminated string";
      return false;
    }
    ++pos_;
    return true;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool ValidateChromeTrace(const std::string& json, std::string* error,
                         std::map<std::string, std::size_t>* begin_counts) {
  std::string local_error;
  if (error == nullptr) error = &local_error;

  EventScanner scanner(json);
  if (!scanner.FindEventsArray(error)) return false;

  std::map<std::string, std::vector<std::string>> stacks;  // tid → B names
  std::map<std::string, double> last_ts;                   // tid → last ts
  std::map<std::string, std::size_t> counts;
  std::map<std::string, std::string> fields;
  std::size_t index = 0;
  for (;;) {
    bool done = false;
    if (!scanner.NextEvent(&fields, &done, error)) {
      if (done) break;
      return false;
    }
    const std::string at = " (event " + std::to_string(index) + ")";
    ++index;
    for (const char* required : {"name", "ph", "ts", "tid"}) {
      if (fields.count(required) == 0) {
        *error = std::string("event missing \"") + required + "\"" + at;
        return false;
      }
    }
    const std::string& ph = fields["ph"];
    const std::string& name = fields["name"];
    const std::string& tid = fields["tid"];
    char* end = nullptr;
    const double ts = std::strtod(fields["ts"].c_str(), &end);
    if (end == fields["ts"].c_str() || ts < 0.0) {
      *error = "bad ts \"" + fields["ts"] + "\"" + at;
      return false;
    }
    const auto it = last_ts.find(tid);
    if (it != last_ts.end() && ts < it->second) {
      *error = "timestamps regress on tid " + tid + at;
      return false;
    }
    last_ts[tid] = ts;

    if (ph == "B") {
      stacks[tid].push_back(name);
      ++counts[name];
    } else if (ph == "E") {
      std::vector<std::string>& stack = stacks[tid];
      if (stack.empty()) {
        *error = "\"E\" event without matching \"B\" on tid " + tid + at;
        return false;
      }
      if (stack.back() != name) {
        *error = "mismatched span nesting on tid " + tid + ": \"" +
                 stack.back() + "\" closed by \"" + name + "\"" + at;
        return false;
      }
      stack.pop_back();
    } else if (ph != "I" && ph != "X" && ph != "M") {
      *error = "unsupported ph \"" + ph + "\"" + at;
      return false;
    }
  }
  for (const auto& [tid, stack] : stacks) {
    if (!stack.empty()) {
      *error = "unbalanced trace: " + std::to_string(stack.size()) +
               " open span(s) on tid " + tid + " (top: \"" + stack.back() +
               "\")";
      return false;
    }
  }
  if (begin_counts != nullptr) *begin_counts = std::move(counts);
  return true;
}

}  // namespace obs
}  // namespace qdcbir
