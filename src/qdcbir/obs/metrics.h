#ifndef QDCBIR_OBS_METRICS_H_
#define QDCBIR_OBS_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "qdcbir/obs/clock.h"

namespace qdcbir {
namespace obs {

/// Hot-path metric primitives. Every mutation lands in a per-thread shard
/// (cache-line padded, relaxed atomics), so recording from the thread pool's
/// workers never contends; readers merge the shards into a snapshot.
///
/// Naming scheme (see docs/observability.md):
///   `<subsystem>.<object>.<measure>[_<unit>]`, e.g. `pool.task.wait_ns`,
///   `qd.finalize.subqueries`, `span.qd.finalize.merge` (histograms created
///   by `QDCBIR_SPAN` carry the `span.` prefix and record nanoseconds).

namespace internal {

/// Shard slot for the calling thread. Threads map round-robin onto
/// `num_shards` slots; distinct pool workers get distinct slots until the
/// shard count is exhausted.
inline std::size_t ShardIndex(std::size_t num_shards) {
  return static_cast<std::size_t>(ThreadTid()) & (num_shards - 1);
}

struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};

struct alignas(64) PaddedI64 {
  std::atomic<std::int64_t> v{0};
};

}  // namespace internal

/// A monotonically increasing sum (events, items, nanoseconds of work).
class Counter {
 public:
  static constexpr std::size_t kShards = 16;

  void Add(std::uint64_t delta = 1) {
    shards_[internal::ShardIndex(kShards)].v.fetch_add(
        delta, std::memory_order_relaxed);
  }

  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

  void Clear() {
    for (auto& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
  }

 private:
  internal::PaddedU64 shards_[kShards];
};

/// A point-in-time signed level (queue depth, active workers). `Add` is
/// sharded like a counter; `Value` sums the shards, so concurrent +1/-1
/// pairs from different threads cancel exactly. A high-water mark is kept
/// best-effort (maintained on every mutation, without cross-shard
/// synchronization).
class Gauge {
 public:
  static constexpr std::size_t kShards = 16;

  void Add(std::int64_t delta) {
    shards_[internal::ShardIndex(kShards)].v.fetch_add(
        delta, std::memory_order_relaxed);
    if (delta > 0) {
      const std::int64_t now = Value();
      std::int64_t seen = max_.load(std::memory_order_relaxed);
      while (now > seen &&
             !max_.compare_exchange_weak(seen, now,
                                         std::memory_order_relaxed)) {
      }
    }
  }

  void Set(std::int64_t value) {
    // Collapse every shard into shard 0; used from single-threaded setup
    // code (sizing gauges), not hot paths.
    for (std::size_t s = 1; s < kShards; ++s) {
      shards_[s].v.store(0, std::memory_order_relaxed);
    }
    shards_[0].v.store(value, std::memory_order_relaxed);
    std::int64_t seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
  }

  std::int64_t Value() const {
    std::int64_t sum = 0;
    for (const auto& shard : shards_) {
      sum += shard.v.load(std::memory_order_relaxed);
    }
    return sum;
  }

  std::int64_t Max() const { return max_.load(std::memory_order_relaxed); }

  void Clear() {
    for (auto& shard : shards_) shard.v.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  internal::PaddedI64 shards_[kShards];
  std::atomic<std::int64_t> max_{0};
};

/// A log-linear latency/value histogram (HdrHistogram-style bucketing):
/// 8 sub-buckets per power of two, so any recorded value lands in a bucket
/// whose width is at most 1/8 of its magnitude — percentile estimates carry
/// a bounded ~6% relative error. Values are non-negative integers
/// (conventionally nanoseconds).
class Histogram {
 public:
  static constexpr std::size_t kShards = 8;
  static constexpr std::size_t kSubBits = 3;  // 8 sub-buckets per octave
  static constexpr std::size_t kSubBuckets = std::size_t{1} << kSubBits;
  /// Buckets 0..7 are exact; each further octave (up to 2^63) adds 8.
  static constexpr std::size_t kNumBuckets = (64 - kSubBits + 1) * kSubBuckets;

  void Record(std::uint64_t value);

  /// Largest value that maps into `bucket` — the Prometheus-style `le`
  /// upper bound of the bucket's value range.
  static std::uint64_t BucketUpperBound(std::size_t bucket);

  /// Merged non-empty buckets as (upper_bound, cumulative_count) pairs with
  /// strictly increasing bounds — the cumulative-bucket form Prometheus
  /// histogram exposition needs. Safe to call while writers are active.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> CumulativeBuckets()
      const;

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    double p50 = 0.0;
    double p90 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;

    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  /// Merges the shards. Safe to call while writers are active; the result
  /// is a consistent-enough view (each bucket read once, relaxed).
  Snapshot Snap() const;

  static std::size_t BucketOf(std::uint64_t value);
  /// Midpoint of a bucket's value range — the representative reported for
  /// percentiles falling inside it.
  static double BucketMidpoint(std::size_t bucket);

  void Clear();

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> buckets[kNumBuckets];
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> min{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max{0};
  };

  std::unique_ptr<Shard[]> shards_ = std::make_unique<Shard[]>(kShards);
};

/// What a metric *is*, beyond its merged value: the exposition metadata
/// Prometheus rendering needs. The kind is implied by the primitive; the
/// unit is inferred from the metric name's suffix at registration time
/// (`_ns` → nanoseconds, `bytes` → bytes); the help string is supplied by
/// the registration site.
struct MetricMeta {
  std::string help;
  std::string unit;
};

/// An OpenMetrics-style exemplar: one recent recorded value of a histogram
/// bucket, linked to the trace that produced it. Prometheus exposition
/// renders it as `... # {trace_id="<hex>"} <value>` after the bucket
/// sample, which is how a latency histogram points at example slow traces.
struct HistogramExemplar {
  std::uint64_t value = 0;
  std::uint64_t bucket_le = 0;  ///< upper bound of the bucket it landed in
  std::string trace_id;         ///< 32-hex trace id
};

/// Name → metric directory. Lookup takes a mutex (registration is cold);
/// call sites cache the returned reference — metrics are never deleted, so
/// references stay valid for the process lifetime.
class MetricsRegistry {
 public:
  /// The process-wide registry every in-tree call site records into.
  static MetricsRegistry& Global();

  /// `help`, when given at the registration site, becomes the metric's
  /// `# HELP` line in Prometheus exposition (first non-empty help wins).
  Counter& GetCounter(const std::string& name, const char* help = nullptr);
  Gauge& GetGauge(const std::string& name, const char* help = nullptr);
  Histogram& GetHistogram(const std::string& name,
                          const char* help = nullptr);
  /// The latency histogram behind a `QDCBIR_SPAN(name)` call site:
  /// `span.<name>`, recording nanoseconds.
  Histogram& SpanHistogram(const char* span_name);

  /// Attaches an exemplar to the bucket of `name` that `value` maps into
  /// (latest write per bucket wins). Call alongside — not instead of —
  /// `Histogram::Record`. Once-per-session cost: one mutex acquisition.
  /// Ignored when `trace_id` is empty.
  void RecordExemplar(const std::string& name, std::uint64_t value,
                      const std::string& trace_id);

  /// Merged point-in-time view of every registered metric, sorted by name.
  struct RegistrySnapshot {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    /// name → (value, high-water mark)
    std::vector<std::pair<std::string, std::pair<std::int64_t, std::int64_t>>>
        gauges;
    std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
    /// name → (upper_bound, cumulative_count) list, parallel to
    /// `histograms` — the exposition-ready cumulative bucket form.
    std::vector<std::pair<
        std::string, std::vector<std::pair<std::uint64_t, std::uint64_t>>>>
        histogram_buckets;
    /// Exposition metadata for every name above (possibly empty help).
    std::map<std::string, MetricMeta> meta;
    /// Histogram name → exemplars, ascending by bucket upper bound.
    std::map<std::string, std::vector<HistogramExemplar>> exemplars;
  };
  RegistrySnapshot Snapshot() const;

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  /// Embedded verbatim in bench records and dumped by the tools' /
  /// benches' `--metrics-json` paths.
  std::string SnapshotJson() const;

  /// Zeroes every registered metric (registrations survive). For tests and
  /// per-section bench deltas; not safe against concurrent writers that
  /// expect exact totals.
  void Reset();

 private:
  void RecordMeta(const std::string& name, const char* help);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, MetricMeta> meta_;
  /// name → (bucket upper bound → exemplar).
  std::map<std::string, std::map<std::uint64_t, HistogramExemplar>>
      exemplars_;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_METRICS_H_
