#ifndef QDCBIR_OBS_PROM_EXPORT_H_
#define QDCBIR_OBS_PROM_EXPORT_H_

#include <map>
#include <string>
#include <vector>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {

/// Prometheus text exposition (version 0.0.4) of a metrics registry:
///  - counters render as one `qdcbir_<name>` sample with `# TYPE ... counter`,
///  - gauges render their merged value plus a `<name>_highwater` gauge,
///  - histograms render cumulative `_bucket{le="..."}` samples (log-linear
///    upper bounds, `+Inf` last) with `_sum` and `_count`.
/// Metric names are sanitized (`.` → `_`, prefix `qdcbir_`); `# HELP` lines
/// come from the help string supplied at the registration site and carry
/// the inferred unit. The output is internally consistent even while
/// writers are recording: `_count` is derived from the same bucket merge
/// that produced the `_bucket` samples.

/// `pool.task.wait_ns` → `qdcbir_pool_task_wait_ns`.
std::string PrometheusName(const std::string& name);

/// `# HELP` text escaping per the exposition format: `\` → `\\` and
/// newline → `\n` (double quotes pass through unescaped on HELP lines).
std::string EscapeHelpText(const std::string& text);

/// Label-value escaping per the exposition format: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
std::string EscapeLabelValue(const std::string& value);

/// Renders the full exposition page for `registry`.
std::string RenderPrometheusText(const MetricsRegistry& registry);

/// Structural validator for exposition text (used by `trace_check --prom=`
/// and the CI scrape gate). Enforces:
///  - every sample belongs to a family with exactly one preceding `# TYPE`
///    line of a known type, and families are not interleaved or repeated;
///  - histogram `_bucket` samples have strictly increasing `le` bounds,
///    non-decreasing cumulative counts, end with `le="+Inf"`, and the +Inf
///    value equals the family's `_count`;
///  - sample names are legal and values parse as numbers;
///  - exemplar suffixes (`... # {trace_id="<hex>"} <value>`) are
///    structurally sound, appear only on histogram buckets, and any
///    `trace_id` label is exactly 32 lowercase hex characters.
/// On success, `samples` (when non-null) receives every sample name mapped
/// to its value (labels stripped; duplicates keep the largest value), and
/// `exemplar_trace_ids` (when non-null) every exemplar's trace id in
/// document order.
bool ValidatePrometheusText(
    const std::string& text, std::string* error,
    std::map<std::string, double>* samples = nullptr,
    std::vector<std::string>* exemplar_trace_ids = nullptr);

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_PROM_EXPORT_H_
