#ifndef QDCBIR_OBS_SPAN_STACK_H_
#define QDCBIR_OBS_SPAN_STACK_H_

#include <atomic>
#include <cstdint>

namespace qdcbir {
namespace obs {

/// Async-signal-safe mirror of the calling thread's open `QDCBIR_SPAN`
/// scopes plus its 128-bit trace identity. The sampling profiler's SIGPROF
/// handler reads this from signal context, which rules out everything the
/// richer tracing structures rely on: `TraceContext` holds a
/// `shared_ptr`, lazily-constructed thread_locals may take loader locks on
/// first touch, and span histograms shard through a registry mutex. This
/// struct is therefore a constinit POD-ish mirror: `ScopedSpan` pushes and
/// pops literal name pointers, `ScopedTraceContext` keeps the trace-id
/// fields current, and the handler only ever loads from its own thread's
/// instance.
///
/// Memory-ordering contract: all writers run on the owning thread; the only
/// concurrent reader is a signal handler *on that same thread*, so plain
/// stores ordered by `atomic_signal_fence` suffice — no cross-thread
/// ordering is needed. `depth` is atomic so the compiler cannot tear or
/// cache it across the fence.
struct SpanStack {
  static constexpr std::uint32_t kMaxDepth = 32;

  std::atomic<std::uint32_t> depth{0};
  const char* names[kMaxDepth] = {};
  /// Mirror of `CurrentTraceContext().trace_hi/lo`; read by the profiler to
  /// tag samples with the trace they were taken under.
  std::uint64_t trace_hi = 0;
  std::uint64_t trace_lo = 0;

  /// Called by `ScopedSpan` on the owning thread. `name` must be a string
  /// literal (the pointer is stored and may be read long after the span
  /// closes, from the sample ring). Depth beyond `kMaxDepth` is counted but
  /// not recorded; `Innermost` then reports the deepest recorded frame.
  void Push(const char* name) {
    const std::uint32_t d = depth.load(std::memory_order_relaxed);
    if (d < kMaxDepth) names[d] = name;
    // Publish the name slot before the depth that makes it visible to a
    // signal arriving between the two stores.
    std::atomic_signal_fence(std::memory_order_release);
    depth.store(d + 1, std::memory_order_relaxed);
  }

  void Pop() {
    const std::uint32_t d = depth.load(std::memory_order_relaxed);
    if (d > 0) depth.store(d - 1, std::memory_order_relaxed);
  }

  /// Innermost open span name, or nullptr outside any span. Safe from the
  /// owning thread's signal handler.
  const char* Innermost() const {
    std::uint32_t d = depth.load(std::memory_order_relaxed);
    std::atomic_signal_fence(std::memory_order_acquire);
    if (d == 0) return nullptr;
    if (d > kMaxDepth) d = kMaxDepth;
    return names[d - 1];
  }
};

/// The calling thread's span stack. Backed by a `constinit` thread_local:
/// first touch from normal code is guard-free, so a later touch from signal
/// context cannot deadlock on a C++ TLS guard.
SpanStack& CurrentSpanStack();

/// Innermost open span name on this thread (nullptr when none). This is
/// what `ThreadPool` captures at enqueue so worker samples attribute to the
/// enqueuing span.
inline const char* CurrentSpanName() { return CurrentSpanStack().Innermost(); }

/// Mirrors the active trace id; called by `ScopedTraceContext` on install
/// and restore.
inline void SetCurrentSpanStackTrace(std::uint64_t hi, std::uint64_t lo) {
  SpanStack& stack = CurrentSpanStack();
  stack.trace_hi = hi;
  stack.trace_lo = lo;
}

/// RAII push of a span *name* without the histogram/trace machinery of
/// `ScopedSpan`. The thread-pool task wrapper uses this to re-open the
/// enqueuing span's identity on the worker: profiler samples taken inside
/// the task then attribute to the span that scheduled it, mirroring how
/// trace context hops the pool. A null name is a no-op, so capture sites
/// can pass `CurrentSpanName()` unconditionally.
class ScopedSpanTag {
 public:
  explicit ScopedSpanTag(const char* name) : pushed_(name != nullptr) {
    if (pushed_) CurrentSpanStack().Push(name);
  }

  ScopedSpanTag(const ScopedSpanTag&) = delete;
  ScopedSpanTag& operator=(const ScopedSpanTag&) = delete;

  ~ScopedSpanTag() {
    if (pushed_) CurrentSpanStack().Pop();
  }

 private:
  bool pushed_;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_SPAN_STACK_H_
