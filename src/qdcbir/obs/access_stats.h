#ifndef QDCBIR_OBS_ACCESS_STATS_H_
#define QDCBIR_OBS_ACCESS_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace qdcbir {
namespace obs {

/// Index region identifier for access accounting. RFS-backed localized
/// scans record the stable NodeId of the searched subtree root (a leaf
/// until boundary expansion widens it); engines that scan the flat feature
/// table (Qcluster list merging, Fagin sorted-list building) account under
/// `kTableScanLeaf`, so full-table work shows up in the same heatmap
/// without faking tree coordinates. Ids are stable within one loaded
/// snapshot generation — the serve layer resets the global table on reload.
using AccessLeafId = std::uint32_t;
inline constexpr AccessLeafId kTableScanLeaf = 0xffffffffu;

/// Physical index work attributed to one leaf (or the table-scan bucket).
/// Like `ResourceUsage` these are physical-work counters: a cache hit
/// legitimately reduces scans/evals relative to a cold run, while the
/// logical cost model (QdSessionStats) stays byte-identical either way.
struct LeafAccessCounts {
  std::uint64_t scans = 0;           ///< localized scans over this leaf
  std::uint64_t distance_evals = 0;  ///< query × candidate distances in them
  std::uint64_t feature_bytes = 0;   ///< feature-vector bytes read from it
  std::uint64_t cache_hits = 0;      ///< scans answered from the result cache
  std::uint64_t cache_misses = 0;    ///< scans that had to touch the leaf

  void Add(const LeafAccessCounts& other) {
    scans += other.scans;
    distance_evals += other.distance_evals;
    feature_bytes += other.feature_bytes;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
  }

  bool IsZero() const {
    return (scans | distance_evals | feature_bytes | cache_hits |
            cache_misses) == 0;
  }
};

/// One row of an access snapshot.
struct LeafAccess {
  AccessLeafId leaf = 0;
  LeafAccessCounts counts;
};

/// Per-session sink for leaf access. Workers batch increments in a small
/// thread-local slot table and merge once per task (or on slot overflow),
/// so the hot-path cost stays a TLS load, a short linear probe, and plain
/// adds — the same contract as `ResourceAccumulator`. Snapshots are sorted
/// by leaf id so downstream consumers see a deterministic order.
class AccessAccumulator {
 public:
  void Merge(AccessLeafId leaf, const LeafAccessCounts& counts) {
    if (counts.IsZero()) return;
    std::lock_guard<std::mutex> lock(mu_);
    leaves_[leaf].Add(counts);
  }

  std::vector<LeafAccess> Snapshot() const;

  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return leaves_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<AccessLeafId, LeafAccessCounts> leaves_;
};

namespace internal {

inline constexpr std::size_t kAccessTlsSlots = 8;

/// Per-thread access-accounting state: the active sink (null = accounting
/// off, every tap is one predictable branch) and a fixed slot table of
/// per-leaf deltas batched toward it. A localized search touches one leaf
/// at a time, so eight slots absorb a whole task between flushes.
struct AccessTls {
  AccessAccumulator* accumulator = nullptr;
  std::uint32_t used = 0;
  AccessLeafId leaf[kAccessTlsSlots] = {};
  LeafAccessCounts counts[kAccessTlsSlots] = {};
};

inline AccessTls& AccessState() {
  constinit thread_local AccessTls state;
  return state;
}

/// Cold path: merge every occupied slot into the sink and reset the table.
void FlushAccessTlsSlots(AccessTls& state);

/// Returns the delta slot for `leaf`, or null when accounting is off.
inline LeafAccessCounts* AccessSlot(AccessLeafId leaf) {
  AccessTls& state = AccessState();
  if (state.accumulator == nullptr) return nullptr;
  for (std::uint32_t i = 0; i < state.used; ++i) {
    if (state.leaf[i] == leaf) return &state.counts[i];
  }
  if (state.used == kAccessTlsSlots) FlushAccessTlsSlots(state);
  const std::uint32_t slot = state.used++;
  state.leaf[slot] = leaf;
  state.counts[slot] = LeafAccessCounts{};
  return &state.counts[slot];
}

}  // namespace internal

/// The sink active on this thread, or null. `ThreadPool` captures this at
/// enqueue so tasks spawned while accounting carry the session's sink onto
/// workers, exactly like trace context and resource accounting.
inline AccessAccumulator* CurrentAccessAccumulator() {
  return internal::AccessState().accumulator;
}

/// Hot-path taps. Purely observational — they never influence ranking —
/// and compiled out entirely under `-DQDCBIR_OBS=OFF`, preserving the
/// determinism and overhead contracts. Call granularity is per *scan*, not
/// per element: pass the batch totals.
#ifndef QDCBIR_DISABLE_OBS
inline void CountLeafScan(AccessLeafId leaf, std::uint64_t distance_evals,
                          std::uint64_t feature_bytes) {
  if (LeafAccessCounts* slot = internal::AccessSlot(leaf)) {
    slot->scans += 1;
    slot->distance_evals += distance_evals;
    slot->feature_bytes += feature_bytes;
  }
}
inline void CountLeafCacheHit(AccessLeafId leaf) {
  if (LeafAccessCounts* slot = internal::AccessSlot(leaf)) {
    slot->cache_hits += 1;
  }
}
inline void CountLeafCacheMiss(AccessLeafId leaf) {
  if (LeafAccessCounts* slot = internal::AccessSlot(leaf)) {
    slot->cache_misses += 1;
  }
}
#else
inline void CountLeafScan(AccessLeafId, std::uint64_t, std::uint64_t) {}
inline void CountLeafCacheHit(AccessLeafId) {}
inline void CountLeafCacheMiss(AccessLeafId) {}
#endif

/// Merges this thread's pending slot deltas into the active sink now,
/// without waiting for the enclosing scope to close. Callers that read the
/// accumulator while their own scope is still open (the serve layer
/// draining a session at finalize) flush first.
inline void FlushAccessAccounting() {
  internal::AccessTls& state = internal::AccessState();
  if (state.accumulator != nullptr && state.used != 0) {
    internal::FlushAccessTlsSlots(state);
  }
}

/// Installs `accumulator` as this thread's access sink for the enclosing
/// scope and flushes the slot deltas gathered inside the scope into it on
/// destruction. Nests; a null accumulator disables access accounting for
/// the scope. The serve layer opens one per request around the engine
/// calls; the thread-pool task wrapper opens one per task with the
/// enqueuer's sink.
class ScopedAccessAccounting {
 public:
  explicit ScopedAccessAccounting(AccessAccumulator* accumulator)
      : saved_(internal::AccessState()) {
    internal::AccessTls& state = internal::AccessState();
    state.accumulator = accumulator;
    state.used = 0;
  }

  ScopedAccessAccounting(const ScopedAccessAccounting&) = delete;
  ScopedAccessAccounting& operator=(const ScopedAccessAccounting&) = delete;

  ~ScopedAccessAccounting() {
    internal::AccessTls& state = internal::AccessState();
    if (state.accumulator != nullptr && state.used != 0) {
      internal::FlushAccessTlsSlots(state);
    }
    state = saved_;
  }

 private:
  internal::AccessTls saved_;
};

/// Process-wide per-leaf access table: the serve layer drains each
/// session's `AccessAccumulator` into it at finalize, and `/indexz` joins
/// its snapshot with the RFS tree walk. Sharded by leaf id so concurrent
/// finalizes don't contend; `Reset` starts a fresh epoch on snapshot
/// reload (leaf ids are only stable within one loaded tree).
class AccessStatsTable {
 public:
  static AccessStatsTable& Global();

  void MergeLeaf(AccessLeafId leaf, const LeafAccessCounts& counts);
  void MergeSession(const std::vector<LeafAccess>& rows);

  /// Every leaf ever touched this epoch, sorted by leaf id.
  std::vector<LeafAccess> Snapshot() const;
  LeafAccessCounts Totals() const;
  std::uint64_t sessions_merged() const {
    return sessions_merged_.load(std::memory_order_relaxed);
  }

  void Reset();

 private:
  static constexpr std::size_t kShards = 16;
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<AccessLeafId, LeafAccessCounts> leaves;
  };
  Shard shards_[kShards];
  std::atomic<std::uint64_t> sessions_merged_{0};
};

/// Bounded top-K leaf-pair co-occurrence tracker (Space-Saving style): per
/// completed session the touched-leaf set is recorded and every unordered
/// pair's count bumped. At capacity the minimum-count pair is evicted and
/// the newcomer inherits its count + 1, so heavy pairs survive while
/// `evictions()` makes the approximation visible. Sets larger than the
/// per-set leaf cap are truncated (lowest leaf ids kept) and counted in
/// `leaves_truncated()` — memory stays fixed no matter the workload.
class CoAccessTracker {
 public:
  struct PairCount {
    AccessLeafId a = 0;  ///< a < b always
    AccessLeafId b = 0;
    std::uint64_t count = 0;
  };

  explicit CoAccessTracker(std::size_t max_pairs = 4096,
                           std::size_t max_set_leaves = 64);

  static CoAccessTracker& Global();

  /// Records one session's touched-leaf set (deduped internally).
  void RecordTouchedSet(std::vector<AccessLeafId> leaves);

  /// The heaviest pairs, count-descending (ties by a then b), at most `n`.
  std::vector<PairCount> TopPairs(std::size_t n) const;

  std::uint64_t sets_recorded() const;
  std::uint64_t evictions() const;
  std::uint64_t leaves_truncated() const;

  void Reset();

 private:
  const std::size_t max_pairs_;
  const std::size_t max_set_leaves_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::uint64_t> pairs_;
  std::uint64_t sets_recorded_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t leaves_truncated_ = 0;
};

/// Renders the hottest `top_n` leaves of an access snapshot as labeled
/// Prometheus samples (`qdcbir_index_leaf_*{leaf="17"}`), with TYPE/HELP
/// headers and label values escaped per the exposition format. The
/// table-scan bucket renders as leaf="table". Appended to `/metrics` after
/// the registry families — the registry itself stays label-free.
std::string RenderIndexLeafPrometheusText(const std::vector<LeafAccess>& rows,
                                          std::size_t top_n);

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_ACCESS_STATS_H_
