#include "qdcbir/obs/quality_stats.h"

#include <algorithm>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {

const char* SessionOutcomeName(SessionOutcome outcome) {
  switch (outcome) {
    case SessionOutcome::kFinalized: return "finalized";
    case SessionOutcome::kAbandoned: return "abandoned";
    case SessionOutcome::kErrored: return "errored";
  }
  return "unknown";
}

std::uint64_t JaccardPermille(const std::vector<std::uint64_t>& a,
                              const std::vector<std::uint64_t>& b) {
  if (a.empty() && b.empty()) return 1000;
  std::vector<std::uint64_t> sa = a;
  std::vector<std::uint64_t> sb = b;
  std::sort(sa.begin(), sa.end());
  sa.erase(std::unique(sa.begin(), sa.end()), sa.end());
  std::sort(sb.begin(), sb.end());
  sb.erase(std::unique(sb.begin(), sb.end()), sb.end());
  std::uint64_t intersection = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < sa.size() && j < sb.size()) {
    if (sa[i] == sb[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (sa[i] < sb[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::uint64_t unions = sa.size() + sb.size() - intersection;
  return unions == 0 ? 1000 : intersection * 1000 / unions;
}

std::uint64_t RankChurn(const std::vector<std::uint64_t>& a,
                        const std::vector<std::uint64_t>& b) {
  const std::size_t common = std::min(a.size(), b.size());
  std::uint64_t churn = 0;
  for (std::size_t i = 0; i < common; ++i) {
    if (a[i] != b[i]) ++churn;
  }
  churn += std::max(a.size(), b.size()) - common;
  return churn;
}

void SessionQualityTracker::ObserveRound(
    const std::vector<std::uint64_t>& ranked_ids,
    std::uint64_t subquery_count) {
  ++rounds_observed_;
  if (rounds_observed_ == 1) {
    first_subqueries_ = subquery_count;
  } else {
    last_jaccard_permille_ = JaccardPermille(previous_, ranked_ids);
    last_rank_churn_ = RankChurn(previous_, ranked_ids);
    jaccard_sum_permille_ += last_jaccard_permille_;
    ++transitions_;
    if (rounds_to_stability_ == 0 &&
        last_jaccard_permille_ >= kStabilityPermille) {
      rounds_to_stability_ = rounds_observed_;
    }
  }
  last_subqueries_ = subquery_count;
  previous_ = ranked_ids;
}

SessionQuality SessionQualityTracker::Summary() const {
  SessionQuality quality;
  quality.rounds_observed = rounds_observed_;
  quality.last_jaccard_permille = last_jaccard_permille_;
  quality.mean_jaccard_permille =
      transitions_ == 0 ? 1000 : jaccard_sum_permille_ / transitions_;
  quality.last_rank_churn = last_rank_churn_;
  quality.rounds_to_stability = rounds_to_stability_;
  quality.subquery_growth = last_subqueries_ > first_subqueries_
                                ? last_subqueries_ - first_subqueries_
                                : 0;
  quality.outcome = finalized_ ? SessionOutcome::kFinalized
                    : errored_ ? SessionOutcome::kErrored
                               : SessionOutcome::kAbandoned;
  return quality;
}

void PublishSessionQuality(const SessionQuality& quality) {
  MetricsRegistry& reg = MetricsRegistry::Global();
  // One-time lookups: metric references are stable for the process life.
  static Histogram& jaccard = reg.GetHistogram(
      "quality.topk_jaccard",
      "Round-to-round top-k Jaccard overlap at session end (permille)");
  static Histogram& churn = reg.GetHistogram(
      "quality.rank_churn",
      "Rank positions changed between the last two rounds of a session");
  static Histogram& stability = reg.GetHistogram(
      "quality.rounds_to_stability",
      "First round whose overlap with its predecessor reached the "
      "stability threshold (0 = never stabilized)");
  static Histogram& growth = reg.GetHistogram(
      "quality.subquery_growth",
      "Subquery-count growth from first to last observed round");
  static Histogram& precision = reg.GetHistogram(
      "quality.oracle_precision",
      "Oracle-labeled precision@k at finalize (permille; eval/bench only)");
  static Counter& finalized = reg.GetCounter(
      "quality.sessions.finalized", "Sessions that reached finalize");
  static Counter& abandoned = reg.GetCounter(
      "quality.sessions.abandoned",
      "Sessions torn down before finalize without a recorded error");
  static Counter& errored = reg.GetCounter(
      "quality.sessions.errored",
      "Sessions whose last round or finalize failed");

  jaccard.Record(quality.last_jaccard_permille);
  churn.Record(quality.last_rank_churn);
  stability.Record(quality.rounds_to_stability);
  growth.Record(quality.subquery_growth);
  if (quality.oracle_precision_defined) {
    precision.Record(quality.oracle_precision_permille);
  }
  switch (quality.outcome) {
    case SessionOutcome::kFinalized: finalized.Add(); break;
    case SessionOutcome::kAbandoned: abandoned.Add(); break;
    case SessionOutcome::kErrored: errored.Add(); break;
  }
}

}  // namespace obs
}  // namespace qdcbir
