#ifndef QDCBIR_OBS_TRACE_TREE_H_
#define QDCBIR_OBS_TRACE_TREE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace qdcbir {
namespace obs {

/// One closed span inside a request-scoped trace. `name` is the span's
/// string literal (the `QDCBIR_SPAN` argument), so records never own text.
struct SpanRecord {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = child of the trace root
  const char* name = nullptr;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;
};

/// A key/value attached to a span while it was open — leaf / search-node /
/// relevant-count attribution on the per-subquery spans. `key` is a string
/// literal.
struct SpanAnnotation {
  std::uint64_t span_id = 0;
  const char* key = nullptr;
  std::int64_t value = 0;
};

/// Collects the spans of one trace (one RF session, in the serve layer).
/// Span ids are allocated lock-free; closed spans append under a mutex —
/// spans close once per engine phase, not per image, so contention is nil.
/// The buffer is bounded: past `kMaxSpans` records new spans are dropped
/// and counted, never reallocated unboundedly.
class TraceBuffer {
 public:
  static constexpr std::size_t kMaxSpans = 4096;

  TraceBuffer() = default;
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// A buffer-unique nonzero span id.
  std::uint64_t NewSpanId() {
    return next_span_id_.fetch_add(1, std::memory_order_relaxed);
  }

  void Append(const SpanRecord& record);
  void Annotate(std::uint64_t span_id, const char* key, std::int64_t value);

  std::vector<SpanRecord> spans() const;
  std::vector<SpanAnnotation> annotations() const;
  std::uint64_t dropped() const;

 private:
  std::atomic<std::uint64_t> next_span_id_{1};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::vector<SpanAnnotation> annotations_;
  std::uint64_t dropped_ = 0;
};

/// A finished trace as published to `/tracez`.
struct CompletedTrace {
  std::string trace_id;  ///< 32 lowercase hex
  std::string label;
  std::string reason;  ///< "sampled" (head sampling) or "slow" (trigger)
  std::uint64_t total_ns = 0;
  std::uint64_t dropped_spans = 0;
  std::vector<SpanRecord> spans;
  std::vector<SpanAnnotation> annotations;
};

/// Retains the most recent head-sampled and slow traces for `/tracez`.
/// Publication happens once per completed session; rendering assembles the
/// span tree (children grouped under parents, roots at parent 0/unknown)
/// and computes each span's self time (duration minus the sum of its direct
/// children's durations, clamped at zero for cross-thread overlap).
class TraceStore {
 public:
  static constexpr std::size_t kKeepPerReason = 16;

  TraceStore() = default;
  TraceStore(const TraceStore&) = delete;
  TraceStore& operator=(const TraceStore&) = delete;

  void Publish(CompletedTrace trace);

  std::vector<CompletedTrace> Snapshot() const;
  std::uint64_t total_published() const;

  /// The `/tracez` document: store stats plus every retained trace as a
  /// span tree with per-span `self_ns` and annotations.
  std::string RenderJson() const;

  /// For tests: drops every retained trace (the published counter stays).
  void Clear();

  /// The process-wide store the serve layer publishes into.
  static TraceStore& Global();

 private:
  mutable std::mutex mu_;
  std::deque<CompletedTrace> sampled_;
  std::deque<CompletedTrace> slow_;
  std::uint64_t published_ = 0;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_TRACE_TREE_H_
