#include "qdcbir/obs/prom_export.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <vector>

namespace qdcbir {
namespace obs {

namespace {

constexpr char kPrefix[] = "qdcbir_";

bool LegalFirstChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool LegalChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

void AppendHelp(std::string& out, const std::string& family,
                const MetricMeta& meta) {
  if (meta.help.empty() && meta.unit.empty()) return;
  out += "# HELP ";
  out += family;
  out.push_back(' ');
  out += EscapeHelpText(meta.help);
  if (!meta.unit.empty()) {
    if (!meta.help.empty()) out.push_back(' ');
    out += "(unit: " + meta.unit + ")";
  }
  out.push_back('\n');
}

void AppendType(std::string& out, const std::string& family,
                const char* type) {
  out += "# TYPE ";
  out += family;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

const MetricMeta& MetaOf(const MetricsRegistry::RegistrySnapshot& snap,
                         const std::string& name) {
  static const MetricMeta kEmpty;
  const auto it = snap.meta.find(name);
  return it == snap.meta.end() ? kEmpty : it->second;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out = kPrefix;
  for (const char c : name) {
    out.push_back(LegalChar(c) ? c : '_');
  }
  return out;
}

std::string EscapeHelpText(const std::string& text) {
  // The exposition format escapes newlines and backslashes in help text;
  // double quotes are legal there unescaped.
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '\\') out += "\\\\";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out.push_back(c);
  }
  return out;
}

std::string RenderPrometheusText(const MetricsRegistry& registry) {
  const MetricsRegistry::RegistrySnapshot snap = registry.Snapshot();
  std::string out;
  out.reserve(4096);

  for (const auto& [name, value] : snap.counters) {
    const std::string family = PrometheusName(name);
    AppendHelp(out, family, MetaOf(snap, name));
    AppendType(out, family, "counter");
    out += family + " " + std::to_string(value) + "\n";
  }

  for (const auto& [name, value_max] : snap.gauges) {
    const std::string family = PrometheusName(name);
    AppendHelp(out, family, MetaOf(snap, name));
    AppendType(out, family, "gauge");
    out += family + " " + std::to_string(value_max.first) + "\n";
    // The high-water mark is its own family (a gauge cannot carry two
    // unlabeled samples).
    const std::string high = family + "_highwater";
    AppendType(out, high, "gauge");
    out += high + " " + std::to_string(value_max.second) + "\n";
  }

  for (std::size_t h = 0; h < snap.histograms.size(); ++h) {
    const std::string& name = snap.histograms[h].first;
    const Histogram::Snapshot& hs = snap.histograms[h].second;
    const auto& buckets = snap.histogram_buckets[h].second;
    const std::string family = PrometheusName(name);
    AppendHelp(out, family, MetaOf(snap, name));
    AppendType(out, family, "histogram");
    const auto exemplars_it = snap.exemplars.find(name);
    std::uint64_t cumulative = 0;
    for (const auto& [upper, cum] : buckets) {
      cumulative = cum;
      out += family + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
             std::to_string(cum);
      if (exemplars_it != snap.exemplars.end()) {
        // OpenMetrics exemplar: the trace that produced a recent value in
        // this bucket, appended after the sample value.
        for (const HistogramExemplar& exemplar : exemplars_it->second) {
          if (exemplar.bucket_le != upper) continue;
          out += " # {trace_id=\"" + EscapeLabelValue(exemplar.trace_id) +
                 "\"} " + std::to_string(exemplar.value);
          break;
        }
      }
      out.push_back('\n');
    }
    // Derive count from the same bucket merge so +Inf always equals
    // _count, even if writers recorded between the two shard merges.
    out += family + "_bucket{le=\"+Inf\"} " + std::to_string(cumulative) +
           "\n";
    out += family + "_sum " + std::to_string(hs.sum) + "\n";
    out += family + "_count " + std::to_string(cumulative) + "\n";
  }
  return out;
}

namespace {

struct FamilyState {
  std::string type;
  bool samples_seen = false;
  bool closed = false;
  // Histogram bookkeeping.
  double last_le = -std::numeric_limits<double>::infinity();
  double last_bucket_value = 0.0;
  bool saw_inf_bucket = false;
  double inf_bucket_value = 0.0;
  bool saw_count = false;
  double count_value = 0.0;
};

bool Fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Splits `line` ("name{labels} value" or "name value") into parts.
bool ParseSample(const std::string& line, std::string* name,
                 std::string* labels, double* value) {
  std::size_t i = 0;
  if (i >= line.size() || !LegalFirstChar(line[i])) return false;
  while (i < line.size() && LegalChar(line[i])) ++i;
  *name = line.substr(0, i);
  if (i < line.size() && line[i] == '{') {
    const std::size_t close = line.find('}', i);
    if (close == std::string::npos) return false;
    *labels = line.substr(i + 1, close - i - 1);
    i = close + 1;
  } else {
    labels->clear();
  }
  if (i >= line.size() || (line[i] != ' ' && line[i] != '\t')) return false;
  while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  const std::string value_text = line.substr(i);
  if (value_text.empty()) return false;
  if (value_text == "+Inf") {
    *value = std::numeric_limits<double>::infinity();
    return true;
  }
  char* end = nullptr;
  *value = std::strtod(value_text.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Validates an exemplar suffix (everything after the sample's ` # `):
/// `{label="value",...} <number> [<timestamp>]`. On success `*trace_id`
/// holds the `trace_id` label's value ("" when the label is absent), which
/// must be exactly 32 lowercase hex characters when present.
bool ParseExemplar(const std::string& text, std::string* trace_id,
                   std::string* why) {
  if (text.empty() || text[0] != '{') {
    *why = "missing {label} block";
    return false;
  }
  const std::size_t close = text.find('}');
  if (close == std::string::npos) {
    *why = "unterminated label block";
    return false;
  }
  const std::string labels = text.substr(1, close - 1);

  std::size_t i = close + 1;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  std::size_t j = i;
  while (j < text.size() && text[j] != ' ' && text[j] != '\t') ++j;
  const std::string value_text = text.substr(i, j - i);
  if (value_text.empty()) {
    *why = "missing exemplar value";
    return false;
  }
  char* end = nullptr;
  std::strtod(value_text.c_str(), &end);
  if (end == nullptr || *end != '\0') {
    *why = "exemplar value is not a number";
    return false;
  }
  while (j < text.size() && (text[j] == ' ' || text[j] == '\t')) ++j;
  if (j < text.size()) {
    const std::string ts_text = text.substr(j);
    std::strtod(ts_text.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      *why = "trailing bytes after exemplar value";
      return false;
    }
  }

  trace_id->clear();
  const std::size_t pos = labels.find("trace_id=\"");
  if (pos != std::string::npos) {
    const std::size_t start = pos + 10;
    const std::size_t quote = labels.find('"', start);
    if (quote == std::string::npos) {
      *why = "unterminated trace_id label";
      return false;
    }
    const std::string id = labels.substr(start, quote - start);
    if (id.size() != 32) {
      *why = "trace_id is not 32 hex chars";
      return false;
    }
    for (const char c : id) {
      const bool hex =
          (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
      if (!hex) {
        *why = "trace_id holds a non-hex character";
        return false;
      }
    }
    *trace_id = id;
  }
  return true;
}

/// `le` label value of a `_bucket` sample; NaN when absent/garbled.
double ParseLe(const std::string& labels) {
  const std::size_t pos = labels.find("le=\"");
  if (pos == std::string::npos) return std::nan("");
  const std::size_t start = pos + 4;
  const std::size_t end = labels.find('"', start);
  if (end == std::string::npos) return std::nan("");
  const std::string text = labels.substr(start, end - start);
  if (text == "+Inf") return std::numeric_limits<double>::infinity();
  char* parse_end = nullptr;
  const double v = std::strtod(text.c_str(), &parse_end);
  if (parse_end == nullptr || *parse_end != '\0') return std::nan("");
  return v;
}

}  // namespace

bool ValidatePrometheusText(const std::string& text, std::string* error,
                            std::map<std::string, double>* samples,
                            std::vector<std::string>* exemplar_trace_ids) {
  std::map<std::string, FamilyState> families;
  std::string open_family;  // family whose sample block is in progress
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  const auto close_family = [&](const std::string& family) -> bool {
    FamilyState& state = families[family];
    state.closed = true;
    if (state.type == "histogram") {
      if (!state.saw_inf_bucket) {
        return Fail(error, "histogram " + family + " has no +Inf bucket");
      }
      if (state.saw_count && state.inf_bucket_value != state.count_value) {
        return Fail(error, "histogram " + family +
                               ": +Inf bucket disagrees with _count");
      }
    }
    return true;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const std::string at = " (line " + std::to_string(line_no) + ")";
    if (line.empty()) continue;

    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, keyword, family;
      meta >> hash >> keyword >> family;
      if (keyword != "TYPE") continue;  // HELP and comments are free-form
      std::string type;
      meta >> type;
      if (family.empty() || type.empty()) {
        return Fail(error, "malformed TYPE line" + at);
      }
      if (type != "counter" && type != "gauge" && type != "histogram" &&
          type != "summary" && type != "untyped") {
        return Fail(error, "unknown metric type '" + type + "'" + at);
      }
      // A TYPE line ends the open sample block: samples after it can only
      // belong to the newly declared family.
      if (!open_family.empty()) {
        if (!close_family(open_family)) return false;
        open_family.clear();
      }
      // Any earlier family that never produced samples can no longer
      // legally produce them — its block would not be adjacent to its
      // TYPE line.
      for (auto& [declared, state] : families) {
        if (!state.samples_seen) state.closed = true;
      }
      auto [it, inserted] = families.emplace(family, FamilyState{});
      if (!inserted) {
        return Fail(error, "duplicate family " + family + at);
      }
      it->second.type = type;
      continue;
    }

    // An exemplar rides after the sample value, separated by " # ".
    std::string sample_line = line;
    std::string exemplar_text;
    const std::size_t exemplar_pos = line.find(" # ");
    if (exemplar_pos != std::string::npos) {
      sample_line = line.substr(0, exemplar_pos);
      exemplar_text = line.substr(exemplar_pos + 3);
    }

    std::string name, labels;
    double value = 0.0;
    if (!ParseSample(sample_line, &name, &labels, &value)) {
      return Fail(error, "malformed sample line" + at);
    }

    // Resolve the sample's family: histogram/summary series carry
    // _bucket/_sum/_count suffixes on top of the family name.
    std::string family = name;
    std::string suffix;
    for (const char* candidate : {"_bucket", "_sum", "_count"}) {
      const std::string cand(candidate);
      if (name.size() > cand.size() &&
          name.compare(name.size() - cand.size(), cand.size(), cand) == 0) {
        const std::string base = name.substr(0, name.size() - cand.size());
        const auto it = families.find(base);
        if (it != families.end() &&
            (it->second.type == "histogram" || it->second.type == "summary")) {
          family = base;
          suffix = cand;
          break;
        }
      }
    }

    const auto it = families.find(family);
    if (it == families.end()) {
      return Fail(error, "sample " + name + " has no preceding TYPE line" + at);
    }
    FamilyState& state = it->second;
    if (state.closed) {
      return Fail(error, "family " + family + " is interleaved" + at);
    }
    if (!open_family.empty() && open_family != family) {
      if (!close_family(open_family)) return false;
    }
    open_family = family;
    state.samples_seen = true;

    if (state.type == "histogram" && suffix == "_bucket") {
      const double le = ParseLe(labels);
      if (std::isnan(le)) {
        return Fail(error, "bucket of " + family + " lacks a le label" + at);
      }
      if (le <= state.last_le) {
        return Fail(error, "bucket le values of " + family +
                               " are not strictly increasing" + at);
      }
      if (value < state.last_bucket_value) {
        return Fail(error, "cumulative bucket counts of " + family +
                               " decreased" + at);
      }
      state.last_le = le;
      state.last_bucket_value = value;
      if (std::isinf(le)) {
        state.saw_inf_bucket = true;
        state.inf_bucket_value = value;
      }
    } else if (state.type == "histogram" && suffix == "_count") {
      state.saw_count = true;
      state.count_value = value;
    }

    if (!exemplar_text.empty()) {
      if (state.type != "histogram" || suffix != "_bucket") {
        return Fail(error, "exemplar on non-bucket sample " + name + at);
      }
      std::string trace_id, why;
      if (!ParseExemplar(exemplar_text, &trace_id, &why)) {
        return Fail(error,
                    "malformed exemplar on " + name + ": " + why + at);
      }
      if (exemplar_trace_ids != nullptr && !trace_id.empty()) {
        exemplar_trace_ids->push_back(trace_id);
      }
    }

    if (samples != nullptr) {
      const auto [sit, inserted] = samples->emplace(name, value);
      if (!inserted && value > sit->second) sit->second = value;
    }
  }
  if (!open_family.empty() && !close_family(open_family)) return false;

  for (const auto& [family, state] : families) {
    if (!state.samples_seen && state.type != "untyped") {
      return Fail(error, "family " + family + " declared but has no samples");
    }
  }
  return true;
}

}  // namespace obs
}  // namespace qdcbir
