#include "qdcbir/obs/access_stats.h"

#include <algorithm>
#include <cstdio>

#include "qdcbir/obs/prom_export.h"

namespace qdcbir {
namespace obs {

std::vector<LeafAccess> AccessAccumulator::Snapshot() const {
  std::vector<LeafAccess> rows;
  {
    std::lock_guard<std::mutex> lock(mu_);
    rows.reserve(leaves_.size());
    for (const auto& [leaf, counts] : leaves_) {
      rows.push_back(LeafAccess{leaf, counts});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const LeafAccess& x, const LeafAccess& y) {
              return x.leaf < y.leaf;
            });
  return rows;
}

namespace internal {

void FlushAccessTlsSlots(AccessTls& state) {
  for (std::uint32_t i = 0; i < state.used; ++i) {
    state.accumulator->Merge(state.leaf[i], state.counts[i]);
  }
  state.used = 0;
}

}  // namespace internal

AccessStatsTable& AccessStatsTable::Global() {
  static AccessStatsTable* table = new AccessStatsTable;
  return *table;
}

void AccessStatsTable::MergeLeaf(AccessLeafId leaf,
                                 const LeafAccessCounts& counts) {
  if (counts.IsZero()) return;
  Shard& shard = shards_[leaf % kShards];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.leaves[leaf].Add(counts);
}

void AccessStatsTable::MergeSession(const std::vector<LeafAccess>& rows) {
  for (const LeafAccess& row : rows) MergeLeaf(row.leaf, row.counts);
  if (!rows.empty()) {
    sessions_merged_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::vector<LeafAccess> AccessStatsTable::Snapshot() const {
  std::vector<LeafAccess> rows;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [leaf, counts] : shard.leaves) {
      rows.push_back(LeafAccess{leaf, counts});
    }
  }
  std::sort(rows.begin(), rows.end(),
            [](const LeafAccess& x, const LeafAccess& y) {
              return x.leaf < y.leaf;
            });
  return rows;
}

LeafAccessCounts AccessStatsTable::Totals() const {
  LeafAccessCounts totals;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [leaf, counts] : shard.leaves) {
      (void)leaf;
      totals.Add(counts);
    }
  }
  return totals;
}

void AccessStatsTable::Reset() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.leaves.clear();
  }
  sessions_merged_.store(0, std::memory_order_relaxed);
}

namespace {

std::uint64_t PairKey(AccessLeafId a, AccessLeafId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

CoAccessTracker::CoAccessTracker(std::size_t max_pairs,
                                 std::size_t max_set_leaves)
    : max_pairs_(max_pairs == 0 ? 1 : max_pairs),
      max_set_leaves_(max_set_leaves < 2 ? 2 : max_set_leaves) {}

CoAccessTracker& CoAccessTracker::Global() {
  static CoAccessTracker* tracker = new CoAccessTracker;
  return *tracker;
}

void CoAccessTracker::RecordTouchedSet(std::vector<AccessLeafId> leaves) {
  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  std::lock_guard<std::mutex> lock(mu_);
  ++sets_recorded_;
  if (leaves.size() > max_set_leaves_) {
    leaves_truncated_ += leaves.size() - max_set_leaves_;
    leaves.resize(max_set_leaves_);
  }
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    for (std::size_t j = i + 1; j < leaves.size(); ++j) {
      const std::uint64_t key = PairKey(leaves[i], leaves[j]);
      auto it = pairs_.find(key);
      if (it != pairs_.end()) {
        ++it->second;
        continue;
      }
      if (pairs_.size() < max_pairs_) {
        pairs_.emplace(key, 1);
        continue;
      }
      // Space-Saving eviction: the newcomer replaces the lightest pair and
      // inherits its count + 1, bounding the undercount of heavy pairs.
      auto min_it = pairs_.begin();
      for (auto scan = pairs_.begin(); scan != pairs_.end(); ++scan) {
        if (scan->second < min_it->second) min_it = scan;
      }
      const std::uint64_t inherited = min_it->second + 1;
      pairs_.erase(min_it);
      pairs_.emplace(key, inherited);
      ++evictions_;
    }
  }
}

std::vector<CoAccessTracker::PairCount> CoAccessTracker::TopPairs(
    std::size_t n) const {
  std::vector<PairCount> result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    result.reserve(pairs_.size());
    for (const auto& [key, count] : pairs_) {
      result.push_back(PairCount{static_cast<AccessLeafId>(key >> 32),
                                 static_cast<AccessLeafId>(key & 0xffffffffu),
                                 count});
    }
  }
  std::sort(result.begin(), result.end(),
            [](const PairCount& x, const PairCount& y) {
              if (x.count != y.count) return x.count > y.count;
              if (x.a != y.a) return x.a < y.a;
              return x.b < y.b;
            });
  if (result.size() > n) result.resize(n);
  return result;
}

std::uint64_t CoAccessTracker::sets_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sets_recorded_;
}

std::uint64_t CoAccessTracker::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

std::uint64_t CoAccessTracker::leaves_truncated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return leaves_truncated_;
}

void CoAccessTracker::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  pairs_.clear();
  sets_recorded_ = 0;
  evictions_ = 0;
  leaves_truncated_ = 0;
}

std::string RenderIndexLeafPrometheusText(const std::vector<LeafAccess>& rows,
                                          std::size_t top_n) {
  std::vector<LeafAccess> hot = rows;
  std::sort(hot.begin(), hot.end(),
            [](const LeafAccess& x, const LeafAccess& y) {
              if (x.counts.scans != y.counts.scans) {
                return x.counts.scans > y.counts.scans;
              }
              return x.leaf < y.leaf;
            });
  if (hot.size() > top_n) hot.resize(top_n);
  // A declared family with zero samples fails Prometheus exposition
  // validation; before the first session there is nothing to export.
  if (hot.empty()) return std::string();

  struct Family {
    const char* name;
    const char* help;
    std::uint64_t LeafAccessCounts::*field;
  };
  static constexpr Family kFamilies[] = {
      {"index.leaf.scans", "Localized scans per RFS leaf (hottest leaves).",
       &LeafAccessCounts::scans},
      {"index.leaf.distance_evals",
       "Distance evaluations per RFS leaf (hottest leaves).",
       &LeafAccessCounts::distance_evals},
      {"index.leaf.feature_bytes",
       "Feature bytes scanned per RFS leaf (hottest leaves).",
       &LeafAccessCounts::feature_bytes},
  };

  std::string out;
  char buffer[160];
  for (const Family& family : kFamilies) {
    const std::string prom = PrometheusName(family.name);
    out += "# HELP " + prom + " " + EscapeHelpText(family.help) + "\n";
    out += "# TYPE " + prom + " counter\n";
    for (const LeafAccess& row : hot) {
      const std::string label =
          row.leaf == kTableScanLeaf
              ? std::string("table")
              : std::to_string(static_cast<unsigned long>(row.leaf));
      std::snprintf(buffer, sizeof(buffer), " %llu\n",
                    static_cast<unsigned long long>(row.counts.*family.field));
      out += prom + "{leaf=\"" + EscapeLabelValue(label) + "\"}" + buffer;
    }
  }
  return out;
}

}  // namespace obs
}  // namespace qdcbir
