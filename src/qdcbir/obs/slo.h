#ifndef QDCBIR_OBS_SLO_H_
#define QDCBIR_OBS_SLO_H_

/// \file
/// In-process SLO engine: declarative objectives evaluated over sliding
/// multi-window burn rates (fast/slow window à la the SRE workbook).
///
/// An SLO reduces every source — latency histograms, availability counters,
/// hit-rate counter pairs, quality-proxy histogram floors — to a cumulative
/// (good, total) event pair read from the metrics registry. Each `Evaluate`
/// call appends a timestamped sample of that pair to a per-SLO ring; burn
/// rate over a window is the bad fraction of the window's event delta
/// divided by the error budget (1 - objective). The state machine follows
/// the multi-window alerting pattern: *breach* when both the fast and slow
/// windows burn above their thresholds (the fast window confirms the
/// problem is still happening), *warn* when only one does, *ok* otherwise.
///
/// Evaluation is pull-driven — the serve layer calls `Evaluate` from the
/// `/metrics`, `/sloz`, and `/statusz` handlers and after each session
/// finalize — and publishes `slo.<name>.{state,fast_burn_permille,
/// slow_burn_permille}` gauges (rendered as `qdcbir_slo_*` on `/metrics`).
/// State transitions emit rate-limited `/logz` entries. The clock is
/// injectable so tests can drive window arithmetic deterministically.

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "qdcbir/obs/metrics.h"

namespace qdcbir {
namespace obs {

/// How an SLO's (good, total) event pair is derived from the registry.
enum class SloKind {
  /// `metric` is a histogram; an event is good when its value is at or
  /// below `threshold` (e.g. session latency under the target). The
  /// objective says what fraction must be good — a latency-percentile
  /// target expressed in burn-rate form.
  kLatencyQuantile,
  /// `metric` counts all events, `bad_metric` the failed ones;
  /// good = total - bad (e.g. HTTP requests vs malformed requests).
  kAvailability,
  /// `metric` counts good events, `bad_metric` the complementary misses;
  /// total = good + bad (e.g. cache hits vs misses).
  kRatioFloor,
  /// `metric` is a histogram of a quality proxy; an event is good when
  /// its value is strictly above `threshold` (e.g. top-k Jaccard floor).
  kHistogramFloor,
};

const char* SloKindName(SloKind kind);

enum class SloState : std::int64_t { kOk = 0, kWarn = 1, kBreach = 2 };

const char* SloStateName(SloState state);

struct SloDefinition {
  std::string name;  ///< metric-safe slug, e.g. "session_latency_p95"
  SloKind kind = SloKind::kLatencyQuantile;
  std::string metric;      ///< histogram or total/good counter (see kind)
  std::string bad_metric;  ///< bad/miss counter for the counter kinds
  /// Good-value cut for the histogram kinds (≤ for latency, > for floors).
  double threshold = 0.0;
  double objective = 0.99;  ///< required good fraction (error budget = 1-o)
  std::uint64_t fast_window_ns = 300ull * 1000 * 1000 * 1000;    ///< 5 min
  std::uint64_t slow_window_ns = 3600ull * 1000 * 1000 * 1000;   ///< 1 h
  double fast_burn_threshold = 14.4;  ///< SRE workbook page threshold
  double slow_burn_threshold = 6.0;
};

/// Evaluated status of one SLO, for `/sloz` and `/statusz`.
struct SloStatus {
  std::string name;
  SloKind kind = SloKind::kLatencyQuantile;
  SloState state = SloState::kOk;
  double objective = 0.0;
  double threshold = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  std::uint64_t good = 0;   ///< cumulative good events at last evaluation
  std::uint64_t total = 0;  ///< cumulative total events at last evaluation
};

class SloEngine {
 public:
  using Clock = std::function<std::uint64_t()>;

  /// `registry` defaults to the process-global one; tests pass their own
  /// registry and clock to drive breaches deterministically.
  explicit SloEngine(std::vector<SloDefinition> definitions,
                     MetricsRegistry* registry = nullptr,
                     Clock clock = nullptr);

  /// Samples the registry, advances the burn-rate windows, updates states,
  /// publishes the `slo.*` gauges, and logs transitions. Thread-safe.
  void Evaluate();

  /// Current status per SLO (does not re-evaluate).
  std::vector<SloStatus> Snapshot() const;

  /// `/sloz` document: `{"slos":[{...}]}`.
  std::string RenderJson() const;

  /// Worst state across all SLOs, for the `/statusz` row.
  SloState WorstState() const;

  std::size_t definition_count() const { return slos_.size(); }

 private:
  struct WindowSample {
    std::uint64_t at_ns = 0;
    std::uint64_t good = 0;
    std::uint64_t total = 0;
  };
  struct TrackedSlo {
    SloDefinition def;
    std::vector<WindowSample> samples;  ///< ascending by at_ns
    SloState state = SloState::kOk;
    double fast_burn = 0.0;
    double slow_burn = 0.0;
    std::uint64_t good = 0;
    std::uint64_t total = 0;
    Gauge* state_gauge = nullptr;
    Gauge* fast_gauge = nullptr;
    Gauge* slow_gauge = nullptr;
  };

  WindowSample Sample(const MetricsRegistry::RegistrySnapshot& snap,
                      const SloDefinition& def, std::uint64_t now_ns) const;
  static double BurnOver(const TrackedSlo& slo, std::uint64_t now_ns,
                         std::uint64_t window_ns);

  MetricsRegistry* registry_;
  Clock clock_;
  mutable std::mutex mu_;
  std::vector<TrackedSlo> slos_;
};

}  // namespace obs
}  // namespace qdcbir

#endif  // QDCBIR_OBS_SLO_H_
