#ifndef QDCBIR_IMAGE_IMAGE_H_
#define QDCBIR_IMAGE_IMAGE_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace qdcbir {

/// 8-bit RGB pixel.
struct Rgb {
  std::uint8_t r = 0;
  std::uint8_t g = 0;
  std::uint8_t b = 0;

  friend bool operator==(const Rgb& a, const Rgb& b) {
    return a.r == b.r && a.g == b.g && a.b == b.b;
  }
};

/// In-memory RGB raster image, row-major, origin at the top-left corner.
///
/// This is the substrate the synthetic dataset generator draws into and the
/// feature extractors read from. It deliberately stays minimal: pixel access,
/// fills, and whole-image transforms live here; shapes live in draw.h.
class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with `fill`.
  Image(int width, int height, Rgb fill = Rgb{0, 0, 0});

  int width() const { return width_; }
  int height() const { return height_; }
  std::size_t pixel_count() const {
    return static_cast<std::size_t>(width_) * static_cast<std::size_t>(height_);
  }
  bool empty() const { return width_ == 0 || height_ == 0; }

  /// Pixel accessors; coordinates must be in range.
  const Rgb& At(int x, int y) const {
    assert(InBounds(x, y));
    return pixels_[Index(x, y)];
  }
  Rgb& At(int x, int y) {
    assert(InBounds(x, y));
    return pixels_[Index(x, y)];
  }
  void Set(int x, int y, Rgb c) { At(x, y) = c; }

  /// Sets the pixel if (x, y) is inside the image; no-op otherwise.
  /// Drawing code uses this to clip primitives at the borders.
  void SetClipped(int x, int y, Rgb c) {
    if (InBounds(x, y)) pixels_[Index(x, y)] = c;
  }

  bool InBounds(int x, int y) const {
    return x >= 0 && x < width_ && y >= 0 && y < height_;
  }

  /// Fills the whole image with `c`.
  void Fill(Rgb c);

  const std::vector<Rgb>& pixels() const { return pixels_; }
  std::vector<Rgb>& pixels() { return pixels_; }

  friend bool operator==(const Image& a, const Image& b) {
    return a.width_ == b.width_ && a.height_ == b.height_ &&
           a.pixels_ == b.pixels_;
  }

 private:
  std::size_t Index(int x, int y) const {
    return static_cast<std::size_t>(y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(x);
  }

  int width_ = 0;
  int height_ = 0;
  std::vector<Rgb> pixels_;
};

}  // namespace qdcbir

#endif  // QDCBIR_IMAGE_IMAGE_H_
