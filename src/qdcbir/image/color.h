#ifndef QDCBIR_IMAGE_COLOR_H_
#define QDCBIR_IMAGE_COLOR_H_

#include "qdcbir/image/image.h"

namespace qdcbir {

/// HSV triple with h in [0, 360), s and v in [0, 1].
struct Hsv {
  double h = 0.0;
  double s = 0.0;
  double v = 0.0;
};

/// Converts an RGB pixel to HSV.
Hsv RgbToHsv(Rgb c);

/// Converts HSV back to RGB (h outside [0, 360) is wrapped; s, v clamped).
Rgb HsvToRgb(Hsv c);

/// Luma (Rec. 601 luminance) of a pixel, in [0, 255].
double Luma(Rgb c);

/// Returns the grayscale version of `image` (each channel set to luma).
Image ToGrayscale(const Image& image);

/// Returns the color-negative of `image` (255 - channel).
Image ToNegative(const Image& image);

/// Returns the black-and-white negative: negative of the grayscale image.
/// Together with identity, grayscale, and negative this forms the four
/// "viewpoint channels" the paper's Multiple Viewpoints baseline combines.
Image ToGrayNegative(const Image& image);

/// Linear interpolation between colors (t in [0, 1], clamped).
Rgb LerpColor(Rgb a, Rgb b, double t);

/// Scales the brightness of a color by `factor` (clamped to [0, 255]).
Rgb ScaleColor(Rgb c, double factor);

}  // namespace qdcbir

#endif  // QDCBIR_IMAGE_COLOR_H_
