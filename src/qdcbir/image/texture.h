#ifndef QDCBIR_IMAGE_TEXTURE_H_
#define QDCBIR_IMAGE_TEXTURE_H_

#include "qdcbir/core/rng.h"
#include "qdcbir/image/image.h"

namespace qdcbir {

/// Procedural textures. The wavelet-texture features respond to these, so the
/// dataset generator uses them to separate sub-concepts that share colors.

/// Overlays a checkerboard of `cell` pixels, blending `color` at `alpha`.
void Checkerboard(Image& img, int cell, Rgb color, double alpha);

/// Overlays stripes of width `period/2` at `angle_rad`, blending at `alpha`.
void Stripes(Image& img, double period, double angle_rad, Rgb color,
             double alpha);

/// Smooth value-noise field (bilinear interpolation of a random lattice),
/// blended multiplicatively onto brightness. `scale` is the lattice cell size
/// in pixels; `amplitude` in [0, 1] controls the brightness swing.
void ValueNoise(Image& img, double scale, double amplitude, Rng& rng);

/// Scatters `count` small dots of radius up to `max_radius`.
void SpeckleDots(Image& img, int count, double max_radius, Rgb color,
                 Rng& rng);

}  // namespace qdcbir

#endif  // QDCBIR_IMAGE_TEXTURE_H_
