#include "qdcbir/image/ppm_io.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace qdcbir {

namespace {

/// Skips whitespace and '#' comments in a PPM header.
void SkipPpmSpace(const std::string& s, std::size_t& pos) {
  while (pos < s.size()) {
    if (std::isspace(static_cast<unsigned char>(s[pos]))) {
      ++pos;
    } else if (s[pos] == '#') {
      while (pos < s.size() && s[pos] != '\n') ++pos;
    } else {
      break;
    }
  }
}

StatusOr<long> ParsePpmInt(const std::string& s, std::size_t& pos) {
  SkipPpmSpace(s, pos);
  if (pos >= s.size() || !std::isdigit(static_cast<unsigned char>(s[pos]))) {
    return Status::IoError("malformed PPM header: expected integer");
  }
  long value = 0;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    value = value * 10 + (s[pos] - '0');
    if (value > 1'000'000'000L) {
      return Status::IoError("malformed PPM header: integer too large");
    }
    ++pos;
  }
  return value;
}

}  // namespace

std::string EncodePpm(const Image& image) {
  std::ostringstream header;
  header << "P6\n" << image.width() << " " << image.height() << "\n255\n";
  std::string out = header.str();
  out.reserve(out.size() + image.pixel_count() * 3);
  for (const Rgb& p : image.pixels()) {
    out.push_back(static_cast<char>(p.r));
    out.push_back(static_cast<char>(p.g));
    out.push_back(static_cast<char>(p.b));
  }
  return out;
}

StatusOr<Image> DecodePpm(const std::string& bytes) {
  if (bytes.size() < 2 || bytes[0] != 'P' || bytes[1] != '6') {
    return Status::IoError("not a binary PPM (missing P6 magic)");
  }
  std::size_t pos = 2;
  StatusOr<long> w = ParsePpmInt(bytes, pos);
  if (!w.ok()) return w.status();
  StatusOr<long> h = ParsePpmInt(bytes, pos);
  if (!h.ok()) return h.status();
  StatusOr<long> maxval = ParsePpmInt(bytes, pos);
  if (!maxval.ok()) return maxval.status();
  if (*maxval != 255) {
    return Status::Unimplemented("only maxval 255 PPM files are supported");
  }
  if (*w < 0 || *h < 0) return Status::IoError("negative PPM dimensions");
  // Exactly one whitespace byte separates the header from pixel data.
  if (pos >= bytes.size() ||
      !std::isspace(static_cast<unsigned char>(bytes[pos]))) {
    return Status::IoError("malformed PPM header: missing separator");
  }
  ++pos;

  const std::size_t npixels =
      static_cast<std::size_t>(*w) * static_cast<std::size_t>(*h);
  if (bytes.size() - pos < npixels * 3) {
    return Status::IoError("truncated PPM pixel data");
  }
  Image image(static_cast<int>(*w), static_cast<int>(*h));
  for (std::size_t i = 0; i < npixels; ++i) {
    image.pixels()[i] = Rgb{static_cast<std::uint8_t>(bytes[pos + 3 * i]),
                            static_cast<std::uint8_t>(bytes[pos + 3 * i + 1]),
                            static_cast<std::uint8_t>(bytes[pos + 3 * i + 2])};
  }
  return image;
}

Status WritePpm(const Image& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  const std::string bytes = EncodePpm(image);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

StatusOr<Image> ReadPpm(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return DecodePpm(ss.str());
}

}  // namespace qdcbir
