#include "qdcbir/image/texture.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "qdcbir/image/color.h"
#include "qdcbir/image/draw.h"

namespace qdcbir {

void Checkerboard(Image& img, int cell, Rgb color, double alpha) {
  if (cell <= 0) return;
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      if (((x / cell) + (y / cell)) % 2 == 0) {
        img.Set(x, y, LerpColor(img.At(x, y), color, alpha));
      }
    }
  }
}

void Stripes(Image& img, double period, double angle_rad, Rgb color,
             double alpha) {
  if (period <= 0.0) return;
  const double nx = std::cos(angle_rad);
  const double ny = std::sin(angle_rad);
  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double phase = std::fmod(x * nx + y * ny, period);
      const double p = phase < 0.0 ? phase + period : phase;
      if (p < period / 2.0) {
        img.Set(x, y, LerpColor(img.At(x, y), color, alpha));
      }
    }
  }
}

void ValueNoise(Image& img, double scale, double amplitude, Rng& rng) {
  if (scale <= 0.0 || amplitude <= 0.0 || img.empty()) return;
  const int gw = static_cast<int>(std::ceil(img.width() / scale)) + 2;
  const int gh = static_cast<int>(std::ceil(img.height() / scale)) + 2;
  std::vector<double> lattice(static_cast<std::size_t>(gw) * gh);
  for (double& v : lattice) v = rng.UniformDouble(-1.0, 1.0);
  auto lat = [&](int gx, int gy) {
    return lattice[static_cast<std::size_t>(gy) * gw + gx];
  };
  auto smooth = [](double t) { return t * t * (3.0 - 2.0 * t); };

  for (int y = 0; y < img.height(); ++y) {
    for (int x = 0; x < img.width(); ++x) {
      const double fx = x / scale;
      const double fy = y / scale;
      const int gx = static_cast<int>(fx);
      const int gy = static_cast<int>(fy);
      const double tx = smooth(fx - gx);
      const double ty = smooth(fy - gy);
      const double a = lat(gx, gy) + tx * (lat(gx + 1, gy) - lat(gx, gy));
      const double b =
          lat(gx, gy + 1) + tx * (lat(gx + 1, gy + 1) - lat(gx, gy + 1));
      const double n = a + ty * (b - a);  // in [-1, 1]
      const double factor = 1.0 + amplitude * n;
      img.Set(x, y, ScaleColor(img.At(x, y), factor));
    }
  }
}

void SpeckleDots(Image& img, int count, double max_radius, Rgb color,
                 Rng& rng) {
  for (int i = 0; i < count; ++i) {
    const double cx = rng.UniformDouble(0.0, img.width());
    const double cy = rng.UniformDouble(0.0, img.height());
    const double r = rng.UniformDouble(0.5, std::max(0.5, max_radius));
    FillCircle(img, cx, cy, r, color);
  }
}

}  // namespace qdcbir
