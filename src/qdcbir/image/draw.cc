#include "qdcbir/image/draw.h"

#include <algorithm>
#include <cmath>

#include "qdcbir/image/color.h"

namespace qdcbir {

void FillRect(Image& img, int x0, int y0, int x1, int y1, Rgb color) {
  x0 = std::max(x0, 0);
  y0 = std::max(y0, 0);
  x1 = std::min(x1, img.width());
  y1 = std::min(y1, img.height());
  for (int y = y0; y < y1; ++y) {
    for (int x = x0; x < x1; ++x) img.Set(x, y, color);
  }
}

void FillCircle(Image& img, double cx, double cy, double r, Rgb color) {
  FillEllipse(img, cx, cy, r, r, color);
}

void FillEllipse(Image& img, double cx, double cy, double rx, double ry,
                 Rgb color) {
  if (rx <= 0.0 || ry <= 0.0) return;
  const int y0 = std::max(0, static_cast<int>(std::floor(cy - ry)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::ceil(cy + ry)));
  for (int y = y0; y <= y1; ++y) {
    const double dy = (y - cy) / ry;
    const double t = 1.0 - dy * dy;
    if (t < 0.0) continue;
    const double half = rx * std::sqrt(t);
    const int x0 = std::max(0, static_cast<int>(std::ceil(cx - half)));
    const int x1 = std::min(img.width() - 1, static_cast<int>(std::floor(cx + half)));
    for (int x = x0; x <= x1; ++x) img.Set(x, y, color);
  }
}

void FillPolygon(Image& img, const std::vector<Point2>& vertices, Rgb color) {
  if (vertices.size() < 3) return;
  double min_y = vertices[0].y, max_y = vertices[0].y;
  for (const Point2& p : vertices) {
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
  }
  const int y0 = std::max(0, static_cast<int>(std::ceil(min_y)));
  const int y1 = std::min(img.height() - 1, static_cast<int>(std::floor(max_y)));

  std::vector<double> xs;
  for (int y = y0; y <= y1; ++y) {
    xs.clear();
    const double yc = y + 0.5;  // sample scanline at pixel center
    const std::size_t n = vertices.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Point2& a = vertices[i];
      const Point2& b = vertices[(i + 1) % n];
      // Half-open rule avoids double-counting shared vertices.
      if ((a.y <= yc && b.y > yc) || (b.y <= yc && a.y > yc)) {
        const double t = (yc - a.y) / (b.y - a.y);
        xs.push_back(a.x + t * (b.x - a.x));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int xa = std::max(0, static_cast<int>(std::ceil(xs[i] - 0.5)));
      const int xb =
          std::min(img.width() - 1, static_cast<int>(std::floor(xs[i + 1] - 0.5)));
      for (int x = xa; x <= xb; ++x) img.Set(x, y, color);
    }
  }
}

void FillTriangle(Image& img, Point2 a, Point2 b, Point2 c, Rgb color) {
  FillPolygon(img, {a, b, c}, color);
}

void DrawLine(Image& img, Point2 a, Point2 b, Rgb color, int thickness) {
  const double dx = b.x - a.x;
  const double dy = b.y - a.y;
  const double len = std::sqrt(dx * dx + dy * dy);
  const int steps = std::max(1, static_cast<int>(std::ceil(len * 2.0)));
  const double radius = std::max(0.5, thickness / 2.0);
  for (int i = 0; i <= steps; ++i) {
    const double t = static_cast<double>(i) / steps;
    const double px = a.x + t * dx;
    const double py = a.y + t * dy;
    if (thickness <= 1) {
      img.SetClipped(static_cast<int>(std::lround(px)),
                     static_cast<int>(std::lround(py)), color);
    } else {
      FillCircle(img, px, py, radius, color);
    }
  }
}

void VerticalGradient(Image& img, Rgb top, Rgb bottom) {
  const int h = img.height();
  for (int y = 0; y < h; ++y) {
    const double t = h > 1 ? static_cast<double>(y) / (h - 1) : 0.0;
    const Rgb c = LerpColor(top, bottom, t);
    for (int x = 0; x < img.width(); ++x) img.Set(x, y, c);
  }
}

void HorizontalGradient(Image& img, Rgb left, Rgb right) {
  const int w = img.width();
  for (int x = 0; x < w; ++x) {
    const double t = w > 1 ? static_cast<double>(x) / (w - 1) : 0.0;
    const Rgb c = LerpColor(left, right, t);
    for (int y = 0; y < img.height(); ++y) img.Set(x, y, c);
  }
}

void AddGaussianNoise(Image& img, double stddev, Rng& rng) {
  if (stddev <= 0.0) return;
  auto perturb = [&](std::uint8_t v) {
    const double nv = v + rng.Gaussian(0.0, stddev);
    if (nv <= 0.0) return static_cast<std::uint8_t>(0);
    if (nv >= 255.0) return static_cast<std::uint8_t>(255);
    return static_cast<std::uint8_t>(std::lround(nv));
  };
  for (Rgb& p : img.pixels()) {
    p.r = perturb(p.r);
    p.g = perturb(p.g);
    p.b = perturb(p.b);
  }
}

std::vector<Point2> RotatePoints(const std::vector<Point2>& points,
                                 Point2 center, double angle_rad) {
  const double c = std::cos(angle_rad);
  const double s = std::sin(angle_rad);
  std::vector<Point2> out;
  out.reserve(points.size());
  for (const Point2& p : points) {
    const double dx = p.x - center.x;
    const double dy = p.y - center.y;
    out.push_back(Point2{center.x + c * dx - s * dy, center.y + s * dx + c * dy});
  }
  return out;
}

std::vector<Point2> RegularPolygon(Point2 center, double r, int n,
                                   double phase_rad) {
  std::vector<Point2> out;
  out.reserve(static_cast<std::size_t>(std::max(0, n)));
  for (int i = 0; i < n; ++i) {
    const double a = phase_rad + 2.0 * M_PI * i / n;
    out.push_back(Point2{center.x + r * std::cos(a), center.y + r * std::sin(a)});
  }
  return out;
}

}  // namespace qdcbir
