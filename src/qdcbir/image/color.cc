#include "qdcbir/image/color.h"

#include <algorithm>
#include <cmath>

namespace qdcbir {

namespace {

std::uint8_t ClampByte(double v) {
  if (v <= 0.0) return 0;
  if (v >= 255.0) return 255;
  return static_cast<std::uint8_t>(std::lround(v));
}

}  // namespace

Hsv RgbToHsv(Rgb c) {
  const double r = c.r / 255.0;
  const double g = c.g / 255.0;
  const double b = c.b / 255.0;
  const double mx = std::max({r, g, b});
  const double mn = std::min({r, g, b});
  const double delta = mx - mn;

  Hsv out;
  out.v = mx;
  out.s = mx > 0.0 ? delta / mx : 0.0;
  if (delta <= 0.0) {
    out.h = 0.0;
  } else if (mx == r) {
    out.h = 60.0 * std::fmod((g - b) / delta, 6.0);
  } else if (mx == g) {
    out.h = 60.0 * ((b - r) / delta + 2.0);
  } else {
    out.h = 60.0 * ((r - g) / delta + 4.0);
  }
  if (out.h < 0.0) out.h += 360.0;
  return out;
}

Rgb HsvToRgb(Hsv c) {
  double h = std::fmod(c.h, 360.0);
  if (h < 0.0) h += 360.0;
  const double s = std::clamp(c.s, 0.0, 1.0);
  const double v = std::clamp(c.v, 0.0, 1.0);

  const double cc = v * s;
  const double x = cc * (1.0 - std::fabs(std::fmod(h / 60.0, 2.0) - 1.0));
  const double m = v - cc;

  double r = 0.0, g = 0.0, b = 0.0;
  if (h < 60.0) {
    r = cc, g = x;
  } else if (h < 120.0) {
    r = x, g = cc;
  } else if (h < 180.0) {
    g = cc, b = x;
  } else if (h < 240.0) {
    g = x, b = cc;
  } else if (h < 300.0) {
    r = x, b = cc;
  } else {
    r = cc, b = x;
  }
  return Rgb{ClampByte((r + m) * 255.0), ClampByte((g + m) * 255.0),
             ClampByte((b + m) * 255.0)};
}

double Luma(Rgb c) { return 0.299 * c.r + 0.587 * c.g + 0.114 * c.b; }

Image ToGrayscale(const Image& image) {
  Image out(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const std::uint8_t g = ClampByte(Luma(image.At(x, y)));
      out.Set(x, y, Rgb{g, g, g});
    }
  }
  return out;
}

Image ToNegative(const Image& image) {
  Image out(image.width(), image.height());
  for (int y = 0; y < image.height(); ++y) {
    for (int x = 0; x < image.width(); ++x) {
      const Rgb c = image.At(x, y);
      out.Set(x, y, Rgb{static_cast<std::uint8_t>(255 - c.r),
                        static_cast<std::uint8_t>(255 - c.g),
                        static_cast<std::uint8_t>(255 - c.b)});
    }
  }
  return out;
}

Image ToGrayNegative(const Image& image) { return ToNegative(ToGrayscale(image)); }

Rgb LerpColor(Rgb a, Rgb b, double t) {
  t = std::clamp(t, 0.0, 1.0);
  return Rgb{ClampByte(a.r + (b.r - a.r) * t), ClampByte(a.g + (b.g - a.g) * t),
             ClampByte(a.b + (b.b - a.b) * t)};
}

Rgb ScaleColor(Rgb c, double factor) {
  return Rgb{ClampByte(c.r * factor), ClampByte(c.g * factor),
             ClampByte(c.b * factor)};
}

}  // namespace qdcbir
