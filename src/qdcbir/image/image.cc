#include "qdcbir/image/image.h"

namespace qdcbir {

Image::Image(int width, int height, Rgb fill)
    : width_(width), height_(height) {
  assert(width >= 0 && height >= 0);
  pixels_.assign(pixel_count(), fill);
}

void Image::Fill(Rgb c) {
  for (Rgb& p : pixels_) p = c;
}

}  // namespace qdcbir
