#ifndef QDCBIR_IMAGE_DRAW_H_
#define QDCBIR_IMAGE_DRAW_H_

#include <vector>

#include "qdcbir/core/rng.h"
#include "qdcbir/image/image.h"

namespace qdcbir {

/// 2-D point in pixel coordinates (sub-pixel positions allowed).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// Drawing primitives used by the synthetic dataset generator. All functions
/// clip at the image borders; out-of-bounds coordinates are legal.

/// Fills the axis-aligned rectangle [x0, x1) x [y0, y1).
void FillRect(Image& img, int x0, int y0, int x1, int y1, Rgb color);

/// Fills a disk of radius `r` centered at (cx, cy).
void FillCircle(Image& img, double cx, double cy, double r, Rgb color);

/// Fills an axis-aligned ellipse with radii (rx, ry) centered at (cx, cy).
void FillEllipse(Image& img, double cx, double cy, double rx, double ry,
                 Rgb color);

/// Fills an arbitrary simple polygon (scanline algorithm).
void FillPolygon(Image& img, const std::vector<Point2>& vertices, Rgb color);

/// Fills the triangle (a, b, c).
void FillTriangle(Image& img, Point2 a, Point2 b, Point2 c, Rgb color);

/// Draws a line segment of the given thickness (>= 1 pixel).
void DrawLine(Image& img, Point2 a, Point2 b, Rgb color, int thickness = 1);

/// Fills the image with a vertical gradient from `top` to `bottom`.
void VerticalGradient(Image& img, Rgb top, Rgb bottom);

/// Fills the image with a horizontal gradient from `left` to `right`.
void HorizontalGradient(Image& img, Rgb left, Rgb right);

/// Adds independent Gaussian noise (stddev in 8-bit units) to every channel.
void AddGaussianNoise(Image& img, double stddev, Rng& rng);

/// Rotates `points` by `angle_rad` around `center` (returns new points).
std::vector<Point2> RotatePoints(const std::vector<Point2>& points,
                                 Point2 center, double angle_rad);

/// Returns the vertices of a regular `n`-gon of circumradius `r` centered at
/// `center`, with the first vertex at angle `phase_rad`.
std::vector<Point2> RegularPolygon(Point2 center, double r, int n,
                                   double phase_rad = 0.0);

}  // namespace qdcbir

#endif  // QDCBIR_IMAGE_DRAW_H_
