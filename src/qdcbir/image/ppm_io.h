#ifndef QDCBIR_IMAGE_PPM_IO_H_
#define QDCBIR_IMAGE_PPM_IO_H_

#include <string>

#include "qdcbir/core/status.h"
#include "qdcbir/image/image.h"

namespace qdcbir {

/// Writes `image` as a binary PPM (P6) file at `path`.
Status WritePpm(const Image& image, const std::string& path);

/// Reads a binary PPM (P6) file. Supports comments and maxval 255.
StatusOr<Image> ReadPpm(const std::string& path);

/// Serializes `image` to an in-memory P6 byte string.
std::string EncodePpm(const Image& image);

/// Parses a P6 byte string produced by `EncodePpm` (or any conforming P6).
StatusOr<Image> DecodePpm(const std::string& bytes);

}  // namespace qdcbir

#endif  // QDCBIR_IMAGE_PPM_IO_H_
