// Validates observability artifacts produced by an instrumented run:
//
//   trace_check --trace=<chrome_trace.json>
//               [--require-span=<name>[:min_count]]...
//               [--metrics=<metrics.json>] [--prom=<metrics.prom>]
//               [--require-metric=<name>[:min]]...
//
// The trace file must be valid Chrome trace_event JSON with balanced,
// properly nested B/E pairs per thread (the same contract enforced by the
// obs unit tests). Each --require-span name must appear at least once as a
// begin event — or at least min_count times when the spec carries a colon
// suffix. The metrics file, when given, must be a non-empty JSON
// object with the registry's three top-level sections. The prom file must
// be well-formed Prometheus text exposition: every sample preceded by its
// # TYPE line, no duplicate or interleaved families, histogram buckets
// cumulative and monotonic and closed by a +Inf bucket equal to _count;
// OpenMetrics exemplars are allowed on histogram bucket samples only and
// any trace_id exemplar label must be 32 lowercase hex characters.
// Each --require-metric names a sample that must exist, optionally with a
// minimum value after a colon. With --prom it matches exposition sample
// names (qdcbir_dist_block_batch); with only --metrics it matches the
// registry's dotted counter names in the JSON snapshot (dist.block.batch).
//
// Latency-percentile gates run against the same --prom scrape:
//
//   --require-quantile=<hist>:<p>:<max>
//
// reads the histogram family's cumulative `_bucket{le="..."}` samples and
// fails when the p-th percentile (p as 95 or 0.95) exceeds max. The value
// reported is the matched bucket's upper bound, so the gate inherits the
// HDR layout's bounded relative error.
//
// SLO gates read a /sloz scrape:
//
//   --sloz=<sloz.json> [--require-slo=<name>:<state>]...
//
// Each --require-slo fails unless the named SLO reports exactly the given
// state (ok, warn, or breach).
//
// Index-access gates read a /indexz scrape:
//
//   --indexz=<indexz.json> [--require-leaf-scans=N]
//           [--require-coaccess-pairs=N]
//
// The document must carry the tree/leaves/access/coaccess sections.
// --require-leaf-scans gates the access totals' scan count (table-scan
// bucket excluded), --require-coaccess-pairs the number of reported
// co-access pairs.
//
// Flight-recorder gates read a /historyz scrape:
//
//   --historyz=<historyz.json> [--require-history-metric=<name>]
//
// The metric must be known to the recorder with at least one point, every
// point's delta non-negative, and each delta consistent with the sampled
// values (cur - prev, or cur across a counter reset).
//
//   trace_check --profile=<profile.collapsed>
//               [--require-profile-samples=N]
//               [--require-profile-span=<prefix>[:min]]...
//
// The profile file must be flamegraph collapsed-stack text: one
// `frame;frame;...;frame count` line per distinct stack, positive integer
// counts. --require-profile-samples gates the total sample count;
// each --require-profile-span requires at least min (default 1) samples
// whose root frame — the span the profiler attributed the sample to —
// starts with the given prefix ("qd." matches every engine-phase span).
// Exit code 0 means all checks passed; diagnostics go to stderr. CI runs
// this against the bench_micro and serve-smoke artifacts so a
// silently-broken exporter (or a profiler that stopped attributing
// samples) fails the build.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "qdcbir/obs/prom_export.h"
#include "qdcbir/obs/trace.h"

namespace {

std::string Flag(int argc, char** argv, const std::string& name) {
  const std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  }
  return "";
}

std::vector<std::string> FlagList(int argc, char** argv,
                                  const std::string& name) {
  const std::string prefix = "--" + name + "=";
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind(prefix, 0) == 0) out.push_back(arg.substr(prefix.size()));
  }
  return out;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *out = buffer.str();
  return true;
}

/// Extracts the flat `"counters":{"name":value,...}` section of a metrics
/// JSON snapshot. Counter names are dotted identifiers without escapes, so
/// a linear scan is sufficient — this is not a general JSON parser.
bool ParseJsonCounters(const std::string& json,
                       std::map<std::string, double>* out) {
  const std::string key = "\"counters\":{";
  const std::size_t begin = json.find(key);
  if (begin == std::string::npos) return false;
  std::size_t pos = begin + key.size();
  while (pos < json.size() && json[pos] != '}') {
    if (json[pos] == ',') {
      ++pos;
      continue;
    }
    if (json[pos] != '"') return false;
    const std::size_t name_end = json.find('"', pos + 1);
    if (name_end == std::string::npos) return false;
    const std::string name = json.substr(pos + 1, name_end - pos - 1);
    if (name_end + 1 >= json.size() || json[name_end + 1] != ':') {
      return false;
    }
    char* value_end = nullptr;
    const double value = std::strtod(json.c_str() + name_end + 2, &value_end);
    if (value_end == json.c_str() + name_end + 2) return false;
    (*out)[name] = value;
    pos = static_cast<std::size_t>(value_end - json.c_str());
  }
  return pos < json.size();
}

/// Checks one `name[:min]` spec against the parsed samples; prints the
/// matched value or a diagnostic naming `source`.
bool CheckRequiredMetric(const std::string& spec,
                         const std::map<std::string, double>& samples,
                         const char* source) {
  std::string name = spec;
  double min_value = 0.0;
  bool has_min = false;
  const std::size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    min_value = std::strtod(spec.c_str() + colon + 1, nullptr);
    has_min = true;
  }
  auto it = samples.find(name);
  if (it == samples.end()) {
    // Dotted registry names are accepted against exposition samples too:
    // access.leaf.scans matches qdcbir_access_leaf_scans, so CI specs stay
    // the same whether they gate the JSON snapshot or the prom scrape.
    it = samples.find(qdcbir::obs::PrometheusName(name));
  }
  if (it == samples.end()) {
    std::fprintf(stderr, "required metric missing from %s: %s\n", source,
                 name.c_str());
    return false;
  }
  if (has_min && it->second < min_value) {
    std::fprintf(stderr, "metric %s = %g below required minimum %g\n",
                 name.c_str(), it->second, min_value);
    return false;
  }
  std::printf("  metric %-40s %g%s\n", name.c_str(), it->second,
              has_min ? " (>= min)" : "");
  return true;
}

/// Cumulative `(le, count)` buckets of one histogram family in exposition
/// text, in document order (exemplar suffixes after " # " are ignored).
/// The +Inf bucket is included with le = infinity.
std::vector<std::pair<double, double>> ParsePromBuckets(
    const std::string& text, const std::string& family) {
  std::vector<std::pair<double, double>> buckets;
  const std::string prefix = family + "_bucket{le=\"";
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind(prefix, 0) != 0) continue;
    const std::size_t le_begin = prefix.size();
    const std::size_t le_end = line.find('"', le_begin);
    if (le_end == std::string::npos) continue;
    const std::string le_text = line.substr(le_begin, le_end - le_begin);
    double le = 0.0;
    if (le_text == "+Inf") {
      le = std::numeric_limits<double>::infinity();
    } else {
      char* end = nullptr;
      le = std::strtod(le_text.c_str(), &end);
      if (end == le_text.c_str()) continue;
    }
    std::size_t value_begin = line.find(' ', le_end);
    if (value_begin == std::string::npos) continue;
    ++value_begin;
    char* end = nullptr;
    const double count = std::strtod(line.c_str() + value_begin, &end);
    if (end == line.c_str() + value_begin) continue;
    buckets.emplace_back(le, count);
  }
  return buckets;
}

/// Checks one `<hist>:<p>:<max>` quantile spec against exposition text.
bool CheckRequiredQuantile(const std::string& spec, const std::string& text) {
  const std::size_t c2 = spec.rfind(':');
  const std::size_t c1 = c2 == std::string::npos ? std::string::npos
                                                 : spec.rfind(':', c2 - 1);
  if (c1 == std::string::npos || c1 == 0 || c2 <= c1 + 1 ||
      c2 + 1 >= spec.size()) {
    std::fprintf(stderr,
                 "bad --require-quantile spec (want <hist>:<p>:<max>): %s\n",
                 spec.c_str());
    return false;
  }
  const std::string family = spec.substr(0, c1);
  double p = std::strtod(spec.c_str() + c1 + 1, nullptr);
  if (p > 1.0) p /= 100.0;  // accept 95 and 0.95
  const double max_value = std::strtod(spec.c_str() + c2 + 1, nullptr);
  if (p <= 0.0 || p > 1.0) {
    std::fprintf(stderr, "quantile p out of range in spec: %s\n",
                 spec.c_str());
    return false;
  }
  const std::vector<std::pair<double, double>> buckets =
      ParsePromBuckets(text, family);
  if (buckets.empty()) {
    std::fprintf(stderr, "histogram %s has no _bucket samples\n",
                 family.c_str());
    return false;
  }
  const double total = buckets.back().second;
  if (total <= 0.0) {
    std::fprintf(stderr, "histogram %s is empty\n", family.c_str());
    return false;
  }
  // The percentile's value is the upper bound of the first bucket whose
  // cumulative count reaches p*total (the exposition form is cumulative).
  const double target = p * total;
  double value = buckets.back().first;
  for (const auto& [le, count] : buckets) {
    if (count >= target) {
      value = le;
      break;
    }
  }
  if (value > max_value) {
    std::fprintf(stderr, "quantile %s p%g = %g exceeds max %g\n",
                 family.c_str(), p * 100.0, value, max_value);
    return false;
  }
  std::printf("  quantile %-32s p%-4g %g (<= %g)\n", family.c_str(),
              p * 100.0, value, max_value);
  return true;
}

/// Checks one `<name>:<state>` spec against a /sloz JSON scrape. The
/// document is flat (`"name":"..."` followed by `"state":"..."` within the
/// same object), so a linear scan is sufficient.
bool CheckRequiredSlo(const std::string& spec, const std::string& sloz) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    std::fprintf(stderr, "bad --require-slo spec (want <name>:<state>): %s\n",
                 spec.c_str());
    return false;
  }
  const std::string name = spec.substr(0, colon);
  const std::string want_state = spec.substr(colon + 1);
  const std::string name_key = "\"name\":\"" + name + "\"";
  const std::size_t at = sloz.find(name_key);
  if (at == std::string::npos) {
    std::fprintf(stderr, "slo %s not present in sloz document\n",
                 name.c_str());
    return false;
  }
  const std::string state_key = "\"state\":\"";
  const std::size_t state_begin = sloz.find(state_key, at);
  const std::size_t object_end = sloz.find('}', at);
  if (state_begin == std::string::npos ||
      (object_end != std::string::npos && state_begin > object_end)) {
    std::fprintf(stderr, "slo %s carries no state field\n", name.c_str());
    return false;
  }
  const std::size_t value_begin = state_begin + state_key.size();
  const std::size_t value_end = sloz.find('"', value_begin);
  const std::string state = sloz.substr(value_begin, value_end - value_begin);
  if (state != want_state) {
    std::fprintf(stderr, "slo %s state is %s, required %s\n", name.c_str(),
                 state.c_str(), want_state.c_str());
    return false;
  }
  std::printf("  slo %-36s %s\n", name.c_str(), state.c_str());
  return true;
}

/// One parsed collapsed-stack line: the root (span) frame and the count.
struct CollapsedStack {
  std::string root;
  std::uint64_t count = 0;
};

/// Parses flamegraph collapsed-stack text. Returns false (with a
/// diagnostic in `*error`) on structurally broken lines: no space-separated
/// trailing count, a non-positive count, or an empty stack.
bool ParseCollapsed(const std::string& text,
                    std::vector<CollapsedStack>* out, std::string* error) {
  std::size_t line_no = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space == 0 ||
        space + 1 >= line.size()) {
      *error = "line " + std::to_string(line_no) +
               ": expected 'stack count'";
      return false;
    }
    char* end = nullptr;
    const unsigned long long count =
        std::strtoull(line.c_str() + space + 1, &end, 10);
    if (count == 0 || end != line.c_str() + line.size()) {
      *error = "line " + std::to_string(line_no) +
               ": count must be a positive integer";
      return false;
    }
    CollapsedStack stack;
    const std::size_t semi = line.find(';');
    stack.root = line.substr(0, semi == std::string::npos || semi > space
                                    ? space
                                    : semi);
    if (stack.root.empty()) {
      *error = "line " + std::to_string(line_no) + ": empty root frame";
      return false;
    }
    stack.count = count;
    out->push_back(std::move(stack));
  }
  return true;
}

/// Numeric value following `"key":` at or after `from`, or -1 when absent.
/// The /indexz and /historyz documents use plain identifier keys, so a
/// linear scan is sufficient.
double JsonNumberAfter(const std::string& json, const std::string& key,
                       std::size_t from, std::size_t* value_end = nullptr) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = json.find(needle, from);
  if (at == std::string::npos) return -1.0;
  char* end = nullptr;
  const char* begin = json.c_str() + at + needle.size();
  const double value = std::strtod(begin, &end);
  if (end == begin) return -1.0;
  if (value_end != nullptr) {
    *value_end = static_cast<std::size_t>(end - json.c_str());
  }
  return value;
}

/// Validates a /indexz scrape and its optional gates: the structural
/// sections, a minimum on the access totals' scan count, and a minimum on
/// the co-access pair count.
bool CheckIndexz(const std::string& json, const std::string& path,
                 const std::string& min_scans_spec,
                 const std::string& min_pairs_spec) {
  for (const char* section :
       {"\"tree\"", "\"leaves\"", "\"access\"", "\"coaccess\""}) {
    if (json.find(section) == std::string::npos) {
      std::fprintf(stderr, "indexz file %s missing section %s\n",
                   path.c_str(), section);
      return false;
    }
  }
  // The access rollup's totals live after the "access" key (the per-leaf
  // rows under "leaves" carry their own nested "access" objects, so anchor
  // on the section that has "sessions" and "totals").
  const std::size_t access_at = json.find("\"access\":{\"sessions\"");
  if (access_at == std::string::npos) {
    std::fprintf(stderr, "indexz file %s carries no access rollup\n",
                 path.c_str());
    return false;
  }
  const double total_scans = JsonNumberAfter(json, "scans", access_at);
  std::size_t pairs_at = json.find("\"pairs\":[", access_at);
  std::size_t pair_count = 0;
  if (pairs_at != std::string::npos) {
    const std::size_t close = json.find(']', pairs_at);
    for (std::size_t i = pairs_at; i < close && i != std::string::npos; ++i) {
      if (json[i] == '{') ++pair_count;
    }
  }
  std::printf("indexz ok: %s (%g leaf scans, %zu co-access pairs)\n",
              path.c_str(), total_scans < 0 ? 0.0 : total_scans, pair_count);
  if (!min_scans_spec.empty()) {
    const double min_scans = std::strtod(min_scans_spec.c_str(), nullptr);
    if (total_scans < min_scans) {
      std::fprintf(stderr, "indexz leaf scans %g below required %g\n",
                   total_scans, min_scans);
      return false;
    }
    std::printf("  leaf scans %g (>= %g)\n", total_scans, min_scans);
  }
  if (!min_pairs_spec.empty()) {
    const std::size_t min_pairs = static_cast<std::size_t>(
        std::strtoull(min_pairs_spec.c_str(), nullptr, 10));
    if (pair_count < min_pairs) {
      std::fprintf(stderr, "indexz co-access pairs %zu below required %zu\n",
                   pair_count, min_pairs);
      return false;
    }
    std::printf("  co-access pairs %zu (>= %zu)\n", pair_count, min_pairs);
  }
  return true;
}

/// Validates a /historyz scrape: when `metric` is given the document must
/// be for that metric and `"known":true` with at least one point; in every
/// case each point's delta must be non-negative and consistent with the
/// sampled values (cur - prev, or cur across a counter reset), and the
/// timestamps strictly increasing.
bool CheckHistoryz(const std::string& json, const std::string& path,
                   const std::string& metric) {
  if (!metric.empty()) {
    if (json.find("\"metric\":\"" + metric + "\"") == std::string::npos) {
      std::fprintf(stderr, "historyz file %s is not for metric %s\n",
                   path.c_str(), metric.c_str());
      return false;
    }
    if (json.find("\"known\":true") == std::string::npos) {
      std::fprintf(stderr, "historyz metric %s unknown to the recorder\n",
                   metric.c_str());
      return false;
    }
  }
  const std::size_t points_at = json.find("\"points\":[");
  if (points_at == std::string::npos) {
    std::fprintf(stderr, "historyz file %s carries no points array\n",
                 path.c_str());
    return false;
  }
  const bool is_counter =
      json.find("\"type\":\"counter\"") != std::string::npos;
  std::size_t pos = points_at;
  const std::size_t points_end = json.find(']', points_at);
  std::size_t count = 0;
  double prev_t = -1.0;
  double prev_value = 0.0;
  while (true) {
    const std::size_t point_at = json.find("{\"t_ns\":", pos);
    if (point_at == std::string::npos || point_at > points_end) break;
    std::size_t after = point_at;
    const double t_ns = JsonNumberAfter(json, "t_ns", point_at, &after);
    const double value = JsonNumberAfter(json, "value", after, &after);
    const double delta = JsonNumberAfter(json, "delta", after, &after);
    if (t_ns <= prev_t) {
      std::fprintf(stderr, "historyz point %zu: t_ns not increasing\n",
                   count);
      return false;
    }
    if (is_counter && delta < 0.0) {
      std::fprintf(stderr, "historyz point %zu: negative delta %g\n", count,
                   delta);
      return false;
    }
    if (count > 0 && is_counter) {
      // Reset-aware consistency: the delta is either the plain difference
      // or, when the counter went backwards, the new value itself.
      const double diff = value - prev_value;
      const double expected = diff >= 0.0 ? diff : value;
      if (delta > expected + 1e-6 || delta < expected - 1e-6) {
        std::fprintf(stderr,
                     "historyz point %zu: delta %g inconsistent with "
                     "values %g -> %g\n",
                     count, delta, prev_value, value);
        return false;
      }
    }
    prev_t = t_ns;
    prev_value = value;
    ++count;
    pos = after;
  }
  if (!metric.empty() && count == 0) {
    std::fprintf(stderr, "historyz metric %s has no points\n",
                 metric.c_str());
    return false;
  }
  std::printf("historyz ok: %s (%zu points%s)\n", path.c_str(), count,
              metric.empty() ? "" : (", metric " + metric).c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path = Flag(argc, argv, "trace");
  const std::string metrics_path = Flag(argc, argv, "metrics");
  const std::string prom_path = Flag(argc, argv, "prom");
  const std::string profile_path = Flag(argc, argv, "profile");
  const std::vector<std::string> required = FlagList(argc, argv,
                                                     "require-span");
  const std::vector<std::string> required_metrics =
      FlagList(argc, argv, "require-metric");
  const std::string required_samples_spec =
      Flag(argc, argv, "require-profile-samples");
  const std::vector<std::string> required_profile_spans =
      FlagList(argc, argv, "require-profile-span");
  const std::vector<std::string> required_quantiles =
      FlagList(argc, argv, "require-quantile");
  const std::string sloz_path = Flag(argc, argv, "sloz");
  const std::vector<std::string> required_slos =
      FlagList(argc, argv, "require-slo");
  const std::string indexz_path = Flag(argc, argv, "indexz");
  const std::string required_leaf_scans =
      Flag(argc, argv, "require-leaf-scans");
  const std::string required_coaccess_pairs =
      Flag(argc, argv, "require-coaccess-pairs");
  const std::string historyz_path = Flag(argc, argv, "historyz");
  const std::string required_history_metric =
      Flag(argc, argv, "require-history-metric");
  if (trace_path.empty() && metrics_path.empty() && prom_path.empty() &&
      profile_path.empty() && sloz_path.empty() && indexz_path.empty() &&
      historyz_path.empty()) {
    std::fprintf(stderr,
                 "usage: trace_check --trace=<file>"
                 " [--require-span=<name>[:min_count]]\n"
                 "                   [--metrics=<file>] [--prom=<file>]"
                 " [--require-metric=<name>[:min]]\n"
                 "                   "
                 "[--require-quantile=<hist>:<p>:<max>]\n"
                 "                   [--sloz=<file>]"
                 " [--require-slo=<name>:<state>]\n"
                 "                   [--profile=<collapsed file>]"
                 " [--require-profile-samples=N]\n"
                 "                   "
                 "[--require-profile-span=<prefix>[:min]]\n"
                 "                   [--indexz=<file>]"
                 " [--require-leaf-scans=N]"
                 " [--require-coaccess-pairs=N]\n"
                 "                   [--historyz=<file>]"
                 " [--require-history-metric=<name>]\n");
    return 1;
  }
  if ((!required_leaf_scans.empty() || !required_coaccess_pairs.empty()) &&
      indexz_path.empty()) {
    std::fprintf(stderr,
                 "--require-leaf-scans/--require-coaccess-pairs need "
                 "--indexz=<file>\n");
    return 1;
  }
  if (!required_history_metric.empty() && historyz_path.empty()) {
    std::fprintf(stderr,
                 "--require-history-metric needs --historyz=<file>\n");
    return 1;
  }
  if (!required_metrics.empty() && prom_path.empty() &&
      metrics_path.empty()) {
    std::fprintf(stderr,
                 "--require-metric needs --prom=<file> or --metrics=<file>\n");
    return 1;
  }
  if (!required_quantiles.empty() && prom_path.empty()) {
    std::fprintf(stderr, "--require-quantile needs --prom=<file>\n");
    return 1;
  }
  if (!required_slos.empty() && sloz_path.empty()) {
    std::fprintf(stderr, "--require-slo needs --sloz=<file>\n");
    return 1;
  }

  if (!trace_path.empty()) {
    std::string json;
    if (!ReadFile(trace_path, &json)) {
      std::fprintf(stderr, "cannot read trace file: %s\n", trace_path.c_str());
      return 1;
    }
    std::string error;
    std::map<std::string, std::size_t> begin_counts;
    if (!qdcbir::obs::ValidateChromeTrace(json, &error, &begin_counts)) {
      std::fprintf(stderr, "invalid trace %s: %s\n", trace_path.c_str(),
                   error.c_str());
      return 1;
    }
    std::size_t total = 0;
    for (const auto& [name, count] : begin_counts) total += count;
    std::printf("trace ok: %zu spans across %zu distinct names\n", total,
                begin_counts.size());
    for (const std::string& spec : required) {
      std::string name = spec;
      std::size_t min_count = 1;
      const std::size_t colon = spec.rfind(':');
      if (colon != std::string::npos) {
        name = spec.substr(0, colon);
        min_count = static_cast<std::size_t>(
            std::strtoull(spec.c_str() + colon + 1, nullptr, 10));
        if (min_count == 0) min_count = 1;
      }
      const auto it = begin_counts.find(name);
      const std::size_t count = it == begin_counts.end() ? 0 : it->second;
      if (count < min_count) {
        std::fprintf(stderr,
                     "required span %s: %zu occurrence(s), need >= %zu\n",
                     name.c_str(), count, min_count);
        return 1;
      }
      std::printf("  span %-32s x%zu (>= %zu)\n", name.c_str(), count,
                  min_count);
    }
  }

  if (!metrics_path.empty()) {
    std::string json;
    if (!ReadFile(metrics_path, &json)) {
      std::fprintf(stderr, "cannot read metrics file: %s\n",
                   metrics_path.c_str());
      return 1;
    }
    // Structural sanity only; the exporter's format is covered by unit
    // tests, this guards against empty/truncated artifacts.
    for (const char* section : {"\"counters\"", "\"gauges\"",
                                "\"histograms\""}) {
      if (json.find(section) == std::string::npos) {
        std::fprintf(stderr, "metrics file %s missing section %s\n",
                     metrics_path.c_str(), section);
        return 1;
      }
    }
    if (json.find('{') == std::string::npos ||
        json.rfind('}') == std::string::npos) {
      std::fprintf(stderr, "metrics file %s is not a JSON object\n",
                   metrics_path.c_str());
      return 1;
    }
    std::printf("metrics ok: %s (%zu bytes)\n", metrics_path.c_str(),
                json.size());
    // Prom exposition takes precedence for --require-metric when both
    // artifacts are given (it is the exported, scrape-facing view).
    if (!required_metrics.empty() && prom_path.empty()) {
      std::map<std::string, double> counters;
      if (!ParseJsonCounters(json, &counters)) {
        std::fprintf(stderr, "cannot parse counters section of %s\n",
                     metrics_path.c_str());
        return 1;
      }
      for (const std::string& spec : required_metrics) {
        if (!CheckRequiredMetric(spec, counters, "metrics json")) return 1;
      }
    }
  }

  if (!prom_path.empty()) {
    std::string text;
    if (!ReadFile(prom_path, &text)) {
      std::fprintf(stderr, "cannot read prom file: %s\n", prom_path.c_str());
      return 1;
    }
    std::string error;
    std::map<std::string, double> samples;
    std::vector<std::string> exemplar_trace_ids;
    if (!qdcbir::obs::ValidatePrometheusText(text, &error, &samples,
                                             &exemplar_trace_ids)) {
      std::fprintf(stderr, "invalid prom exposition %s: %s\n",
                   prom_path.c_str(), error.c_str());
      return 1;
    }
    std::printf("prom ok: %s (%zu samples, %zu trace exemplars)\n",
                prom_path.c_str(), samples.size(), exemplar_trace_ids.size());
    for (const std::string& spec : required_metrics) {
      if (!CheckRequiredMetric(spec, samples, "prom exposition")) return 1;
    }
    for (const std::string& spec : required_quantiles) {
      if (!CheckRequiredQuantile(spec, text)) return 1;
    }
  }

  if (!sloz_path.empty()) {
    std::string sloz;
    if (!ReadFile(sloz_path, &sloz)) {
      std::fprintf(stderr, "cannot read sloz file: %s\n", sloz_path.c_str());
      return 1;
    }
    if (sloz.find("\"slos\"") == std::string::npos) {
      std::fprintf(stderr, "sloz file %s missing \"slos\" array\n",
                   sloz_path.c_str());
      return 1;
    }
    std::printf("sloz ok: %s (%zu bytes)\n", sloz_path.c_str(), sloz.size());
    for (const std::string& spec : required_slos) {
      if (!CheckRequiredSlo(spec, sloz)) return 1;
    }
  }

  if (!indexz_path.empty()) {
    std::string json;
    if (!ReadFile(indexz_path, &json)) {
      std::fprintf(stderr, "cannot read indexz file: %s\n",
                   indexz_path.c_str());
      return 1;
    }
    if (!CheckIndexz(json, indexz_path, required_leaf_scans,
                     required_coaccess_pairs)) {
      return 1;
    }
  }

  if (!historyz_path.empty()) {
    std::string json;
    if (!ReadFile(historyz_path, &json)) {
      std::fprintf(stderr, "cannot read historyz file: %s\n",
                   historyz_path.c_str());
      return 1;
    }
    if (!CheckHistoryz(json, historyz_path, required_history_metric)) {
      return 1;
    }
  }

  if (!profile_path.empty()) {
    std::string text;
    if (!ReadFile(profile_path, &text)) {
      std::fprintf(stderr, "cannot read profile file: %s\n",
                   profile_path.c_str());
      return 1;
    }
    std::vector<CollapsedStack> stacks;
    std::string error;
    if (!ParseCollapsed(text, &stacks, &error)) {
      std::fprintf(stderr, "invalid collapsed profile %s: %s\n",
                   profile_path.c_str(), error.c_str());
      return 1;
    }
    std::uint64_t total = 0;
    for (const CollapsedStack& stack : stacks) total += stack.count;
    std::printf("profile ok: %s (%zu stacks, %llu samples)\n",
                profile_path.c_str(), stacks.size(),
                static_cast<unsigned long long>(total));
    if (!required_samples_spec.empty()) {
      const unsigned long long min_samples =
          std::strtoull(required_samples_spec.c_str(), nullptr, 10);
      if (total < min_samples) {
        std::fprintf(stderr,
                     "profile has %llu samples, need >= %llu\n",
                     static_cast<unsigned long long>(total), min_samples);
        return 1;
      }
      std::printf("  samples %llu (>= %llu)\n",
                  static_cast<unsigned long long>(total), min_samples);
    }
    for (const std::string& spec : required_profile_spans) {
      std::string prefix = spec;
      std::uint64_t min_count = 1;
      const std::size_t colon = spec.rfind(':');
      if (colon != std::string::npos) {
        prefix = spec.substr(0, colon);
        min_count = std::strtoull(spec.c_str() + colon + 1, nullptr, 10);
        if (min_count == 0) min_count = 1;
      }
      std::uint64_t count = 0;
      for (const CollapsedStack& stack : stacks) {
        if (stack.root.rfind(prefix, 0) == 0) count += stack.count;
      }
      if (count < min_count) {
        std::fprintf(stderr,
                     "profile span prefix %s: %llu sample(s), need >= %llu\n",
                     prefix.c_str(), static_cast<unsigned long long>(count),
                     static_cast<unsigned long long>(min_count));
        return 1;
      }
      std::printf("  profile span %-26s x%llu (>= %llu)\n", prefix.c_str(),
                  static_cast<unsigned long long>(count),
                  static_cast<unsigned long long>(min_count));
    }
  }
  return 0;
}
