// Command-line workbench for the qdcbir library.
//
//   qdcbir_tool synth  --images=15000 --out=db.bin [--channels=1]
//       Synthesize the Corel-like database and save it.
//   qdcbir_tool rfs    --db=db.bin --out=rfs.bin [--max=100 --min=70
//                      --fraction=0.05 --strategy=clustered|tgs|insertion]
//       Build the RFS structure over a saved database.
//   qdcbir_tool info   [--db=db.bin] [--rfs=rfs.bin]
//       Print database / RFS statistics.
//   qdcbir_tool query  --db=db.bin --rfs=rfs.bin --query=bird
//                      [--engine=qd|mv|qpm|mars|qcluster|fagin]
//                      [--k=0] [--seed=1] [--weights=1] [--cache=on|off]
//                      [--ranked-json=results.json]
//       Run one simulated-user retrieval session and print the results.
//       --weights=1 ranks the QD subqueries under deterministic
//       per-dimension weights; --cache=on runs the session through a local
//       result cache (qd and qcluster; rankings are byte-identical either
//       way — docs/caching.md); --ranked-json dumps the ranked ids (and,
//       for QD, per-group distances at full precision) for the CI SIMD
//       parity diff (docs/simd.md).
//   qdcbir_tool render --db=db.bin --id=123 --out=image.ppm
//       Re-render one database image to a PPM file.
//   qdcbir_tool catalog --db=db.bin
//       List the evaluation queries and their ground-truth sub-concepts.
//   qdcbir_tool export-reps --db=db.bin --rfs=rfs.bin --out-dir=reps
//                          [--node=root]
//       Render a node's representative images to PPM files (what the
//       prototype's GUI would show the user).
//   qdcbir_tool snapshot --db=db.bin [--verify=1 --threads=N]
//                        [--flip-bit=OFFSET] [--truncate=BYTES]
//       Inspect a snapshot's chunk table and checksums; --verify=1 fully
//       loads it (non-zero exit on any corruption). The chaos flags damage
//       the file in place so CI can prove corruption cannot pass --verify.
//   qdcbir_tool snapshot inspect --db=db.bin [--rfs=rfs.bin]
//       Chunk table plus the RFS tree-shape digest (height, fanout, leaf
//       occupancy) — the same walk `GET /indexz` serves live. --rfs reads a
//       standalone tree; default recovers the snapshot's embedded one.
//   qdcbir_tool indexz --db=db.bin [--rfs=rfs.bin] [--out=indexz.json]
//                      [--hot=16]
//       Offline /indexz dump: the RFS tree geometry as JSON (access
//       counters all zero — no server ran). --hot sizes the hot-leaf and
//       co-access tables, for symmetry with the live endpoint's ?n=.
//   qdcbir_tool serve  --db=db.bin [--rfs=rfs.bin] [--address=127.0.0.1]
//                      [--port=0] [--port-file=PATH] [--threads=N]
//                      [--max-seconds=0] [--profile-hz=0] [--cache-mb=64]
//                      [--wide-events=PATH] [--wide-events-max-mb=64]
//                      [--slo-latency-ms=2000] [--slo-latency-objective=.95]
//                      [--slo-jaccard-floor=0]
//       Start the admin/serving HTTP endpoint: /healthz /readyz /statusz
//       /varz /metrics /queryz /tracez /logz /sloz /profilez plus
//       /api/query, /api/feedback, /api/rep, and /api/reload for driving
//       relevance-feedback sessions over the wire. --port=0 binds an
//       ephemeral port (written to --port-file for scripts). --profile-hz
//       arms the always-on background sampling profiler (bare --profile-hz
//       picks the low default rate). --cache-mb sets the result-cache
//       budget (0 disables caching). --wide-events appends one JSON session
//       event per completed session (size-capped, rotates to PATH.1); the
//       --slo-* flags tune the burn-rate SLOs shown at /sloz
//       (docs/observability.md). Runs until SIGINT/SIGTERM, or
//       --max-seconds if positive.
//   qdcbir_tool events summarize --in=wide_events.jsonl
//       Aggregate a wide-event file into outcome counts, a latency
//       distribution, quality proxies, and worst-SLO-state counts.
//   qdcbir_tool profile --db=db.bin --rfs=rfs.bin [--seconds=5] [--hz=99]
//                      [--format=collapsed|json] [--out=PATH] [--query=..]
//       Drive simulated relevance-feedback sessions under the sampling
//       profiler and write a span-attributed CPU profile (collapsed stacks
//       by default, ready for flamegraph.pl — see docs/profiling.md).

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "qdcbir/qdcbir.h"
#include "qdcbir/obs/build_info.h"

namespace qdcbir {
namespace {

/// `--name=value` flag lookup.
std::string Flag(int argc, char** argv, const std::string& name,
                 const std::string& fallback) {
  const std::string prefix = "--" + name + "=";
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0) {
      return std::string(argv[i] + prefix.size());
    }
  }
  return fallback;
}

std::int64_t IntFlag(int argc, char** argv, const std::string& name,
                     std::int64_t fallback) {
  const std::string v = Flag(argc, argv, name, "");
  return v.empty() ? fallback : std::strtoll(v.c_str(), nullptr, 10);
}

double DoubleFlag(int argc, char** argv, const std::string& name,
                  double fallback) {
  const std::string v = Flag(argc, argv, name, "");
  return v.empty() ? fallback : std::strtod(v.c_str(), nullptr);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdSynth(int argc, char** argv) {
  const std::size_t images =
      static_cast<std::size_t>(IntFlag(argc, argv, "images", 15000));
  const std::string out = Flag(argc, argv, "out", "db.bin");

  StatusOr<Catalog> catalog = Catalog::Build();
  if (!catalog.ok()) return Fail(catalog.status());
  SynthesizerOptions options;
  options.total_images = images;
  options.extract_viewpoint_channels = IntFlag(argc, argv, "channels", 1) != 0;
  options.seed = static_cast<std::uint64_t>(IntFlag(argc, argv, "seed", 7));
  std::printf("synthesizing %zu images...\n", images);
  WallTimer timer;
  StatusOr<ImageDatabase> db =
      DatabaseSynthesizer::Synthesize(*catalog, options);
  if (!db.ok()) return Fail(db.status());
  std::printf("done in %.1f s\n", timer.Seconds());
  const Status save = DatabaseIo::SaveDatabase(*db, out);
  if (!save.ok()) return Fail(save);
  std::printf("saved %zu images to %s\n", db->size(), out.c_str());
  return 0;
}

int CmdRfs(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  const std::string out = Flag(argc, argv, "out", "rfs.bin");
  StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path);
  if (!db.ok()) return Fail(db.status());

  RfsBuildOptions options;
  options.tree.max_entries =
      static_cast<std::size_t>(IntFlag(argc, argv, "max", 100));
  options.tree.min_entries =
      static_cast<std::size_t>(IntFlag(argc, argv, "min", 70));
  options.representatives.fraction =
      DoubleFlag(argc, argv, "fraction", 0.05);
  const std::string strategy = Flag(argc, argv, "strategy", "clustered");
  if (strategy == "tgs") {
    options.strategy = RfsBuildStrategy::kTgsBulkLoad;
  } else if (strategy == "insertion") {
    options.strategy = RfsBuildStrategy::kInsertion;
  } else if (strategy != "clustered") {
    std::fprintf(stderr, "unknown --strategy=%s\n", strategy.c_str());
    return 1;
  }

  WallTimer timer;
  StatusOr<RfsTree> rfs = RfsBuilder::Build(db->features(), options);
  if (!rfs.ok()) return Fail(rfs.status());
  std::printf("built RFS in %.1f s\n", timer.Seconds());
  const Status save = RfsSerializer::SaveToFile(*rfs, out);
  if (!save.ok()) return Fail(save);
  const RfsTree::Stats stats = rfs->ComputeStats();
  std::printf("saved to %s: height %d, %zu nodes, %zu representatives "
              "(%.1f%%)\n",
              out.c_str(), stats.height, stats.node_count,
              stats.leaf_representatives,
              100.0 * stats.representative_fraction);
  return 0;
}

int CmdInfo(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "");
  const std::string rfs_path = Flag(argc, argv, "rfs", "");
  if (!db_path.empty()) {
    StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path);
    if (!db.ok()) return Fail(db.status());
    std::printf(
        "database %s:\n  %zu images (%dx%d), %zu-D features, channels: %s\n"
        "  %zu categories, %zu sub-concepts, %zu evaluation queries\n",
        db_path.c_str(), db->size(), db->image_width(), db->image_height(),
        db->feature_dim(), db->has_channel_features() ? "yes" : "no",
        db->catalog().categories().size(), db->catalog().subconcepts().size(),
        db->catalog().queries().size());
  }
  if (!rfs_path.empty()) {
    StatusOr<RfsTree> rfs = RfsSerializer::LoadFromFile(rfs_path);
    if (!rfs.ok()) return Fail(rfs.status());
    const RfsTree::Stats stats = rfs->ComputeStats();
    const Status invariants = rfs->CheckInvariants();
    std::printf(
        "rfs %s:\n  %zu images, height %d, %zu nodes (%zu leaves)\n"
        "  %zu representatives (%.1f%%), invariants: %s\n",
        rfs_path.c_str(), stats.total_images, stats.height, stats.node_count,
        stats.leaf_count, stats.leaf_representatives,
        100.0 * stats.representative_fraction,
        invariants.ok() ? "OK" : invariants.ToString().c_str());
  }
  if (db_path.empty() && rfs_path.empty()) {
    std::fprintf(stderr, "info: pass --db=... and/or --rfs=...\n");
    return 1;
  }
  return 0;
}

int CmdQuery(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  const std::string rfs_path = Flag(argc, argv, "rfs", "rfs.bin");
  const std::string query = Flag(argc, argv, "query", "bird");
  const std::string engine_name = Flag(argc, argv, "engine", "qd");
  const std::uint64_t seed =
      static_cast<std::uint64_t>(IntFlag(argc, argv, "seed", 1));

  StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path);
  if (!db.ok()) return Fail(db.status());
  StatusOr<QueryConceptSpec> spec = db->catalog().FindQuery(query);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown query '%s'; available:", query.c_str());
    for (const QueryConceptSpec& q : db->catalog().queries()) {
      std::fprintf(stderr, " %s", q.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, *spec);
  if (!gt.ok()) return Fail(gt.status());

  ProtocolOptions protocol;
  protocol.seed = seed;
  protocol.retrieval_size =
      static_cast<std::size_t>(IntFlag(argc, argv, "k", 0));

  // Per-run result cache (off by default): a single session only re-hits
  // entries across its own repeated subqueries, but the flag's real job is
  // the CI parity matrix — cache on/off must produce byte-identical
  // --ranked-json output.
  std::unique_ptr<cache::CacheManager> run_cache;
  if (Flag(argc, argv, "cache", "off") == "on") {
    cache::CacheManager::Options cache_options;
    cache_options.budget_bytes = 64ull << 20;
    run_cache = std::make_unique<cache::CacheManager>(cache_options);
  }

  StatusOr<RunOutcome> outcome = Status::Internal("unset");
  if (engine_name == "qd") {
    StatusOr<RfsTree> rfs = RfsSerializer::LoadFromFile(rfs_path);
    if (!rfs.ok()) return Fail(rfs.status());
    QdOptions qd_options;
    qd_options.cache = run_cache.get();
    if (IntFlag(argc, argv, "weights", 0) != 0) {
      // Deterministic non-uniform weights (CI parity runs): exercises the
      // weighted localized scans without a user-supplied weight file.
      qd_options.feature_weights.resize(rfs->feature_dim());
      for (std::size_t d = 0; d < rfs->feature_dim(); ++d) {
        qd_options.feature_weights[d] =
            0.5 + 0.25 * static_cast<double>(d % 7);
      }
    }
    outcome = SessionRunner::RunQd(*rfs, *gt, qd_options, protocol);
  } else {
    std::unique_ptr<FeedbackEngine> engine;
    if (engine_name == "mv") engine = std::make_unique<MvEngine>(&*db);
    if (engine_name == "qpm") engine = std::make_unique<QpmEngine>(&*db);
    if (engine_name == "mars") engine = std::make_unique<MarsEngine>(&*db);
    if (engine_name == "qcluster") {
      QclusterOptions qcluster_options;
      qcluster_options.cache = run_cache.get();
      engine = std::make_unique<QclusterEngine>(&*db, qcluster_options);
    }
    if (engine_name == "fagin") engine = std::make_unique<FaginEngine>(&*db);
    if (engine == nullptr) {
      std::fprintf(stderr,
                   "unknown --engine=%s (qd|mv|qpm|mars|qcluster|fagin)\n",
                   engine_name.c_str());
      return 1;
    }
    outcome = SessionRunner::RunEngine(*engine, *gt, protocol);
  }
  if (!outcome.ok()) return Fail(outcome.status());

  std::printf("%s on \"%s\" (%zu relevant): precision %.2f, recall %.2f, "
              "GTIR %.2f, %.1f ms engine time\n",
              engine_name.c_str(), query.c_str(), gt->size(),
              outcome->final_precision, outcome->final_recall,
              outcome->final_gtir, outcome->total_seconds * 1e3);
  std::printf("top results:\n");
  const std::size_t show = std::min<std::size_t>(20, outcome->final_results.size());
  for (std::size_t i = 0; i < show; ++i) {
    const ImageId id = outcome->final_results[i];
    std::printf("  #%2zu %-40s %s\n", i + 1, db->LabelOf(id).c_str(),
                gt->IsRelevant(id) ? "[relevant]" : "");
  }

  // Machine-readable ranked results, used by the CI SIMD parity step: two
  // runs differing only in QDCBIR_SIMD must produce byte-identical files,
  // so nothing environment-dependent (SIMD level, timings) is included.
  const std::string ranked_json = Flag(argc, argv, "ranked-json", "");
  if (!ranked_json.empty()) {
    std::ofstream out(ranked_json);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", ranked_json.c_str());
      return 1;
    }
    char buffer[64];
    out << "{\"engine\":\"" << engine_name << "\",\"query\":\"" << query
        << "\",\"seed\":" << seed << ",\"results\":[";
    for (std::size_t i = 0; i < outcome->final_results.size(); ++i) {
      if (i > 0) out << ',';
      out << outcome->final_results[i];
    }
    out << "]";
    if (!outcome->qd_result.groups.empty()) {
      out << ",\"groups\":[";
      bool first_group = true;
      for (const ResultGroup& g : outcome->qd_result.groups) {
        if (!first_group) out << ',';
        first_group = false;
        out << "[";
        for (std::size_t i = 0; i < g.images.size(); ++i) {
          if (i > 0) out << ',';
          std::snprintf(buffer, sizeof(buffer), "[%llu,%.17g]",
                        static_cast<unsigned long long>(g.images[i].id),
                        g.images[i].distance_squared);
          out << buffer;
        }
        out << "]";
      }
      out << "]";
    }
    out << "}\n";
    if (!out.good()) {
      std::fprintf(stderr, "write failed: %s\n", ranked_json.c_str());
      return 1;
    }
    std::printf("ranked results written to %s\n", ranked_json.c_str());
  }
  return 0;
}

int CmdRender(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  const std::string out = Flag(argc, argv, "out", "image.ppm");
  const std::int64_t id = IntFlag(argc, argv, "id", 0);
  StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path);
  if (!db.ok()) return Fail(db.status());
  if (id < 0 || static_cast<std::size_t>(id) >= db->size()) {
    std::fprintf(stderr, "--id out of range (database has %zu images)\n",
                 db->size());
    return 1;
  }
  const Status save =
      WritePpm(db->Render(static_cast<ImageId>(id)), out);
  if (!save.ok()) return Fail(save);
  std::printf("rendered image %lld (%s) to %s\n",
              static_cast<long long>(id),
              db->LabelOf(static_cast<ImageId>(id)).c_str(), out.c_str());
  return 0;
}

int CmdCatalog(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path);
  if (!db.ok()) return Fail(db.status());
  std::printf("evaluation queries:\n");
  for (const QueryConceptSpec& q : db->catalog().queries()) {
    StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, q);
    std::printf("  %-18s %zu sub-concepts, %zu relevant images:",
                q.name.c_str(), q.subconcepts.size(),
                gt.ok() ? gt->size() : 0);
    for (const QuerySubConcept& qs : q.subconcepts) {
      std::printf(" %s", qs.name.c_str());
    }
    std::printf("\n");
  }
  std::printf("\n%zu categories, %zu sub-concepts in total\n",
              db->catalog().categories().size(),
              db->catalog().subconcepts().size());
  return 0;
}

int CmdExportReps(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  const std::string rfs_path = Flag(argc, argv, "rfs", "rfs.bin");
  const std::string out_dir = Flag(argc, argv, "out-dir", "reps");
  const std::string node_flag = Flag(argc, argv, "node", "root");

  StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path);
  if (!db.ok()) return Fail(db.status());
  StatusOr<RfsTree> rfs = RfsSerializer::LoadFromFile(rfs_path);
  if (!rfs.ok()) return Fail(rfs.status());

  const NodeId node = node_flag == "root"
                          ? rfs->root()
                          : static_cast<NodeId>(std::atoll(node_flag.c_str()));
  if (!rfs->has_info(node)) {
    std::fprintf(stderr, "no such node %s\n", node_flag.c_str());
    return 1;
  }

  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  const RfsTree::NodeInfo& info = rfs->info(node);
  for (std::size_t i = 0; i < info.representatives.size(); ++i) {
    const ImageId id = info.representatives[i];
    if (id >= db->size()) continue;
    const std::string path = out_dir + "/node" + std::to_string(node) +
                             "_rep" + std::to_string(i) + "_" +
                             std::to_string(id) + ".ppm";
    const Status save = WritePpm(db->Render(id), path);
    if (!save.ok()) return Fail(save);
  }
  std::printf("wrote %zu representative images of node %u (level %d, "
              "subtree %zu images) to %s/\n",
              info.representatives.size(), node, info.level,
              info.subtree_size, out_dir.c_str());
  return 0;
}

/// Loads the RFS tree (standalone `rfs_path`, or the snapshot's embedded
/// blob when empty) and prints the tree-shape digest shared with /indexz.
int PrintTreeShape(const std::string& db_path, const std::string& rfs_path) {
  StatusOr<RfsTree> rfs = Status::Internal("rfs load not run");
  if (!rfs_path.empty()) {
    rfs = RfsSerializer::LoadFromFile(rfs_path);
  } else {
    StatusOr<std::string> blob = DatabaseIo::LoadEmbeddedRfsBlob(db_path);
    if (!blob.ok()) return Fail(blob.status());
    rfs = RfsSerializer::Deserialize(*blob);
  }
  if (!rfs.ok()) return Fail(rfs.status());
  std::printf("%s", RenderIndexTreeText(SummarizeIndexTree(*rfs)).c_str());
  return 0;
}

int CmdSnapshot(int argc, char** argv) {
  const bool inspect = argc > 2 && std::strcmp(argv[2], "inspect") == 0;
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  const std::int64_t flip = IntFlag(argc, argv, "flip-bit", -1);
  const std::int64_t truncate = IntFlag(argc, argv, "truncate", -1);
  const bool verify = Flag(argc, argv, "verify", "0") != "0";

  // Chaos helpers first: corrupt the file in place, then (optionally)
  // verify — CI uses this to prove a damaged snapshot cannot pass.
  if (flip >= 0 || truncate >= 0) {
    std::fstream f(db_path,
                   std::ios::binary | std::ios::in | std::ios::out);
    if (!f) {
      std::fprintf(stderr, "cannot open %s for corruption\n", db_path.c_str());
      return 1;
    }
    if (flip >= 0) {
      f.seekg(flip);
      char byte = 0;
      if (!f.get(byte)) {
        std::fprintf(stderr, "--flip-bit=%lld past end of file\n",
                     static_cast<long long>(flip));
        return 1;
      }
      byte = static_cast<char>(static_cast<unsigned char>(byte) ^ 0x01);
      f.seekp(flip);
      f.put(byte);
      std::printf("flipped bit 0 of byte %lld in %s\n",
                  static_cast<long long>(flip), db_path.c_str());
    }
    f.close();
    if (truncate >= 0) {
      std::error_code ec;
      std::filesystem::resize_file(db_path,
                                   static_cast<std::uintmax_t>(truncate), ec);
      if (ec) {
        std::fprintf(stderr, "truncate failed: %s\n", ec.message().c_str());
        return 1;
      }
      std::printf("truncated %s to %lld bytes\n", db_path.c_str(),
                  static_cast<long long>(truncate));
    }
    // Deliberate damage is the whole point here — only fall through when
    // the caller also asked to verify the (now damaged) snapshot.
    if (!verify) return 0;
  }

  if (verify) {
    const std::size_t threads =
        static_cast<std::size_t>(IntFlag(argc, argv, "threads", 0));
    ThreadPool pool(threads);
    SnapshotLoadOptions options;
    options.pool = &pool;
    WallTimer timer;
    StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path, options);
    if (!db.ok()) return Fail(db.status());
    std::printf("verify OK: %zu images, every chunk checksum valid "
                "(%.2f s, %zu threads)\n",
                db->size(), timer.Seconds(), pool.size());
    return 0;
  }

  StatusOr<SnapshotInfo> info = DatabaseIo::InspectSnapshot(db_path);
  if (!info.ok()) return Fail(info.status());
  std::printf("snapshot %s: format v%d, %llu bytes, %zu chunks\n",
              db_path.c_str(), info->version,
              static_cast<unsigned long long>(info->file_size),
              info->chunks.size());
  if (info->version == 1) {
    std::printf("  legacy monolithic blob (no per-chunk checksums); "
                "re-save to upgrade\n");
    return inspect ? PrintTreeShape(db_path, Flag(argc, argv, "rfs", ""))
                   : 0;
  }
  std::printf("  %-6s %12s %12s %10s  %s\n", "chunk", "offset", "length",
              "crc32c", "ok");
  bool all_ok = true;
  for (const SnapshotChunkInfo& chunk : info->chunks) {
    std::printf("  %-6s %12llu %12llu   %08x  %s\n", chunk.id.c_str(),
                static_cast<unsigned long long>(chunk.offset),
                static_cast<unsigned long long>(chunk.length), chunk.crc32c,
                chunk.crc_ok ? "yes" : "NO");
    all_ok = all_ok && chunk.crc_ok;
  }
  if (!all_ok) {
    std::fprintf(stderr, "snapshot has corrupt chunks\n");
    return 1;
  }
  if (inspect) return PrintTreeShape(db_path, Flag(argc, argv, "rfs", ""));
  return 0;
}

int CmdIndexz(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  const std::string rfs_path = Flag(argc, argv, "rfs", "");
  const std::string out_path = Flag(argc, argv, "out", "");
  const std::size_t hot_n =
      static_cast<std::size_t>(IntFlag(argc, argv, "hot", 16));

  StatusOr<RfsTree> rfs = Status::Internal("rfs load not run");
  if (!rfs_path.empty()) {
    rfs = RfsSerializer::LoadFromFile(rfs_path);
  } else {
    StatusOr<std::string> blob = DatabaseIo::LoadEmbeddedRfsBlob(db_path);
    if (!blob.ok()) return Fail(blob.status());
    rfs = RfsSerializer::Deserialize(*blob);
  }
  if (!rfs.ok()) return Fail(rfs.status());

  const IndexTreeSummary summary = SummarizeIndexTree(*rfs);
  // Offline dump: default join → the document keeps its live shape but
  // reports zero access everywhere (no server ran).
  const std::string json =
      RenderIndexzJson(summary, IndexAccessJoin{}, hot_n) + "\n";
  if (out_path.empty()) {
    std::fwrite(json.data(), 1, json.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    out << json;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote indexz document to %s\n", out_path.c_str());
  }
  std::fprintf(stderr, "%s",
               RenderIndexTreeText(summary).c_str());
  return 0;
}

int CmdProfile(int argc, char** argv) {
  const std::string db_path = Flag(argc, argv, "db", "db.bin");
  const std::string rfs_path = Flag(argc, argv, "rfs", "rfs.bin");
  const double seconds = DoubleFlag(argc, argv, "seconds", 5.0);
  const int hz = static_cast<int>(IntFlag(argc, argv, "hz", 99));
  const std::string format = Flag(argc, argv, "format", "collapsed");
  const std::string out_path = Flag(argc, argv, "out", "");
  const std::string only_query = Flag(argc, argv, "query", "");
  if (format != "collapsed" && format != "json") {
    std::fprintf(stderr, "--format must be collapsed or json\n");
    return 1;
  }

  StatusOr<ImageDatabase> db = DatabaseIo::LoadDatabase(db_path);
  if (!db.ok()) return Fail(db.status());
  StatusOr<RfsTree> rfs = RfsSerializer::LoadFromFile(rfs_path);
  if (!rfs.ok()) return Fail(rfs.status());

  // The workload: full simulated RF sessions cycling through the catalog's
  // evaluation queries, so the profile covers the real engine phases
  // (qd.start, qd.feedback, qd.finalize and everything under them).
  std::vector<QueryGroundTruth> gts;
  for (const QueryConceptSpec& spec : db->catalog().queries()) {
    if (!only_query.empty() && spec.name != only_query) continue;
    StatusOr<QueryGroundTruth> gt = BuildGroundTruth(*db, spec);
    if (gt.ok()) gts.push_back(std::move(*gt));
  }
  if (gts.empty()) {
    std::fprintf(stderr, "no ground-truth queries to drive (bad --query?)\n");
    return 1;
  }

  obs::Profiler::RegisterCurrentThread();
  obs::ProfilerOptions profiler_options;
  profiler_options.hz = hz;
  std::string error;
  if (!obs::Profiler::Global().Start(profiler_options, &error)) {
    std::fprintf(stderr, "profiler unavailable: %s\n", error.c_str());
    return 1;
  }
  const std::uint64_t cursor = obs::Profiler::Global().SampleCursor();

  WallTimer timer;
  std::size_t sessions = 0;
  std::size_t attempts = 0;
  std::size_t skipped = 0;
  std::uint64_t seed = 1;
  while (timer.Seconds() < seconds) {
    ProtocolOptions protocol;
    protocol.seed = seed++;
    QdOptions qd_options;
    const StatusOr<RunOutcome> outcome =
        SessionRunner::RunQd(*rfs, gts[attempts % gts.size()], qd_options,
                             protocol);
    ++attempts;
    if (!outcome.ok()) {
      // Some catalog queries yield no relevant picks on small corpora
      // (FailedPrecondition); skip those rather than abort the profile —
      // unless no query at all can drive a session.
      ++skipped;
      if (sessions == 0 && skipped >= gts.size()) {
        obs::Profiler::Global().Stop();
        return Fail(outcome.status());
      }
      continue;
    }
    ++sessions;
  }

  const std::vector<obs::ProfileSample> samples =
      obs::Profiler::Global().CollectSince(cursor);
  const std::uint64_t dropped = obs::Profiler::Global().dropped();
  obs::Profiler::Global().Stop();

  const std::string rendered =
      format == "json"
          ? obs::Profiler::RenderJson(samples, hz, timer.Seconds(), dropped)
          : obs::Profiler::RenderCollapsed(samples);
  if (out_path.empty()) {
    std::fwrite(rendered.data(), 1, rendered.size(), stdout);
  } else {
    std::ofstream out(out_path, std::ios::binary);
    out << rendered;
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "profiled %zu sessions (%zu skipped) in %.1f s at %d Hz:"
               " %zu samples (%llu dropped)%s%s\n",
               sessions, skipped, timer.Seconds(), hz, samples.size(),
               static_cast<unsigned long long>(dropped),
               out_path.empty() ? "" : " -> ", out_path.c_str());
  return 0;
}

/// `events summarize --in=wide_events.jsonl`: aggregate a wide-event file
/// (one JSON session event per line; see docs/observability.md) into a
/// human-readable digest — outcome counts, latency distribution, quality
/// proxies, and worst-SLO-state counts. Unparseable lines are counted and
/// skipped, so a file caught mid-rotation still summarizes.
int CmdEvents(int argc, char** argv) {
  const std::string sub = argc > 2 ? argv[2] : "";
  const std::string in_path = Flag(argc, argv, "in", "wide_events.jsonl");
  if (sub != "summarize") {
    std::fprintf(stderr,
                 "usage: qdcbir_tool events summarize --in=<events.jsonl>\n");
    return 1;
  }
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", in_path.c_str());
    return 1;
  }

  std::size_t events = 0;
  std::size_t malformed = 0;
  std::map<std::string, std::size_t> outcomes;
  std::map<std::string, std::size_t> slo_worst;
  std::vector<double> latency_ms;
  double jaccard_sum = 0.0;
  std::size_t jaccard_count = 0;
  std::uint64_t rounds_sum = 0;
  std::uint64_t picks_sum = 0;

  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    StatusOr<serve::JsonValue> parsed = serve::ParseJson(line);
    if (!parsed.ok() || !parsed->is_object()) {
      ++malformed;
      continue;
    }
    ++events;
    const serve::JsonValue& event = *parsed;
    if (const serve::JsonValue* outcome = event.Find("outcome")) {
      ++outcomes[outcome->string];
    }
    if (const serve::JsonValue* worst = event.Find("slo_worst")) {
      ++slo_worst[worst->string];
    }
    if (const serve::JsonValue* total_ns = event.Find("total_ns")) {
      if (total_ns->is_number()) latency_ms.push_back(total_ns->number / 1e6);
    }
    if (const serve::JsonValue* jaccard =
            event.Find("quality_mean_jaccard_permille")) {
      if (jaccard->is_number()) {
        jaccard_sum += jaccard->number;
        ++jaccard_count;
      }
    }
    rounds_sum += event.U64Field("rounds", 0);
    picks_sum += event.U64Field("picks", 0);
  }

  std::printf("%s: %zu events (%zu malformed lines skipped)\n",
              in_path.c_str(), events, malformed);
  if (events == 0) return malformed == 0 ? 0 : 1;
  for (const auto& [name, count] : outcomes) {
    std::printf("  outcome %-10s %zu\n", name.c_str(), count);
  }
  if (!latency_ms.empty()) {
    std::sort(latency_ms.begin(), latency_ms.end());
    double sum = 0.0;
    for (const double v : latency_ms) sum += v;
    const auto quantile = [&](double p) {
      const std::size_t index = static_cast<std::size_t>(
          p * static_cast<double>(latency_ms.size() - 1));
      return latency_ms[index];
    };
    std::printf(
        "  latency_ms mean %.2f  p50 %.2f  p95 %.2f  max %.2f\n",
        sum / static_cast<double>(latency_ms.size()), quantile(0.5),
        quantile(0.95), latency_ms.back());
  }
  std::printf("  rounds/session %.2f  picks/session %.2f\n",
              static_cast<double>(rounds_sum) / static_cast<double>(events),
              static_cast<double>(picks_sum) / static_cast<double>(events));
  if (jaccard_count > 0) {
    std::printf("  mean topk jaccard %.0f permille (over %zu sessions)\n",
                jaccard_sum / static_cast<double>(jaccard_count),
                jaccard_count);
  }
  for (const auto& [state, count] : slo_worst) {
    std::printf("  slo worst=%-7s %zu\n", state.c_str(), count);
  }
  return 0;
}

volatile std::sig_atomic_t g_serve_stop = 0;

void HandleStopSignal(int) { g_serve_stop = 1; }

int CmdServe(int argc, char** argv) {
  serve::ServeOptions options;
  options.db_path = Flag(argc, argv, "db", "db.bin");
  options.rfs_path = Flag(argc, argv, "rfs", "");
  options.address = Flag(argc, argv, "address", "127.0.0.1");
  options.port = static_cast<int>(IntFlag(argc, argv, "port", 0));
  options.display_size =
      static_cast<std::size_t>(IntFlag(argc, argv, "display", 21));
  options.default_k = static_cast<std::size_t>(IntFlag(argc, argv, "k", 50));
  options.trace_sample_every = static_cast<std::size_t>(
      IntFlag(argc, argv, "trace-sample-every",
              static_cast<std::int64_t>(options.trace_sample_every)));
  options.slow_trace_ms =
      DoubleFlag(argc, argv, "slow-trace-ms", options.slow_trace_ms);
  options.profile_hz = static_cast<int>(IntFlag(argc, argv, "profile-hz", 0));
  options.cache_mb = static_cast<std::size_t>(
      IntFlag(argc, argv, "cache-mb",
              static_cast<std::int64_t>(options.cache_mb)));
  options.wide_events_path = Flag(argc, argv, "wide-events", "");
  options.wide_events_max_mb = static_cast<std::size_t>(
      IntFlag(argc, argv, "wide-events-max-mb",
              static_cast<std::int64_t>(options.wide_events_max_mb)));
  options.slo_latency_ms =
      DoubleFlag(argc, argv, "slo-latency-ms", options.slo_latency_ms);
  options.slo_latency_objective = DoubleFlag(
      argc, argv, "slo-latency-objective", options.slo_latency_objective);
  options.slo_jaccard_floor_permille = static_cast<std::uint64_t>(
      IntFlag(argc, argv, "slo-jaccard-floor",
              static_cast<std::int64_t>(options.slo_jaccard_floor_permille)));
  options.history_interval_ms = static_cast<std::uint64_t>(
      IntFlag(argc, argv, "history-interval-ms",
              static_cast<std::int64_t>(options.history_interval_ms)));
  for (int i = 2; i < argc; ++i) {
    // Bare --profile-hz (no value) means "on at the low background rate".
    if (std::strcmp(argv[i], "--profile-hz") == 0) {
      options.profile_hz = obs::Profiler::kBackgroundHz;
    }
  }
  const std::string port_file = Flag(argc, argv, "port-file", "");
  const std::int64_t max_seconds = IntFlag(argc, argv, "max-seconds", 0);

  ThreadPool pool(static_cast<std::size_t>(IntFlag(argc, argv, "threads", 0)));
  options.pool = &pool;

  serve::ServeApp app(options);
  std::string error;
  if (!app.Start(&error)) {
    std::fprintf(stderr, "cannot start server: %s\n", error.c_str());
    return 1;
  }
  std::printf("listening on %s:%d (db %s%s%s)\n", options.address.c_str(),
              app.port(), options.db_path.c_str(),
              options.rfs_path.empty() ? ", embedded rfs" : ", rfs ",
              options.rfs_path.c_str());
  std::fflush(stdout);
  if (!port_file.empty()) {
    std::ofstream out(port_file);
    out << app.port() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", port_file.c_str());
      return 1;
    }
  }

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  WallTimer uptime;
  while (g_serve_stop == 0 &&
         app.readiness() != serve::Readiness::kFailed &&
         (max_seconds <= 0 || uptime.Seconds() < max_seconds)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  if (app.readiness() == serve::Readiness::kFailed) {
    std::fprintf(stderr, "load failed: %s\n", app.load_error().c_str());
    app.Stop();
    return 1;
  }
  std::printf("shutting down\n");
  app.Stop();
  return 0;
}

int Usage() {
  std::fprintf(stderr,
               "usage: qdcbir_tool "
               "<synth|rfs|info|query|render|catalog|export-reps|snapshot"
               "|indexz|serve|profile|events> [--flags]\n"
               "snapshot flags: --db=<path> [--verify=1] [--threads=N]\n"
               "                [--flip-bit=OFFSET] [--truncate=BYTES]  "
               "(chaos helpers: corrupt in place)\n"
               "                qdcbir_tool snapshot inspect adds the RFS "
               "tree-shape digest ([--rfs=<path>])\n"
               "indexz flags:   --db=<path> [--rfs=<path>] "
               "[--out=<json>] [--hot=16]  (offline /indexz dump)\n"
               "serve flags:    --db=<path> [--rfs=<path>] [--port=0]\n"
               "                [--port-file=<path>] [--max-seconds=0]\n"
               "                [--trace-sample-every=8] "
               "[--slow-trace-ms=250] [--profile-hz=0]\n"
               "                [--history-interval-ms=1000]  "
               "(flight-recorder cadence behind /historyz; 0 disables)\n"
               "                [--wide-events=<jsonl>] "
               "[--wide-events-max-mb=64]\n"
               "                [--slo-latency-ms=2000] "
               "[--slo-latency-objective=0.95] [--slo-jaccard-floor=0]\n"
               "events:         qdcbir_tool events summarize "
               "--in=<events.jsonl>\n"
               "profile flags:  --db=<path> --rfs=<path> [--seconds=5] "
               "[--hz=99]\n"
               "                [--format=collapsed|json] [--out=<path>] "
               "[--query=<name>]\n"
               "run with a command and no flags to see its defaults\n"
               "qdcbir_tool --version prints build info as JSON\n"
               "global flags: --metrics-json=<path>  dump the metrics "
               "registry snapshot after the command\n"
               "              --trace-out=<path>     record a Chrome trace "
               "of the command\n"
               "              --queryz-json=<path>   dump the /queryz "
               "session audit ring after the command\n");
  return 1;
}

int Dispatch(int argc, char** argv, const std::string& command) {
  if (command == "synth") return CmdSynth(argc, argv);
  if (command == "rfs") return CmdRfs(argc, argv);
  if (command == "info") return CmdInfo(argc, argv);
  if (command == "query") return CmdQuery(argc, argv);
  if (command == "render") return CmdRender(argc, argv);
  if (command == "catalog") return CmdCatalog(argc, argv);
  if (command == "export-reps") return CmdExportReps(argc, argv);
  if (command == "snapshot") return CmdSnapshot(argc, argv);
  if (command == "indexz") return CmdIndexz(argc, argv);
  if (command == "serve") return CmdServe(argc, argv);
  if (command == "profile") return CmdProfile(argc, argv);
  if (command == "events") return CmdEvents(argc, argv);
  return Usage();
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  if (command == "--version" || command == "version") {
    std::printf("%s\n", obs::BuildInfoJson().c_str());
    return 0;
  }
  const std::string trace_out = Flag(argc, argv, "trace-out", "");
  const std::string metrics_json = Flag(argc, argv, "metrics-json", "");
  const std::string queryz_json = Flag(argc, argv, "queryz-json", "");

  if (!trace_out.empty()) {
    std::string error;
    if (!obs::Tracer::Global().Start(trace_out, &error)) {
      std::fprintf(stderr, "cannot start trace: %s\n", error.c_str());
      return 1;
    }
  }

  const int code = Dispatch(argc, argv, command);

  if (!metrics_json.empty()) {
    std::ofstream out(metrics_json);
    out << obs::MetricsRegistry::Global().SnapshotJson() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   metrics_json.c_str());
      return 1;
    }
  }
  if (!queryz_json.empty()) {
    std::ofstream out(queryz_json);
    out << obs::QueryLog::Global().RenderJson() << "\n";
    if (!out) {
      std::fprintf(stderr, "cannot write session audit to %s\n",
                   queryz_json.c_str());
      return 1;
    }
  }
  if (!trace_out.empty()) {
    std::string error;
    if (!obs::Tracer::Global().Stop(&error)) {
      std::fprintf(stderr, "trace flush failed: %s\n", error.c_str());
      return 1;
    }
  }
  return code;
}

}  // namespace
}  // namespace qdcbir

int main(int argc, char** argv) { return qdcbir::Run(argc, argv); }
