// ServeApp tests: the readiness state machine on a broken snapshot path, a
// complete relevance-feedback session driven over loopback HTTP (query →
// feedback → finalize → audit ring + metrics), API error handling, and
// seed determinism of `/api/query` responses.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "qdcbir/core/thread_pool.h"
#include "qdcbir/dataset/database_io.h"
#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/obs/log.h"
#include "qdcbir/obs/prom_export.h"
#include "qdcbir/obs/trace_tree.h"
#include "qdcbir/rfs/rfs_builder.h"
#include "qdcbir/rfs/rfs_serialization.h"
#include "qdcbir/serve/json_mini.h"
#include "qdcbir/serve/serve_app.h"

namespace qdcbir {
namespace serve {
namespace {

/// One blocking HTTP exchange on a fresh connection; returns the full
/// response (status line + headers + body) or "" on connect failure.
std::string HttpRoundTrip(int port, const std::string& raw_request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  (void)::send(fd, raw_request.data(), raw_request.size(), 0);
  std::string response;
  char chunk[4096];
  for (;;) {
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) break;
    response.append(chunk, static_cast<std::size_t>(got));
    const std::size_t head_end = response.find("\r\n\r\n");
    if (head_end == std::string::npos) continue;
    const std::size_t cl = response.find("Content-Length: ");
    if (cl == std::string::npos || cl > head_end) break;
    const std::size_t body_bytes = static_cast<std::size_t>(
        std::strtoull(response.c_str() + cl + 16, nullptr, 10));
    if (response.size() >= head_end + 4 + body_bytes) break;
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return HttpRoundTrip(port, "GET " + path +
                                 " HTTP/1.1\r\nConnection: close\r\n\r\n");
}

/// `extra_headers` is raw header text, each line CRLF-terminated (e.g.
/// "traceparent: 00-…-01\r\n").
std::string Post(int port, const std::string& path, const std::string& body,
                 const std::string& extra_headers = "") {
  return HttpRoundTrip(
      port, "POST " + path + " HTTP/1.1\r\nContent-Length: " +
                std::to_string(body.size()) + "\r\n" + extra_headers +
                "Connection: close\r\n\r\n" + body);
}

std::string BodyOf(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  return head_end == std::string::npos ? "" : response.substr(head_end + 4);
}

std::string HeaderValue(const std::string& response, const std::string& name) {
  const std::string needle = "\r\n" + name + ": ";
  const std::size_t pos = response.find(needle);
  if (pos == std::string::npos) return "";
  const std::size_t start = pos + needle.size();
  return response.substr(start, response.find("\r\n", start) - start);
}

struct FlatSpan {
  std::string name;
  std::uint64_t duration_ns = 0;
  std::uint64_t self_ns = 0;
  bool has_leaf_annotation = false;
};

void CollectSpans(const JsonValue& node, std::vector<FlatSpan>* out) {
  FlatSpan span;
  if (const JsonValue* name = node.Find("name")) span.name = name->string;
  span.duration_ns = node.U64Field("duration_ns", 0);
  span.self_ns = node.U64Field("self_ns", 0);
  if (const JsonValue* annotations = node.Find("annotations")) {
    span.has_leaf_annotation = annotations->Find("leaf") != nullptr;
  }
  out->push_back(span);
  if (const JsonValue* children = node.Find("children")) {
    for (const JsonValue& child : children->items) {
      CollectSpans(child, out);
    }
  }
}

/// The /tracez entry with the given trace id, or nullptr.
const JsonValue* FindTrace(const JsonValue& tracez,
                           const std::string& trace_id) {
  const JsonValue* traces = tracez.Find("traces");
  if (traces == nullptr || !traces->is_array()) return nullptr;
  for (const JsonValue& entry : traces->items) {
    const JsonValue* id = entry.Find("trace_id");
    if (id != nullptr && id->string == trace_id) return &entry;
  }
  return nullptr;
}

class ServeAppTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 12;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 300;
    options.image_width = 32;
    options.image_height = 32;
    const ImageDatabase db =
        DatabaseSynthesizer::Synthesize(catalog, options).value();

    RfsBuildOptions build;
    build.tree.max_entries = 40;
    build.tree.min_entries = 16;
    const RfsTree rfs = RfsBuilder::Build(db.features(), build).value();
    const std::string blob = RfsSerializer::Serialize(rfs);

    db_path_ = new std::string(::testing::TempDir() + "serve_test.qdb");
    ASSERT_TRUE(DatabaseIo::SaveDatabase(db, *db_path_, &blob).ok());
  }
  static void TearDownTestSuite() {
    delete db_path_;
    db_path_ = nullptr;
  }

  static std::string* db_path_;
};

std::string* ServeAppTest::db_path_ = nullptr;

TEST_F(ServeAppTest, MissingSnapshotReachesFailedAndReadyzAnswers503) {
  ThreadPool pool(2);
  ServeOptions options;
  options.db_path = ::testing::TempDir() + "does_not_exist.qdb";
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  EXPECT_FALSE(app.WaitUntilReady(10000));
  EXPECT_EQ(app.readiness(), Readiness::kFailed);
  EXPECT_FALSE(app.load_error().empty());
  const std::string readyz = Get(app.port(), "/readyz");
  EXPECT_NE(readyz.find("503"), std::string::npos);
  EXPECT_NE(readyz.find("failed"), std::string::npos);
  // Query endpoints refuse with 503 too instead of touching the absent db.
  EXPECT_NE(Post(app.port(), "/api/query", "{}").find("503"),
            std::string::npos);
  // So does the index introspection walk: no tree, no answer.
  EXPECT_NE(Get(app.port(), "/indexz").find("503"), std::string::npos);
  app.Stop();
}

TEST_F(ServeAppTest, FullFeedbackSessionOverHttp) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();
  ASSERT_GT(app.port(), 0);

  EXPECT_NE(Get(app.port(), "/healthz").find("200 OK"), std::string::npos);
  EXPECT_NE(Get(app.port(), "/readyz").find("serving"), std::string::npos);

  // Open a session.
  const std::string query_body = BodyOf(Post(
      app.port(), "/api/query", "{\"seed\":42,\"label\":\"serve-test\"}"));
  StatusOr<JsonValue> query = ParseJson(query_body);
  ASSERT_TRUE(query.ok()) << query_body;
  const std::uint64_t session_id = query->U64Field("session", 0);
  ASSERT_GT(session_id, 0u);
  const JsonValue* display = query->Find("display");
  ASSERT_NE(display, nullptr);
  ASSERT_TRUE(display->is_array());
  ASSERT_FALSE(display->items.empty());

  // Mark the first two images of every display group relevant.
  std::string relevant = "[";
  bool first = true;
  for (const JsonValue& group : display->items) {
    const JsonValue* images = group.Find("images");
    ASSERT_NE(images, nullptr);
    for (std::size_t i = 0; i < images->items.size() && i < 2; ++i) {
      if (!first) relevant.push_back(',');
      first = false;
      relevant += std::to_string(
          static_cast<std::uint64_t>(images->items[i].number));
    }
  }
  relevant.push_back(']');

  // One feedback round returns the next display.
  const std::string round_body = BodyOf(Post(
      app.port(), "/api/feedback",
      "{\"session\":" + std::to_string(session_id) +
          ",\"relevant\":" + relevant + "}"));
  StatusOr<JsonValue> round = ParseJson(round_body);
  ASSERT_TRUE(round.ok()) << round_body;
  EXPECT_EQ(round->U64Field("round", 0), 1u);
  ASSERT_NE(round->Find("display"), nullptr);

  // Second round finalizes into ranked result groups.
  const std::string final_body = BodyOf(Post(
      app.port(), "/api/feedback",
      "{\"session\":" + std::to_string(session_id) +
          ",\"relevant\":" + relevant + ",\"finalize\":25}"));
  StatusOr<JsonValue> final_round = ParseJson(final_body);
  ASSERT_TRUE(final_round.ok()) << final_body;
  const JsonValue* results = final_round->Find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_FALSE(results->items.empty());
  const JsonValue* stats = final_round->Find("stats");
  ASSERT_NE(stats, nullptr);
  EXPECT_GT(stats->U64Field("subqueries", 0), 0u);

  // The finalized session reaches the /queryz audit ring, carrying the
  // per-session resource accounting gathered across the pool workers.
  const std::string queryz_body = BodyOf(Get(app.port(), "/queryz"));
  EXPECT_NE(queryz_body.find("serve-test"), std::string::npos);
  {
    StatusOr<JsonValue> queryz = ParseJson(queryz_body);
    ASSERT_TRUE(queryz.ok()) << queryz_body;
    const JsonValue* records = queryz->Find("records");
    ASSERT_NE(records, nullptr);
    const JsonValue* ours = nullptr;
    for (const JsonValue& record : records->items) {
      const JsonValue* label = record.Find("label");
      if (label != nullptr && label->string == "serve-test") ours = &record;
    }
    ASSERT_NE(ours, nullptr) << queryz_body;
    // Three engine calls (Start + 2×Feedback/Finalize) must have scanned
    // features and descended the tree.
    EXPECT_GT(ours->U64Field("distance_evals", 0), 0u);
    EXPECT_GT(ours->U64Field("feature_bytes", 0), 0u);
    EXPECT_GT(ours->U64Field("leaves_visited", 0), 0u);
  }
  // ...the session is gone, so further feedback answers 404...
  EXPECT_NE(Post(app.port(), "/api/feedback",
                 "{\"session\":" + std::to_string(session_id) + "}")
                .find("404"),
            std::string::npos);
  // ...and /metrics renders a valid exposition that saw our requests.
  const std::string metrics = BodyOf(Get(app.port(), "/metrics"));
  std::string prom_error;
  std::map<std::string, double> samples;
  ASSERT_TRUE(obs::ValidatePrometheusText(metrics, &prom_error, &samples))
      << prom_error;
  EXPECT_GE(samples["qdcbir_serve_http_requests"], 5.0);
  // The serve.session.* resource family recorded the finalized session.
  EXPECT_GE(samples["qdcbir_serve_session_distance_evals_count"], 1.0);
  EXPECT_GE(samples["qdcbir_serve_session_feature_bytes_count"], 1.0);
#if defined(__linux__)
  // The standard process_* block is appended after the registry families.
  EXPECT_GT(samples["process_cpu_seconds_total"], 0.0);
  EXPECT_GT(samples["process_resident_memory_bytes"], 0.0);
#endif
  EXPECT_NE(BodyOf(Get(app.port(), "/varz")).find("\"counters\""),
            std::string::npos);

  // /statusz is a human landing page linking every admin surface.
  const std::string statusz = Get(app.port(), "/statusz");
  EXPECT_NE(statusz.find("200 OK"), std::string::npos);
  EXPECT_NE(statusz.find("serving"), std::string::npos);
  EXPECT_NE(statusz.find("/profilez"), std::string::npos);
  EXPECT_NE(statusz.find("/queryz"), std::string::npos);
  EXPECT_NE(statusz.find("uptime_seconds"), std::string::npos);

  app.Stop();
}

TEST_F(ServeAppTest, ProfilezCapturesAndValidatesFormats) {
  ThreadPool pool(2);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  const std::string bad = Get(app.port(), "/profilez?format=xml");
  EXPECT_NE(bad.find("400"), std::string::npos);

#if defined(__linux__)
  const std::string response =
      Get(app.port(), "/profilez?seconds=0.05&hz=199&format=json");
  ASSERT_NE(response.find("200 OK"), std::string::npos) << response;
  StatusOr<JsonValue> profile = ParseJson(BodyOf(response));
  ASSERT_TRUE(profile.ok()) << BodyOf(response);
  EXPECT_EQ(profile->U64Field("hz", 0), 199u);
  EXPECT_NE(profile->Find("spans"), nullptr);
  EXPECT_NE(profile->Find("stacks"), nullptr);
  // The window owned its capture, so the profiler is disarmed again and a
  // second (collapsed) window succeeds.
  const std::string collapsed = Get(app.port(), "/profilez?seconds=0.05");
  EXPECT_NE(collapsed.find("200 OK"), std::string::npos);
#endif

  app.Stop();
}

TEST_F(ServeAppTest, ApiRejectsMalformedRequests) {
  ThreadPool pool(2);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  EXPECT_NE(Get(app.port(), "/api/query").find("405"), std::string::npos);
  EXPECT_NE(Post(app.port(), "/api/feedback", "not json").find("400"),
            std::string::npos);
  EXPECT_NE(Post(app.port(), "/api/feedback", "{}").find("400"),
            std::string::npos);
  EXPECT_NE(Post(app.port(), "/api/feedback", "{\"session\":9999}")
                .find("404"),
            std::string::npos);
  EXPECT_NE(
      Post(app.port(), "/api/query", "{\"seed\":1,").find("400"),
      std::string::npos);
  app.Stop();
}

TEST_F(ServeAppTest, SameSeedYieldsIdenticalFirstDisplay) {
  ThreadPool pool(2);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  const std::string a = BodyOf(Post(app.port(), "/api/query",
                                    "{\"seed\":7}"));
  const std::string b = BodyOf(Post(app.port(), "/api/query",
                                    "{\"seed\":7}"));
  const std::size_t display_a = a.find("\"display\"");
  const std::size_t display_b = b.find("\"display\"");
  ASSERT_NE(display_a, std::string::npos);
  ASSERT_NE(display_b, std::string::npos);
  // Session ids differ; everything from the display on is seed-driven and
  // must be byte-identical.
  EXPECT_EQ(a.substr(display_a), b.substr(display_b));
  app.Stop();
}

TEST_F(ServeAppTest, TraceparentSessionRoundTripsThroughEveryObsSurface) {
  obs::TraceStore::Global().Clear();
  obs::LogRing::Global().Clear();

  // One query-pool lane: subqueries run sequentially, so every span's self
  // time is disjoint and the tree's self times must sum to no more than the
  // session's wall time. (Cross-thread parentage is covered by the thread
  // pool's own trace test.)
  ThreadPool pool(1);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  options.trace_sample_every = 1;  // head-sample every session
  options.slow_trace_ms = -1.0;    // slow trigger off: sampling must suffice
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  const std::string trace_id = "4bf92f3577b34da6a3ce929d0e0e4736";
  const std::string traceparent =
      "traceparent: 00-" + trace_id + "-00f067aa0ba902b7-01\r\n";

  // The response echoes the client's trace id as a header and JSON field.
  const std::string query_response = Post(
      app.port(), "/api/query", "{\"seed\":11,\"label\":\"trace-test\"}",
      traceparent);
  EXPECT_NE(HeaderValue(query_response, "traceparent").find(trace_id),
            std::string::npos)
      << query_response;
  StatusOr<JsonValue> query = ParseJson(BodyOf(query_response));
  ASSERT_TRUE(query.ok()) << BodyOf(query_response);
  const JsonValue* trace_field = query->Find("trace");
  ASSERT_NE(trace_field, nullptr);
  EXPECT_EQ(trace_field->string, trace_id);
  const std::uint64_t session_id = query->U64Field("session", 0);
  ASSERT_GT(session_id, 0u);

  // Drive one feedback round and finalize; responses keep echoing the id.
  const JsonValue* display = query->Find("display");
  ASSERT_NE(display, nullptr);
  ASSERT_FALSE(display->items.empty());
  const JsonValue* images = display->items[0].Find("images");
  ASSERT_NE(images, nullptr);
  ASSERT_FALSE(images->items.empty());
  const std::string relevant =
      "[" +
      std::to_string(static_cast<std::uint64_t>(images->items[0].number)) +
      "]";
  const std::string round_response =
      Post(app.port(), "/api/feedback",
           "{\"session\":" + std::to_string(session_id) +
               ",\"relevant\":" + relevant + "}");
  EXPECT_NE(HeaderValue(round_response, "traceparent").find(trace_id),
            std::string::npos);
  const std::string final_response =
      Post(app.port(), "/api/feedback",
           "{\"session\":" + std::to_string(session_id) +
               ",\"relevant\":" + relevant + ",\"finalize\":20}");
  StatusOr<JsonValue> final_round = ParseJson(BodyOf(final_response));
  ASSERT_TRUE(final_round.ok()) << BodyOf(final_response);
  ASSERT_NE(final_round->Find("results"), nullptr);
  EXPECT_EQ(final_round->Find("trace")->string, trace_id);

  // /queryz: the audit record carries the trace id.
  EXPECT_NE(BodyOf(Get(app.port(), "/queryz"))
                .find("\"trace\":\"" + trace_id + "\""),
            std::string::npos);

  // /tracez: the session was head-sampled and published.
  const std::string tracez = BodyOf(Get(app.port(), "/tracez"));
  StatusOr<JsonValue> tracez_json = ParseJson(tracez);
  ASSERT_TRUE(tracez_json.ok()) << tracez;
  const JsonValue* entry = FindTrace(*tracez_json, trace_id);
  ASSERT_NE(entry, nullptr) << tracez;
  EXPECT_EQ(entry->Find("reason")->string, "sampled");
  const std::uint64_t total_ns = entry->U64Field("total_ns", 0);

#ifndef QDCBIR_DISABLE_OBS
  // The tree holds the session's phases: descent (feedback rounds),
  // finalize, and at least one per-leaf subquery span with leaf
  // attribution. Self times are consistent and sum within the wall time.
  std::vector<FlatSpan> spans;
  const JsonValue* roots = entry->Find("spans");
  ASSERT_NE(roots, nullptr);
  for (const JsonValue& root : roots->items) CollectSpans(root, &spans);
  std::size_t descents = 0, finalizes = 0, subqueries = 0,
              attributed_subqueries = 0;
  std::uint64_t self_sum = 0;
  for (const FlatSpan& span : spans) {
    EXPECT_LE(span.self_ns, span.duration_ns) << span.name;
    self_sum += span.self_ns;
    if (span.name == "qd.round.descent") ++descents;
    if (span.name == "qd.finalize") ++finalizes;
    if (span.name == "qd.finalize.subquery") {
      ++subqueries;
      if (span.has_leaf_annotation) ++attributed_subqueries;
    }
  }
  EXPECT_GE(descents, 1u);
  EXPECT_GE(finalizes, 1u);
  EXPECT_GE(subqueries, 1u);
  EXPECT_EQ(attributed_subqueries, subqueries);
  EXPECT_LE(self_sum, total_ns);
#endif

  // /metrics: the session-latency histogram carries a matching exemplar.
  const std::string metrics = BodyOf(Get(app.port(), "/metrics"));
  std::string prom_error;
  std::map<std::string, double> samples;
  std::vector<std::string> exemplar_ids;
  ASSERT_TRUE(obs::ValidatePrometheusText(metrics, &prom_error, &samples,
                                          &exemplar_ids))
      << prom_error;
  EXPECT_GE(samples["qdcbir_serve_session_latency_ns_count"], 1.0);
  bool found_exemplar = false;
  for (const std::string& id : exemplar_ids) {
    if (id == trace_id) found_exemplar = true;
  }
  EXPECT_TRUE(found_exemplar) << metrics;

  // /logz: the finalize log line is stamped with the trace id.
  EXPECT_NE(BodyOf(Get(app.port(), "/logz"))
                .find("\"trace\":\"" + trace_id + "\""),
            std::string::npos);

  // /varz: the spliced build object precedes the registry sections.
  const std::string varz = BodyOf(Get(app.port(), "/varz"));
  EXPECT_NE(varz.find("\"build\":{\"git\":"), std::string::npos);
  EXPECT_NE(varz.find("\"counters\""), std::string::npos);

  app.Stop();
}

TEST_F(ServeAppTest, SlowTriggerKeepsTraceWithHeadSamplingOff) {
  obs::TraceStore::Global().Clear();

  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  options.trace_sample_every = 0;  // head sampling off
  options.slow_trace_ms = 0.0;     // threshold 0: every session is "slow"
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  // No client traceparent: the server must mint an id of its own.
  StatusOr<JsonValue> query =
      ParseJson(BodyOf(Post(app.port(), "/api/query", "{\"seed\":3}")));
  ASSERT_TRUE(query.ok());
  const JsonValue* trace_field = query->Find("trace");
  ASSERT_NE(trace_field, nullptr);
  const std::string trace_id = trace_field->string;
  ASSERT_EQ(trace_id.size(), 32u);
  const std::uint64_t session_id = query->U64Field("session", 0);

  const JsonValue* images = query->Find("display")->items[0].Find("images");
  ASSERT_FALSE(images->items.empty());
  const std::string body =
      "{\"session\":" + std::to_string(session_id) + ",\"relevant\":[" +
      std::to_string(static_cast<std::uint64_t>(images->items[0].number)) +
      "],\"finalize\":10}";
  ASSERT_NE(Post(app.port(), "/api/feedback", body).find("200 OK"),
            std::string::npos);

  // The retroactive trigger retained the full tree as "slow".
  StatusOr<JsonValue> tracez = ParseJson(BodyOf(Get(app.port(), "/tracez")));
  ASSERT_TRUE(tracez.ok());
  const JsonValue* entry = FindTrace(*tracez, trace_id);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->Find("reason")->string, "slow");
#ifndef QDCBIR_DISABLE_OBS
  EXPECT_GT(entry->U64Field("span_count", 0), 0u);
#endif
  app.Stop();
}

TEST_F(ServeAppTest, TracingDisabledDropsTreesButKeepsTraceIds) {
  obs::TraceStore::Global().Clear();

  ThreadPool pool(2);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  options.trace_sample_every = 0;  // both retention mechanisms off
  options.slow_trace_ms = -1.0;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  StatusOr<JsonValue> query =
      ParseJson(BodyOf(Post(app.port(), "/api/query", "{\"seed\":5}")));
  ASSERT_TRUE(query.ok());
  // Responses still carry a trace id for correlation...
  ASSERT_NE(query->Find("trace"), nullptr);
  const std::uint64_t session_id = query->U64Field("session", 0);
  const JsonValue* images = query->Find("display")->items[0].Find("images");
  ASSERT_FALSE(images->items.empty());
  const std::string body =
      "{\"session\":" + std::to_string(session_id) + ",\"relevant\":[" +
      std::to_string(static_cast<std::uint64_t>(images->items[0].number)) +
      "],\"finalize\":10}";
  ASSERT_NE(Post(app.port(), "/api/feedback", body).find("200 OK"),
            std::string::npos);
  // ...but nothing is published to /tracez.
  StatusOr<JsonValue> tracez = ParseJson(BodyOf(Get(app.port(), "/tracez")));
  ASSERT_TRUE(tracez.ok());
  EXPECT_EQ(FindTrace(*tracez, query->Find("trace")->string), nullptr);
  app.Stop();
}

std::map<std::string, double> ScrapeMetrics(int port) {
  std::map<std::string, double> samples;
  std::string prom_error;
  EXPECT_TRUE(obs::ValidatePrometheusText(BodyOf(Get(port, "/metrics")),
                                          &prom_error, &samples))
      << prom_error;
  return samples;
}

/// Drives the scripted session (seed 42, first-two-of-each-group feedback,
/// finalize 25) and returns the finalize response body.
std::string RunScriptedHttpSession(int port, const std::string& label) {
  const std::string query_body = BodyOf(Post(
      port, "/api/query", "{\"seed\":42,\"label\":\"" + label + "\"}"));
  StatusOr<JsonValue> query = ParseJson(query_body);
  EXPECT_TRUE(query.ok()) << query_body;
  if (!query.ok()) return "";
  const std::uint64_t session_id = query->U64Field("session", 0);
  const JsonValue* display = query->Find("display");
  EXPECT_NE(display, nullptr);
  std::string relevant = "[";
  bool first = true;
  for (const JsonValue& group : display->items) {
    const JsonValue* images = group.Find("images");
    if (images == nullptr) continue;
    for (std::size_t i = 0; i < images->items.size() && i < 2; ++i) {
      if (!first) relevant.push_back(',');
      first = false;
      relevant += std::to_string(
          static_cast<std::uint64_t>(images->items[i].number));
    }
  }
  relevant.push_back(']');
  return BodyOf(Post(port, "/api/feedback",
                     "{\"session\":" + std::to_string(session_id) +
                         ",\"relevant\":" + relevant + ",\"finalize\":25}"));
}

/// The deterministic part of a finalize body: results + groups + stats,
/// excluding the session id, trace id and wall-clock timings around it.
std::string ResultsSlice(const std::string& final_body) {
  const std::size_t begin = final_body.find("\"results\"");
  const std::size_t end = final_body.find(",\"rounds_ns\"");
  EXPECT_NE(begin, std::string::npos) << final_body;
  EXPECT_NE(end, std::string::npos) << final_body;
  if (begin == std::string::npos || end == std::string::npos) return "";
  return final_body.substr(begin, end - begin);
}

/// The /queryz record with the given label, or nullptr.
const JsonValue* FindAuditRecord(const JsonValue& queryz,
                                 const std::string& label) {
  const JsonValue* records = queryz.Find("records");
  if (records == nullptr) return nullptr;
  for (const JsonValue& record : records->items) {
    const JsonValue* field = record.Find("label");
    if (field != nullptr && field->string == label) return &record;
  }
  return nullptr;
}

TEST_F(ServeAppTest, RepeatedIdenticalQueriesServeFromCache) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;  // cache_mb stays at its default: cache on
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  const std::map<std::string, double> before = ScrapeMetrics(app.port());
  const std::string cold = RunScriptedHttpSession(app.port(), "cache-cold");
  const std::string warm = RunScriptedHttpSession(app.port(), "cache-warm");

  // Cache on, cache cold, cache warm: byte-identical ranked output.
  ASSERT_FALSE(cold.empty());
  EXPECT_EQ(ResultsSlice(cold), ResultsSlice(warm));

  // The warm replay hit the finalized-top-k cache, and /metrics says so.
  std::map<std::string, double> after = ScrapeMetrics(app.port());
  const auto delta = [&](const char* name) {
    const auto it = before.find(name);
    return after[name] - (it == before.end() ? 0.0 : it->second);
  };
  EXPECT_GE(delta("qdcbir_cache_hit"), 1.0);
  EXPECT_GE(delta("qdcbir_cache_miss"), 1.0);
  EXPECT_GE(delta("qdcbir_cache_topk_hit"), 1.0);
  EXPECT_GE(delta("qdcbir_cache_insertions"), 1.0);
  EXPECT_GT(after["qdcbir_cache_bytes"], 0.0);

  // /queryz attributes the hits to the warm session's audit record.
  StatusOr<JsonValue> queryz = ParseJson(BodyOf(Get(app.port(), "/queryz")));
  ASSERT_TRUE(queryz.ok());
  const JsonValue* warm_record = FindAuditRecord(*queryz, "cache-warm");
  ASSERT_NE(warm_record, nullptr);
  EXPECT_GT(warm_record->U64Field("cache_hits", 0), 0u);
  const JsonValue* cold_record = FindAuditRecord(*queryz, "cache-cold");
  ASSERT_NE(cold_record, nullptr);
  EXPECT_GT(cold_record->U64Field("cache_misses", 0), 0u);

  // /statusz surfaces the cache row for humans.
  EXPECT_NE(Get(app.port(), "/statusz").find("cache"), std::string::npos);
  app.Stop();
}

TEST_F(ServeAppTest, CacheDisabledStillServesIdenticalResults) {
  ThreadPool pool(2);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  options.cache_mb = 0;  // cache off
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  const std::string a = RunScriptedHttpSession(app.port(), "nocache-a");
  const std::string b = RunScriptedHttpSession(app.port(), "nocache-b");
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(ResultsSlice(a), ResultsSlice(b));

  StatusOr<JsonValue> queryz = ParseJson(BodyOf(Get(app.port(), "/queryz")));
  ASSERT_TRUE(queryz.ok());
  const JsonValue* record = FindAuditRecord(*queryz, "nocache-b");
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->U64Field("cache_hits", 0), 0u);
  EXPECT_EQ(record->U64Field("cache_misses", 0), 0u);
  app.Stop();
}

TEST_F(ServeAppTest, ApiRepRendersRepresentativeAndCachesIt) {
  ThreadPool pool(2);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  EXPECT_NE(Post(app.port(), "/api/rep", "").find("405"), std::string::npos);
  EXPECT_NE(Get(app.port(), "/api/rep").find("400"), std::string::npos);
  EXPECT_NE(Get(app.port(), "/api/rep?id=nope").find("400"),
            std::string::npos);
  EXPECT_NE(Get(app.port(), "/api/rep?id=999999").find("404"),
            std::string::npos);

  const std::map<std::string, double> before = ScrapeMetrics(app.port());
  const std::string first = Get(app.port(), "/api/rep?id=3");
  ASSERT_NE(first.find("200 OK"), std::string::npos);
  EXPECT_EQ(HeaderValue(first, "Content-Type"), "image/x-portable-pixmap");
  const std::string body = BodyOf(first);
  ASSERT_GE(body.size(), 2u);
  EXPECT_EQ(body.substr(0, 2), "P6");  // binary PPM magic

  // The second fetch is served from the representatives cache, byte-equal.
  const std::string second = Get(app.port(), "/api/rep?id=3");
  EXPECT_EQ(BodyOf(second), body);
  std::map<std::string, double> after = ScrapeMetrics(app.port());
  const auto it = before.find("qdcbir_cache_representatives_hit");
  EXPECT_GE(after["qdcbir_cache_representatives_hit"] -
                (it == before.end() ? 0.0 : it->second),
            1.0);
  app.Stop();
}

TEST_F(ServeAppTest, ReloadFlushesCacheAndRefusesWhileSessionsOpen) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  // Warm the cache with a cold + hit pair.
  const std::string baseline =
      RunScriptedHttpSession(app.port(), "reload-warmup");
  ASSERT_FALSE(baseline.empty());
  RunScriptedHttpSession(app.port(), "reload-warm");

  EXPECT_NE(Get(app.port(), "/api/reload").find("405"), std::string::npos);

  // An open session pins the corpus: reload must refuse.
  StatusOr<JsonValue> open = ParseJson(
      BodyOf(Post(app.port(), "/api/query", "{\"seed\":9}")));
  ASSERT_TRUE(open.ok());
  const std::uint64_t open_id = open->U64Field("session", 0);
  const std::string refused = Post(app.port(), "/api/reload", "");
  EXPECT_NE(refused.find("409"), std::string::npos);
  EXPECT_NE(refused.find("sessions open"), std::string::npos);

  // Draining the session (finalize closes it) unblocks the reload.
  const JsonValue* images = open->Find("display")->items[0].Find("images");
  ASSERT_FALSE(images->items.empty());
  ASSERT_NE(
      Post(app.port(), "/api/feedback",
           "{\"session\":" + std::to_string(open_id) + ",\"relevant\":[" +
               std::to_string(
                   static_cast<std::uint64_t>(images->items[0].number)) +
               "],\"finalize\":10}")
          .find("200 OK"),
      std::string::npos);

  const std::map<std::string, double> before = ScrapeMetrics(app.port());
  const std::string accepted = Post(app.port(), "/api/reload", "");
  EXPECT_NE(accepted.find("202"), std::string::npos);
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  // The reload flushed the cache: the identical replay misses the top-k
  // cache (no new hit) yet still returns byte-identical results.
  const std::string after_reload =
      RunScriptedHttpSession(app.port(), "reload-after");
  EXPECT_EQ(ResultsSlice(baseline), ResultsSlice(after_reload));
  std::map<std::string, double> after = ScrapeMetrics(app.port());
  const auto delta = [&](const char* name) {
    const auto it = before.find(name);
    return after[name] - (it == before.end() ? 0.0 : it->second);
  };
  EXPECT_GE(delta("qdcbir_cache_invalidation_flushes"), 1.0);
  EXPECT_GE(delta("qdcbir_cache_topk_miss"), 1.0);
  EXPECT_EQ(delta("qdcbir_cache_topk_hit"), 0.0);

  StatusOr<JsonValue> queryz = ParseJson(BodyOf(Get(app.port(), "/queryz")));
  ASSERT_TRUE(queryz.ok());
  const JsonValue* record = FindAuditRecord(*queryz, "reload-warm");
  ASSERT_NE(record, nullptr);
  EXPECT_GT(record->U64Field("cache_hits", 0), 0u);
  app.Stop();
}

TEST_F(ServeAppTest, EveryAdminRouteDeclaresItsContentType) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  // An open session keeps /api/reload at 409 (a JSON error) instead of
  // kicking off a real reload mid-walk.
  const std::string query_body =
      BodyOf(Post(app.port(), "/api/query", "{\"seed\":7}"));
  ASSERT_TRUE(ParseJson(query_body).ok()) << query_body;

  const std::string json = "application/json; charset=utf-8";
  const std::string plain = "text/plain; charset=utf-8";
  // path -> {query/body suffix or "", POST body or nullopt, expected type}
  struct RouteProbe {
    std::string request_path;
    bool post = false;
    std::string expected_type;
  };
  const std::map<std::string, RouteProbe> probes = {
      {"/healthz", {"/healthz", false, plain}},
      {"/readyz", {"/readyz", false, plain}},
      {"/statusz", {"/statusz", false, "text/html; charset=utf-8"}},
      {"/varz", {"/varz", false, json}},
      {"/metrics",
       {"/metrics", false, "text/plain; version=0.0.4; charset=utf-8"}},
      {"/queryz", {"/queryz", false, json}},
      {"/indexz", {"/indexz", false, json}},
      {"/historyz", {"/historyz", false, json}},
      {"/tracez", {"/tracez", false, json}},
      {"/logz", {"/logz", false, json}},
      {"/sloz", {"/sloz", false, json}},
      {"/profilez", {"/profilez?seconds=0.05&hz=20", false, plain}},
      {"/api/query", {"/api/query", true, json}},
      {"/api/feedback", {"/api/feedback", true, json}},
      {"/api/rep", {"/api/rep", false, json}},  // no id: JSON error
      {"/api/reload", {"/api/reload", true, json}},
  };

  const std::vector<std::string> routes = app.HandledPaths();
  EXPECT_GE(routes.size(), probes.size());
  for (const std::string& route : routes) {
    const auto it = probes.find(route);
    ASSERT_NE(it, probes.end())
        << "route " << route << " has no Content-Type expectation; add one";
    const RouteProbe& probe = it->second;
    const std::string response =
        probe.post ? Post(app.port(), probe.request_path, "{}")
                   : Get(app.port(), probe.request_path);
    EXPECT_EQ(HeaderValue(response, "Content-Type"), probe.expected_type)
        << route;
  }
  app.Stop();
}

TEST_F(ServeAppTest, QueryzAndLogzHonorCountLimit) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  RunScriptedHttpSession(app.port(), "limit-a");
  RunScriptedHttpSession(app.port(), "limit-b");

  // ?n=1 keeps only the newest record.
  StatusOr<JsonValue> queryz =
      ParseJson(BodyOf(Get(app.port(), "/queryz?n=1")));
  ASSERT_TRUE(queryz.ok());
  const JsonValue* records = queryz->Find("records");
  ASSERT_NE(records, nullptr);
  ASSERT_EQ(records->items.size(), 1u);
  const JsonValue* label = records->items[0].Find("label");
  ASSERT_NE(label, nullptr);
  EXPECT_EQ(label->string, "limit-b");

  // The default (no ?n=) still returns both.
  queryz = ParseJson(BodyOf(Get(app.port(), "/queryz")));
  ASSERT_TRUE(queryz.ok());
  EXPECT_NE(FindAuditRecord(*queryz, "limit-a"), nullptr);

  StatusOr<JsonValue> logz = ParseJson(BodyOf(Get(app.port(), "/logz?n=1")));
  ASSERT_TRUE(logz.ok());
  const JsonValue* entries = logz->Find("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_LE(entries->items.size(), 1u);

  // Malformed and non-positive limits answer 400, not a silent default.
  for (const char* bad :
       {"/queryz?n=abc", "/queryz?n=0", "/queryz?n=-1", "/logz?n=1x",
        "/logz?n=0"}) {
    const std::string response = Get(app.port(), bad);
    EXPECT_NE(response.find("400"), std::string::npos) << bad;
  }
  app.Stop();
}

TEST_F(ServeAppTest, SlozReportsConfiguredSlosAndMetricsExposeGauges) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  RunScriptedHttpSession(app.port(), "sloz-session");

  StatusOr<JsonValue> sloz = ParseJson(BodyOf(Get(app.port(), "/sloz")));
  ASSERT_TRUE(sloz.ok());
  const JsonValue* slos = sloz->Find("slos");
  ASSERT_NE(slos, nullptr);
  ASSERT_TRUE(slos->is_array());
  std::map<std::string, std::string> states;
  for (const JsonValue& slo : slos->items) {
    const JsonValue* name = slo.Find("name");
    const JsonValue* state = slo.Find("state");
    ASSERT_NE(name, nullptr);
    ASSERT_NE(state, nullptr);
    states[name->string] = state->string;
  }
  for (const char* name : {"session_latency", "http_availability",
                           "cache_hit_rate", "quality_stability"}) {
    ASSERT_TRUE(states.count(name)) << name;
    // A handful of healthy local sessions must not trip any SLO.
    EXPECT_EQ(states[name], "ok") << name;
  }

  // The gauge families back the scrape-level CI gate.
  const std::map<std::string, double> samples = ScrapeMetrics(app.port());
  EXPECT_TRUE(samples.count("qdcbir_slo_session_latency_state"));
  EXPECT_EQ(samples.at("qdcbir_slo_session_latency_state"), 0.0);
  EXPECT_TRUE(samples.count("qdcbir_slo_http_availability_state"));
  EXPECT_TRUE(samples.count("qdcbir_quality_topk_jaccard_count"));

  const std::string statusz = BodyOf(Get(app.port(), "/statusz"));
  EXPECT_NE(statusz.find("/sloz"), std::string::npos);
  EXPECT_NE(statusz.find("slo"), std::string::npos);
  app.Stop();
}

TEST_F(ServeAppTest, WideEventsJoinSessionOutcomeQualityAndSloState) {
  const std::string events_path =
      ::testing::TempDir() + "serve_wide_events.jsonl";
  std::remove(events_path.c_str());

  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  options.wide_events_path = events_path;
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  RunScriptedHttpSession(app.port(), "wide-final");

  // The finalized session's audit record already carries the quality
  // telemetry the wide event joins.
  StatusOr<JsonValue> queryz = ParseJson(BodyOf(Get(app.port(), "/queryz")));
  ASSERT_TRUE(queryz.ok());
  const JsonValue* record = FindAuditRecord(*queryz, "wide-final");
  ASSERT_NE(record, nullptr);
  const JsonValue* outcome = record->Find("outcome");
  ASSERT_NE(outcome, nullptr);
  EXPECT_EQ(outcome->string, "finalized");
  EXPECT_NE(record->Find("quality_jaccard_permille"), nullptr);
  EXPECT_NE(record->Find("quality_rank_churn"), nullptr);

  // A second session left open is swept at Stop as abandoned.
  const std::string open_body = BodyOf(Post(
      app.port(), "/api/query", "{\"seed\":9,\"label\":\"wide-aband\"}"));
  ASSERT_TRUE(ParseJson(open_body).ok()) << open_body;
  app.Stop();

  std::ifstream in(events_path);
  ASSERT_TRUE(in.good()) << events_path;
  std::map<std::string, const JsonValue*> by_label;
  std::vector<JsonValue> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    StatusOr<JsonValue> parsed = ParseJson(line);
    ASSERT_TRUE(parsed.ok()) << line;
    events.push_back(std::move(*parsed));
  }
  ASSERT_EQ(events.size(), 2u);
  for (const JsonValue& event : events) {
    const JsonValue* label = event.Find("label");
    ASSERT_NE(label, nullptr);
    by_label[label->string] = &event;
  }
  ASSERT_TRUE(by_label.count("wide-final"));
  ASSERT_TRUE(by_label.count("wide-aband"));

  const JsonValue& finalized = *by_label["wide-final"];
  EXPECT_EQ(finalized.Find("event")->string, "session");
  EXPECT_EQ(finalized.Find("outcome")->string, "finalized");
  EXPECT_EQ(finalized.Find("engine")->string, "qd");
  EXPECT_GE(finalized.U64Field("rounds", 0), 1u);
  EXPECT_GT(finalized.U64Field("results", 0), 0u);
  EXPECT_GT(finalized.U64Field("total_ns", 0), 0u);
  ASSERT_NE(finalized.Find("trace"), nullptr);
  EXPECT_EQ(finalized.Find("trace")->string.size(), 32u);
  EXPECT_NE(finalized.Find("quality_mean_jaccard_permille"), nullptr);
  EXPECT_NE(finalized.Find("slo_worst"), nullptr);
  EXPECT_NE(finalized.Find("slo_session_latency"), nullptr);

  EXPECT_EQ(by_label["wide-aband"]->Find("outcome")->string, "abandoned");
}

TEST_F(ServeAppTest, IndexzJoinsTreeWithLiveAccessStats) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  options.trace_sample_every = 0;
  options.cache_mb = 0;  // cache off: both sessions must touch the index
  options.slow_trace_ms = 0.0;      // every finalize samples the recorder
  options.history_interval_ms = 0;  // background cadence off: deterministic
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  EXPECT_NE(Get(app.port(), "/indexz?n=0").find("400"), std::string::npos);
  EXPECT_NE(Get(app.port(), "/indexz?n=abc").find("400"), std::string::npos);

  // Before any session: the tree geometry is full, the access join empty.
  StatusOr<JsonValue> cold = ParseJson(BodyOf(Get(app.port(), "/indexz")));
  ASSERT_TRUE(cold.ok());
  const JsonValue* tree = cold->Find("tree");
  ASSERT_NE(tree, nullptr);
  EXPECT_GT(tree->U64Field("leaves", 0), 1u);
  EXPECT_EQ(tree->U64Field("images", 0), 300u);
  const JsonValue* cold_access = cold->Find("access");
  ASSERT_NE(cold_access, nullptr);
  EXPECT_EQ(cold_access->U64Field("sessions", 1), 0u);

  RunScriptedHttpSession(app.port(), "indexz-a");
  RunScriptedHttpSession(app.port(), "indexz-b");

  StatusOr<JsonValue> warm = ParseJson(BodyOf(Get(app.port(), "/indexz")));
  ASSERT_TRUE(warm.ok());
  const JsonValue* access = warm->Find("access");
  ASSERT_NE(access, nullptr);
  EXPECT_GE(access->U64Field("sessions", 0), 2u);
  const JsonValue* totals = access->Find("totals");
  ASSERT_NE(totals, nullptr);
  EXPECT_GT(totals->U64Field("scans", 0), 0u);
  EXPECT_GT(totals->U64Field("distance_evals", 0), 0u);
  const JsonValue* hot = access->Find("hot_leaves");
  ASSERT_NE(hot, nullptr);
  ASSERT_FALSE(hot->items.empty());
  EXPECT_GT(hot->items[0].U64Field("scans", 0), 0u);
  const JsonValue* skew = access->Find("skew");
  ASSERT_NE(skew, nullptr);
  EXPECT_GT(skew->U64Field("top_share_permille", 0), 0u);

  // Each scripted session localizes several subqueries, so the sessions'
  // touched-leaf sets produce at least one co-access pair.
  const JsonValue* coaccess = warm->Find("coaccess");
  ASSERT_NE(coaccess, nullptr);
  EXPECT_GE(coaccess->U64Field("sets", 0), 2u);
  const JsonValue* pairs = coaccess->Find("pairs");
  ASSERT_NE(pairs, nullptr);
  ASSERT_FALSE(pairs->items.empty());
  EXPECT_GT(pairs->items[0].U64Field("count", 0), 0u);

  // ?n= caps the hot-leaf and pair tables.
  StatusOr<JsonValue> capped =
      ParseJson(BodyOf(Get(app.port(), "/indexz?n=1")));
  ASSERT_TRUE(capped.ok());
  EXPECT_LE(capped->Find("access")->Find("hot_leaves")->items.size(), 1u);
  EXPECT_LE(capped->Find("coaccess")->Find("pairs")->items.size(), 1u);

  // /metrics carries both the label-free rollup and the per-leaf heatmap.
  const std::string metrics = BodyOf(Get(app.port(), "/metrics"));
  std::string prom_error;
  std::map<std::string, double> samples;
  ASSERT_TRUE(obs::ValidatePrometheusText(metrics, &prom_error, &samples))
      << prom_error;
  EXPECT_GE(samples["qdcbir_access_leaf_scans"], 1.0);
  EXPECT_GE(samples["qdcbir_index_tree_leaves"], 2.0);
  EXPECT_NE(metrics.find("qdcbir_index_leaf_scans{leaf=\""),
            std::string::npos);

  // /statusz links both new surfaces.
  const std::string statusz = BodyOf(Get(app.port(), "/statusz"));
  EXPECT_NE(statusz.find("/indexz"), std::string::npos);
  EXPECT_NE(statusz.find("/historyz"), std::string::npos);
  app.Stop();
}

TEST_F(ServeAppTest, HistoryzServesMonotoneSessionSeries) {
  ThreadPool pool(4);
  ServeOptions options;
  options.db_path = *db_path_;
  options.pool = &pool;
  options.trace_sample_every = 0;
  options.slow_trace_ms = 0.0;      // threshold 0: every session samples
  options.history_interval_ms = 0;  // only event-driven samples
  ServeApp app(std::move(options));
  std::string error;
  ASSERT_TRUE(app.Start(&error)) << error;
  ASSERT_TRUE(app.WaitUntilReady(30000)) << app.load_error();

  EXPECT_NE(Get(app.port(), "/historyz?window=-1").find("400"),
            std::string::npos);

  RunScriptedHttpSession(app.port(), "history-a");
  RunScriptedHttpSession(app.port(), "history-b");

  const std::string body =
      BodyOf(Get(app.port(), "/historyz?metric=qd.sessions"));
  StatusOr<JsonValue> history = ParseJson(body);
  ASSERT_TRUE(history.ok()) << body;
  EXPECT_EQ(history->Find("metric")->string, "qd.sessions");
  ASSERT_NE(history->Find("known"), nullptr);
  EXPECT_TRUE(history->Find("known")->boolean) << body;
  EXPECT_EQ(history->Find("type")->string, "counter");

  // Two slow-trace captures → two samples; the series must be strictly
  // ordered in time and monotone in value with non-negative deltas.
  const JsonValue* points = history->Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_GE(points->items.size(), 2u);
  std::uint64_t prev_t = 0;
  double prev_value = -1.0;
  for (const JsonValue& point : points->items) {
    const std::uint64_t t = point.U64Field("t_ns", 0);
    EXPECT_GT(t, prev_t);
    prev_t = t;
    const double value = point.Find("value")->number;
    EXPECT_GE(value, prev_value);
    prev_value = value;
    EXPECT_GE(point.Find("delta")->number, 0.0);
    EXPECT_GE(point.Find("rate")->number, 0.0);
  }
  EXPECT_GE(prev_value, 2.0);  // both sessions were counted

  // The slow-trace hook pinned each session's trace id as an event mark.
  const JsonValue* events = history->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_GE(events->items.size(), 2u);
  EXPECT_EQ(events->items[0].Find("label")->string.size(), 32u);

  // Unknown metric: known:false plus the series directory.
  StatusOr<JsonValue> unknown =
      ParseJson(BodyOf(Get(app.port(), "/historyz?metric=no.such")));
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->Find("known")->boolean);
  const JsonValue* series = unknown->Find("series");
  ASSERT_NE(series, nullptr);
  bool lists_sessions = false;
  for (const JsonValue& name : series->items) {
    if (name.string == "qd.sessions") lists_sessions = true;
  }
  EXPECT_TRUE(lists_sessions);
  app.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace qdcbir
