#include "qdcbir/core/status.h"

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, NamedConstructorsCarryCodeAndMessage) {
  const Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllNamedConstructorsProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
  EXPECT_EQ(Status::Ok(), Status());
}

TEST(StatusTest, CodeToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "Unimplemented");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(-1), -1);
}

TEST(StatusOrTest, ValueOrReturnsValueWhenOk) {
  StatusOr<int> v = 7;
  EXPECT_EQ(v.value_or(-1), 7);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  const std::string taken = std::move(v).value();
  EXPECT_EQ(taken, "hello");
}

TEST(StatusOrTest, ArrowOperatorAccessesMembers) {
  StatusOr<std::string> v = std::string("hello");
  EXPECT_EQ(v->size(), 5u);
}

Status FailingHelper() { return Status::Internal("inner"); }

Status PropagatingHelper() {
  QDCBIR_RETURN_IF_ERROR(FailingHelper());
  return Status::Ok();
}

TEST(StatusMacroTest, ReturnIfErrorPropagates) {
  const Status s = PropagatingHelper();
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

Status SucceedingHelper() {
  QDCBIR_RETURN_IF_ERROR(Status::Ok());
  return Status::AlreadyExists("reached end");
}

TEST(StatusMacroTest, ReturnIfErrorPassesThroughOk) {
  EXPECT_EQ(SucceedingHelper().code(), StatusCode::kAlreadyExists);
}

}  // namespace
}  // namespace qdcbir
