#include "qdcbir/core/stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

TEST(MomentAccumulatorTest, EmptyIsZero) {
  MomentAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.skewness_cuberoot(), 0.0);
}

TEST(MomentAccumulatorTest, SingleValue) {
  MomentAccumulator acc;
  acc.Add(5.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 0.0);
}

TEST(MomentAccumulatorTest, KnownMoments) {
  MomentAccumulator acc;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(acc.stddev(), 2.0);
}

TEST(MomentAccumulatorTest, SkewnessSignReflectsAsymmetry) {
  MomentAccumulator right_skewed;
  for (const double x : {1.0, 1.0, 1.0, 1.0, 10.0}) right_skewed.Add(x);
  EXPECT_GT(right_skewed.skewness_cuberoot(), 0.0);
  EXPECT_GT(right_skewed.skewness_standardized(), 0.0);

  MomentAccumulator left_skewed;
  for (const double x : {10.0, 10.0, 10.0, 10.0, 1.0}) left_skewed.Add(x);
  EXPECT_LT(left_skewed.skewness_cuberoot(), 0.0);
}

TEST(MomentAccumulatorTest, SymmetricDataHasNearZeroSkewness) {
  MomentAccumulator acc;
  for (const double x : {-2.0, -1.0, 0.0, 1.0, 2.0}) acc.Add(x);
  EXPECT_NEAR(acc.skewness_cuberoot(), 0.0, 1e-12);
}

TEST(MomentAccumulatorTest, MatchesBatchComputationOnRandomData) {
  Rng rng(7);
  std::vector<double> values;
  MomentAccumulator acc;
  for (int i = 0; i < 500; ++i) {
    const double v = rng.Gaussian(3.0, 2.5);
    values.push_back(v);
    acc.Add(v);
  }
  EXPECT_NEAR(acc.mean(), Mean(values), 1e-9);
  EXPECT_NEAR(acc.stddev(), StdDev(values), 1e-9);
}

TEST(BatchStatsTest, MeanAndStdDev) {
  const std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(v), 2.5);
  EXPECT_NEAR(StdDev(v), std::sqrt(1.25), 1e-12);
}

TEST(BatchStatsTest, EmptyInputs) {
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(StdDev({}), 0.0);
  EXPECT_EQ(Median({}), 0.0);
  EXPECT_EQ(Min({}), 0.0);
  EXPECT_EQ(Max({}), 0.0);
}

TEST(BatchStatsTest, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(BatchStatsTest, MinMax) {
  const std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(Min(v), -1.0);
  EXPECT_DOUBLE_EQ(Max(v), 7.0);
}

TEST(SignedCubeRootTest, PreservesSign) {
  EXPECT_DOUBLE_EQ(SignedCubeRoot(8.0), 2.0);
  EXPECT_DOUBLE_EQ(SignedCubeRoot(-8.0), -2.0);
  EXPECT_DOUBLE_EQ(SignedCubeRoot(0.0), 0.0);
}

}  // namespace
}  // namespace qdcbir
