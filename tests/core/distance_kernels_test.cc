#include "qdcbir/core/distance_kernels.h"

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/feature_block.h"
#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> RandomFeatures(std::size_t n, std::size_t dim,
                                          Rng& rng) {
  std::vector<FeatureVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.UniformDouble(-2.0, 2.0);
    out.push_back(std::move(v));
  }
  return out;
}

/// Runs both kernels of `kernels` over every block of a random table and
/// checks the outputs bitwise against the legacy per-vector scalar loops in
/// core/distance.cc — the parity contract (docs/simd.md) promises exact
/// equality, so EXPECT_EQ on doubles is intentional throughout this file.
void CheckParityAgainstLegacy(const DistanceKernels& kernels, std::size_t n,
                              std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  const std::vector<FeatureVector> features = RandomFeatures(n, dim, rng);
  const FeatureBlockTable table(features);

  FeatureVector query(dim);
  std::vector<double> weights(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    query[d] = rng.UniformDouble(-2.0, 2.0);
    // Mix regular, zero and tiny (denormal-producing) weights.
    const double pick = rng.UniformDouble();
    weights[d] = pick < 0.2 ? 0.0
               : pick < 0.4 ? 5e-324  // smallest subnormal double
                            : rng.UniformDouble(0.0, 3.0);
  }
  const WeightedL2Distance legacy_weighted(weights);

  double out[kBlockWidth];
  for (std::size_t b = 0; b < table.num_blocks(); ++b) {
    kernels.squared_l2(table.block(b), query.data(), dim, out);
    for (std::size_t lane = 0; lane < table.lanes(b); ++lane) {
      const std::size_t i = b * kBlockWidth + lane;
      EXPECT_EQ(out[lane], SquaredL2(features[i], query))
          << kernels.name << " squared_l2 n=" << n << " dim=" << dim
          << " i=" << i;
    }

    kernels.weighted_l2(table.block(b), query.data(), weights.data(), dim,
                        out);
    for (std::size_t lane = 0; lane < table.lanes(b); ++lane) {
      const std::size_t i = b * kBlockWidth + lane;
      EXPECT_EQ(out[lane], legacy_weighted.Compare(features[i], query))
          << kernels.name << " weighted_l2 n=" << n << " dim=" << dim
          << " i=" << i;
    }
  }
}

TEST(DistanceKernelsTest, ScalarMatchesLegacyAcrossShapes) {
  std::uint64_t seed = 1;
  for (const std::size_t dim : {1u, 2u, 7u, 8u, 16u, 37u, 64u}) {
    for (const std::size_t n : {1u, 7u, 8u, 9u, 40u}) {
      CheckParityAgainstLegacy(KernelsFor(SimdLevel::kScalar), n, dim, seed++);
    }
  }
}

TEST(DistanceKernelsTest, Avx2MatchesLegacyAcrossShapes) {
  if (!Avx2Supported()) {
    GTEST_SKIP() << "host CPU lacks AVX2+FMA; kernel parity not testable";
  }
  std::uint64_t seed = 100;
  for (const std::size_t dim : {1u, 2u, 7u, 8u, 16u, 37u, 64u}) {
    for (const std::size_t n : {1u, 7u, 8u, 9u, 40u}) {
      CheckParityAgainstLegacy(KernelsFor(SimdLevel::kAvx2), n, dim, seed++);
    }
  }
}

TEST(DistanceKernelsTest, ScalarAndAvx2AreBitIdentical) {
  if (!Avx2Supported()) {
    GTEST_SKIP() << "host CPU lacks AVX2+FMA; kernel parity not testable";
  }
  const DistanceKernels& scalar = KernelsFor(SimdLevel::kScalar);
  const DistanceKernels& avx2 = KernelsFor(SimdLevel::kAvx2);
  Rng rng(7);
  for (int rep = 0; rep < 50; ++rep) {
    const std::size_t dim = 1 + rng.UniformInt(64);
    const std::vector<FeatureVector> features =
        RandomFeatures(kBlockWidth, dim, rng);
    const FeatureBlockTable table(features);
    FeatureVector query(dim);
    std::vector<double> weights(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      query[d] = rng.UniformDouble(-2.0, 2.0);
      weights[d] = rng.UniformDouble(0.0, 3.0);
    }
    double a[kBlockWidth];
    double b[kBlockWidth];
    scalar.squared_l2(table.block(0), query.data(), dim, a);
    avx2.squared_l2(table.block(0), query.data(), dim, b);
    for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
      EXPECT_EQ(a[lane], b[lane]) << "squared_l2 dim=" << dim;
    }
    scalar.weighted_l2(table.block(0), query.data(), weights.data(), dim, a);
    avx2.weighted_l2(table.block(0), query.data(), weights.data(), dim, b);
    for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
      EXPECT_EQ(a[lane], b[lane]) << "weighted_l2 dim=" << dim;
    }
  }
}

TEST(DistanceKernelsTest, TailBlockLanesPastSizeAreFiniteAndIgnorable) {
  // Regression: the padded lanes of a tail block must not poison the real
  // lanes (e.g. via NaN propagation in a vectorized min) and must compute
  // against the zero padding, not stale memory.
  Rng rng(11);
  const std::size_t dim = 5;
  const std::vector<FeatureVector> features = RandomFeatures(3, dim, rng);
  const FeatureBlockTable table(features);
  FeatureVector query(dim);
  for (std::size_t d = 0; d < dim; ++d) {
    query[d] = rng.UniformDouble(-2.0, 2.0);
  }
  const FeatureVector zero(dim);

  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kAvx2}) {
    if (level == SimdLevel::kAvx2 && !Avx2Supported()) continue;
    const DistanceKernels& kernels = KernelsFor(level);
    double out[kBlockWidth];
    kernels.squared_l2(table.block(0), query.data(), dim, out);
    for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
      ASSERT_TRUE(std::isfinite(out[lane])) << kernels.name;
      if (lane >= table.size()) {
        // Padded lanes measure the distance to the zero vector.
        EXPECT_EQ(out[lane], SquaredL2(zero, query)) << kernels.name;
      }
    }
  }
}

TEST(DistanceKernelsTest, KernelsForFallsBackToScalarWhenUnsupported) {
  const DistanceKernels& scalar = KernelsFor(SimdLevel::kScalar);
  EXPECT_EQ(scalar.level, SimdLevel::kScalar);
  EXPECT_STREQ(scalar.name, "scalar");

  const DistanceKernels& avx2 = KernelsFor(SimdLevel::kAvx2);
  if (Avx2Supported()) {
    EXPECT_EQ(avx2.level, SimdLevel::kAvx2);
    EXPECT_STREQ(avx2.name, "avx2");
  } else {
    EXPECT_EQ(avx2.level, SimdLevel::kScalar);
  }
}

TEST(DistanceKernelsTest, ActiveKernelsHonorsEnvOverride) {
  // ActiveKernels() latches on first use, so this test can only assert
  // consistency with whatever QDCBIR_SIMD the process was started with —
  // the CI matrix runs the whole suite under both values.
  const char* env = std::getenv("QDCBIR_SIMD");
  const DistanceKernels& active = ActiveKernels();
  EXPECT_STREQ(active.name, ActiveSimdName());
  if (env != nullptr && std::string(env) == "scalar") {
    EXPECT_EQ(active.level, SimdLevel::kScalar);
  }
  if (env != nullptr && std::string(env) == "avx2" && Avx2Supported()) {
    EXPECT_EQ(active.level, SimdLevel::kAvx2);
  }
  if (env == nullptr) {
    EXPECT_EQ(active.level,
              Avx2Supported() ? SimdLevel::kAvx2 : SimdLevel::kScalar);
  }
}

}  // namespace
}  // namespace qdcbir
