#include "qdcbir/core/distance.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

TEST(SquaredL2Test, MatchesManualComputation) {
  FeatureVector a{1.0, 2.0, 3.0};
  FeatureVector b{4.0, 6.0, 3.0};
  EXPECT_DOUBLE_EQ(SquaredL2(a, b), 9.0 + 16.0 + 0.0);
}

TEST(SquaredL2Test, ZeroForIdenticalPoints) {
  FeatureVector a{1.5, -2.5, 0.0};
  EXPECT_DOUBLE_EQ(SquaredL2(a, a), 0.0);
}

TEST(L2DistanceTest, DistanceIsSqrtOfCompare) {
  L2Distance metric;
  FeatureVector a{0.0, 0.0};
  FeatureVector b{3.0, 4.0};
  EXPECT_DOUBLE_EQ(metric.Distance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(metric.Compare(a, b), 25.0);
  EXPECT_STREQ(metric.Name(), "l2");
}

TEST(L1DistanceTest, CityBlock) {
  L1Distance metric;
  FeatureVector a{1.0, -1.0};
  FeatureVector b{4.0, 1.0};
  EXPECT_DOUBLE_EQ(metric.Distance(a, b), 5.0);
}

TEST(WeightedL2Test, WeightsScalePerDimension) {
  WeightedL2Distance metric({4.0, 0.0});
  FeatureVector a{0.0, 0.0};
  FeatureVector b{1.0, 100.0};
  // Second dimension has weight 0 and is ignored entirely.
  EXPECT_DOUBLE_EQ(metric.Compare(a, b), 4.0);
  EXPECT_DOUBLE_EQ(metric.Distance(a, b), 2.0);
}

TEST(WeightedL2Test, UnitWeightsMatchPlainL2) {
  WeightedL2Distance weighted({1.0, 1.0, 1.0});
  L2Distance plain;
  FeatureVector a{1.0, 2.0, 3.0};
  FeatureVector b{-1.0, 0.5, 9.0};
  EXPECT_DOUBLE_EQ(weighted.Distance(a, b), plain.Distance(a, b));
}

class MetricAxiomsTest : public ::testing::TestWithParam<int> {};

TEST_P(MetricAxiomsTest, SymmetryNonNegativityIdentityTriangle) {
  Rng rng(GetParam());
  const std::size_t dim = 8;
  auto random_point = [&] {
    FeatureVector v(dim);
    for (std::size_t i = 0; i < dim; ++i) v[i] = rng.UniformDouble(-5.0, 5.0);
    return v;
  };
  L2Distance l2;
  L1Distance l1;
  for (int iter = 0; iter < 50; ++iter) {
    const FeatureVector a = random_point();
    const FeatureVector b = random_point();
    const FeatureVector c = random_point();
    for (const DistanceMetric* m :
         {static_cast<const DistanceMetric*>(&l2),
          static_cast<const DistanceMetric*>(&l1)}) {
      EXPECT_GE(m->Distance(a, b), 0.0);
      EXPECT_DOUBLE_EQ(m->Distance(a, b), m->Distance(b, a));
      EXPECT_DOUBLE_EQ(m->Distance(a, a), 0.0);
      EXPECT_LE(m->Distance(a, c),
                m->Distance(a, b) + m->Distance(b, c) + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricAxiomsTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(WeightedL2DeathTest, CompareAbortsOnDimensionMismatch) {
  // The weight count must match the vector dimensionality at every Compare
  // call, in release builds too — a silent mismatch would read past the
  // shorter buffer.
  WeightedL2Distance metric({1.0, 1.0, 1.0});
  FeatureVector a{1.0, 2.0};
  FeatureVector b{3.0, 4.0};
  EXPECT_DEATH(metric.Compare(a, b), "dimension mismatch");
}

TEST(WeightedL2DeathTest, CompareAbortsWhenVectorsDisagree) {
  WeightedL2Distance metric({1.0, 1.0});
  FeatureVector a{1.0, 2.0};
  FeatureVector b{3.0, 4.0, 5.0};
  EXPECT_DEATH(metric.Compare(a, b), "dimension mismatch");
}

TEST(WeightedL2DeathTest, ConstructorAbortsOnNegativeWeight) {
  EXPECT_DEATH(WeightedL2Distance({1.0, -0.5}), "negative or");
}

TEST(WeightedL2CreateTest, RejectsWrongWeightCount) {
  const StatusOr<WeightedL2Distance> metric =
      WeightedL2Distance::Create({1.0, 2.0}, 3);
  ASSERT_FALSE(metric.ok());
  EXPECT_EQ(metric.status().code(), StatusCode::kInvalidArgument);
}

TEST(WeightedL2CreateTest, RejectsNegativeAndNonFiniteWeights) {
  EXPECT_FALSE(WeightedL2Distance::Create({1.0, -1.0}, 2).ok());
  EXPECT_FALSE(WeightedL2Distance::Create(
                   {1.0, std::numeric_limits<double>::infinity()}, 2)
                   .ok());
  EXPECT_FALSE(WeightedL2Distance::Create(
                   {std::numeric_limits<double>::quiet_NaN(), 1.0}, 2)
                   .ok());
}

TEST(WeightedL2CreateTest, AcceptsMatchingWeights) {
  const StatusOr<WeightedL2Distance> metric =
      WeightedL2Distance::Create({2.0, 0.0, 1.0}, 3);
  ASSERT_TRUE(metric.ok());
  FeatureVector a{0.0, 0.0, 0.0};
  FeatureVector b{1.0, 9.0, 2.0};
  EXPECT_DOUBLE_EQ(metric->Compare(a, b), 2.0 + 0.0 + 4.0);
}

}  // namespace
}  // namespace qdcbir
