#include "qdcbir/core/byte_source.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(MemoryByteSourceTest, ReadsExactWindows) {
  const std::string bytes = "0123456789";
  MemoryByteSource src(bytes);
  EXPECT_EQ(src.Size(), 10u);
  std::string out(4, '\0');
  ASSERT_TRUE(src.ReadAt(3, 4, out.data()).ok());
  EXPECT_EQ(out, "3456");
  ASSERT_TRUE(src.ReadAt(0, 0, out.data()).ok());
  ASSERT_TRUE(src.ReadAt(10, 0, out.data()).ok()) << "empty read at the end";
}

TEST(MemoryByteSourceTest, ReadsPastEndAreTruncated) {
  const std::string bytes = "0123456789";
  MemoryByteSource src(bytes);
  char buf[16];
  EXPECT_EQ(src.ReadAt(8, 4, buf).code(), StatusCode::kTruncated);
  EXPECT_EQ(src.ReadAt(11, 1, buf).code(), StatusCode::kTruncated);
  // All-or-nothing: a failed read is not a partial read.
  EXPECT_EQ(src.ReadAt(20, 1, buf).code(), StatusCode::kTruncated);
}

TEST(FileByteSourceTest, ReadsARealFile) {
  const std::string path = ::testing::TempDir() + "/qdcbir_byte_source.bin";
  const std::string payload = "the bytes on disk";
  {
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    f << payload;
  }
  StatusOr<std::unique_ptr<FileByteSource>> src = FileByteSource::Open(path);
  ASSERT_TRUE(src.ok()) << src.status().ToString();
  EXPECT_EQ((*src)->Size(), payload.size());
  std::string out(5, '\0');
  ASSERT_TRUE((*src)->ReadAt(4, 5, out.data()).ok());
  EXPECT_EQ(out, "bytes");
  char c;
  EXPECT_EQ((*src)->ReadAt(payload.size(), 1, &c).code(),
            StatusCode::kTruncated);
  std::remove(path.c_str());
}

TEST(FileByteSourceTest, MissingFileIsNotFoundAndDirsAreRejected) {
  EXPECT_FALSE(FileByteSource::Open("/nonexistent/snapshot.bin").ok());
  EXPECT_FALSE(FileByteSource::Open(::testing::TempDir()).ok())
      << "directories are not byte sources";
}

}  // namespace
}  // namespace qdcbir
