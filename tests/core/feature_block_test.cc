#include "qdcbir/core/feature_block.h"

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "qdcbir/core/feature_vector.h"
#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> RandomFeatures(std::size_t n, std::size_t dim,
                                          std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    FeatureVector v(dim);
    for (std::size_t d = 0; d < dim; ++d) v[d] = rng.UniformDouble(-1.0, 1.0);
    out.push_back(std::move(v));
  }
  return out;
}

TEST(FeatureBlockTableTest, EmptyTable) {
  FeatureBlockTable table;
  EXPECT_TRUE(table.empty());
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.dim(), 0u);
  EXPECT_EQ(table.num_blocks(), 0u);
  EXPECT_EQ(table.MemoryBytes(), 0u);

  FeatureBlockTable from_empty{std::vector<FeatureVector>{}};
  EXPECT_TRUE(from_empty.empty());
}

TEST(FeatureBlockTableTest, LayoutIsDimensionMajorWithinBlocks) {
  const std::size_t n = 3 * kBlockWidth + 5;  // forces a padded tail block
  const std::size_t dim = 7;
  const std::vector<FeatureVector> features = RandomFeatures(n, dim, 17);
  const FeatureBlockTable table(features);

  EXPECT_EQ(table.size(), n);
  EXPECT_EQ(table.dim(), dim);
  EXPECT_EQ(table.num_blocks(), 4u);
  for (std::size_t b = 0; b < table.num_blocks(); ++b) {
    const double* block = table.block(b);
    // Every block starts on a cache line.
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(block) % 64, 0u)
        << "block " << b;
    for (std::size_t d = 0; d < dim; ++d) {
      for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
        const std::size_t i = b * kBlockWidth + lane;
        const double expect = i < n ? features[i][d] : 0.0;
        EXPECT_EQ(block[d * kBlockWidth + lane], expect)
            << "b=" << b << " d=" << d << " lane=" << lane;
      }
    }
  }
}

TEST(FeatureBlockTableTest, LanesCoversFullAndTailBlocks) {
  const FeatureBlockTable table(RandomFeatures(kBlockWidth + 3, 4, 5));
  ASSERT_EQ(table.num_blocks(), 2u);
  EXPECT_EQ(table.lanes(0), kBlockWidth);
  EXPECT_EQ(table.lanes(1), 3u);
}

TEST(FeatureBlockTableTest, AtMatchesSourceVectors) {
  const std::vector<FeatureVector> features = RandomFeatures(21, 9, 23);
  const FeatureBlockTable table(features);
  for (std::size_t i = 0; i < features.size(); ++i) {
    for (std::size_t d = 0; d < features[i].dim(); ++d) {
      EXPECT_EQ(table.at(i, d), features[i][d]);
    }
  }
}

TEST(FeatureBlockTableTest, GatherTileCollectsArbitraryIdsAndZeroPads) {
  const std::vector<FeatureVector> features = RandomFeatures(40, 6, 3);
  const FeatureBlockTable table(features);

  const ImageId ids[] = {39, 0, 17, 17, 8};
  const std::size_t count = 5;
  std::vector<double> tile(table.dim() * kBlockWidth, -1.0);
  table.GatherTile(ids, count, tile.data());

  for (std::size_t d = 0; d < table.dim(); ++d) {
    for (std::size_t lane = 0; lane < kBlockWidth; ++lane) {
      const double expect =
          lane < count ? features[ids[lane]][d] : 0.0;  // padded lanes zeroed
      EXPECT_EQ(tile[d * kBlockWidth + lane], expect)
          << "d=" << d << " lane=" << lane;
    }
  }
}

TEST(FeatureBlockTableTest, CopyAndMovePreserveContents) {
  const std::vector<FeatureVector> features = RandomFeatures(11, 5, 7);
  FeatureBlockTable table(features);

  FeatureBlockTable copy(table);
  EXPECT_EQ(copy.size(), table.size());
  EXPECT_EQ(copy.at(10, 4), features[10][4]);

  FeatureBlockTable assigned;
  assigned = copy;
  EXPECT_EQ(assigned.at(3, 2), features[3][2]);

  FeatureBlockTable moved(std::move(copy));
  EXPECT_EQ(moved.at(10, 4), features[10][4]);
  EXPECT_TRUE(copy.empty());  // NOLINT(bugprone-use-after-move)

  assigned = std::move(moved);
  EXPECT_EQ(assigned.at(10, 4), features[10][4]);
}

TEST(FeatureBlockTableTest, MemoryBytesAccountsForPadding) {
  const FeatureBlockTable table(RandomFeatures(9, 3, 1));
  // 9 vectors -> 2 blocks of 8 lanes * 3 dims * 8 bytes, rounded to 64.
  EXPECT_GE(table.MemoryBytes(), 2 * 3 * kBlockWidth * sizeof(double));
  EXPECT_EQ(table.MemoryBytes() % 64, 0u);
}

}  // namespace
}  // namespace qdcbir
