#include "qdcbir/core/crc32c.h"

#include <cstring>
#include <string>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 (iSCSI) CRC32C check value.
  EXPECT_EQ(Crc32c::Compute("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c::Compute(""), 0u);
  // 32 bytes of zeros / of 0xFF (RFC 3720 appendix B.4 test patterns).
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c::Compute(zeros), 0x8A9136AAu);
  const std::string ones(32, '\xff');
  EXPECT_EQ(Crc32c::Compute(ones), 0x62A8AB43u);
}

TEST(Crc32cTest, IncrementalExtendMatchesOneShot) {
  Rng rng(99);
  std::string bytes(1000, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.UniformInt(std::uint64_t{256}));
  }
  const std::uint32_t whole = Crc32c::Compute(bytes);
  for (const std::size_t split : {0u, 1u, 7u, 8u, 9u, 500u, 999u, 1000u}) {
    const std::uint32_t crc =
        Crc32c::Extend(Crc32c::Compute(bytes.data(), split),
                       bytes.data() + split, bytes.size() - split);
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, UnalignedStartsAgree) {
  // The slicing-by-8 loop has an alignment prologue; starting the same
  // message at every offset within a word must not change the result.
  const std::string msg = "the quick brown fox jumps over the lazy dog";
  char buffer[64 + 8];
  for (int shift = 0; shift < 8; ++shift) {
    std::memcpy(buffer + shift, msg.data(), msg.size());
    EXPECT_EQ(Crc32c::Compute(buffer + shift, msg.size()),
              Crc32c::Compute(msg))
        << "shift " << shift;
  }
}

TEST(Crc32cTest, DetectsEverySingleBitFlip) {
  Rng rng(7);
  std::string bytes(257, '\0');
  for (char& c : bytes) {
    c = static_cast<char>(rng.UniformInt(std::uint64_t{256}));
  }
  const std::uint32_t clean = Crc32c::Compute(bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string flipped = bytes;
      flipped[i] = static_cast<char>(static_cast<unsigned char>(flipped[i]) ^
                                     (1u << bit));
      EXPECT_NE(Crc32c::Compute(flipped), clean)
          << "undetected flip at byte " << i << " bit " << bit;
    }
  }
}

}  // namespace
}  // namespace qdcbir
