#include "qdcbir/core/feature_vector.h"

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(FeatureVectorTest, ZeroConstruction) {
  FeatureVector v(4);
  EXPECT_EQ(v.dim(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0);
}

TEST(FeatureVectorTest, InitializerListConstruction) {
  FeatureVector v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.dim(), 3u);
  EXPECT_EQ(v[1], 2.0);
}

TEST(FeatureVectorTest, ArithmeticOperators) {
  FeatureVector a{1.0, 2.0};
  FeatureVector b{3.0, 5.0};
  const FeatureVector sum = a + b;
  EXPECT_EQ(sum, (FeatureVector{4.0, 7.0}));
  const FeatureVector diff = b - a;
  EXPECT_EQ(diff, (FeatureVector{2.0, 3.0}));
  const FeatureVector scaled = a * 2.0;
  EXPECT_EQ(scaled, (FeatureVector{2.0, 4.0}));
  const FeatureVector scaled_left = 3.0 * a;
  EXPECT_EQ(scaled_left, (FeatureVector{3.0, 6.0}));
}

TEST(FeatureVectorTest, CompoundAssignment) {
  FeatureVector a{1.0, 1.0};
  a += FeatureVector{2.0, 3.0};
  EXPECT_EQ(a, (FeatureVector{3.0, 4.0}));
  a -= FeatureVector{1.0, 1.0};
  EXPECT_EQ(a, (FeatureVector{2.0, 3.0}));
  a *= 0.5;
  EXPECT_EQ(a, (FeatureVector{1.0, 1.5}));
}

TEST(FeatureVectorTest, DotAndNorm) {
  FeatureVector a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.Dot(a), 25.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
  FeatureVector b{-4.0, 3.0};
  EXPECT_DOUBLE_EQ(a.Dot(b), 0.0);
}

TEST(FeatureVectorTest, CentroidOfPoints) {
  const std::vector<FeatureVector> points = {
      FeatureVector{0.0, 0.0}, FeatureVector{2.0, 4.0},
      FeatureVector{4.0, 2.0}};
  const FeatureVector c = FeatureVector::Centroid(points);
  EXPECT_DOUBLE_EQ(c[0], 2.0);
  EXPECT_DOUBLE_EQ(c[1], 2.0);
}

TEST(FeatureVectorTest, CentroidOfSinglePointIsThePoint) {
  const FeatureVector c =
      FeatureVector::Centroid({FeatureVector{1.5, -2.5}});
  EXPECT_EQ(c, (FeatureVector{1.5, -2.5}));
}

TEST(FeatureVectorTest, ToStringIsReadable) {
  FeatureVector v{1.0, 2.5};
  EXPECT_EQ(v.ToString(), "[1, 2.5]");
}

TEST(FeatureVectorTest, MutationThroughIndex) {
  FeatureVector v(2);
  v[0] = 9.0;
  EXPECT_EQ(v[0], 9.0);
}

}  // namespace
}  // namespace qdcbir
