#include "qdcbir/core/thread_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "qdcbir/obs/metrics.h"
#include "qdcbir/obs/span.h"
#include "qdcbir/obs/trace_context.h"
#include "qdcbir/obs/trace_tree.h"

namespace qdcbir {
namespace {

TEST(ThreadPoolTest, SizeReflectsConfiguredLanes) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
  ThreadPool sequential(1);
  EXPECT_EQ(sequential.size(), 1u);
}

TEST(ThreadPoolTest, ZeroSizePicksDefaultThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), ThreadPool::DefaultThreadCount());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, EnvOverrideControlsDefaultThreadCount) {
  ASSERT_EQ(setenv("QDCBIR_THREADS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(ThreadPool::DefaultThreadCount(), 3u);
  ASSERT_EQ(setenv("QDCBIR_THREADS", "not-a-number", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ASSERT_EQ(setenv("QDCBIR_THREADS", "-2", 1), 0);
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ASSERT_EQ(unsetenv("QDCBIR_THREADS"), 0);
}

TEST(ThreadPoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> visits(1000);
    pool.ParallelFor(0, visits.size(),
                     [&](std::size_t i) { visits[i].fetch_add(1); });
    for (const std::atomic<int>& v : visits) EXPECT_EQ(v.load(), 1);
  }
}

TEST(ThreadPoolTest, ParallelForHonorsNonZeroBegin) {
  ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  pool.ParallelFor(10, 20, [&](std::size_t i) { sum.fetch_add(i); });
  EXPECT_EQ(sum.load(), 145u);  // 10 + 11 + ... + 19
}

TEST(ThreadPoolTest, EmptyRangeAndEmptyBatchAreNoOps) {
  ThreadPool pool(4);
  pool.ParallelFor(5, 5, [](std::size_t) { FAIL(); });
  pool.ParallelFor(7, 3, [](std::size_t) { FAIL(); });
  pool.Run({});
  pool.ParallelForChunks(0, 0, 4, [](std::size_t, std::size_t, std::size_t) {
    FAIL();
  });
}

TEST(ThreadPoolTest, ParallelForChunksPartitionsContiguously) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::set<std::size_t> chunk_ids;
  pool.ParallelForChunks(
      3, 103, 7, [&](std::size_t chunk, std::size_t lo, std::size_t hi) {
        std::lock_guard<std::mutex> lock(mu);
        ranges.emplace_back(lo, hi);
        chunk_ids.insert(chunk);
      });
  EXPECT_EQ(ranges.size(), 7u);
  EXPECT_EQ(chunk_ids.size(), 7u);
  EXPECT_EQ(*chunk_ids.begin(), 0u);
  EXPECT_EQ(*chunk_ids.rbegin(), 6u);
  std::sort(ranges.begin(), ranges.end());
  EXPECT_EQ(ranges.front().first, 3u);
  EXPECT_EQ(ranges.back().second, 103u);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    EXPECT_EQ(ranges[i - 1].second, ranges[i].first);  // no gap, no overlap
  }
}

TEST(ThreadPoolTest, ChunkCountClampsToRangeSize) {
  ThreadPool pool(8);
  std::atomic<int> calls{0};
  pool.ParallelForChunks(0, 3, 100,
                         [&](std::size_t, std::size_t lo, std::size_t hi) {
                           EXPECT_EQ(hi - lo, 1u);
                           calls.fetch_add(1);
                         });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPoolTest, RunExecutesAllTasks) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> done(16);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < done.size(); ++i) {
    tasks.push_back([&done, i] { done[i].fetch_add(1); });
  }
  pool.Run(std::move(tasks));
  for (const std::atomic<int>& d : done) EXPECT_EQ(d.load(), 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesAfterBatchCompletes) {
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 12; ++i) {
    tasks.push_back([&completed, i] {
      if (i == 5) throw std::runtime_error("task 5 failed");
      completed.fetch_add(1);
    });
  }
  EXPECT_THROW(pool.Run(std::move(tasks)), std::runtime_error);
  // Every non-throwing task of the batch still ran to completion.
  EXPECT_EQ(completed.load(), 11);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromParallelFor) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 100,
                                [](std::size_t i) {
                                  if (i == 42) {
                                    throw std::invalid_argument("boom");
                                  }
                                }),
               std::invalid_argument);
}

TEST(ThreadPoolTest, SequentialPoolPropagatesExceptionsToo) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.ParallelFor(0, 10,
                                [](std::size_t i) {
                                  if (i == 3) throw std::runtime_error("x");
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PoolIsReusableAfterExceptionAndAcrossBatches) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 8, [](std::size_t) { throw std::runtime_error(""); }),
      std::runtime_error);
  // 50 follow-up batches all run fine on the same pool.
  for (int round = 0; round < 50; ++round) {
    std::atomic<std::size_t> sum{0};
    pool.ParallelFor(0, 100, [&](std::size_t i) { sum.fetch_add(i + 1); });
    EXPECT_EQ(sum.load(), 5050u);
  }
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::atomic<std::size_t> total{0};
  // 16 outer tasks on a pool of 4, each fanning out again on the same pool:
  // waits must drain queued tasks instead of blocking, or this deadlocks.
  pool.ParallelFor(0, 16, [&](std::size_t) {
    pool.ParallelFor(0, 64, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 16u * 64u);
}

TEST(ThreadPoolTest, NestedExceptionPropagatesThroughOuterBatch) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(0, 8,
                                [&](std::size_t outer) {
                                  pool.ParallelFor(0, 8, [&](std::size_t i) {
                                    if (outer == 3 && i == 3) {
                                      throw std::runtime_error("nested");
                                    }
                                  });
                                }),
               std::runtime_error);
}

TEST(ThreadPoolTest, PostRunsTasksAndDestructorDrainsThem) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 100; ++i) {
      pool.Post([&done] { done.fetch_add(1); });
    }
    // The destructor must not drop queued posted tasks.
  }
  EXPECT_EQ(done.load(), 100);
}

TEST(ThreadPoolTest, PostOnSequentialPoolRunsInline) {
  ThreadPool pool(1);
  bool ran = false;
  pool.Post([&ran] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, PostDiscardsExceptions) {
  // Inline path (sequential pool): the exception must not escape Post.
  ThreadPool sequential(1);
  EXPECT_NO_THROW(sequential.Post([] { throw std::runtime_error("inline"); }));
  // Queued path: there is no submitter to rethrow on; the pool (and its
  // destructor) must survive a throwing posted task and keep running later
  // work.
  std::atomic<int> after{0};
  {
    ThreadPool pool(2);
    pool.Post([] { throw std::runtime_error("queued"); });
    pool.Post([&after] { after.fetch_add(1); });
  }
  EXPECT_EQ(after.load(), 1);
}

TEST(ThreadPoolTest, PostedTasksInterleaveWithBatches) {
  std::atomic<int> posted{0};
  std::atomic<std::size_t> batched{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.Post([&posted] { posted.fetch_add(1); });
      pool.ParallelFor(0, 16,
                       [&batched](std::size_t) { batched.fetch_add(1); });
    }
    // ParallelFor's completion wait only covers its own batch, so posted
    // tasks may still be queued here — but destruction drains them.
    EXPECT_EQ(batched.load(), 32u * 16u);
  }
  EXPECT_EQ(posted.load(), 32);
}

TEST(ThreadPoolTest, QueueDepthGaugeNeverGoesNegativeUnderScrapes) {
  // Regression: the queue-depth gauge used to be maintained with sharded
  // Add() deltas — increments on the submitter's shard, decrements on each
  // worker's shard — so a concurrent scrape could sum the decrement shard
  // before the increment shard and report a negative depth. The pool now
  // publishes an absolute count (Set under the pool mutex), which can
  // never expose a negative or torn value, and destruction leaves the
  // gauge balanced.
  obs::Gauge& depth =
      obs::MetricsRegistry::Global().GetGauge("pool.queue_depth");
  const std::int64_t base = depth.Value();
  std::atomic<bool> done{false};
  std::int64_t min_seen = base;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      min_seen = std::min(min_seen, depth.Value());
    }
  });
  {
    ThreadPool pool(4);
    for (int round = 0; round < 200; ++round) {
      pool.ParallelFor(0, 64, [](std::size_t) {});
      pool.Post([] {});
    }
  }
  done.store(true, std::memory_order_release);
  scraper.join();
  EXPECT_GE(min_seen, base);
  // With every pool of this test destroyed, the accounting balances.
  EXPECT_EQ(depth.Value(), base);
}

TEST(ThreadPoolTest, TraceContextParentageSurvivesNestedParallelFor) {
  // Regression for trace propagation: the pool captures the submitter's
  // TraceContext at enqueue and restores it around each task, so spans
  // opened inside pool tasks — including tasks of a nested ParallelFor and
  // tasks the caller itself adopts while waiting — parent correctly under
  // the submitter's open span.
  obs::TraceContext context = obs::NewTraceContext();
  context.buffer = std::make_shared<obs::TraceBuffer>();
  const std::shared_ptr<obs::TraceBuffer> buffer = context.buffer;

  std::atomic<std::size_t> wrong_trace{0};
  std::atomic<std::size_t> outer_tasks{0};
  std::atomic<std::size_t> inner_tasks{0};
  std::uint64_t root_span = 0;
  {
    ThreadPool pool(4);
    const obs::ScopedTraceContext scoped(context);
    QDCBIR_SPAN("test.root");
#ifndef QDCBIR_DISABLE_OBS
    root_span = obs::CurrentTraceContext().span_id;
    ASSERT_NE(root_span, 0u);
#endif
    pool.ParallelFor(0, 8, [&](std::size_t) {
      const obs::TraceContext& outer = obs::CurrentTraceContext();
      if (outer.trace_hi != context.trace_hi ||
          outer.trace_lo != context.trace_lo) {
        wrong_trace.fetch_add(1);
      }
      outer_tasks.fetch_add(1);
      QDCBIR_SPAN("test.outer");
      pool.ParallelFor(0, 4, [&](std::size_t) {
        const obs::TraceContext& inner = obs::CurrentTraceContext();
        if (inner.trace_lo != context.trace_lo) wrong_trace.fetch_add(1);
        inner_tasks.fetch_add(1);
        QDCBIR_SPAN("test.leaf");
      });
    });
  }
  EXPECT_EQ(wrong_trace.load(), 0u);
  EXPECT_EQ(outer_tasks.load(), 8u);
  EXPECT_EQ(inner_tasks.load(), 32u);

#ifndef QDCBIR_DISABLE_OBS
  // The recorded tree must link leaf → outer → root exactly.
  const std::vector<obs::SpanRecord> spans = buffer->spans();
  std::set<std::uint64_t> outer_ids;
  std::size_t roots = 0, outers = 0, leaves = 0;
  for (const obs::SpanRecord& span : spans) {
    if (std::string(span.name) == "test.outer") outer_ids.insert(span.span_id);
  }
  for (const obs::SpanRecord& span : spans) {
    const std::string name = span.name;
    if (name == "test.root") {
      ++roots;
      EXPECT_EQ(span.span_id, root_span);
      EXPECT_EQ(span.parent_id, 0u);
    } else if (name == "test.outer") {
      ++outers;
      EXPECT_EQ(span.parent_id, root_span);
    } else if (name == "test.leaf") {
      ++leaves;
      EXPECT_TRUE(outer_ids.count(span.parent_id) == 1)
          << "leaf parented under unknown span " << span.parent_id;
    }
  }
  EXPECT_EQ(roots, 1u);
  EXPECT_EQ(outers, 8u);
  EXPECT_EQ(leaves, 32u);
  EXPECT_EQ(buffer->dropped(), 0u);
#endif
}

TEST(ThreadPoolTest, PostedTaskCarriesSubmitterTraceContext) {
  obs::TraceContext context = obs::NewTraceContext();
  std::atomic<std::uint64_t> seen_lo{0};
  std::atomic<bool> ran{false};
  {
    ThreadPool pool(2);
    {
      const obs::ScopedTraceContext scoped(context);
      pool.Post([&] {
        seen_lo.store(obs::CurrentTraceContext().trace_lo);
        ran.store(true);
      });
    }
    // The submitter's scope ended; the task still runs under the captured
    // context (destruction drains the queue).
  }
  ASSERT_TRUE(ran.load());
  EXPECT_EQ(seen_lo.load(), context.trace_lo);
}

TEST(ThreadPoolTest, GlobalPoolIsUsableAndStable) {
  ThreadPool& a = ThreadPool::Global();
  ThreadPool& b = ThreadPool::Global();
  EXPECT_EQ(&a, &b);
  std::atomic<int> hits{0};
  a.ParallelFor(0, 32, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 32);
}

}  // namespace
}  // namespace qdcbir
