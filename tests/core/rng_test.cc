#include "qdcbir/core/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace qdcbir {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformDoubleRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformDouble(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) counts[rng.UniformInt(10)]++;
  for (const int c : counts) {
    EXPECT_GT(c, n / 10 - 400);
    EXPECT_LT(c, n / 10 + 400);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, GaussianWithParameters) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Gaussian(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(29);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(31);
  const std::vector<std::size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const std::size_t i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleWithoutReplacementClampsToPopulation) {
  Rng rng(37);
  const std::vector<std::size_t> sample = rng.SampleWithoutReplacement(5, 50);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(55);
  Rng forked = a.Fork();
  // The fork differs from the parent's continued stream.
  EXPECT_NE(forked.NextUint64(), a.NextUint64());
}

}  // namespace
}  // namespace qdcbir
