// End-to-end integration tests: synthetic database -> features -> RFS ->
// interactive sessions -> metrics. These exercise the paper's headline
// claims at reduced scale:
//   1. QD achieves full GTIR on multi-sub-concept queries where MV does not.
//   2. QD's precision beats MV's on scattered-concept queries.
//   3. Feedback processing touches no k-NN until the final round.
//   4. The serialized RFS reproduces identical retrieval results.

#include <gtest/gtest.h>

#include "qdcbir/dataset/synthesizer.h"
#include "qdcbir/eval/session_runner.h"
#include "qdcbir/query/mv_engine.h"
#include "qdcbir/rfs/rfs_builder.h"
#include "qdcbir/rfs/rfs_serialization.h"

namespace qdcbir {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CatalogOptions catalog_options;
    catalog_options.num_categories = 50;
    Catalog catalog = Catalog::Build(catalog_options).value();
    SynthesizerOptions options;
    options.total_images = 2000;
    options.image_width = 40;
    options.image_height = 40;
    db_ = new ImageDatabase(
        DatabaseSynthesizer::Synthesize(catalog, options).value());

    RfsBuildOptions build;
    build.tree.max_entries = 50;
    build.tree.min_entries = 20;
    // The paper's 5% representative fraction is calibrated for 15k images /
    // 150 categories; at this reduced scale the same coverage (a few
    // representatives per sub-concept) needs a larger fraction.
    build.representatives.fraction = 0.12;
    build.representatives.min_per_node = 4;
    rfs_ = new RfsTree(RfsBuilder::Build(db_->features(), build).value());
  }
  static void TearDownTestSuite() {
    delete rfs_;
    delete db_;
  }

  static QueryGroundTruth Gt(const char* query) {
    return BuildGroundTruth(*db_, db_->catalog().FindQuery(query).value())
        .value();
  }

  static RunOutcome RunQd(const QueryGroundTruth& gt, std::uint64_t seed) {
    ProtocolOptions protocol;
    protocol.seed = seed;
    return SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();
  }

  static RunOutcome RunMv(const QueryGroundTruth& gt, std::uint64_t seed) {
    ProtocolOptions protocol;
    protocol.seed = seed;
    MvEngine engine(db_);
    return SessionRunner::RunEngine(engine, gt, protocol).value();
  }

  static const ImageDatabase* db_;
  static const RfsTree* rfs_;
};

const ImageDatabase* IntegrationTest::db_ = nullptr;
const RfsTree* IntegrationTest::rfs_ = nullptr;

TEST_F(IntegrationTest, RfsInvariantsAtScale) {
  EXPECT_TRUE(rfs_->CheckInvariants().ok())
      << rfs_->CheckInvariants().ToString();
  const RfsTree::Stats stats = rfs_->ComputeStats();
  EXPECT_GE(stats.height, 2);
  EXPECT_GT(stats.representative_fraction, 0.03);
}

TEST_F(IntegrationTest, QdCoversAllBirdSubconcepts) {
  // Paper Table 1, "Bird": QD reaches GTIR 1 while MV stalls at 1/3.
  const QueryGroundTruth gt = Gt("bird");
  const RunOutcome qd = RunQd(gt, 1);
  EXPECT_DOUBLE_EQ(qd.final_gtir, 1.0);
}

TEST_F(IntegrationTest, QdBeatsMvOnScatteredConcepts) {
  // Averaged over several scattered-concept queries and seeds, QD wins on
  // both precision and GTIR (the paper's central claim).
  double qd_precision = 0.0, mv_precision = 0.0;
  double qd_gtir = 0.0, mv_gtir = 0.0;
  int runs = 0;
  for (const char* query : {"bird", "car", "a_person"}) {
    const QueryGroundTruth gt = Gt(query);
    for (std::uint64_t seed : {1ull, 2ull}) {
      const RunOutcome qd = RunQd(gt, seed);
      const RunOutcome mv = RunMv(gt, seed);
      qd_precision += qd.final_precision;
      mv_precision += mv.final_precision;
      qd_gtir += qd.final_gtir;
      mv_gtir += mv.final_gtir;
      ++runs;
    }
  }
  qd_precision /= runs;
  mv_precision /= runs;
  qd_gtir /= runs;
  mv_gtir /= runs;
  EXPECT_GT(qd_gtir, mv_gtir);
  EXPECT_GT(qd_precision, mv_precision);
}

TEST_F(IntegrationTest, QdFeedbackRoundsAreCheaperThanGlobalScans) {
  // The efficiency claim: QD feedback rounds sample representatives only;
  // the baselines scan the whole database every round.
  const QueryGroundTruth gt = Gt("car");
  const RunOutcome qd = RunQd(gt, 3);
  const RunOutcome mv = RunMv(gt, 3);
  // MV scanned the database at least once per round per channel.
  EXPECT_GE(mv.global_stats.candidates_scanned, db_->size());
  // QD's total k-NN candidate work is a fraction of one database scan per
  // subquery (localized leaves, possibly expanded).
  EXPECT_LT(qd.qd_stats.knn_candidates,
            mv.global_stats.candidates_scanned);
}

TEST_F(IntegrationTest, SerializedRfsGivesIdenticalSessions) {
  const std::string blob = RfsSerializer::Serialize(*rfs_);
  const RfsTree restored = RfsSerializer::Deserialize(blob).value();
  const QueryGroundTruth gt = Gt("rose");
  ProtocolOptions protocol;
  protocol.seed = 5;
  const RunOutcome a =
      SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol).value();
  const RunOutcome b =
      SessionRunner::RunQd(restored, gt, QdOptions{}, protocol).value();
  EXPECT_EQ(a.final_results, b.final_results);
}

TEST_F(IntegrationTest, AllElevenQueriesRunToCompletion) {
  for (const QueryConceptSpec& spec : db_->catalog().queries()) {
    const QueryGroundTruth gt = BuildGroundTruth(*db_, spec).value();
    ProtocolOptions protocol;
    protocol.seed = 7;
    const StatusOr<RunOutcome> outcome =
        SessionRunner::RunQd(*rfs_, gt, QdOptions{}, protocol);
    ASSERT_TRUE(outcome.ok()) << spec.name << ": "
                              << outcome.status().ToString();
    EXPECT_EQ(outcome->final_results.size(), gt.size()) << spec.name;
    EXPECT_GT(outcome->final_gtir, 0.0) << spec.name;
  }
}

TEST_F(IntegrationTest, SubsampledDatabaseStillSupportsSessions) {
  // The scalability sweep path: subsample -> rebuild RFS -> run.
  const ImageDatabase small =
      DatabaseSynthesizer::Subsample(*db_, 800).value();
  RfsBuildOptions build;
  build.tree.max_entries = 40;
  build.tree.min_entries = 16;
  const RfsTree tree = RfsBuilder::Build(small.features(), build).value();
  const QueryGroundTruth gt =
      BuildGroundTruth(small, small.catalog().FindQuery("bird").value())
          .value();
  ProtocolOptions protocol;
  protocol.seed = 9;
  const StatusOr<RunOutcome> outcome =
      SessionRunner::RunQd(tree, gt, QdOptions{}, protocol);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_GT(outcome->final_gtir, 0.3);
}

}  // namespace
}  // namespace qdcbir
