#include "qdcbir/rfs/clustered_bulk_load.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/distance.h"
#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

struct Blobs {
  std::vector<FeatureVector> points;
  std::vector<ImageId> ids;
  std::vector<int> blob_of;  ///< blob index per point
};

Blobs MakeBlobs(int blobs, int per_blob, std::uint64_t seed) {
  Rng rng(seed);
  Blobs out;
  for (int b = 0; b < blobs; ++b) {
    FeatureVector center{rng.UniformDouble(-100, 100),
                         rng.UniformDouble(-100, 100),
                         rng.UniformDouble(-100, 100)};
    for (int i = 0; i < per_blob; ++i) {
      FeatureVector p = center;
      for (std::size_t d = 0; d < 3; ++d) p[d] += rng.Gaussian(0.0, 0.5);
      out.ids.push_back(static_cast<ImageId>(out.points.size()));
      out.points.push_back(std::move(p));
      out.blob_of.push_back(b);
    }
  }
  return out;
}

RStarTreeOptions SmallNodes() {
  RStarTreeOptions options;
  options.max_entries = 40;
  options.min_entries = 16;
  return options;
}

TEST(ClusteredBulkLoadTest, RejectsBadInputs) {
  EXPECT_FALSE(ClusteredTreeBuilder::Build({}, {}, 3).ok());
  const Blobs blobs = MakeBlobs(2, 10, 1);
  std::vector<ImageId> short_ids(blobs.ids.begin(), blobs.ids.end() - 1);
  EXPECT_FALSE(
      ClusteredTreeBuilder::Build(blobs.points, short_ids, 3).ok());
  EXPECT_FALSE(ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 5).ok());
  ClusteredBulkLoadOptions bad;
  bad.fill_factor = 0.0;
  EXPECT_FALSE(
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3,
                                  RStarTreeOptions(), bad)
          .ok());
}

TEST(ClusteredBulkLoadTest, InvariantsAndCompleteness) {
  const Blobs blobs = MakeBlobs(12, 30, 3);
  const RStarTree tree =
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3, SmallNodes())
          .value();
  EXPECT_EQ(tree.size(), blobs.points.size());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  const auto all = tree.CollectSubtree(tree.root());
  EXPECT_EQ(std::set<ImageId>(all.begin(), all.end()).size(),
            blobs.points.size());
}

TEST(ClusteredBulkLoadTest, SmallInputBecomesSingleLeaf) {
  const Blobs blobs = MakeBlobs(1, 10, 5);
  const RStarTree tree =
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3, SmallNodes())
          .value();
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(ClusteredBulkLoadTest, LeavesKeepTightClustersIntact) {
  // The builder's purpose: a tight visual cluster should land (almost)
  // entirely inside one leaf. Blobs of 30 fit well under max_entries 40.
  const Blobs blobs = MakeBlobs(10, 30, 7);
  const RStarTree tree =
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3, SmallNodes())
          .value();

  // Map every point to its leaf.
  std::map<ImageId, NodeId> leaf_of;
  const auto levels = tree.NodesByLevel();
  for (const NodeId leaf : levels[0]) {
    for (const ImageId id : tree.CollectSubtree(leaf)) {
      leaf_of[id] = leaf;
    }
  }
  // For each blob, count the dominant leaf's share.
  int intact_blobs = 0;
  for (int b = 0; b < 10; ++b) {
    std::map<NodeId, int> counts;
    for (std::size_t i = 0; i < blobs.points.size(); ++i) {
      if (blobs.blob_of[i] == b) counts[leaf_of[blobs.ids[i]]] += 1;
    }
    int dominant = 0;
    for (const auto& [leaf, count] : counts) dominant = std::max(dominant, count);
    if (dominant >= 24) ++intact_blobs;  // >= 80% of the blob in one leaf
  }
  EXPECT_GE(intact_blobs, 8);  // at least 8 of 10 blobs stay whole
}

TEST(ClusteredBulkLoadTest, KnnMatchesBruteForce) {
  const Blobs blobs = MakeBlobs(8, 40, 9);
  const RStarTree tree =
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3, SmallNodes())
          .value();
  Rng rng(11);
  for (int q = 0; q < 5; ++q) {
    FeatureVector query{rng.UniformDouble(-100, 100),
                        rng.UniformDouble(-100, 100),
                        rng.UniformDouble(-100, 100)};
    std::vector<double> dists;
    for (const auto& p : blobs.points) dists.push_back(SquaredL2(p, query));
    std::sort(dists.begin(), dists.end());
    const auto matches = tree.KnnSearch(query, 10);
    ASSERT_EQ(matches.size(), 10u);
    for (std::size_t i = 0; i < matches.size(); ++i) {
      EXPECT_NEAR(matches[i].distance_squared, dists[i], 1e-9);
    }
  }
}

TEST(ClusteredBulkLoadTest, DeterministicForFixedSeed) {
  const Blobs blobs = MakeBlobs(6, 25, 13);
  const RStarTree a =
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3, SmallNodes())
          .value();
  const RStarTree b =
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3, SmallNodes())
          .value();
  EXPECT_EQ(a.height(), b.height());
  EXPECT_EQ(a.ComputeStats().node_count, b.ComputeStats().node_count);
  const auto ma = a.KnnSearch(blobs.points[0], 5);
  const auto mb = b.KnnSearch(blobs.points[0], 5);
  ASSERT_EQ(ma.size(), mb.size());
  for (std::size_t i = 0; i < ma.size(); ++i) EXPECT_EQ(ma[i].id, mb[i].id);
}

TEST(ClusteredBulkLoadTest, SupportsSubsequentDynamicUpdates) {
  Blobs blobs = MakeBlobs(6, 30, 15);
  RStarTree tree =
      ClusteredTreeBuilder::Build(blobs.points, blobs.ids, 3, SmallNodes())
          .value();
  for (ImageId id = 0; id < 40; ++id) {
    ASSERT_TRUE(tree.Delete(blobs.points[id], id).ok());
  }
  Rng rng(17);
  for (ImageId id = 1000; id < 1050; ++id) {
    ASSERT_TRUE(tree.Insert(FeatureVector{rng.Gaussian(), rng.Gaussian(),
                                          rng.Gaussian()},
                            id)
                    .ok());
  }
  EXPECT_EQ(tree.size(), 180u - 40u + 50u + 0u);
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
}

class ClusteredLoadSizeTest : public ::testing::TestWithParam<int> {};

TEST_P(ClusteredLoadSizeTest, InvariantsAcrossSizes) {
  Rng rng(100 + GetParam());
  std::vector<FeatureVector> points;
  std::vector<ImageId> ids;
  for (int i = 0; i < GetParam(); ++i) {
    points.push_back(FeatureVector{rng.Gaussian(), rng.Gaussian()});
    ids.push_back(static_cast<ImageId>(i));
  }
  RStarTreeOptions options;
  options.max_entries = 10;
  options.min_entries = 4;
  const RStarTree tree =
      ClusteredTreeBuilder::Build(points, ids, 2, options).value();
  EXPECT_EQ(tree.size(), points.size());
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << GetParam() << ": " << tree.CheckInvariants().ToString();
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusteredLoadSizeTest,
                         ::testing::Values(1, 9, 10, 11, 21, 55, 100, 333));

}  // namespace
}  // namespace qdcbir
