#include "qdcbir/rfs/representative_selector.h"

#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"

namespace qdcbir {
namespace {

struct CandidateSet {
  std::vector<RepresentativeCandidate> candidates;
  std::vector<FeatureVector> features;  // indexed by image id
};

/// Builds `blobs` blobs of `per_blob` candidates each; candidates of blob b
/// carry origin node id b.
CandidateSet MakeBlobs(int blobs, int per_blob, std::uint64_t seed) {
  Rng rng(seed);
  CandidateSet set;
  ImageId next_id = 0;
  for (int b = 0; b < blobs; ++b) {
    for (int i = 0; i < per_blob; ++i) {
      set.features.push_back(FeatureVector{b * 20.0 + rng.Gaussian(0.0, 0.3),
                                           rng.Gaussian(0.0, 0.3)});
      set.candidates.push_back(
          RepresentativeCandidate{next_id++, static_cast<NodeId>(b)});
    }
  }
  return set;
}

TEST(RepresentativeCountTest, FollowsFractionWithFloor) {
  RepresentativeOptions options;
  options.fraction = 0.05;
  options.min_per_node = 3;
  EXPECT_EQ(RepresentativeCount(100, 100, options), 5u);
  EXPECT_EQ(RepresentativeCount(20, 20, options), 3u);   // floor kicks in
  EXPECT_EQ(RepresentativeCount(1000, 40, options), 40u);  // capped
}

TEST(SelectRepresentativesTest, RejectsEmptyCandidates) {
  RepresentativeOptions options;
  EXPECT_FALSE(SelectRepresentatives({}, {}, 3, options).ok());
}

TEST(SelectRepresentativesTest, SelectsOnePerSubcluster) {
  const CandidateSet set = MakeBlobs(3, 20, 5);
  RepresentativeOptions options;
  const SelectedRepresentatives selected =
      SelectRepresentatives(set.candidates, set.features, 3, options).value();
  ASSERT_EQ(selected.images.size(), 3u);
  // One representative per blob (blobs are well separated).
  std::set<NodeId> origins(selected.origins.begin(), selected.origins.end());
  EXPECT_EQ(origins.size(), 3u);
}

TEST(SelectRepresentativesTest, RepresentativesAreRealCandidates) {
  const CandidateSet set = MakeBlobs(4, 10, 7);
  RepresentativeOptions options;
  const SelectedRepresentatives selected =
      SelectRepresentatives(set.candidates, set.features, 6, options).value();
  std::set<ImageId> candidate_ids;
  for (const RepresentativeCandidate& c : set.candidates) {
    candidate_ids.insert(c.image);
  }
  for (std::size_t i = 0; i < selected.images.size(); ++i) {
    EXPECT_TRUE(candidate_ids.count(selected.images[i]) > 0);
    // The recorded origin matches the candidate's origin.
    const RepresentativeCandidate& c = set.candidates[selected.images[i]];
    EXPECT_EQ(selected.origins[i], c.origin);
  }
}

TEST(SelectRepresentativesTest, NoDuplicates) {
  const CandidateSet set = MakeBlobs(2, 5, 9);
  RepresentativeOptions options;
  const SelectedRepresentatives selected =
      SelectRepresentatives(set.candidates, set.features, 10, options).value();
  std::set<ImageId> unique(selected.images.begin(), selected.images.end());
  EXPECT_EQ(unique.size(), selected.images.size());
}

TEST(SelectRepresentativesTest, TargetLargerThanCandidatesClamps) {
  const CandidateSet set = MakeBlobs(1, 4, 11);
  RepresentativeOptions options;
  const SelectedRepresentatives selected =
      SelectRepresentatives(set.candidates, set.features, 100, options)
          .value();
  EXPECT_LE(selected.images.size(), 4u);
  EXPECT_GE(selected.images.size(), 1u);
}

TEST(SelectRepresentativesTest, ProportionalToDensity) {
  // Blob 0 has 4x the candidates of blob 1; with 10 representatives it
  // should receive clearly more.
  Rng rng(13);
  CandidateSet set;
  ImageId next_id = 0;
  for (int i = 0; i < 80; ++i) {
    set.features.push_back(
        FeatureVector{rng.Gaussian(0.0, 1.0), rng.Gaussian(0.0, 1.0)});
    set.candidates.push_back(RepresentativeCandidate{next_id++, 0});
  }
  for (int i = 0; i < 20; ++i) {
    set.features.push_back(
        FeatureVector{rng.Gaussian(50.0, 1.0), rng.Gaussian(0.0, 1.0)});
    set.candidates.push_back(RepresentativeCandidate{next_id++, 1});
  }
  RepresentativeOptions options;
  const SelectedRepresentatives selected =
      SelectRepresentatives(set.candidates, set.features, 10, options).value();
  int from_large = 0, from_small = 0;
  for (const NodeId origin : selected.origins) {
    (origin == 0 ? from_large : from_small) += 1;
  }
  EXPECT_GT(from_large, from_small);
  EXPECT_GT(from_small, 0);  // the small blob is still represented
}

TEST(SelectRepresentativesTest, IdenticalCandidatesYieldSingleton) {
  CandidateSet set;
  for (ImageId i = 0; i < 5; ++i) {
    set.features.push_back(FeatureVector{1.0, 1.0});
    set.candidates.push_back(RepresentativeCandidate{i, 0});
  }
  RepresentativeOptions options;
  const SelectedRepresentatives selected =
      SelectRepresentatives(set.candidates, set.features, 3, options).value();
  EXPECT_GE(selected.images.size(), 1u);
}

}  // namespace
}  // namespace qdcbir
