// Introspection walk: the tree-shape summary must agree with the tree's
// own invariants (leaf/node counts, image totals, fanout bounds), and the
// /indexz JSON + text digests must render the join consistently.

#include "qdcbir/rfs/rfs_introspect.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "qdcbir/core/rng.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> ClusteredPoints(std::size_t clusters,
                                           std::size_t per_cluster,
                                           std::size_t dim,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t c = 0; c < clusters; ++c) {
    FeatureVector center(dim);
    for (std::size_t d = 0; d < dim; ++d) {
      center[d] = rng.UniformDouble(-50, 50);
    }
    for (std::size_t i = 0; i < per_cluster; ++i) {
      FeatureVector p = center;
      for (std::size_t d = 0; d < dim; ++d) p[d] += rng.Gaussian(0.0, 0.5);
      out.push_back(std::move(p));
    }
  }
  return out;
}

class RfsIntrospectTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kImages = 20 * 30;
  static constexpr std::size_t kDim = 6;

  static void SetUpTestSuite() {
    RfsBuildOptions options;
    options.tree.max_entries = 16;
    options.tree.min_entries = 6;
    tree_ = new RfsTree(
        RfsBuilder::Build(ClusteredPoints(20, 30, kDim, 3), options).value());
  }
  static void TearDownTestSuite() {
    delete tree_;
    tree_ = nullptr;
  }
  static const RfsTree* tree_;
};

const RfsTree* RfsIntrospectTest::tree_ = nullptr;

TEST_F(RfsIntrospectTest, SummaryMatchesTreeGeometry) {
  const IndexTreeSummary summary = SummarizeIndexTree(*tree_);
  EXPECT_GT(summary.height, 0);
  EXPECT_GT(summary.leaf_count, 1u);
  EXPECT_EQ(summary.node_count, summary.internal_count + summary.leaf_count);
  EXPECT_EQ(summary.total_images, kImages);
  EXPECT_EQ(summary.feature_dim, kDim);
  EXPECT_EQ(summary.leaves.size(), summary.leaf_count);

  EXPECT_LE(summary.min_fanout, summary.max_fanout);
  EXPECT_GE(summary.mean_fanout, static_cast<double>(summary.min_fanout));
  EXPECT_LE(summary.mean_fanout, static_cast<double>(summary.max_fanout));
  EXPECT_LE(summary.min_leaf_entries, summary.max_leaf_entries);

  // Per-leaf rows: unique ids, ascending, entries summing to the corpus,
  // feature bytes consistent with entries × dim × sizeof(double).
  std::set<NodeId> ids;
  std::size_t entries = 0;
  std::uint64_t bytes = 0;
  NodeId prev = 0;
  bool first = true;
  for (const IndexLeafShape& leaf : summary.leaves) {
    EXPECT_TRUE(ids.insert(leaf.id).second);
    if (!first) EXPECT_GT(leaf.id, prev);
    first = false;
    prev = leaf.id;
    EXPECT_GE(leaf.entries, summary.min_leaf_entries);
    EXPECT_LE(leaf.entries, summary.max_leaf_entries);
    EXPECT_GT(leaf.representatives, 0u);
    EXPECT_EQ(leaf.feature_bytes, leaf.entries * kDim * sizeof(double));
    EXPECT_GE(leaf.diagonal, 0.0);
    entries += leaf.entries;
    bytes += leaf.feature_bytes;
  }
  EXPECT_EQ(entries, kImages);
  EXPECT_EQ(bytes, summary.leaf_feature_bytes);
}

TEST_F(RfsIntrospectTest, OfflineJsonRendersTreeWithZeroAccess) {
  const IndexTreeSummary summary = SummarizeIndexTree(*tree_);
  const std::string json = RenderIndexzJson(summary, IndexAccessJoin{}, 8);
  EXPECT_NE(json.find("\"tree\":{"), std::string::npos);
  EXPECT_NE(json.find("\"leaves\":["), std::string::npos);
  EXPECT_NE(json.find("\"access\":{"), std::string::npos);
  EXPECT_NE(json.find("\"coaccess\":{"), std::string::npos);
  EXPECT_NE(json.find("\"generation\":0"), std::string::npos);
  EXPECT_NE(json.find("\"sessions\":0"), std::string::npos);
  EXPECT_NE(
      json.find("\"leaves\":" + std::to_string(summary.leaf_count)),
      std::string::npos);
  EXPECT_NE(json.find("\"images\":" + std::to_string(kImages)),
            std::string::npos);
  EXPECT_NE(json.find("\"pairs\":[]"), std::string::npos);
}

TEST_F(RfsIntrospectTest, JoinedJsonReportsHotLeavesAndCoaccess) {
  const IndexTreeSummary summary = SummarizeIndexTree(*tree_);
  ASSERT_GE(summary.leaves.size(), 2u);
  const NodeId hot = summary.leaves[0].id;
  const NodeId warm = summary.leaves[1].id;

  IndexAccessJoin join;
  join.generation = 3;
  join.sessions = 2;
  join.access.push_back(
      {static_cast<obs::AccessLeafId>(hot), {9, 90, 720, 1, 8}});
  join.access.push_back(
      {static_cast<obs::AccessLeafId>(warm), {4, 40, 320, 0, 4}});
  join.access.push_back({obs::kTableScanLeaf, {1, 600, 4800, 0, 1}});
  join.coaccess.push_back({static_cast<obs::AccessLeafId>(hot),
                           static_cast<obs::AccessLeafId>(warm), 2});
  join.coaccess_sets = 2;

  const std::string json = RenderIndexzJson(summary, join, 8);
  EXPECT_NE(json.find("\"generation\":3"), std::string::npos);
  EXPECT_NE(json.find("\"sessions\":2"), std::string::npos);
  // The hot-leaf table leads with the heaviest scanner.
  const std::size_t hot_pos = json.find("\"hot_leaves\":[");
  ASSERT_NE(hot_pos, std::string::npos);
  EXPECT_NE(json.find("{\"id\":" + std::to_string(hot) + ",\"scans\":9}",
                      hot_pos),
            std::string::npos);
  // The table-scan bucket stays separate from tree leaves.
  EXPECT_NE(json.find("\"table_scan\":{"), std::string::npos);
  EXPECT_NE(json.find("\"skew\":{"), std::string::npos);
  EXPECT_NE(json.find("\"gini_permille\":"), std::string::npos);
  // Co-access pair with both endpoints and the count.
  EXPECT_NE(json.find("{\"a\":" + std::to_string(hot) +
                      ",\"b\":" + std::to_string(warm) + ",\"count\":2}"),
            std::string::npos);
}

TEST_F(RfsIntrospectTest, TextDigestCarriesTheHeadlineNumbers) {
  const IndexTreeSummary summary = SummarizeIndexTree(*tree_);
  const std::string text = RenderIndexTreeText(summary);
  EXPECT_NE(text.find(std::to_string(summary.leaf_count)), std::string::npos);
  EXPECT_NE(text.find(std::to_string(summary.total_images)),
            std::string::npos);
  EXPECT_NE(text.find(std::to_string(summary.height)), std::string::npos);
}

}  // namespace
}  // namespace qdcbir
