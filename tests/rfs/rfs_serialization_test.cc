#include "qdcbir/rfs/rfs_serialization.h"

#include <cstdio>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

RfsTree MakeTree(std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> points;
  for (int i = 0; i < 400; ++i) {
    points.push_back(FeatureVector{rng.UniformDouble(-10, 10),
                                   rng.UniformDouble(-10, 10),
                                   rng.UniformDouble(-10, 10)});
  }
  RfsBuildOptions options;
  options.tree.max_entries = 12;
  options.tree.min_entries = 5;
  return RfsBuilder::Build(std::move(points), options).value();
}

TEST(RfsSerializationTest, RoundTripPreservesEverything) {
  const RfsTree original = MakeTree(3);
  const std::string blob = RfsSerializer::Serialize(original);
  StatusOr<RfsTree> restored = RfsSerializer::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();

  EXPECT_EQ(restored->num_images(), original.num_images());
  EXPECT_EQ(restored->height(), original.height());
  EXPECT_EQ(restored->root(), original.root());
  EXPECT_TRUE(restored->CheckInvariants().ok())
      << restored->CheckInvariants().ToString();

  // Features identical.
  for (ImageId i = 0; i < original.num_images(); ++i) {
    EXPECT_EQ(restored->feature(i), original.feature(i));
    EXPECT_EQ(restored->LeafOf(i), original.LeafOf(i));
  }

  // Node annotations identical.
  const auto levels = original.index().NodesByLevel();
  for (const auto& level_nodes : levels) {
    for (const NodeId id : level_nodes) {
      const RfsTree::NodeInfo& a = original.info(id);
      const RfsTree::NodeInfo& b = restored->info(id);
      EXPECT_EQ(a.level, b.level);
      EXPECT_EQ(a.parent, b.parent);
      EXPECT_EQ(a.children, b.children);
      EXPECT_EQ(a.representatives, b.representatives);
      EXPECT_EQ(a.rep_origin, b.rep_origin);
      EXPECT_EQ(a.subtree_size, b.subtree_size);
      EXPECT_EQ(a.center, b.center);
      EXPECT_DOUBLE_EQ(a.diagonal, b.diagonal);
    }
  }
}

TEST(RfsSerializationTest, RestoredTreeAnswersIdenticalKnnQueries) {
  const RfsTree original = MakeTree(5);
  StatusOr<RfsTree> restored =
      RfsSerializer::Deserialize(RfsSerializer::Serialize(original));
  ASSERT_TRUE(restored.ok());
  Rng rng(9);
  for (int q = 0; q < 5; ++q) {
    FeatureVector query{rng.UniformDouble(-10, 10), rng.UniformDouble(-10, 10),
                        rng.UniformDouble(-10, 10)};
    const auto a = original.index().KnnSearch(query, 10);
    const auto b = restored->index().KnnSearch(query, 10);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id);
      EXPECT_DOUBLE_EQ(a[i].distance_squared, b[i].distance_squared);
    }
  }
}

TEST(RfsSerializationTest, RejectsBadMagic) {
  EXPECT_FALSE(RfsSerializer::Deserialize("").ok());
  EXPECT_FALSE(RfsSerializer::Deserialize("BADMAGIC rest").ok());
}

TEST(RfsSerializationTest, RejectsTruncatedBlob) {
  const RfsTree tree = MakeTree(7);
  std::string blob = RfsSerializer::Serialize(tree);
  blob.resize(blob.size() / 2);
  EXPECT_FALSE(RfsSerializer::Deserialize(blob).ok());
}

TEST(RfsSerializationTest, FileRoundTrip) {
  const RfsTree tree = MakeTree(11);
  const std::string path = ::testing::TempDir() + "/qdcbir_rfs_test.bin";
  ASSERT_TRUE(RfsSerializer::SaveToFile(tree, path).ok());
  StatusOr<RfsTree> loaded = RfsSerializer::LoadFromFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_images(), tree.num_images());
  EXPECT_TRUE(loaded->CheckInvariants().ok());
  std::remove(path.c_str());
}

TEST(RfsSerializationTest, SaveToUnwritablePathFails) {
  const RfsTree tree = MakeTree(13);
  EXPECT_FALSE(
      RfsSerializer::SaveToFile(tree, "/nonexistent/dir/file.bin").ok());
  EXPECT_FALSE(RfsSerializer::LoadFromFile("/nonexistent/file.bin").ok());
}

}  // namespace
}  // namespace qdcbir
