#include "qdcbir/rfs/rfs_tree.h"

#include <set>

#include <gtest/gtest.h>

#include "qdcbir/core/rng.h"
#include "qdcbir/rfs/rfs_builder.h"

namespace qdcbir {
namespace {

std::vector<FeatureVector> ClusteredPoints(std::size_t clusters,
                                           std::size_t per_cluster,
                                           std::size_t dim,
                                           std::uint64_t seed) {
  Rng rng(seed);
  std::vector<FeatureVector> out;
  for (std::size_t c = 0; c < clusters; ++c) {
    FeatureVector center(dim);
    for (std::size_t d = 0; d < dim; ++d) center[d] = rng.UniformDouble(-50, 50);
    for (std::size_t i = 0; i < per_cluster; ++i) {
      FeatureVector p = center;
      for (std::size_t d = 0; d < dim; ++d) p[d] += rng.Gaussian(0.0, 0.5);
      out.push_back(std::move(p));
    }
  }
  return out;
}

RfsBuildOptions SmallOptions() {
  RfsBuildOptions options;
  options.tree.max_entries = 16;
  options.tree.min_entries = 6;
  return options;
}

class RfsTreeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tree_ = new RfsTree(
        RfsBuilder::Build(ClusteredPoints(20, 30, 6, 3), SmallOptions())
            .value());
  }
  static void TearDownTestSuite() {
    delete tree_;
    tree_ = nullptr;
  }
  static const RfsTree* tree_;
};

const RfsTree* RfsTreeTest::tree_ = nullptr;

TEST_F(RfsTreeTest, BuildRejectsEmptyInput) {
  EXPECT_FALSE(RfsBuilder::Build({}, SmallOptions()).ok());
}

TEST_F(RfsTreeTest, InvariantsHold) {
  const Status s = tree_->CheckInvariants();
  EXPECT_TRUE(s.ok()) << s.ToString();
}

TEST_F(RfsTreeTest, EveryNodeHasInfoAndRepresentatives) {
  const auto levels = tree_->index().NodesByLevel();
  for (const auto& level_nodes : levels) {
    for (const NodeId id : level_nodes) {
      ASSERT_TRUE(tree_->has_info(id));
      EXPECT_FALSE(tree_->info(id).representatives.empty());
    }
  }
}

TEST_F(RfsTreeTest, RootSubtreeSizeIsDatabaseSize) {
  EXPECT_EQ(tree_->info(tree_->root()).subtree_size, 600u);
  EXPECT_EQ(tree_->num_images(), 600u);
}

TEST_F(RfsTreeTest, InternalRepresentativesComeFromChildren) {
  const RfsTree::NodeInfo& root = tree_->info(tree_->root());
  if (root.children.empty()) GTEST_SKIP() << "tree has a single leaf";
  for (std::size_t i = 0; i < root.representatives.size(); ++i) {
    const NodeId origin = root.rep_origin[i];
    EXPECT_NE(std::find(root.children.begin(), root.children.end(), origin),
              root.children.end());
    // The representative is also a representative of the origin child
    // (bottom-up aggregation).
    const auto& child_reps = tree_->info(origin).representatives;
    EXPECT_NE(std::find(child_reps.begin(), child_reps.end(),
                        root.representatives[i]),
              child_reps.end());
  }
}

TEST_F(RfsTreeTest, OriginOfRepresentativeAgreesWithStoredOrigin) {
  const RfsTree::NodeInfo& root = tree_->info(tree_->root());
  for (std::size_t i = 0; i < root.representatives.size(); ++i) {
    const NodeId origin =
        tree_->OriginOfRepresentative(tree_->root(),
                                      root.representatives[i]).value();
    EXPECT_EQ(origin, root.rep_origin[i]);
  }
}

TEST_F(RfsTreeTest, OriginOfNonRepresentativeFails) {
  // Find an image that is not a root representative.
  const RfsTree::NodeInfo& root = tree_->info(tree_->root());
  const std::set<ImageId> reps(root.representatives.begin(),
                               root.representatives.end());
  for (ImageId id = 0; id < tree_->num_images(); ++id) {
    if (reps.count(id) == 0) {
      EXPECT_EQ(
          tree_->OriginOfRepresentative(tree_->root(), id).status().code(),
          StatusCode::kNotFound);
      break;
    }
  }
}

TEST_F(RfsTreeTest, LeafOfMapsEveryImage) {
  for (ImageId id = 0; id < tree_->num_images(); ++id) {
    const NodeId leaf = tree_->LeafOf(id);
    ASSERT_NE(leaf, kInvalidNodeId);
    const auto members = tree_->index().CollectSubtree(leaf);
    EXPECT_NE(std::find(members.begin(), members.end(), id), members.end());
  }
}

TEST_F(RfsTreeTest, SampleRepresentativesRespectsCount) {
  Rng rng(5);
  const auto sample = tree_->SampleRepresentatives(tree_->root(), 4, rng);
  EXPECT_LE(sample.size(), 4u);
  const std::set<ImageId> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), sample.size());
}

TEST_F(RfsTreeTest, RepresentativeFractionNearTarget) {
  const RfsTree::Stats stats = tree_->ComputeStats();
  // 5% target with a floor of 3 per node; small leaves inflate it a little.
  EXPECT_GT(stats.representative_fraction, 0.02);
  EXPECT_LT(stats.representative_fraction, 0.30);
  EXPECT_EQ(stats.total_images, 600u);
  EXPECT_EQ(stats.leaf_representatives, tree_->CountLeafRepresentatives());
}

TEST_F(RfsTreeTest, DiagonalAndCenterMatchIndexRects) {
  const auto levels = tree_->index().NodesByLevel();
  for (const auto& level_nodes : levels) {
    for (const NodeId id : level_nodes) {
      const Rect rect = tree_->index().NodeRect(id);
      EXPECT_EQ(tree_->info(id).center, rect.Center());
      EXPECT_DOUBLE_EQ(tree_->info(id).diagonal, rect.Diagonal());
    }
  }
}

TEST(RfsBuilderTest, InsertionBuildAlsoWorks) {
  RfsBuildOptions options;
  options.tree.max_entries = 12;
  options.tree.min_entries = 5;
  options.strategy = RfsBuildStrategy::kInsertion;
  const RfsTree tree =
      RfsBuilder::Build(ClusteredPoints(8, 25, 4, 7), options).value();
  EXPECT_TRUE(tree.CheckInvariants().ok())
      << tree.CheckInvariants().ToString();
  EXPECT_EQ(tree.num_images(), 200u);
}

TEST(RfsBuilderTest, RepresentativeFractionKnobWorks) {
  const auto points = ClusteredPoints(10, 40, 4, 9);
  RfsBuildOptions low = SmallOptions();
  low.representatives.fraction = 0.02;
  low.representatives.min_per_node = 1;
  RfsBuildOptions high = SmallOptions();
  high.representatives.fraction = 0.15;
  high.representatives.min_per_node = 1;
  const RfsTree tree_low = RfsBuilder::Build(points, low).value();
  const RfsTree tree_high = RfsBuilder::Build(points, high).value();
  EXPECT_LT(tree_low.CountLeafRepresentatives(),
            tree_high.CountLeafRepresentatives());
}

TEST(RfsBuilderTest, SingleLeafDatabase) {
  const RfsTree tree =
      RfsBuilder::Build(ClusteredPoints(1, 10, 3, 11), SmallOptions())
          .value();
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  EXPECT_FALSE(tree.info(tree.root()).representatives.empty());
}

}  // namespace
}  // namespace qdcbir
